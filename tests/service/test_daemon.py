"""End-to-end daemon tests: submit -> poll -> results over real HTTP."""

import io

import pytest

from repro.errors import ServiceError
from repro.service.api import API_VERSION, ServiceApi
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.orchestrator import OrchestratorConfig
from repro.service.queue import JobQueue

SPEC = {"name": "d", "experiment": "timing", "refined": True,
        "programs": 2, "tests": 3, "seed": 5}


@pytest.fixture
def daemon(tmp_path):
    daemon = ServiceDaemon(
        str(tmp_path / "queue.sqlite"),
        OrchestratorConfig(
            workers=1,
            artifact_root=str(tmp_path / "artifacts"),
            poll_interval=0.05,
        ),
        port=0,  # let the OS pick a free port
        out=io.StringIO(),
    )
    daemon.start()
    yield daemon
    daemon.shutdown()


@pytest.fixture
def client(daemon):
    return ServiceClient(daemon.address, timeout=10)


class TestDaemonRoundTrip:
    def test_health(self, client):
        doc = client.health()
        assert doc["status"] == "ok"
        assert doc["api_version"] == API_VERSION
        assert set(doc["counts"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }

    def test_submit_poll_results(self, client):
        job = client.submit(SPEC)
        assert job["state"] == "queued"
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "done"
        doc = client.results(job["id"])
        assert doc["summary"]["scenario"] == "d"
        assert doc["document"]["seed"] == 5
        assert doc["document"]["records"]

    def test_results_before_done_is_conflict(self, client):
        job = client.submit({**SPEC, "name": "d2", "priority": -100})
        with pytest.raises(ServiceError, match="not done"):
            client.results(job["id"])
        client.cancel(job["id"])

    def test_cancel_round_trip(self, client):
        job = client.submit({**SPEC, "name": "d3", "priority": -100})
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] in ("cancelled", "done")

    def test_bad_spec_rejected_with_message(self, client):
        with pytest.raises(ServiceError, match="unknown key"):
            client.submit({**SPEC, "typo": 1})

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError, match="no such job"):
            client.status(4242)

    def test_status_lists_jobs(self, client):
        job = client.submit(SPEC)
        client.wait(job["id"], timeout=60)
        doc = client.status()
        assert any(j["id"] == job["id"] for j in doc["jobs"])

    def test_unreachable_daemon(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach service"):
            client.health()


class TestDaemonRecovery:
    def test_restart_requeues_running_jobs(self, tmp_path):
        """Jobs left running by a crashed daemon are requeued on start."""
        path = str(tmp_path / "queue.sqlite")
        with JobQueue(path) as queue:
            queue.submit(SPEC)
            queue.claim("dead-daemon")
        daemon = ServiceDaemon(
            path,
            OrchestratorConfig(
                workers=1,
                artifact_root=str(tmp_path / "artifacts"),
                poll_interval=0.05,
            ),
            port=0,
            out=io.StringIO(),
        )
        daemon.start()
        try:
            client = ServiceClient(daemon.address, timeout=10)
            final = client.wait(1, timeout=60)
            assert final["state"] == "done"
            assert final["attempts"] == 2
        finally:
            daemon.shutdown()


class TestApiRouting:
    """Route-level checks, no sockets (ServiceApi is HTTP-independent)."""

    @pytest.fixture
    def api(self):
        queue = JobQueue(":memory:")
        yield ServiceApi(queue, workers=2)
        queue.close()

    def test_unknown_route(self, api):
        status, doc = api.handle("GET", "/api/v1/nope")
        assert status == 404
        assert "error" in doc

    def test_wrong_method(self, api):
        status, doc = api.handle("POST", "/api/v1/health")
        assert status == 404 or status == 405

    def test_submit_requires_spec_wrapper(self, api):
        status, doc = api.handle("POST", "/api/v1/jobs", {"nope": 1})
        assert status == 400

    def test_submit_rejects_bool_priority(self, api):
        status, doc = api.handle(
            "POST", "/api/v1/jobs", {"spec": SPEC, "priority": True}
        )
        assert status == 400
        assert "priority" in doc["error"]

    def test_submit_and_status(self, api):
        status, job = api.handle("POST", "/api/v1/jobs", {"spec": SPEC})
        assert status == 201
        status, doc = api.handle("GET", f"/api/v1/jobs/{job['id']}")
        assert status == 200
        assert doc["name"] == "d"

    def test_result_conflict_before_done(self, api):
        _, job = api.handle("POST", "/api/v1/jobs", {"spec": SPEC})
        status, doc = api.handle("GET", f"/api/v1/jobs/{job['id']}/result")
        assert status == 409
        assert doc["state"] == "queued"
