"""Orchestrator tests: determinism, artifacts, fault handling.

The load-bearing property: the queue is orchestration, never semantics.
``run-all`` of N scenarios must write result documents byte-identical to
N one-shot runner invocations, at any worker count.
"""

import io
import json
import os

import pytest

from repro.runner import ParallelRunner, RunnerConfig
from repro.service.orchestrator import (
    Orchestrator,
    OrchestratorConfig,
    campaign_document,
    deterministic_record,
    document_bytes,
    run_all,
)
from repro.service.queue import JobQueue
from repro.service.spec import parse_spec

SCENARIOS = [
    {"name": "det-timing", "experiment": "timing", "refined": True,
     "programs": 3, "tests": 4, "seed": 11},
    {"name": "det-mpart", "experiment": "mpart", "programs": 3, "tests": 4,
     "seed": 12, "priority": 3},
    {"name": "det-mct", "experiment": "mct-a", "refined": True,
     "programs": 2, "tests": 4, "seed": 13},
]


def _one_shot_bytes(doc):
    """Reference bytes: the equivalent single-campaign runner invocation."""
    spec = parse_spec(doc)
    result = ParallelRunner(RunnerConfig(workers=1)).run(spec.build())
    return document_bytes(campaign_document(spec.name, spec.build(), result))


def _run_corpus(tmp_path, workers, subdir):
    specs = [parse_spec(doc) for doc in SCENARIOS]
    config = OrchestratorConfig(
        workers=workers, artifact_root=str(tmp_path / subdir)
    )
    outcomes = run_all(specs, config, out=io.StringIO())
    assert len(outcomes) == len(SCENARIOS)
    payloads = {}
    for job, result in outcomes:
        assert job.state == "done"
        assert result is not None
        with open(job.result["artifacts"]["result"], "rb") as handle:
            payloads[job.name] = handle.read()
    return payloads


class TestDeterminism:
    def test_run_all_matches_one_shot_at_any_worker_count(self, tmp_path):
        reference = {
            doc["name"]: _one_shot_bytes(doc) for doc in SCENARIOS
        }
        for workers in (1, 2):
            payloads = _run_corpus(tmp_path, workers, f"w{workers}")
            assert payloads == reference

    def test_deterministic_record_strips_wall_clock(self):
        spec = parse_spec(SCENARIOS[0])
        result = ParallelRunner(RunnerConfig(workers=1)).run(spec.build())
        doc = deterministic_record(result.records[0])
        assert "gen_time" not in doc
        assert "exe_time" not in doc

    def test_document_bytes_canonical(self):
        assert document_bytes({"b": 1, "a": 2}) == b'{"a":2,"b":1}\n'


class TestExecution:
    def test_priority_order_and_artifacts(self, tmp_path):
        root = tmp_path / "art"
        specs = [parse_spec(doc) for doc in SCENARIOS]
        queue = JobQueue(":memory:")
        outcomes = run_all(
            specs,
            OrchestratorConfig(workers=1, artifact_root=str(root)),
            queue=queue,
            out=io.StringIO(),
        )
        # det-mpart has priority 3 and must run first
        assert outcomes[0][0].name == "det-mpart"
        for job, _ in outcomes:
            artifact_dir = job.artifact_dir
            assert os.path.isdir(artifact_dir)
            for artifact in ("result.json", "summary.json",
                             "checkpoint.jsonl", "events.jsonl"):
                assert os.path.exists(os.path.join(artifact_dir, artifact))
            summary = json.load(
                open(os.path.join(artifact_dir, "summary.json"))
            )
            assert summary["scenario"] == job.name
            assert summary["result_sha256"]
        queue.close()

    def test_run_all_restores_displaced_signal_handlers(self, tmp_path):
        # A leaked raising SIGTERM handler outlives the batch and is
        # inherited by every process forked afterwards in the same
        # interpreter, where it masks default terminate-on-SIGTERM (a
        # stuck forked child then survives Pool/Process terminate() and
        # an unbounded join blocks forever).
        import signal

        before_term = signal.getsignal(signal.SIGTERM)
        before_int = signal.getsignal(signal.SIGINT)
        run_all(
            [parse_spec(SCENARIOS[0])],
            OrchestratorConfig(workers=1, artifact_root=str(tmp_path / "a")),
            out=io.StringIO(),
            handle_signals=True,
        )
        assert signal.getsignal(signal.SIGTERM) is before_term
        assert signal.getsignal(signal.SIGINT) is before_int

    def test_progress_lines_carry_job_prefix(self, tmp_path):
        out = io.StringIO()
        spec = parse_spec(SCENARIOS[0])
        run_all(
            [spec],
            OrchestratorConfig(workers=1, artifact_root=str(tmp_path / "a")),
            out=out,
        )
        lines = [l for l in out.getvalue().splitlines() if l]
        assert lines
        assert all(l.startswith("[det-timing#1] ") for l in lines)

    def test_invalid_stored_spec_fails_job_not_queue(self, tmp_path):
        """A spec that no longer validates (e.g. written by a newer build)
        fails its own job; the queue keeps draining."""
        queue = JobQueue(":memory:")
        good = queue.submit(SCENARIOS[0])
        queue._conn.execute(
            "INSERT INTO jobs (name, spec, priority, state, submitted_at)"
            " VALUES ('bad', '{\"name\": \"bad\"}', 99, 'queued', 0)"
        )
        orchestrator = Orchestrator(
            queue,
            OrchestratorConfig(workers=1, artifact_root=str(tmp_path / "a")),
            out=io.StringIO(),
        )
        outcomes = orchestrator.drain()
        states = {job.name: job.state for job, _ in outcomes}
        assert states == {"bad": "failed", "det-timing": "done"}
        bad = queue.jobs("failed")[0]
        assert "invalid spec" in bad.error
        assert queue.job(good.id).state == "done"
        queue.close()

    def test_requeued_job_resumes_to_identical_bytes(self, tmp_path):
        """Shutdown mid-queue: the requeued job's second run resumes from
        its checkpoint journal and produces the same result bytes."""
        queue = JobQueue(":memory:")
        config = OrchestratorConfig(
            workers=1, artifact_root=str(tmp_path / "a")
        )
        job = queue.submit(SCENARIOS[0])
        orchestrator = Orchestrator(queue, config, out=io.StringIO())
        claimed = queue.claim("w")
        finished, _ = orchestrator.run_job(claimed)
        first = open(
            finished.result["artifacts"]["result"], "rb"
        ).read()
        checkpoint = finished.checkpoint_path
        assert os.path.exists(checkpoint)
        # simulate an interrupted run: force the job back through the queue
        queue._conn.execute(
            "UPDATE jobs SET state = 'queued' WHERE id = ?", (job.id,)
        )
        reclaimed = queue.claim("w")
        refinished, _ = orchestrator.run_job(reclaimed)
        assert refinished.state == "done"
        second = open(
            refinished.result["artifacts"]["result"], "rb"
        ).read()
        assert first == second
        queue.close()

    def test_stop_halts_drain(self, tmp_path):
        queue = JobQueue(":memory:")
        queue.submit(SCENARIOS[0])
        orchestrator = Orchestrator(
            queue,
            OrchestratorConfig(workers=1, artifact_root=str(tmp_path / "a")),
            out=io.StringIO(),
        )
        orchestrator.stop()
        assert orchestrator.drain() == []
        assert queue.jobs("queued")
        queue.close()

    def test_recover_requeues_stale_running(self, tmp_path):
        queue = JobQueue(":memory:")
        queue.submit(SCENARIOS[0])
        queue.claim("dead")
        orchestrator = Orchestrator(
            queue,
            OrchestratorConfig(workers=1, artifact_root=str(tmp_path / "a")),
            out=io.StringIO(),
        )
        assert orchestrator.recover() == 1
        assert queue.jobs("queued")[0].attempts == 1
        queue.close()
