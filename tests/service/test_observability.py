"""Service observability: /healthz, /metrics, job spans, job history."""

import io
import urllib.request

import pytest

from repro.service.api import ServiceApi
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.orchestrator import Orchestrator, OrchestratorConfig
from repro.service.queue import JOB_STATES, JobQueue
from repro.telemetry import trace

SPEC = {
    "name": "obs",
    "experiment": "timing",
    "refined": True,
    "programs": 2,
    "tests": 3,
    "seed": 5,
}


@pytest.fixture
def queue(tmp_path):
    queue = JobQueue(str(tmp_path / "queue.sqlite"))
    yield queue
    queue.close()


class TestApiRoutes:
    def test_healthz_aliases_health(self, queue):
        api = ServiceApi(queue)
        status, doc = api.handle("GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert set(doc["counts"]) == set(JOB_STATES)

    def test_metrics_snapshot_covers_every_state(self, queue):
        api = ServiceApi(queue, workers=3)
        queue.submit(SPEC)
        snapshot = api.metrics_snapshot()
        assert snapshot["scamv_service_queue_depth"]["value"] == 1
        assert snapshot["scamv_service_workers"]["value"] == 3
        for state in JOB_STATES:
            assert f"scamv_service_jobs_{state}" in snapshot

    def test_metrics_text_is_prometheus_exposition(self, queue):
        api = ServiceApi(queue)
        queue.submit(SPEC)
        text = api.metrics_text()
        assert "# TYPE repro_scamv_service_queue_depth gauge" in text
        assert "repro_scamv_service_queue_depth 1" in text
        assert "repro_scamv_service_jobs_queued 1" in text
        assert "repro_scamv_service_jobs_done 0" in text
        assert "repro_scamv_service_uptime_seconds" in text


class TestDaemonEndpoints:
    @pytest.fixture
    def daemon(self, tmp_path):
        daemon = ServiceDaemon(
            str(tmp_path / "queue.sqlite"),
            OrchestratorConfig(
                workers=1,
                artifact_root=str(tmp_path / "artifacts"),
                poll_interval=0.05,
            ),
            port=0,
            out=io.StringIO(),
        )
        daemon.start()
        yield daemon
        daemon.shutdown()

    def test_healthz_over_http(self, daemon):
        client = ServiceClient(daemon.address, timeout=10)
        assert client.healthz()["status"] == "ok"

    def test_metrics_over_http_is_text_plain(self, daemon):
        with urllib.request.urlopen(
            f"{daemon.address}/metrics", timeout=10
        ) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            body = response.read().decode("utf-8")
        assert "scamv_service_jobs_queued" in body

    def test_client_metrics_helper(self, daemon):
        client = ServiceClient(daemon.address, timeout=10)
        text = client.metrics()
        assert "scamv_service_queue_depth" in text

    def test_status_metrics_cli(self, daemon, capsys):
        from repro.cli import main

        assert (
            main(["status", "--metrics", "--url", daemon.address]) == 0
        )
        assert "scamv_service_uptime_seconds" in capsys.readouterr().out


class TestJobTelemetry:
    def test_run_job_emits_service_span_and_history(self, tmp_path):
        from repro.history import HistoryStore
        from repro.telemetry import collect

        queue = JobQueue(str(tmp_path / "queue.sqlite"))
        history_path = str(tmp_path / "history.sqlite")
        orchestrator = Orchestrator(
            queue,
            OrchestratorConfig(
                artifact_root=str(tmp_path / "artifacts"),
                history_path=history_path,
            ),
            out=io.StringIO(),
        )
        job = queue.submit(SPEC)
        collect.enable()
        try:
            _, result = orchestrator.run_job(queue.claim("w"))
            trace.drain()
        finally:
            collect.disable()
        spans = result.spans
        names = {span.name for span in spans}
        assert "service.job" in names
        job_span = next(s for s in spans if s.name == "service.job")
        assert job_span.attrs["job"] == job.id
        assert job_span.attrs["scenario"] == "obs"

        store = HistoryStore(history_path)
        row = store.latest()
        store.close()
        assert row is not None
        assert row["kind"] == "service"
        assert row["label"] == "obs"
        assert row["summary"]["wall_seconds"] > 0
        assert row["summary"]["counters"]
        queue.close()

    def test_consecutive_jobs_each_keep_their_span(self, tmp_path):
        """The drain loop must not let job N+1's first shard flush job
        N's closed service.job span out of the trace buffer."""
        from repro.telemetry import collect

        queue = JobQueue(str(tmp_path / "queue.sqlite"))
        orchestrator = Orchestrator(
            queue,
            OrchestratorConfig(
                artifact_root=str(tmp_path / "artifacts"), history=False
            ),
            out=io.StringIO(),
        )
        queue.submit(SPEC)
        queue.submit(dict(SPEC, name="obs-2", seed=6))
        collect.enable()
        try:
            finished = orchestrator.drain()
            trace.drain()
        finally:
            collect.disable()
        assert len(finished) == 2
        for job, result in finished:
            job_spans = [
                s for s in result.spans if s.name == "service.job"
            ]
            assert [s.attrs["job"] for s in job_spans] == [job.id]
        queue.close()

    def test_history_off_records_nothing(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue.sqlite"))
        orchestrator = Orchestrator(
            queue,
            OrchestratorConfig(
                artifact_root=str(tmp_path / "artifacts"), history=False
            ),
            out=io.StringIO(),
        )
        queue.submit(SPEC)
        orchestrator.run_job(queue.claim("w"))
        assert not (tmp_path / "artifacts" / "history.sqlite").exists()
        queue.close()

    def test_history_defaults_into_artifact_root(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue.sqlite"))
        orchestrator = Orchestrator(
            queue,
            OrchestratorConfig(artifact_root=str(tmp_path / "artifacts")),
            out=io.StringIO(),
        )
        queue.submit(SPEC)
        orchestrator.run_job(queue.claim("w"))
        assert (tmp_path / "artifacts" / "history.sqlite").exists()
        queue.close()
