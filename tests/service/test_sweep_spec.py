"""``hw_matrix`` scenarios: spec validation and the orchestrator sweep path."""

import io
import json
import os

import pytest

from repro.errors import SpecError
from repro.matrix import SweepConfig
from repro.service.orchestrator import OrchestratorConfig, run_all
from repro.service.spec import load_corpus, load_spec, parse_spec

SWEEP_DOC = {
    "name": "sweep-mct",
    "experiment": "mct-a",
    "refined": False,
    "hw_matrix": "spec_window=0,8",
    "programs": 4,
    "tests": 4,
    "seed": 1,
    "monitor": False,
}


class TestSpec:
    def test_plain_scenario_is_not_a_sweep(self):
        doc = dict(SWEEP_DOC, hw_matrix="")
        spec = parse_spec(doc)
        assert not spec.is_sweep
        with pytest.raises(SpecError, match="no hw_matrix"):
            spec.build_sweep()

    def test_sweep_spec_builds_sweep_config(self):
        spec = parse_spec(SWEEP_DOC)
        assert spec.is_sweep
        sweep = spec.build_sweep()
        assert isinstance(sweep, SweepConfig)
        assert sweep.experiment == "mct-a"
        assert sweep.axes == {"spec_window": (0, 8)}
        assert sweep.scenario == "sweep-mct"
        assert sweep.base_profile == "cortex-a53"
        assert sweep.programs == 4 and sweep.tests == 4 and sweep.seed == 1

    def test_invalid_axis_spec_fails_at_parse(self):
        doc = dict(SWEEP_DOC, hw_matrix="warp_drive=1,2")
        with pytest.raises(SpecError, match="invalid hw_matrix"):
            parse_spec(doc)
        doc = dict(SWEEP_DOC, hw_matrix="replacement=mru")
        with pytest.raises(SpecError, match="invalid hw_matrix"):
            parse_spec(doc)

    def test_describe_mentions_matrix(self):
        assert "hw_matrix='spec_window=0,8'" in parse_spec(SWEEP_DOC).describe()

    def test_round_trips_through_document(self):
        spec = parse_spec(SWEEP_DOC)
        assert parse_spec(spec.to_doc()) == spec

    def test_toml_file_loads(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'name = "toml-sweep"\n'
            'experiment = "mct-a"\n'
            'hw_matrix = "replacement=[lru,plru] spec_window=[0,8]"\n'
            "programs = 2\n"
            "tests = 2\n"
        )
        spec = load_spec(str(path))
        assert spec.is_sweep
        assert spec.build_sweep().axes == {
            "replacement": ("lru", "plru"),
            "spec_window": (0, 8),
        }


class TestCheckedInScenarios:
    def test_corpus_includes_matrix_scenarios(self):
        specs = {spec.name: spec for spec in load_corpus("scenarios")}
        flip = specs["mpart-prefetch-matrix"]
        assert flip.is_sweep and flip.refined
        assert flip.build_sweep().axes == {"prefetcher": ("stride", "off")}
        grid = specs["mct-replacement-matrix"]
        assert grid.is_sweep
        assert grid.build_sweep().axes == {
            "replacement": ("lru", "plru"),
            "spec_window": (0, 8),
        }


class TestOrchestratorSweepJob:
    def test_sweep_job_runs_and_writes_artifacts(self, tmp_path):
        spec = parse_spec(SWEEP_DOC)
        out = io.StringIO()
        config = OrchestratorConfig(
            workers=2, artifact_root=str(tmp_path / "art")
        )
        ((job, result),) = run_all([spec], config, out=out)
        assert job.state == "done"
        assert result is None  # sweep summaries live in the queue row
        summary = job.result
        assert summary["sweep"] is True
        assert summary["grid_size"] == 2
        assert summary["sound_configs"] == ["w0"]
        assert summary["unsound_configs"] == ["w8"]
        assert "sound on 1/2 configs" in summary["verdict"]

        artifacts = summary["artifacts"]
        report_path = artifacts["report"]
        with open(report_path, encoding="utf-8") as handle:
            doc = json.load(handle)
        from repro.matrix import validate_report

        validate_report(doc)
        assert doc["scenario"] == "sweep-mct"
        for name in ("w0", "w8"):
            assert os.path.exists(artifacts[f"result:{name}"])
        assert os.path.exists(artifacts["checkpoint"])
        assert os.path.exists(artifacts["events"])
        assert os.path.exists(
            os.path.join(os.path.dirname(report_path), "summary.json")
        )
        text = out.getvalue()
        assert "[sweep-mct#1 config 1/2 w0] " in text
        assert "[sweep-mct#1 config 2/2 w8] " in text

    def test_sweep_point_results_match_single_config_scenarios(
        self, tmp_path
    ):
        # A sweep of {w0, w8} must write the same result.json bytes as two
        # single-config scenario jobs pinned to the equivalent profiles via
        # explicit CoreConfigs.
        from repro.matrix import build_point_campaign, grid_for
        from repro.runner import ParallelRunner, RunnerConfig
        from repro.service.orchestrator import (
            campaign_document,
            document_bytes,
        )

        spec = parse_spec(SWEEP_DOC)
        config = OrchestratorConfig(
            workers=2, artifact_root=str(tmp_path / "art")
        )
        ((job, _),) = run_all([spec], config, out=io.StringIO())
        sweep = spec.build_sweep()
        for point in grid_for(sweep):
            campaign = build_point_campaign(sweep, point)
            reference = ParallelRunner(RunnerConfig(workers=1)).run(campaign)
            payload = document_bytes(
                campaign_document(spec.name, campaign, reference)
            )
            with open(
                job.result["artifacts"][f"result:{point.name}"], "rb"
            ) as handle:
                assert handle.read() == payload

    def test_mixed_corpus_runs_sweeps_and_singles(self, tmp_path):
        specs = [
            parse_spec(SWEEP_DOC),
            parse_spec(
                {
                    "name": "single-mct",
                    "experiment": "mct-a",
                    "programs": 2,
                    "tests": 2,
                    "seed": 1,
                }
            ),
        ]
        config = OrchestratorConfig(
            workers=1, artifact_root=str(tmp_path / "art")
        )
        outcomes = run_all(specs, config, out=io.StringIO())
        states = {job.name: job.state for job, _ in outcomes}
        assert states == {"sweep-mct": "done", "single-mct": "done"}
