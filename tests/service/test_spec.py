"""Unit tests for the declarative scenario spec format."""

import json

import pytest

from repro.errors import SpecError
from repro.service.spec import (
    SPEC_VERSION,
    ScenarioSpec,
    _parse_flat_toml,
    load_corpus,
    load_spec,
    parse_spec,
)

MINIMAL = {"name": "t", "experiment": "timing"}


class TestParseSpec:
    def test_minimal_defaults(self):
        spec = parse_spec(dict(MINIMAL))
        assert spec.name == "t"
        assert spec.experiment == "timing"
        assert not spec.refined
        assert spec.hw_profile == "cortex-a53"
        assert spec.programs == 10
        assert spec.tests == 16
        assert spec.seed == 0
        assert spec.priority == 0
        assert spec.monitor
        assert not spec.triage
        assert spec.shard_timeout is None

    def test_round_trip(self):
        spec = parse_spec(
            {
                "name": "rt",
                "experiment": "mct-a",
                "refined": True,
                "hw_profile": "out-of-order",
                "programs": 3,
                "tests": 5,
                "seed": 42,
                "priority": -2,
                "triage": True,
                "shard_timeout": 1.5,
            }
        )
        doc = spec.to_doc()
        assert doc["spec_version"] == SPEC_VERSION
        assert parse_spec(doc) == spec
        # and through the canonical JSON form
        assert parse_spec(json.loads(spec.to_json())) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            parse_spec({**MINIMAL, "program": 5})

    def test_missing_required_key(self):
        with pytest.raises(SpecError, match="missing required key"):
            parse_spec({"name": "t"})
        with pytest.raises(SpecError, match="missing required key"):
            parse_spec({"experiment": "timing"})

    def test_type_errors(self):
        with pytest.raises(SpecError, match="must be int"):
            parse_spec({**MINIMAL, "programs": "many"})
        # bool is an int subclass in Python; the schema must still reject it
        with pytest.raises(SpecError, match="must be int"):
            parse_spec({**MINIMAL, "seed": True})
        with pytest.raises(SpecError, match="must be bool"):
            parse_spec({**MINIMAL, "refined": "yes"})

    def test_range_errors(self):
        with pytest.raises(SpecError, match=">= 1"):
            parse_spec({**MINIMAL, "programs": 0})
        with pytest.raises(SpecError, match="> 0"):
            parse_spec({**MINIMAL, "shard_timeout": -1})
        with pytest.raises(SpecError, match="non-empty"):
            parse_spec({**MINIMAL, "name": "  "})

    def test_unknown_experiment_and_profile(self):
        with pytest.raises(SpecError, match="unknown experiment"):
            parse_spec({"name": "t", "experiment": "nope"})
        with pytest.raises(SpecError, match="unknown hw_profile"):
            parse_spec({**MINIMAL, "hw_profile": "pentium"})

    def test_unsupported_spec_version(self):
        with pytest.raises(SpecError, match="spec_version"):
            parse_spec({**MINIMAL, "spec_version": SPEC_VERSION + 1})

    def test_non_dict_rejected(self):
        with pytest.raises(SpecError, match="table/object"):
            parse_spec(["not", "a", "table"])

    def test_build_matches_one_shot_config(self):
        """A spec adds no semantics: build() == the preset factory call."""
        from repro.exps import build_experiment
        from repro.hw.profiles import resolve_profile

        spec = parse_spec(
            {
                "name": "b",
                "experiment": "mpart",
                "refined": True,
                "programs": 4,
                "tests": 6,
                "seed": 9,
            }
        )
        config = spec.build()
        reference = build_experiment(
            "mpart",
            refined=True,
            num_programs=4,
            tests_per_program=6,
            seed=9,
            core=resolve_profile("cortex-a53"),
        )
        assert config.name == reference.name
        assert config.seed == reference.seed
        assert config.num_programs == reference.num_programs
        assert config.tests_per_program == reference.tests_per_program

    def test_build_applies_switches(self):
        spec = parse_spec({**MINIMAL, "triage": True, "monitor": False})
        config = spec.build()
        assert config.triage
        assert not config.monitor


class TestFileLoading:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(
            '# comment\nname = "file-spec"\nexperiment = "mct-b"\n'
            "refined = true\nprograms = 2\n"
        )
        spec = load_spec(str(path))
        assert spec.name == "file-spec"
        assert spec.refined
        assert spec.programs == 2

    def test_load_json(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({**MINIMAL, "seed": 3}))
        assert load_spec(str(path)).seed == 3

    def test_bad_extension(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("name: t")
        with pytest.raises(SpecError, match="unsupported spec extension"):
            load_spec(str(path))

    def test_missing_file(self):
        with pytest.raises(SpecError, match="cannot read spec"):
            load_spec("/does/not/exist.toml")

    def test_flat_toml_fallback_parser(self):
        """The 3.9/3.10 fallback must agree with tomllib on flat specs."""
        doc = _parse_flat_toml(
            "x.toml",
            b'name = "f"\nexperiment = "timing"\nrefined = false\n'
            b"programs = 7\nshard_timeout = 2.5\n# trailing comment\n",
        )
        assert doc == {
            "name": "f",
            "experiment": "timing",
            "refined": False,
            "programs": 7,
            "shard_timeout": 2.5,
        }

    def test_flat_toml_rejects_garbage(self):
        with pytest.raises(SpecError, match="expected 'key = value'"):
            _parse_flat_toml("x.toml", b"just words\n")
        with pytest.raises(SpecError, match="unsupported value"):
            _parse_flat_toml("x.toml", b"key = [1, 2]\n")


class TestCorpus:
    def _write(self, tmp_path, filename, name):
        (tmp_path / filename).write_text(
            f'name = "{name}"\nexperiment = "timing"\nprograms = 2\n'
        )

    def test_sorted_order(self, tmp_path):
        self._write(tmp_path, "b.toml", "second")
        self._write(tmp_path, "a.toml", "first")
        specs = load_corpus(str(tmp_path))
        assert [s.name for s in specs] == ["first", "second"]

    def test_duplicate_names_rejected(self, tmp_path):
        self._write(tmp_path, "a.toml", "dup")
        self._write(tmp_path, "b.toml", "dup")
        with pytest.raises(SpecError, match="duplicate scenario name"):
            load_corpus(str(tmp_path))

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="holds no"):
            load_corpus(str(tmp_path))

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="no such scenario directory"):
            load_corpus(str(tmp_path / "nope"))


class TestCheckedInCorpus:
    """The shipped ``scenarios/`` corpus must satisfy its own contract."""

    def test_corpus_is_valid_and_broad(self, repo_scenarios):
        specs = load_corpus(repo_scenarios)
        assert len(specs) >= 10
        assert len({s.hw_profile for s in specs}) >= 2
        assert len({s.experiment for s in specs}) >= 3

    def test_every_spec_builds(self, repo_scenarios):
        for spec in load_corpus(repo_scenarios):
            config = spec.build()
            assert config.num_programs == spec.programs


@pytest.fixture
def repo_scenarios():
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..", "scenarios")
    if not os.path.isdir(path):
        pytest.skip("scenarios/ corpus not present")
    return path
