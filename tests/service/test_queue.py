"""Unit tests for the SQLite-backed job queue."""

import threading

import pytest

from repro.errors import ServiceError, SpecError
from repro.service.queue import (
    ACTIVE_STATES,
    JOB_STATES,
    QUEUE_SCHEMA_VERSION,
    JobQueue,
)

SPEC = {"name": "q", "experiment": "timing", "programs": 2, "tests": 2}


@pytest.fixture
def queue():
    with JobQueue(":memory:") as q:
        yield q


class TestSubmit:
    def test_submit_validates(self, queue):
        with pytest.raises(SpecError, match="unknown key"):
            queue.submit({**SPEC, "typo": 1})
        assert queue.jobs() == []

    def test_submit_defaults_to_spec_priority(self, queue):
        job = queue.submit({**SPEC, "priority": 7})
        assert job.priority == 7
        assert job.state == "queued"
        assert job.attempts == 0

    def test_submit_priority_override(self, queue):
        job = queue.submit({**SPEC, "priority": 7}, priority=-1)
        assert job.priority == -1

    def test_counts_include_every_state(self, queue):
        queue.submit(SPEC)
        counts = queue.counts()
        assert set(counts) == set(JOB_STATES)
        assert counts["queued"] == 1
        assert counts["done"] == 0


class TestStateMachine:
    def test_claim_order_priority_then_fifo(self, queue):
        low = queue.submit({**SPEC, "name": "low"})
        high = queue.submit({**SPEC, "name": "high", "priority": 5})
        low2 = queue.submit({**SPEC, "name": "low2"})
        order = [queue.claim("w").id for _ in range(3)]
        assert order == [high.id, low.id, low2.id]
        assert queue.claim("w") is None

    def test_claim_marks_running(self, queue):
        queue.submit(SPEC)
        job = queue.claim("worker-1")
        assert job.state == "running"
        assert job.attempts == 1
        assert job.worker == "worker-1"
        assert job.started_at is not None

    def test_finish_requires_running(self, queue):
        job = queue.submit(SPEC)
        assert not queue.finish(job.id, {"ok": True})
        claimed = queue.claim("w")
        assert queue.finish(claimed.id, {"ok": True})
        refreshed = queue.job(job.id)
        assert refreshed.state == "done"
        assert refreshed.result == {"ok": True}
        # a second finish is a no-op
        assert not queue.finish(job.id, {"ok": False})

    def test_fail_records_error(self, queue):
        job = queue.submit(SPEC)
        queue.claim("w")
        assert queue.fail(job.id, "boom")
        refreshed = queue.job(job.id)
        assert refreshed.state == "failed"
        assert refreshed.error == "boom"

    def test_cancel_queued(self, queue):
        job = queue.submit(SPEC)
        cancelled = queue.cancel(job.id)
        assert cancelled.state == "cancelled"
        assert queue.claim("w") is None

    def test_cancel_running_beats_finish(self, queue):
        """A job cancelled mid-run must stay cancelled when the
        orchestrator later tries to mark it done."""
        job = queue.submit(SPEC)
        queue.claim("w")
        assert queue.cancel(job.id).state == "cancelled"
        assert not queue.finish(job.id, {"ok": True})
        assert queue.job(job.id).state == "cancelled"

    def test_cancel_finished_is_noop(self, queue):
        job = queue.submit(SPEC)
        queue.claim("w")
        queue.finish(job.id, {})
        assert queue.cancel(job.id).state == "done"

    def test_cancel_unknown_returns_none(self, queue):
        assert queue.cancel(999) is None

    def test_jobs_filter_validates_state(self, queue):
        with pytest.raises(ServiceError, match="unknown job state"):
            queue.jobs("exploded")


class TestRequeue:
    def test_requeue_preserves_attempts_and_checkpoint(self, queue):
        job = queue.submit(SPEC)
        queue.claim("w")
        queue.set_paths(job.id, checkpoint_path="/tmp/c.jsonl")
        assert queue.requeue(job.id, "shutdown")
        refreshed = queue.job(job.id)
        assert refreshed.state == "queued"
        assert refreshed.attempts == 1
        assert refreshed.checkpoint_path == "/tmp/c.jsonl"
        assert refreshed.worker is None
        # the second claim resumes (attempt counter keeps growing)
        assert queue.claim("w2").attempts == 2

    def test_requeue_running_sweep(self, queue):
        a = queue.submit({**SPEC, "name": "a"})
        b = queue.submit({**SPEC, "name": "b"})
        queue.claim("w")
        queue.claim("w")
        assert queue.requeue_running("crash recovery") == 2
        assert {j.state for j in queue.jobs()} == {"queued"}
        assert queue.requeue_running() == 0

    def test_requeue_requires_running(self, queue):
        job = queue.submit(SPEC)
        assert not queue.requeue(job.id)


class TestPersistence:
    def test_crash_recovery_across_instances(self, tmp_path):
        """A second JobQueue on the same file sees the first one's jobs
        and can requeue what a dead orchestrator left running."""
        path = str(tmp_path / "q.sqlite")
        with JobQueue(path) as first:
            job = first.submit(SPEC)
            first.claim("dead-worker")
        with JobQueue(path) as second:
            assert second.job(job.id).state == "running"
            assert second.requeue_running("startup recovery") == 1
            resumed = second.claim("live-worker")
            assert resumed.id == job.id
            assert resumed.attempts == 2

    def test_concurrent_claims_never_collide(self, tmp_path):
        path = str(tmp_path / "q.sqlite")
        with JobQueue(path) as q:
            for i in range(8):
                q.submit({**SPEC, "name": f"job-{i}"})
        claimed = []
        lock = threading.Lock()

        def worker(name):
            with JobQueue(path) as mine:
                while True:
                    job = mine.claim(name)
                    if job is None:
                        return
                    with lock:
                        claimed.append(job.id)
                    mine.finish(job.id, {})

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == list(range(1, 9))
        assert len(set(claimed)) == 8

    def test_newer_schema_rejected(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "q.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {QUEUE_SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(ServiceError, match="schema version"):
            JobQueue(path)


class TestConstants:
    def test_active_states_are_states(self):
        assert set(ACTIVE_STATES) <= set(JOB_STATES)
