"""Unit tests for counterexample certification and analysis."""

import pytest

from repro.exps import mct_campaign, mpart_campaign, tlb_campaign
from repro.hw.platform import StateInputs
from repro.pipeline import ScamV
from repro.pipeline.analysis import (
    CertificationReport,
    CounterexampleAnalysis,
    certify_campaign,
    diff_states,
)


class TestDiffStates:
    def test_register_difference(self):
        a = StateInputs(regs={"x0": 1, "x1": 2})
        b = StateInputs(regs={"x0": 1, "x1": 3})
        diff = diff_states(a, b)
        assert diff.registers == ("x1",)
        assert diff.memory_cells == ()

    def test_memory_difference(self):
        a = StateInputs(memory={8: 1})
        b = StateInputs(memory={8: 2, 16: 0})
        diff = diff_states(a, b)
        assert diff.memory_cells == (8,)

    def test_missing_entries_treated_as_zero(self):
        a = StateInputs(regs={"x0": 0})
        b = StateInputs()
        assert diff_states(a, b).registers == ()

    def test_identical_states(self):
        a = StateInputs(regs={"x0": 1}, memory={8: 2})
        diff = diff_states(a, a)
        assert diff.registers == () and diff.memory_cells == ()


class TestCertification:
    def test_mct_campaign_counterexamples_certify(self):
        cfg = mct_campaign(
            "A", refined=True, num_programs=3, tests_per_program=8, seed=81
        )
        result = ScamV(cfg).run()
        report = certify_campaign(result, cfg.model)
        assert report.total == result.stats.counterexamples
        assert report.all_certified
        assert "certified" in report.describe()

    def test_mpart_campaign_counterexamples_certify(self):
        cfg = mpart_campaign(
            refined=True,
            num_programs=6,
            tests_per_program=15,
            seed=82,
            noise_rate=0.0,
        )
        result = ScamV(cfg).run()
        report = certify_campaign(result, cfg.model)
        assert report.all_certified

    def test_empty_report(self):
        report = CertificationReport()
        assert report.all_certified
        assert "no counterexamples" in report.describe()


class TestAnalysis:
    def test_aggregation(self):
        cfg = tlb_campaign(
            refined=True, num_programs=3, tests_per_program=8, seed=83
        )
        result = ScamV(cfg).run()
        analysis = CounterexampleAnalysis.of(result)
        assert analysis.total == result.stats.counterexamples
        assert sum(analysis.by_program.values()) == analysis.total
        assert analysis.by_template["stride"] == analysis.total
        assert "counterexamples" in analysis.describe()

    def test_memory_only_detection(self):
        cfg = mct_campaign(
            "A", refined=True, num_programs=4, tests_per_program=10, seed=84
        )
        result = ScamV(cfg).run()
        analysis = CounterexampleAnalysis.of(result)
        # Some Template A counterexamples differ only in mem[x0+x1] — the
        # signature SiSCLoak pattern.
        assert analysis.memory_only >= 0
        assert analysis.total > 0

    def test_empty_analysis(self):
        from repro.pipeline.driver import CampaignResult
        from repro.pipeline.metrics import CampaignStats

        empty = CampaignResult(stats=CampaignStats(name="x"))
        assert CounterexampleAnalysis.of(empty).describe() == "no counterexamples"
