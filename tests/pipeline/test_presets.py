"""Unit tests for the experiment presets (repro.exps)."""

import pytest

from repro.core.coverage import MagnitudeCoverage, MlineCoverage, NoCoverage
from repro.exps import (
    ATTACKER_SETS_PAGE_ALIGNED,
    ATTACKER_SETS_UNALIGNED,
    REGION_PAGE_ALIGNED,
    REGION_UNALIGNED,
    mct_campaign,
    mpart_campaign,
    mspec1_campaign,
    straightline_campaign,
    timing_campaign,
    tlb_campaign,
)
from repro.hw.platform import Channel
from repro.obs.models import (
    MctModel,
    MlineModel,
    MpartModel,
    MpartRefinedModel,
    MpcModel,
    MspecModel,
    MspecOneLoadModel,
    MspecStraightLineModel,
)
from repro.obs.channels import MpageRefinedModel, MtimeRefinedModel


class TestRegions:
    def test_unaligned_region_matches_paper(self):
        # §6.2: AR(v) := 61 <= line(v) <= 127
        assert REGION_UNALIGNED.lo_set == 61
        assert REGION_UNALIGNED.hi_set == 127
        assert ATTACKER_SETS_UNALIGNED == tuple(range(61, 128))

    def test_page_aligned_region_matches_paper(self):
        # §6.2: AR(v) := 64 <= line(v) <= 127 (one 4 KiB page of sets)
        assert REGION_PAGE_ALIGNED.lo_set == 64
        assert ATTACKER_SETS_PAGE_ALIGNED == tuple(range(64, 128))


class TestMpartPresets:
    def test_refined_wiring(self):
        cfg = mpart_campaign(refined=True)
        assert isinstance(cfg.model, MpartRefinedModel)
        assert isinstance(cfg.coverage, MlineCoverage)
        assert cfg.model.has_refinement
        assert cfg.platform.attacker_sets == ATTACKER_SETS_UNALIGNED

    def test_unrefined_wiring(self):
        cfg = mpart_campaign(refined=False)
        assert isinstance(cfg.model, MpartModel)
        assert isinstance(cfg.coverage, NoCoverage)
        assert not cfg.model.has_refinement

    def test_page_aligned_wiring(self):
        cfg = mpart_campaign(refined=True, page_aligned=True)
        assert cfg.model.region == REGION_PAGE_ALIGNED
        assert cfg.platform.attacker_sets == ATTACKER_SETS_PAGE_ALIGNED

    def test_noise_default_matches_paper_rates(self):
        # ~26% inconclusive over 20 measured runs -> ~1.5% per run.
        cfg = mpart_campaign(refined=True)
        assert 0.005 <= cfg.platform.noise_rate <= 0.03


class TestSpeculationPresets:
    @pytest.mark.parametrize("template", ["A", "B", "C"])
    def test_mct_wiring(self, template):
        refined = mct_campaign(template, refined=True)
        assert isinstance(refined.model, MspecModel)
        unrefined = mct_campaign(template, refined=False)
        assert isinstance(unrefined.model, MctModel)
        assert refined.template.name == template

    def test_mspec1_wiring(self):
        cfg = mspec1_campaign("B")
        assert isinstance(cfg.model, MspecOneLoadModel)

    def test_straightline_wiring(self):
        cfg = straightline_campaign()
        assert isinstance(cfg.model, MspecStraightLineModel)
        assert cfg.template.name == "D"
        assert cfg.platform.noise_rate == 0.0

    def test_full_cache_attacker(self):
        assert mct_campaign("A", refined=True).platform.attacker_sets is None


class TestChannelPresets:
    def test_tlb_wiring(self):
        refined = tlb_campaign(refined=True)
        assert isinstance(refined.model, MpageRefinedModel)
        assert refined.platform.channel is Channel.TLB
        unrefined = tlb_campaign(refined=False)
        assert isinstance(unrefined.model, MlineModel)

    def test_timing_wiring(self):
        refined = timing_campaign(refined=True)
        assert isinstance(refined.model, MtimeRefinedModel)
        assert isinstance(refined.coverage, MagnitudeCoverage)
        assert refined.platform.channel is Channel.TIME
        unrefined = timing_campaign(refined=False)
        assert isinstance(unrefined.model, MpcModel)

    def test_scaling_parameters_propagate(self):
        cfg = tlb_campaign(refined=True, num_programs=7, tests_per_program=9, seed=5)
        assert cfg.num_programs == 7
        assert cfg.tests_per_program == 9
        assert cfg.seed == 5
