"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAttack:
    def test_v1(self, capsys):
        assert main(["attack", "v1"]) == 0
        out = capsys.readouterr().out
        assert "SUCCESS" in out

    def test_classify(self, capsys):
        assert main(["attack", "classify"]) == 0
        assert "SUCCESS" in capsys.readouterr().out


class TestValidate:
    def test_runs_and_prints_table(self, capsys):
        code = main(
            [
                "validate",
                "--experiment",
                "mct-a",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Experiments" in out
        assert "Counterexample" in out

    def test_database_output(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        code = main(
            [
                "validate",
                "--experiment",
                "timing",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
                "--db",
                str(db),
            ]
        )
        assert code == 0
        assert db.exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["validate", "--experiment", "nonsense"])


class TestRepair:
    def test_repair_succeeds(self, capsys):
        code = main(
            [
                "repair",
                "--experiment",
                "timing",
                "--programs",
                "2",
                "--tests",
                "4",
            ]
        )
        assert code == 0
        assert "repaired after" in capsys.readouterr().out


class TestTables:
    def test_fig7_small(self, capsys):
        code = main(["fig7", "--programs", "1", "--tests", "2"])
        assert code == 0
        assert "Fig. 7 table" in capsys.readouterr().out

    def test_table1_records_to_database(self, tmp_path, capsys):
        from repro.pipeline import ExperimentDatabase

        db = tmp_path / "t1.sqlite"
        code = main(
            ["table1", "--programs", "1", "--tests", "2", "--db", str(db)]
        )
        assert code == 0
        assert "Table 1" in capsys.readouterr().out
        assert db.exists()
        with ExperimentDatabase(str(db)) as handle:
            # one campaign row per Table 1 column
            rows = handle._conn.execute(
                "SELECT COUNT(*) FROM campaigns"
            ).fetchone()
            assert rows[0] == 8


class TestParallelFlags:
    def test_validate_with_workers(self, capsys):
        code = main(
            [
                "validate",
                "--experiment",
                "mct-a",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "3",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        assert "Experiments" in capsys.readouterr().out

    def test_validate_checkpoint_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "shards.jsonl"
        base = [
            "validate",
            "--experiment",
            "mct-a",
            "--refined",
            "--programs",
            "2",
            "--tests",
            "2",
            "--checkpoint",
            str(journal),
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        assert main(base + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        # identical result table either way (timings differ; counters drive
        # the counterexample row)
        assert (
            [l for l in first.splitlines() if "Counterexample" in l]
            == [l for l in resumed.splitlines() if "Counterexample" in l]
        )


class TestHwProfileFlags:
    def test_list_hw_profiles_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["validate", "--list-hw-profiles"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "cortex-a53" in out
        assert "out-of-order" in out

    def test_list_hw_profiles_sorted_with_summaries(self, capsys):
        from repro.hw.profiles import profile_summaries

        with pytest.raises(SystemExit):
            main(["validate", "--list-hw-profiles"])
        lines = capsys.readouterr().out.strip().splitlines()
        listed = [line.split()[0] for line in lines]
        assert listed == sorted(listed)
        summaries = dict(profile_summaries())
        for line in lines:
            name = line.split()[0]
            # each row carries the profile's one-line docstring summary
            assert summaries[name] in line

    def test_validate_with_hw_profile(self, capsys):
        code = main(
            [
                "validate",
                "--experiment",
                "timing",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
                "--hw-profile",
                "cortex-m0",
            ]
        )
        assert code == 0
        # the M0-class core multiplies in constant time: no counterexamples
        assert "Experiments" in capsys.readouterr().out

    def test_unknown_hw_profile_exits_listing_names(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "validate",
                    "--experiment",
                    "timing",
                    "--programs",
                    "2",
                    "--tests",
                    "2",
                    "--hw-profile",
                    "z80",
                ]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown hardware profile 'z80'" in err
        assert "cortex-a53" in err and "out-of-order" in err


class TestSweep:
    SWEEP_ARGS = [
        "sweep",
        "--experiment",
        "mct-a",
        "--axes",
        "spec_window=0,8",
        "--programs",
        "4",
        "--tests",
        "4",
        "--seed",
        "1",
        "--no-monitor",
        "--workers",
        "2",
    ]

    def test_sweep_prints_differential_table(self, capsys):
        assert main(list(self.SWEEP_ARGS)) == 0
        captured = capsys.readouterr()
        assert "sweep: mct-a on 2 config(s): w0, w8" in captured.err
        assert "[config 1/2 w0] " in captured.err
        assert "[config 2/2 w8] " in captured.err
        assert "sound on 1/2 configs, counterexample on w8" in captured.out

    def test_sweep_writes_report_and_artifacts(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        artifacts = tmp_path / "artifacts"
        code = main(
            self.SWEEP_ARGS
            + ["--report", str(report), "--artifacts", str(artifacts)]
        )
        assert code == 0
        import json

        from repro.matrix import validate_report

        doc = json.loads(report.read_text())
        validate_report(doc)
        assert doc["grid_size"] == 2
        assert (artifacts / "sweep_report.json").read_bytes() == (
            report.read_bytes()
        )
        for index, name in ((1, "w0"), (2, "w8")):
            assert (
                artifacts / f"config-{index:02d}-{name}" / "result.json"
            ).exists()

    def test_list_axes_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--list-axes"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for axis in ("replacement", "prefetcher", "spec_window", "l2"):
            assert axis in out

    def test_bad_axis_spec_exits_2(self, capsys):
        code = main(
            ["sweep", "--experiment", "mct-a", "--axes", "replacement=mru"]
        )
        assert code == 2
        assert "known: lru, plru, random" in capsys.readouterr().err

    def test_unknown_base_profile_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "sweep",
                    "--experiment",
                    "mct-a",
                    "--axes",
                    "spec_window=0,8",
                    "--hw-profile",
                    "z80",
                ]
            )
        assert exc.value.code == 2
        assert "unknown hardware profile" in capsys.readouterr().err


class TestRunAll:
    def _write_spec(self, path, name, experiment="timing", extra=""):
        path.write_text(
            f'name = "{name}"\nexperiment = "{experiment}"\n'
            f"refined = true\nprograms = 2\ntests = 3\nseed = 1\n{extra}"
        )

    def test_run_all_directory(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        self._write_spec(specs / "a.toml", "cli-a")
        self._write_spec(specs / "b.toml", "cli-b", experiment="mpart")
        code = main(
            [
                "run-all",
                str(specs),
                "--workers",
                "2",
                "--artifact-root",
                str(tmp_path / "artifacts"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "2/2 scenario(s) done" in captured.err
        assert "run-all" in captured.out
        assert (tmp_path / "artifacts" / "job-0001-cli-a").is_dir()

    def test_run_all_counts_sweep_scenarios_as_done(self, tmp_path, capsys):
        # Sweep jobs produce a sweep report instead of a CampaignResult;
        # the summary line must still count them as done.
        specs = tmp_path / "specs"
        specs.mkdir()
        self._write_spec(
            specs / "s.toml",
            "cli-sweep",
            experiment="mct-a",
            extra='hw_matrix = "spec_window=[0,8]"\n',
        )
        code = main(
            [
                "run-all",
                str(specs),
                "--artifact-root",
                str(tmp_path / "artifacts"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "1/1 scenario(s) done" in captured.err

    def test_run_all_missing_directory(self, tmp_path, capsys):
        assert main(["run-all", str(tmp_path / "nope")]) == 2
        assert "no such scenario" in capsys.readouterr().err

    def test_run_all_invalid_corpus(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "bad.toml").write_text('name = "x"\n')  # no experiment
        assert main(["run-all", str(specs)]) == 2
        assert "invalid" in capsys.readouterr().err


class TestServiceVerbs:
    """submit/status/results/cancel against an in-process daemon."""

    @pytest.fixture
    def daemon_url(self, tmp_path):
        import io

        from repro.service import OrchestratorConfig, ServiceDaemon

        daemon = ServiceDaemon(
            str(tmp_path / "queue.sqlite"),
            OrchestratorConfig(
                workers=1,
                artifact_root=str(tmp_path / "artifacts"),
                poll_interval=0.05,
            ),
            port=0,
            out=io.StringIO(),
        )
        daemon.start()
        yield daemon.address
        daemon.shutdown()

    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "verb-test"\nexperiment = "timing"\nrefined = true\n'
            "programs = 2\ntests = 3\nseed = 1\n"
        )
        return str(path)

    def test_submit_wait_status_results_cancel(
        self, daemon_url, spec_file, tmp_path, capsys
    ):
        code = main(
            ["submit", spec_file, "--url", daemon_url, "--wait",
             "--timeout", "60"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verb-test" in out
        assert "[done]" in out

        assert main(["status", "--url", daemon_url]) == 0
        out = capsys.readouterr().out
        assert "job 1" in out
        assert "queue:" in out

        assert main(["status", "1", "--url", daemon_url]) == 0
        assert "[done]" in capsys.readouterr().out

        result_path = tmp_path / "result.json"
        code = main(
            ["results", "1", "--url", daemon_url,
             "--output", str(result_path)]
        )
        assert code == 0
        import json

        doc = json.loads(result_path.read_text())
        assert doc["scenario"] == "verb-test"

        # cancel a finished job: state is preserved (no-op)
        assert main(["cancel", "1", "--url", daemon_url]) == 0
        assert "[done]" in capsys.readouterr().out

    def test_submit_invalid_spec(self, daemon_url, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('name = "x"\nexperimnt = "timing"\n')
        assert main(["submit", str(bad), "--url", daemon_url]) == 2
        assert "invalid" in capsys.readouterr().err

    def test_unreachable_service(self, spec_file, capsys):
        code = main(
            ["submit", spec_file, "--url", "http://127.0.0.1:9"]
        )
        assert code == 1
        assert "cannot reach service" in capsys.readouterr().err

    def test_results_unknown_job(self, daemon_url, capsys):
        assert main(["results", "99", "--url", daemon_url]) == 1
        assert "no such job" in capsys.readouterr().err
