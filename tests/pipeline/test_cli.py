"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAttack:
    def test_v1(self, capsys):
        assert main(["attack", "v1"]) == 0
        out = capsys.readouterr().out
        assert "SUCCESS" in out

    def test_classify(self, capsys):
        assert main(["attack", "classify"]) == 0
        assert "SUCCESS" in capsys.readouterr().out


class TestValidate:
    def test_runs_and_prints_table(self, capsys):
        code = main(
            [
                "validate",
                "--experiment",
                "mct-a",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Experiments" in out
        assert "Counterexample" in out

    def test_database_output(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        code = main(
            [
                "validate",
                "--experiment",
                "timing",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
                "--db",
                str(db),
            ]
        )
        assert code == 0
        assert db.exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["validate", "--experiment", "nonsense"])


class TestRepair:
    def test_repair_succeeds(self, capsys):
        code = main(
            [
                "repair",
                "--experiment",
                "timing",
                "--programs",
                "2",
                "--tests",
                "4",
            ]
        )
        assert code == 0
        assert "repaired after" in capsys.readouterr().out


class TestTables:
    def test_fig7_small(self, capsys):
        code = main(["fig7", "--programs", "1", "--tests", "2"])
        assert code == 0
        assert "Fig. 7 table" in capsys.readouterr().out

    def test_table1_records_to_database(self, tmp_path, capsys):
        from repro.pipeline import ExperimentDatabase

        db = tmp_path / "t1.sqlite"
        code = main(
            ["table1", "--programs", "1", "--tests", "2", "--db", str(db)]
        )
        assert code == 0
        assert "Table 1" in capsys.readouterr().out
        assert db.exists()
        with ExperimentDatabase(str(db)) as handle:
            # one campaign row per Table 1 column
            rows = handle._conn.execute(
                "SELECT COUNT(*) FROM campaigns"
            ).fetchone()
            assert rows[0] == 8


class TestParallelFlags:
    def test_validate_with_workers(self, capsys):
        code = main(
            [
                "validate",
                "--experiment",
                "mct-a",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "3",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        assert "Experiments" in capsys.readouterr().out

    def test_validate_checkpoint_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "shards.jsonl"
        base = [
            "validate",
            "--experiment",
            "mct-a",
            "--refined",
            "--programs",
            "2",
            "--tests",
            "2",
            "--checkpoint",
            str(journal),
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        assert main(base + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        # identical result table either way (timings differ; counters drive
        # the counterexample row)
        assert (
            [l for l in first.splitlines() if "Counterexample" in l]
            == [l for l in resumed.splitlines() if "Counterexample" in l]
        )


class TestHwProfileFlags:
    def test_list_hw_profiles_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["validate", "--list-hw-profiles"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "cortex-a53" in out
        assert "out-of-order" in out

    def test_validate_with_hw_profile(self, capsys):
        code = main(
            [
                "validate",
                "--experiment",
                "timing",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
                "--hw-profile",
                "cortex-m0",
            ]
        )
        assert code == 0
        # the M0-class core multiplies in constant time: no counterexamples
        assert "Experiments" in capsys.readouterr().out

    def test_unknown_hw_profile_raises(self):
        from repro.errors import HardwareError

        with pytest.raises(HardwareError, match="unknown hardware profile"):
            main(
                [
                    "validate",
                    "--experiment",
                    "timing",
                    "--programs",
                    "2",
                    "--tests",
                    "2",
                    "--hw-profile",
                    "z80",
                ]
            )


class TestRunAll:
    def _write_spec(self, path, name, experiment="timing", extra=""):
        path.write_text(
            f'name = "{name}"\nexperiment = "{experiment}"\n'
            f"refined = true\nprograms = 2\ntests = 3\nseed = 1\n{extra}"
        )

    def test_run_all_directory(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        self._write_spec(specs / "a.toml", "cli-a")
        self._write_spec(specs / "b.toml", "cli-b", experiment="mpart")
        code = main(
            [
                "run-all",
                str(specs),
                "--workers",
                "2",
                "--artifact-root",
                str(tmp_path / "artifacts"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "2/2 scenario(s) done" in captured.err
        assert "run-all" in captured.out
        assert (tmp_path / "artifacts" / "job-0001-cli-a").is_dir()

    def test_run_all_missing_directory(self, tmp_path, capsys):
        assert main(["run-all", str(tmp_path / "nope")]) == 2
        assert "no such scenario" in capsys.readouterr().err

    def test_run_all_invalid_corpus(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "bad.toml").write_text('name = "x"\n')  # no experiment
        assert main(["run-all", str(specs)]) == 2
        assert "invalid" in capsys.readouterr().err


class TestServiceVerbs:
    """submit/status/results/cancel against an in-process daemon."""

    @pytest.fixture
    def daemon_url(self, tmp_path):
        import io

        from repro.service import OrchestratorConfig, ServiceDaemon

        daemon = ServiceDaemon(
            str(tmp_path / "queue.sqlite"),
            OrchestratorConfig(
                workers=1,
                artifact_root=str(tmp_path / "artifacts"),
                poll_interval=0.05,
            ),
            port=0,
            out=io.StringIO(),
        )
        daemon.start()
        yield daemon.address
        daemon.shutdown()

    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "verb-test"\nexperiment = "timing"\nrefined = true\n'
            "programs = 2\ntests = 3\nseed = 1\n"
        )
        return str(path)

    def test_submit_wait_status_results_cancel(
        self, daemon_url, spec_file, tmp_path, capsys
    ):
        code = main(
            ["submit", spec_file, "--url", daemon_url, "--wait",
             "--timeout", "60"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verb-test" in out
        assert "[done]" in out

        assert main(["status", "--url", daemon_url]) == 0
        out = capsys.readouterr().out
        assert "job 1" in out
        assert "queue:" in out

        assert main(["status", "1", "--url", daemon_url]) == 0
        assert "[done]" in capsys.readouterr().out

        result_path = tmp_path / "result.json"
        code = main(
            ["results", "1", "--url", daemon_url,
             "--output", str(result_path)]
        )
        assert code == 0
        import json

        doc = json.loads(result_path.read_text())
        assert doc["scenario"] == "verb-test"

        # cancel a finished job: state is preserved (no-op)
        assert main(["cancel", "1", "--url", daemon_url]) == 0
        assert "[done]" in capsys.readouterr().out

    def test_submit_invalid_spec(self, daemon_url, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('name = "x"\nexperimnt = "timing"\n')
        assert main(["submit", str(bad), "--url", daemon_url]) == 2
        assert "invalid" in capsys.readouterr().err

    def test_unreachable_service(self, spec_file, capsys):
        code = main(
            ["submit", spec_file, "--url", "http://127.0.0.1:9"]
        )
        assert code == 1
        assert "cannot reach service" in capsys.readouterr().err

    def test_results_unknown_job(self, daemon_url, capsys):
        assert main(["results", "99", "--url", daemon_url]) == 1
        assert "no such job" in capsys.readouterr().err
