"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAttack:
    def test_v1(self, capsys):
        assert main(["attack", "v1"]) == 0
        out = capsys.readouterr().out
        assert "SUCCESS" in out

    def test_classify(self, capsys):
        assert main(["attack", "classify"]) == 0
        assert "SUCCESS" in capsys.readouterr().out


class TestValidate:
    def test_runs_and_prints_table(self, capsys):
        code = main(
            [
                "validate",
                "--experiment",
                "mct-a",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Experiments" in out
        assert "Counterexample" in out

    def test_database_output(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        code = main(
            [
                "validate",
                "--experiment",
                "timing",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
                "--db",
                str(db),
            ]
        )
        assert code == 0
        assert db.exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["validate", "--experiment", "nonsense"])


class TestRepair:
    def test_repair_succeeds(self, capsys):
        code = main(
            [
                "repair",
                "--experiment",
                "timing",
                "--programs",
                "2",
                "--tests",
                "4",
            ]
        )
        assert code == 0
        assert "repaired after" in capsys.readouterr().out


class TestTables:
    def test_fig7_small(self, capsys):
        code = main(["fig7", "--programs", "1", "--tests", "2"])
        assert code == 0
        assert "Fig. 7 table" in capsys.readouterr().out

    def test_table1_records_to_database(self, tmp_path, capsys):
        from repro.pipeline import ExperimentDatabase

        db = tmp_path / "t1.sqlite"
        code = main(
            ["table1", "--programs", "1", "--tests", "2", "--db", str(db)]
        )
        assert code == 0
        assert "Table 1" in capsys.readouterr().out
        assert db.exists()
        with ExperimentDatabase(str(db)) as handle:
            # one campaign row per Table 1 column
            rows = handle._conn.execute(
                "SELECT COUNT(*) FROM campaigns"
            ).fetchone()
            assert rows[0] == 8


class TestParallelFlags:
    def test_validate_with_workers(self, capsys):
        code = main(
            [
                "validate",
                "--experiment",
                "mct-a",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "3",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        assert "Experiments" in capsys.readouterr().out

    def test_validate_checkpoint_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "shards.jsonl"
        base = [
            "validate",
            "--experiment",
            "mct-a",
            "--refined",
            "--programs",
            "2",
            "--tests",
            "2",
            "--checkpoint",
            str(journal),
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        assert main(base + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        # identical result table either way (timings differ; counters drive
        # the counterexample row)
        assert (
            [l for l in first.splitlines() if "Counterexample" in l]
            == [l for l in resumed.splitlines() if "Counterexample" in l]
        )
