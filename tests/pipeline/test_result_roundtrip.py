"""Lossless JSON round-tripping of experiment records, and deterministic
counterexample ordering on campaign results."""

from __future__ import annotations

import json

from repro.core.testgen import TestCase
from repro.hw.platform import ExperimentOutcome, StateInputs
from repro.isa.assembler import assemble, disassemble
from repro.pipeline.metrics import CampaignStats
from repro.pipeline.result import (
    CampaignResult,
    ExperimentRecord,
    state_from_json,
    state_to_json,
)

PROGRAM = """
    ldr x2, [x0, x1]
    cmp x1, x4
    b.hs end
    ldr x6, [x5, x2]
end:
    ret
"""


def _record(program_index=3, outcome=ExperimentOutcome.COUNTEREXAMPLE):
    program = assemble(PROGRAM, name="roundtrip-p")
    test = TestCase(
        program=program,
        state1=StateInputs(regs={"x0": 0x80000, "x1": 7}, memory={64: 1}),
        state2=StateInputs(regs={"x0": 0x80000, "x1": 9}, memory={64: 2}),
        train=StateInputs(regs={"x0": 0x1000}, memory={}),
        pair=(0, 1),
        refined=True,
    )
    return ExperimentRecord(
        program_name="roundtrip-p",
        template="A",
        outcome=outcome,
        test=test,
        gen_time=0.25,
        exe_time=0.125,
        program_index=program_index,
    )


class TestStateJson:
    def test_roundtrip(self):
        state = StateInputs(regs={"x3": 42}, memory={0x80000: 0xFF})
        doc = json.loads(json.dumps(state_to_json(state)))
        assert state_from_json(doc) == state

    def test_none_passes_through(self):
        assert state_to_json(None) is None
        assert state_from_json(None) is None

    def test_memory_keys_survive_json(self):
        # JSON object keys are strings; the loader restores integers.
        state = StateInputs(regs={}, memory={12345: 1})
        restored = state_from_json(state_to_json(state))
        assert restored.memory == {12345: 1}


class TestExperimentRecordJson:
    def test_lossless_roundtrip(self):
        record = _record()
        doc = json.loads(json.dumps(record.to_json()))
        rebuilt = ExperimentRecord.from_json(doc)
        assert rebuilt.program_name == record.program_name
        assert rebuilt.template == record.template
        assert rebuilt.outcome is record.outcome
        assert rebuilt.gen_time == record.gen_time
        assert rebuilt.exe_time == record.exe_time
        assert rebuilt.program_index == record.program_index
        assert rebuilt.test.state1 == record.test.state1
        assert rebuilt.test.state2 == record.test.state2
        assert rebuilt.test.train == record.test.train
        assert rebuilt.test.pair == record.test.pair
        assert rebuilt.test.refined == record.test.refined
        assert disassemble(rebuilt.test.program) == disassemble(
            record.test.program
        )
        # Labels survive the disassemble/assemble cycle.
        assert rebuilt.test.program.labels == record.test.program.labels

    def test_roundtrip_is_stable(self):
        doc = _record().to_json()
        assert ExperimentRecord.from_json(doc).to_json() == doc

    def test_from_json_with_shared_program(self):
        record = _record()
        shared = assemble(PROGRAM, name="roundtrip-p")
        rebuilt = ExperimentRecord.from_json(
            record.to_json(), program=shared
        )
        assert rebuilt.test.program is shared

    def test_none_train_roundtrips(self):
        record = _record()
        record.test.train = None
        rebuilt = ExperimentRecord.from_json(record.to_json())
        assert rebuilt.test.train is None


class TestCounterexampleOrdering:
    def test_ordered_by_program_index(self):
        result = CampaignResult(stats=CampaignStats(name="x"))
        result.records = [
            _record(program_index=5),
            _record(program_index=1, outcome=ExperimentOutcome.PASS),
            _record(program_index=2),
            _record(program_index=0),
        ]
        ordered = result.counterexamples()
        assert [r.program_index for r in ordered] == [0, 2, 5]

    def test_stable_within_a_program(self):
        result = CampaignResult(stats=CampaignStats(name="x"))
        first, second = _record(program_index=1), _record(program_index=1)
        result.records = [first, second]
        assert result.counterexamples() == [first, second]
