"""Unit tests for campaign metrics, the database, and the driver."""

import pytest

from repro.core.testgen import TestGenConfig
from repro.exps import mct_campaign
from repro.gen.templates import StrideTemplate, TemplateA
from repro.hw.platform import PlatformConfig, StateInputs
from repro.obs.base import AttackerRegion
from repro.obs.models import MctModel, MpartRefinedModel, MspecModel
from repro.pipeline.config import CampaignConfig
from repro.pipeline.database import ExperimentDatabase
from repro.pipeline.driver import ScamV
from repro.pipeline.metrics import CampaignStats, format_table, ratio


class TestMetrics:
    def test_averages(self):
        stats = CampaignStats(
            name="x",
            experiments=4,
            generation_attempts=4,
            gen_time_total=2.0,
            exe_time_total=8.0,
        )
        assert stats.avg_gen_time == 0.5
        assert stats.avg_exe_time == 2.0

    def test_avg_gen_time_counts_failed_attempts(self):
        # gen_time_total accumulates time for failed generations too; the
        # divisor is generation attempts, not successful experiments.
        stats = CampaignStats(
            name="x",
            experiments=2,
            generation_attempts=8,
            generation_failures=6,
            gen_time_total=4.0,
        )
        assert stats.avg_gen_time == 0.5

    def test_merge_sums_counters(self):
        a = CampaignStats(
            name="x",
            programs=2,
            experiments=5,
            counterexamples=1,
            generation_attempts=6,
            gen_time_total=1.0,
            time_to_counterexample=3.0,
        )
        b = CampaignStats(
            name="x",
            programs=3,
            experiments=7,
            inconclusive=2,
            generation_attempts=8,
            gen_time_total=2.0,
            time_to_counterexample=1.5,
        )
        merged = a.merge(b)
        assert merged.programs == 5
        assert merged.experiments == 12
        assert merged.counterexamples == 1
        assert merged.inconclusive == 2
        assert merged.generation_attempts == 14
        assert merged.gen_time_total == 3.0
        assert merged.time_to_counterexample == 1.5
        # merging with an empty partial is the identity on counters
        assert (
            CampaignStats(name="x").merge(a).deterministic_counters()
            == a.deterministic_counters()
        )

    def test_zero_experiments_safe(self):
        stats = CampaignStats(name="x")
        assert stats.avg_gen_time == 0.0
        assert stats.counterexample_rate == 0.0

    def test_row_layout_matches_table1(self):
        row = CampaignStats(name="x").as_row()
        assert list(row) == [
            "Programs",
            "Prog. w. Count.",
            "Experiments",
            "- Counterexample",
            "- Inconclusive",
            "- Avg. Gen. time (s)",
            "- Avg. Exe. time (s)",
            "- T.T.C. (s)",
        ]

    def test_ttc_dash_when_absent(self):
        assert CampaignStats(name="x").as_row()["- T.T.C. (s)"] == "-"

    def test_format_table(self):
        a = CampaignStats(name="left", programs=3)
        b = CampaignStats(name="right", programs=5)
        text = format_table([a, b], title="T")
        assert "T" in text
        assert "left" in text and "right" in text
        assert format_table([]) == "(no campaigns)"

    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) is None


class TestDatabase:
    def test_round_trip(self):
        with ExperimentDatabase() as db:
            cid = db.add_campaign("camp", "desc")
            pid = db.add_program(cid, "p0", "A", "ret", {"k": 1})
            s = StateInputs(regs={"x0": 1}, memory={8: 2})
            db.add_experiment(pid, "counterexample", s, s, None, 0.1, 0.2)
            db.add_experiment(pid, "pass", s, s, s, 0.1, 0.2)
            assert db.experiment_count(cid) == 2
            assert db.outcome_counts(cid) == {"counterexample": 1, "pass": 1}
            assert db.programs_with_outcome(cid, "counterexample") == 1
            rows = db.counterexamples(cid)
            assert len(rows) == 1
            assert rows[0][0] == "p0"

    def test_campaign_isolation(self):
        with ExperimentDatabase() as db:
            c1 = db.add_campaign("one")
            c2 = db.add_campaign("two")
            p1 = db.add_program(c1, "p", "A", "ret")
            s = StateInputs()
            db.add_experiment(p1, "pass", s, s, None, 0, 0)
            assert db.experiment_count(c1) == 1
            assert db.experiment_count(c2) == 0

    def test_schema_version_stamped(self, tmp_path):
        from repro.pipeline.database import SCHEMA_VERSION

        path = str(tmp_path / "exp.sqlite")
        with ExperimentDatabase(path) as db:
            assert db.schema_version == SCHEMA_VERSION
        # The pragma survives on disk and reopen keeps it.
        with ExperimentDatabase(path) as db:
            assert db.schema_version == SCHEMA_VERSION

    def test_newer_schema_rejected(self, tmp_path):
        import sqlite3

        from repro.errors import PipelineError
        from repro.pipeline.database import SCHEMA_VERSION

        path = str(tmp_path / "future.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(PipelineError):
            ExperimentDatabase(path)

    def test_outcome_index_exists(self):
        with ExperimentDatabase() as db:
            names = {
                row[0]
                for row in db._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "idx_experiments_outcome" in names
            assert "idx_witnesses_campaign" in names

    def test_counterexamples_ordered_by_insertion(self):
        with ExperimentDatabase() as db:
            cid = db.add_campaign("camp")
            s = StateInputs()
            for name in ("p0", "p1", "p2"):
                pid = db.add_program(cid, name, "A", "ret")
                db.add_experiment(pid, "counterexample", s, s, None, 0, 0)
            assert [row[0] for row in db.counterexamples(cid)] == [
                "p0",
                "p1",
                "p2",
            ]

    def test_witness_round_trip(self):
        with ExperimentDatabase() as db:
            cid = db.add_campaign("camp")
            other = db.add_campaign("other")
            db.add_witness(cid, "w-b", "sig/one", '{"a": 1}')
            db.add_witness(cid, "w-a", "sig/two", '{"b": 2}')
            rows = db.witnesses(cid)
            # ordered by name, scoped to the campaign
            assert [row[0] for row in rows] == ["w-a", "w-b"]
            assert rows[1][1] == "sig/one"
            assert db.witnesses(other) == []


class TestDriver:
    def _config(self, **kwargs):
        defaults = dict(
            name="tiny",
            template=TemplateA(),
            model=MspecModel(),
            num_programs=2,
            tests_per_program=3,
            seed=3,
        )
        defaults.update(kwargs)
        return CampaignConfig(**defaults)

    def test_runs_and_counts(self):
        result = ScamV(self._config()).run()
        stats = result.stats
        assert stats.programs == 2
        assert stats.experiments + stats.generation_failures == 6
        assert len(result.records) == stats.experiments

    def test_counterexamples_accessor(self):
        result = ScamV(self._config()).run()
        assert len(result.counterexamples()) == result.stats.counterexamples

    def test_deterministic_given_seed(self):
        a = ScamV(self._config()).run().stats
        b = ScamV(self._config()).run().stats
        assert a.counterexamples == b.counterexamples
        assert a.experiments == b.experiments

    def test_database_records(self):
        with ExperimentDatabase() as db:
            result = ScamV(self._config(), database=db).run()
            counts = db.outcome_counts(1)
            assert sum(counts.values()) == result.stats.experiments

    def test_progress_callback(self):
        messages = []
        ScamV(self._config()).run(progress=messages.append)
        assert len(messages) == 2
        assert "tiny" in messages[0]

    def test_ttc_set_when_counterexamples_found(self):
        cfg = mct_campaign("A", refined=True, num_programs=2, tests_per_program=5, seed=1)
        stats = ScamV(cfg).run().stats
        if stats.counterexamples:
            assert stats.time_to_counterexample is not None

    def test_describe_mentions_refinement(self):
        assert "refinement=yes" in self._config().describe()
        cfg = self._config(model=MctModel())
        assert "refinement=no" in cfg.describe()
