"""Axis registry and spec-grammar tests."""

import pytest

from repro.errors import MatrixError
from repro.hw.core import CoreConfig
from repro.matrix import AXES, axis_names, format_axis_spec, parse_axis_spec


class TestRegistry:
    def test_names_sorted(self):
        assert axis_names() == sorted(AXES)
        assert set(axis_names()) == {
            "replacement",
            "prefetcher",
            "spec_window",
            "pht_size",
            "forwarding",
            "l2",
        }

    def test_every_axis_applies_to_default_core(self):
        base = CoreConfig()
        samples = {
            "replacement": "plru",
            "prefetcher": "off",
            "spec_window": 32,
            "pht_size": 64,
            "forwarding": True,
            "l2": True,
        }
        for name, value in samples.items():
            core = AXES[name].apply(base, value)
            assert core != base
            assert isinstance(AXES[name].slug(value), str)

    def test_spec_window_zero_allowed(self):
        assert AXES["spec_window"].parse("0") == 0


class TestGrammar:
    def test_bracketed_and_bare_forms_agree(self):
        bracketed = parse_axis_spec(
            "replacement=[lru,plru], prefetcher=[stride,off]"
        )
        bare = parse_axis_spec("replacement=lru,plru prefetcher=stride,off")
        assert bracketed == bare
        assert bracketed == {
            "replacement": ("lru", "plru"),
            "prefetcher": ("stride", "off"),
        }

    def test_separators(self):
        spec = parse_axis_spec("spec_window=[0,8];forwarding=on,off")
        assert spec == {"spec_window": (0, 8), "forwarding": (True, False)}

    def test_single_value_axis(self):
        assert parse_axis_spec("spec_window=8") == {"spec_window": (8,)}

    def test_value_order_preserved(self):
        assert parse_axis_spec("spec_window=32,0,8")["spec_window"] == (
            32,
            0,
            8,
        )

    def test_round_trip_through_format(self):
        spec = parse_axis_spec("prefetcher=stride,off spec_window=8,0")
        assert parse_axis_spec(format_axis_spec(spec)) == spec


class TestGrammarErrors:
    def test_empty_spec(self):
        with pytest.raises(MatrixError, match="empty axis spec"):
            parse_axis_spec("   ")

    def test_unknown_axis_lists_known(self):
        with pytest.raises(MatrixError, match="known: .*replacement"):
            parse_axis_spec("cache_ways=2,4")

    def test_duplicate_axis(self):
        with pytest.raises(MatrixError, match="assigned twice"):
            parse_axis_spec("spec_window=0 spec_window=8")

    def test_bad_choice_value_lists_known(self):
        with pytest.raises(MatrixError, match="known: lru, plru, random"):
            parse_axis_spec("replacement=mru")

    def test_bad_integer(self):
        with pytest.raises(MatrixError, match="not an integer"):
            parse_axis_spec("spec_window=deep")

    def test_negative_window(self):
        with pytest.raises(MatrixError, match=">= 0"):
            parse_axis_spec("spec_window=-4")

    def test_pht_size_must_be_power_of_two(self):
        with pytest.raises(MatrixError, match="power of two"):
            parse_axis_spec("pht_size=100")

    def test_bad_boolean(self):
        with pytest.raises(MatrixError, match="on/off"):
            parse_axis_spec("l2=maybe")

    def test_stray_text_rejected(self):
        with pytest.raises(MatrixError, match="unexpected text"):
            parse_axis_spec("spec_window=8 junk")
        with pytest.raises(MatrixError, match="unexpected text"):
            parse_axis_spec("junk! spec_window=8")

    def test_empty_value_list(self):
        with pytest.raises(MatrixError, match="empty value list"):
            parse_axis_spec("replacement=[]")
