"""Grid expansion: naming, dedup, digests, base-profile handling."""

import pytest

from repro.errors import MatrixError
from repro.hw.core import CoreConfig
from repro.hw.profiles import config_digest, resolve_profile
from repro.matrix import expand_grid, parse_axis_spec


def grid(text, **kwargs):
    return expand_grid(parse_axis_spec(text), **kwargs)


class TestExpansion:
    def test_2x2x2_grid(self):
        points = grid(
            "replacement=lru,plru prefetcher=stride,off spec_window=0,8"
        )
        assert len(points) == 8
        # Axes sort by name (prefetcher < replacement < spec_window) and
        # the last sorted axis varies fastest.
        assert points[0].name == "stride+lru+w0"
        assert points[1].name == "stride+lru+w8"
        assert points[-1].name == "off+plru+w8"

    def test_point_axes_in_sorted_order(self):
        (point,) = grid("spec_window=8 forwarding=on l2=off")
        assert point.name == "fwd+nol2+w8"
        assert point.axes == (
            ("forwarding", "fwd"),
            ("l2", "nol2"),
            ("spec_window", "w8"),
        )
        assert point.axes_doc() == {
            "forwarding": "fwd",
            "l2": "nol2",
            "spec_window": "w8",
        }

    def test_values_applied_to_core(self):
        points = grid("replacement=plru spec_window=32 pht_size=64 l2=on")
        core = points[0].core
        assert core.cache.replacement == "plru"
        assert core.spec_window == 32
        assert core.predictor.entries == 64
        assert core.l2 is not None and core.l2.sets == 512

    def test_unswept_knobs_come_from_base(self):
        base = resolve_profile("cortex-a53")
        (point,) = grid("spec_window=8")
        assert point.core.cache == base.cache
        assert point.core.prefetcher == base.prefetcher

    def test_explicit_base_config(self):
        base = CoreConfig(tlb_miss_latency=99)
        (point,) = grid("prefetcher=off", base=base)
        assert point.core.tlb_miss_latency == 99
        assert point.core.prefetcher.kind == "off"

    def test_base_profile_by_name(self):
        (point,) = grid("spec_window=8", base_profile="cortex-a53-no-prefetch")
        assert not point.core.prefetcher.enabled


class TestDigestsAndDedup:
    def test_digest_matches_config_digest(self):
        for point in grid("replacement=lru,plru"):
            assert point.digest == config_digest(point.core)

    def test_digests_unique_across_grid(self):
        points = grid("replacement=lru,plru,random prefetcher=stride,off")
        digests = [p.digest for p in points]
        assert len(digests) == len(set(digests)) == 6

    def test_duplicate_values_dedup_keep_first(self):
        points = grid("replacement=lru,lru")
        assert len(points) == 1
        assert points[0].name == "lru"

    def test_structurally_identical_combos_dedup(self):
        # A value equal to the base (stride is the A53 default) collapses
        # with any other axis assignment that reproduces the base core.
        points = grid("prefetcher=stride spec_window=8")  # == base config
        base_digest = config_digest(resolve_profile("cortex-a53"))
        assert len(points) == 1
        assert points[0].digest == base_digest


class TestErrors:
    def test_empty_spec_rejected(self):
        with pytest.raises(MatrixError, match="empty"):
            expand_grid({})

    def test_unknown_axis_rejected(self):
        with pytest.raises(MatrixError, match="unknown axis"):
            expand_grid({"warp_drive": (1,)})
