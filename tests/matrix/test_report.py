"""Report document: schema validation, rendering, artifact layout."""

import copy
import hashlib
import io
import json
import os

import pytest

from repro.errors import MatrixError
from repro.matrix import (
    REPORT_VERSION,
    SweepConfig,
    parse_axis_spec,
    render_report,
    report_bytes,
    run_sweep,
    sweep_report_doc,
    validate_report,
    write_sweep_artifacts,
)
from repro.matrix.report import _main
from repro.runner import RunnerConfig


@pytest.fixture(scope="module")
def sweep_result():
    sweep = SweepConfig(
        experiment="mct-a",
        axes=parse_axis_spec("spec_window=0,8"),
        refined=False,
        programs=4,
        tests=4,
        seed=1,
        monitor=False,
        scenario="report-test",
    )
    return run_sweep(sweep, RunnerConfig(workers=2), out=io.StringIO())


@pytest.fixture()
def doc(sweep_result):
    return copy.deepcopy(sweep_report_doc(sweep_result))


class TestDocument:
    def test_valid_and_versioned(self, doc):
        validate_report(doc)
        assert doc["report_version"] == REPORT_VERSION
        assert doc["scenario"] == "report-test"
        assert doc["experiment"] == "mct-a"
        assert doc["grid_size"] == 2
        assert doc["axes"] == {"spec_window": ["0", "8"]}

    def test_config_rows_carry_result_hashes(self, doc, sweep_result):
        hashes = {
            entry["config"]: entry["result_sha256"]
            for entry in doc["configs"]
        }
        for point in sweep_result.points:
            assert hashes[point.point.name] == hashlib.sha256(
                point.document
            ).hexdigest()

    def test_report_bytes_stable(self, doc):
        assert report_bytes(doc) == report_bytes(json.loads(report_bytes(doc)))
        assert report_bytes(doc).endswith(b"\n")

    def test_render_mentions_every_config_and_summary(self, doc):
        text = render_report(doc)
        for entry in doc["configs"]:
            assert entry["config"] in text
        assert doc["verdict"]["summary"] in text
        assert "first divergence" in text


class TestValidation:
    def test_wrong_version(self, doc):
        doc["report_version"] = 99
        with pytest.raises(MatrixError, match="report_version"):
            validate_report(doc)

    def test_missing_top_key(self, doc):
        del doc["verdict"]
        with pytest.raises(MatrixError, match="missing key 'verdict'"):
            validate_report(doc)

    def test_grid_size_mismatch(self, doc):
        doc["grid_size"] = 7
        with pytest.raises(MatrixError, match="grid_size"):
            validate_report(doc)

    def test_sound_config_with_counterexamples(self, doc):
        entry = next(e for e in doc["configs"] if not e["sound"])
        entry["sound"] = True
        with pytest.raises(MatrixError, match="sound config reports"):
            validate_report(doc)

    def test_unsound_config_without_attribution(self, doc):
        entry = next(e for e in doc["configs"] if not e["sound"])
        entry["first_divergence"] = None
        with pytest.raises(MatrixError, match="attribution"):
            validate_report(doc)

    def test_duplicate_config_names(self, doc):
        doc["configs"][1]["config"] = doc["configs"][0]["config"]
        doc["verdict"]["sound_configs"] = [doc["configs"][0]["config"]]
        doc["verdict"]["unsound_configs"] = [doc["configs"][0]["config"]]
        with pytest.raises(MatrixError, match="duplicate config names"):
            validate_report(doc)

    def test_verdict_partition_must_agree(self, doc):
        doc["verdict"]["sound_configs"] = []
        with pytest.raises(MatrixError, match="sound_configs disagree"):
            validate_report(doc)

    def test_non_dict_rejected(self):
        with pytest.raises(MatrixError, match="must be an object"):
            validate_report([])


class TestArtifacts:
    def test_layout_and_payloads(self, sweep_result, tmp_path):
        directory = str(tmp_path / "artifacts")
        artifacts = write_sweep_artifacts(
            sweep_result, directory, dashboard=True
        )
        for point in sweep_result.points:
            path = artifacts[f"result:{point.point.name}"]
            assert os.path.basename(path) == "result.json"
            assert f"config-{point.index:02d}-{point.point.name}" in path
            with open(path, "rb") as handle:
                assert handle.read() == point.document
        with open(artifacts["report"], "rb") as handle:
            assert handle.read() == report_bytes(
                sweep_report_doc(sweep_result)
            )
        with open(artifacts["dashboard"], encoding="utf-8") as handle:
            html = handle.read()
        assert "report-test" in html
        for point in sweep_result.points:
            assert point.point.name in html

    def test_validator_cli(self, sweep_result, tmp_path, capsys):
        directory = str(tmp_path / "artifacts")
        artifacts = write_sweep_artifacts(sweep_result, directory)
        assert _main([artifacts["report"]]) == 0
        out = capsys.readouterr().out
        assert "is valid" in out
        assert "sound on 1/2 configs" in out

    def test_validator_cli_rejects_corrupt_report(
        self, sweep_result, tmp_path, capsys
    ):
        doc = sweep_report_doc(sweep_result)
        doc["grid_size"] = 5
        path = str(tmp_path / "bad.json")
        with open(path, "wb") as handle:
            handle.write(report_bytes(doc))
        assert _main([path]) == 1
        assert "is invalid" in capsys.readouterr().out

    def test_validator_cli_usage_and_missing_file(self, tmp_path, capsys):
        assert _main([]) == 2
        assert _main([str(tmp_path / "absent.json")]) == 1
