"""Sweep runner: determinism, byte-identity, verdicts, resume semantics.

Uses a deliberately tiny budget (mct-a, 4 programs x 4 tests, seed 1) that
is known to produce a differential verdict across ``spec_window=0,8``:
speculation off is sound, speculation on yields a counterexample.
"""

import io
import json

import pytest

from repro.matrix import (
    SweepConfig,
    build_point_campaign,
    grid_for,
    parse_axis_spec,
    run_sweep,
)
from repro.runner import (
    EventLog,
    ParallelRunner,
    RunnerConfig,
    ShardStarted,
    campaign_key,
)


def tiny_sweep(**overrides):
    defaults = dict(
        experiment="mct-a",
        axes=parse_axis_spec("spec_window=0,8"),
        refined=False,
        programs=4,
        tests=4,
        seed=1,
        monitor=False,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


@pytest.fixture(scope="module")
def sweep_result():
    return run_sweep(tiny_sweep(), RunnerConfig(workers=2), out=io.StringIO())


class TestDifferentialVerdict:
    def test_verdict_flips_across_grid(self, sweep_result):
        verdict = sweep_result.verdict
        assert verdict.differential
        assert verdict.sound_configs == ["w0"]
        assert verdict.unsound_configs == ["w8"]
        assert verdict.describe() == (
            "Mct: sound on 1/2 configs, counterexample on w8"
        )

    def test_unsound_point_carries_attribution(self, sweep_result):
        unsound = next(
            p for p in sweep_result.points if not p.verdict.sound
        )
        divergence = unsound.verdict.first_divergence
        assert divergence is not None
        assert divergence["key"]
        assert divergence["description"]
        assert isinstance(divergence["program_index"], int)

    def test_sound_point_has_no_attribution(self, sweep_result):
        sound = next(p for p in sweep_result.points if p.verdict.sound)
        assert sound.verdict.first_divergence is None
        assert sound.verdict.counterexamples == 0

    def test_attribute_false_skips_replay(self):
        result = run_sweep(
            tiny_sweep(),
            RunnerConfig(workers=2),
            out=io.StringIO(),
            attribute=False,
        )
        assert all(
            p.verdict.first_divergence is None for p in result.points
        )
        assert result.verdict.unsound_configs == ["w8"]


class TestByteIdentity:
    def test_documents_invariant_under_worker_count(self, sweep_result):
        other = run_sweep(
            tiny_sweep(), RunnerConfig(workers=1), out=io.StringIO()
        )
        assert [p.document for p in other.points] == [
            p.document for p in sweep_result.points
        ]

    def test_point_document_matches_single_config_run(self, sweep_result):
        # The sweep's per-point result.json must be byte-identical to the
        # document the equivalent single-config campaign produces.
        from repro.service.orchestrator import (
            campaign_document,
            document_bytes,
        )

        sweep = tiny_sweep()
        for point_result in sweep_result.points:
            config = build_point_campaign(sweep, point_result.point)
            single = ParallelRunner(RunnerConfig(workers=1)).run(config)
            payload = document_bytes(
                campaign_document(sweep.scenario_name, config, single)
            )
            assert payload == point_result.document

    def test_documents_parse_and_differ_across_points(self, sweep_result):
        docs = [json.loads(p.document) for p in sweep_result.points]
        assert len({json.dumps(d, sort_keys=True) for d in docs}) == 2
        for doc in docs:
            assert doc["scenario"] == "mct-a"


class TestProgress:
    def test_config_prefixed_progress_lines(self):
        out = io.StringIO()
        run_sweep(tiny_sweep(), RunnerConfig(workers=2), out=out)
        text = out.getvalue()
        assert "[config 1/2 w0] " in text
        assert "[config 2/2 w8] " in text


class TestCheckpointIsolation:
    def test_campaign_keys_embed_hardware_digest(self):
        from repro.hw.profiles import config_digest

        sweep = tiny_sweep()
        points = grid_for(sweep)
        configs = [build_point_campaign(sweep, p) for p in points]
        keys = [campaign_key(c) for c in configs]
        # The key fingerprints the whole platform (core + channel + noise),
        # so two grid points can never share a journal entry.
        assert len(set(keys)) == len(points)
        for config, key in zip(configs, keys):
            assert f"|hw={config_digest(config.platform)}" in key

    def test_resume_refuses_mismatched_hardware_journal(self, tmp_path):
        # A journal recorded under one grid point must not satisfy a
        # resume under different hardware: every shard re-executes.
        sweep = tiny_sweep()
        first, second = grid_for(sweep)
        path = str(tmp_path / "checkpoint.jsonl")
        ParallelRunner(RunnerConfig(checkpoint_path=path)).run(
            build_point_campaign(sweep, first)
        )
        log = EventLog()
        ParallelRunner(
            RunnerConfig(checkpoint_path=path, resume=True), events=log
        ).run(build_point_campaign(sweep, second))
        assert len(log.of_type(ShardStarted)) == sweep.programs

    def test_resume_reuses_matching_hardware_journal(self, tmp_path):
        sweep = tiny_sweep()
        first, _ = grid_for(sweep)
        path = str(tmp_path / "checkpoint.jsonl")
        config = build_point_campaign(sweep, first)
        ParallelRunner(RunnerConfig(checkpoint_path=path)).run(config)
        log = EventLog()
        ParallelRunner(
            RunnerConfig(checkpoint_path=path, resume=True), events=log
        ).run(build_point_campaign(sweep, first))
        assert log.of_type(ShardStarted) == []

    def test_sweep_resume_skips_all_completed_points(self, tmp_path):
        path = str(tmp_path / "checkpoint.jsonl")
        full = run_sweep(
            tiny_sweep(),
            RunnerConfig(workers=2, checkpoint_path=path),
            out=io.StringIO(),
        )
        log = EventLog()

        def events_factory(index, total, point):
            return log

        resumed = run_sweep(
            tiny_sweep(),
            RunnerConfig(workers=2, checkpoint_path=path, resume=True),
            out=io.StringIO(),
            events_factory=events_factory,
        )
        assert log.of_type(ShardStarted) == []
        assert [p.document for p in resumed.points] == [
            p.document for p in full.points
        ]


class TestSweepTelemetry:
    def test_each_grid_point_emits_a_matrix_span(self):
        from repro.telemetry import collect, trace

        collect.enable()
        try:
            result = run_sweep(
                tiny_sweep(), RunnerConfig(workers=1), out=io.StringIO()
            )
            # Inline shards drain the whole trace buffer into their shard
            # payload, so a closed matrix.point span may travel inside the
            # *next* point's result.spans rather than the final drain.
            spans = [
                s for p in result.points for s in p.result.spans
            ] + list(trace.drain())
        finally:
            collect.disable()
        points = [s for s in spans if s.name == "matrix.point"]
        assert sorted(s.attrs["point"] for s in points) == ["w0", "w8"]
        assert all(s.attrs["experiment"] == "mct-a" for s in points)
        assert all(isinstance(s.attrs["sound"], bool) for s in points)
        assert sorted(s.attrs["index"] for s in points) == [1, 2]
