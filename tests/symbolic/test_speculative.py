"""Unit tests for the shadow-state speculative instrumentation (§4.2.2)."""

import pytest

from repro.bir import expr as E
from repro.bir.cfg import ControlFlowGraph
from repro.bir.stmt import Assign, CJmp, Jmp, Store
from repro.errors import RefinementError
from repro.isa.assembler import assemble
from repro.isa.lifter import lift
from repro.symbolic.executor import execute
from repro.symbolic.speculative import (
    SpeculationBounds,
    instrument_speculation,
    is_shadow_name,
    shadow_name,
    unconditional_to_conditional,
)


class TestShadowNaming:
    def test_roundtrip(self):
        assert shadow_name("x5") == "x5_spec"
        assert is_shadow_name("x5_spec")
        assert not is_shadow_name("x5")


class TestInstrumentation:
    def test_edge_blocks_created(self, template_a):
        out = instrument_speculation(lift(template_a))
        assert "i2_spec_t" in out
        assert "i2_spec_f" in out

    def test_branch_rewired_through_edge_blocks(self, template_a):
        out = instrument_speculation(lift(template_a))
        term = out.block("i2").terminator
        assert isinstance(term, CJmp)
        assert term.target_true == "i2_spec_t"
        assert term.target_false == "i2_spec_f"

    def test_taken_edge_shadows_fallthrough_arm(self, template_a):
        out = instrument_speculation(lift(template_a))
        body = out.block("i2_spec_t").body
        # Live-in copies first, then the shadow load.
        assert all(getattr(s, "transient", False) for s in body)
        targets = [s.target.name for s in body if isinstance(s, Assign)]
        assert targets[-1] == "x6_spec"
        copies = [t for t in targets if t in ("x5_spec", "x2_spec")]
        assert set(copies) == {"x5_spec", "x2_spec"}

    def test_empty_arm_shadows_nothing(self, template_a):
        out = instrument_speculation(lift(template_a))
        assert out.block("i2_spec_f").body == ()

    def test_shadow_reads_renamed(self, template_a):
        out = instrument_speculation(lift(template_a))
        load = out.block("i2_spec_t").body[-1]
        assert isinstance(load.value, E.Load)
        for v in load.value.addr.variables():
            assert is_shadow_name(v.name)

    def test_join_block_untouched(self, template_a):
        original = lift(template_a)
        out = instrument_speculation(original)
        assert out.block("i4").body == original.block("i4").body

    def test_instrumented_program_still_acyclic(self, template_c):
        out = instrument_speculation(lift(template_c))
        assert ControlFlowGraph(out).is_acyclic()

    def test_double_instrumentation_rejected(self, template_a):
        out = instrument_speculation(lift(template_a))
        with pytest.raises(RefinementError):
            instrument_speculation(out)

    def test_store_in_arm_rejected(self):
        src = """
            cmp x0, x1
            b.ge end
            str x2, [x3]
        end:
            ret
        """
        with pytest.raises(RefinementError):
            instrument_speculation(lift(assemble(src)))

    def test_architectural_paths_unchanged(self, template_a):
        # The shadow statements must not change any architectural register.
        plain = execute(lift(template_a))
        instrumented = execute(instrument_speculation(lift(template_a)))
        assert len(plain) == len(instrumented)
        for p, q in zip(plain, instrumented):
            for name, value in p.final_env.items():
                assert q.final_env[name] == value


class TestBounds:
    def test_max_instructions_limits_shadow(self, template_c):
        out = instrument_speculation(
            lift(template_c), SpeculationBounds(max_instructions=1)
        )
        body = out.block("i1_spec_t").body
        loads = [
            s
            for s in body
            if isinstance(s, Assign) and isinstance(s.value, E.Load)
        ]
        assert len(loads) == 1

    def test_max_loads_limits_shadow(self, template_c):
        out = instrument_speculation(
            lift(template_c), SpeculationBounds(max_loads=1)
        )
        body = out.block("i1_spec_t").body
        loads = [
            s
            for s in body
            if isinstance(s, Assign) and isinstance(s.value, E.Load)
        ]
        assert len(loads) == 1

    def test_unbounded_shadows_both_loads(self, template_c):
        out = instrument_speculation(lift(template_c))
        body = out.block("i1_spec_t").body
        loads = [
            s
            for s in body
            if isinstance(s, Assign) and isinstance(s.value, E.Load)
        ]
        assert len(loads) == 2


class TestStraightLine:
    def test_explicit_jump_converted(self, template_d):
        out = unconditional_to_conditional(lift(template_d))
        term = out.block("i1").terminator
        assert isinstance(term, CJmp)
        assert term.cond == E.TRUE

    def test_fallthrough_jumps_untouched(self, stride_program):
        out = unconditional_to_conditional(lift(stride_program))
        assert isinstance(out.block("i0").terminator, Jmp)

    def test_dead_code_shadowed_on_taken_edge(self, template_d):
        converted = unconditional_to_conditional(lift(template_d))
        out = instrument_speculation(converted)
        body = out.block("i1_spec_t").body
        loads = [
            s
            for s in body
            if isinstance(s, Assign) and isinstance(s.value, E.Load)
        ]
        assert len(loads) == 1  # the architecturally dead load

    def test_single_architectural_path(self, template_d):
        converted = unconditional_to_conditional(lift(template_d))
        out = instrument_speculation(converted)
        assert len(execute(out)) == 1
