"""Unit tests for the concrete BIR interpreter and certification."""

import pytest

from repro.bir import expr as E
from repro.bir.tags import ObsKind, ObsTag
from repro.hw.platform import StateInputs
from repro.isa import assemble, lift
from repro.obs import MctModel, MspecModel
from repro.symbolic.concrete import (
    certify_equivalence,
    refined_difference_holds,
    run_concrete,
)
from repro.symbolic.executor import execute
from tests.conftest import TEMPLATE_A


def _augmented():
    return MspecModel().augment(lift(assemble(TEMPLATE_A, name="ta")))


SKIP_STATE = StateInputs(  # branch taken: body skipped (x1 >= x4 signed)
    regs={"x0": 0x80000, "x1": 16, "x4": 2, "x5": 0x90000},
    memory={0x80010: 0x1000},
)


class TestRunConcrete:
    def test_block_trace_follows_branch(self):
        trace = run_concrete(_augmented(), SKIP_STATE)
        assert "i3" not in trace.block_trace  # body skipped
        assert "i2_spec_t" in trace.block_trace  # shadow edge visited

    def test_observations_evaluate_concretely(self):
        trace = run_concrete(_augmented(), SKIP_STATE)
        loads = [o for o in trace.observations if o.kind is ObsKind.LOAD_ADDR]
        assert loads[0].values == (0x80010,)
        spec = [
            o
            for o in trace.observations
            if o.kind is ObsKind.SPEC_LOAD_ADDR
        ]
        assert spec[0].values == (0x90000 + 0x1000,)

    def test_registers_default_to_zero(self):
        program = lift(assemble("add x1, x2, x3\nret"))
        trace = run_concrete(program, StateInputs())
        assert trace.final_regs["x1"] == 0

    def test_memory_reads_default_to_zero(self):
        program = lift(assemble("ldr x1, [x0]\nret"))
        trace = run_concrete(program, StateInputs(regs={"x0": 0x5000}))
        assert trace.final_regs["x1"] == 0

    def test_store_then_load(self):
        program = lift(assemble("str x1, [x2]\nldr x3, [x2]\nret"))
        trace = run_concrete(
            program, StateInputs(regs={"x1": 7, "x2": 0x100})
        )
        assert trace.final_regs["x3"] == 7

    def test_guarded_observation_skipped_when_guard_false(self):
        from repro.obs.base import AttackerRegion
        from repro.obs.models import MpartModel

        program = MpartModel(AttackerRegion(61, 127)).augment(
            lift(assemble("ldr x1, [x0]\nret"))
        )
        outside = run_concrete(program, StateInputs(regs={"x0": 0}))
        assert outside.observations == ()
        inside = run_concrete(
            program, StateInputs(regs={"x0": 61 * 64})
        )
        assert len(inside.observations) == 1

    def test_agrees_with_symbolic_semantics(self):
        program = _augmented()
        symbolic = execute(program)
        inputs = SKIP_STATE
        val = E.Valuation(
            regs={**{f"x{i}": 0 for i in range(31)}, **inputs.regs},
            mems={"MEM": dict(inputs.memory)},
        )
        path = next(
            p
            for p in symbolic
            if E.evaluate(p.condition_expr(), val) == 1
        )
        concrete = run_concrete(program, inputs)
        assert len(path.observations) == len(concrete.observations)
        for sym, conc in zip(path.observations, concrete.observations):
            assert sym.tag is conc.tag and sym.kind is conc.kind
            assert tuple(
                E.evaluate(e, val) for e in sym.exprs
            ) == conc.values

    def test_describe_smoke(self):
        assert "trace" in run_concrete(_augmented(), SKIP_STATE).describe()


class TestCertification:
    def test_equivalent_pair_certifies(self):
        s2 = StateInputs(
            regs=dict(SKIP_STATE.regs), memory={0x80010: 0x2000}
        )
        # Same Mct observations (same path, same architectural load), but
        # different speculative target.
        program = _augmented()
        assert certify_equivalence(program, SKIP_STATE, s2)
        assert refined_difference_holds(program, SKIP_STATE, s2)

    def test_non_equivalent_pair_fails_certification(self):
        other = StateInputs(
            regs={**SKIP_STATE.regs, "x0": 0x80100},
            memory=dict(SKIP_STATE.memory),
        )
        assert not certify_equivalence(_augmented(), SKIP_STATE, other)

    def test_identical_pair_has_no_refined_difference(self):
        program = _augmented()
        assert certify_equivalence(program, SKIP_STATE, SKIP_STATE)
        assert not refined_difference_holds(program, SKIP_STATE, SKIP_STATE)

    def test_generated_counterexamples_certify(self):
        from repro.core import TestCaseGenerator
        from repro.core.probes import add_address_probes
        from repro.utils.rng import SplittableRandom

        asm = assemble(TEMPLATE_A, name="ta")
        model = MspecModel()
        generator = TestCaseGenerator(asm, model, rng=SplittableRandom(77))
        program = add_address_probes(model.augment(lift(asm)))
        for _ in range(5):
            test = generator.generate()
            assert test is not None
            assert certify_equivalence(program, test.state1, test.state2)
