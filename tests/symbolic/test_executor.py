"""Unit tests for the symbolic executor."""

import pytest

from repro.bir import expr as E
from repro.bir.program import Block, Program
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Store
from repro.bir.tags import ObsKind, ObsTag
from repro.errors import PathExplosionError, SymbolicExecutionError
from repro.isa.assembler import assemble
from repro.isa.lifter import lift
from repro.symbolic.executor import SymbolicExecutor, execute


def _pc_obs(index):
    return Observe(ObsTag.BASE, ObsKind.PC, (E.const(index),))


class TestPathEnumeration:
    def test_straight_line_single_path(self, stride_program):
        result = execute(lift(stride_program))
        assert len(result) == 1

    def test_branch_two_paths(self, template_a):
        result = execute(lift(template_a))
        assert len(result) == 2

    def test_paths_ordered_false_arm_first(self, template_a):
        # For `b.ge end`: path 0 takes the fall-through (body), path 1 the
        # branch.  The executor reports the false arm of each CJmp first.
        result = execute(lift(template_a))
        assert "i3" in result[0].block_trace
        assert "i3" not in result[1].block_trace

    def test_path_conditions_complementary(self, template_a):
        result = execute(lift(template_a))
        c0 = result[0].condition_expr()
        c1 = result[1].condition_expr()
        val = E.Valuation(regs={"x1": 1, "x4": 2})
        assert E.evaluate(c0, val) != E.evaluate(c1, val)

    def test_nested_branches_multiply_paths(self):
        src = """
            cmp x0, x1
            b.ge a
            nop
        a:
            cmp x2, x3
            b.ge b
            nop
        b:
            ret
        """
        assert len(execute(lift(assemble(src)))) == 4

    def test_loop_rejected(self):
        program = Program([Block("a", (), Jmp("a"))])
        with pytest.raises(SymbolicExecutionError):
            execute(program)

    def test_path_explosion_guard(self):
        blocks = []
        for i in range(12):
            cond = E.Cmp(E.CmpKind.EQ, E.var(f"v{i}"), E.const(0))
            blocks.append(Block(f"b{i}", (), CJmp(cond, f"b{i+1}", f"b{i+1}")))
        blocks.append(Block("b12", (), Halt()))
        with pytest.raises(PathExplosionError):
            SymbolicExecutor(max_paths=16).run(Program(blocks))

    def test_constant_condition_pruned(self):
        cond_true = Program(
            [
                Block("a", (), CJmp(E.TRUE, "t", "f")),
                Block("t", (), Halt()),
                Block("f", (), Halt()),
            ]
        )
        result = execute(cond_true)
        assert len(result) == 1
        assert "t" in result[0].block_trace


class TestStateUpdates:
    def test_assignment_chains_substitute(self):
        src = "mov x1, #5\nadd x2, x1, #3\nadd x3, x2, x2\nret"
        result = execute(lift(assemble(src)))
        env = result[0].final_env
        assert env["x1"] == E.const(5)
        assert env["x2"] == E.const(8)
        assert env["x3"] == E.const(16)

    def test_load_binds_to_initial_memory(self, stride_program):
        result = execute(lift(stride_program))
        env = result[0].final_env
        assert env["x1"] == E.Load(E.MemVar(), E.var("x0"))

    def test_store_then_load_resolves(self):
        src = "str x1, [x2]\nldr x3, [x2]\nret"
        result = execute(lift(assemble(src)))
        assert result[0].final_env["x3"] == E.var("x1")

    def test_store_then_load_other_address_keeps_chain(self):
        src = "str x1, [x2]\nldr x3, [x4]\nret"
        result = execute(lift(assemble(src)))
        out = result[0].final_env["x3"]
        assert isinstance(out, E.Load)
        assert isinstance(out.mem, E.MemStore)


class TestObservations:
    def test_observations_collected_in_order(self, template_a):
        from repro.obs.models import MctModel

        result = execute(MctModel().augment(lift(template_a)))
        kinds = [o.kind for o in result[1].observations]
        assert kinds[0] is ObsKind.PC
        assert ObsKind.LOAD_ADDR in kinds

    def test_observation_exprs_over_initial_state(self):
        program = Program(
            [
                Block(
                    "a",
                    (
                        Assign(E.var("x1"), E.add(E.var("x0"), E.const(8))),
                        Observe(
                            ObsTag.BASE, ObsKind.LOAD_ADDR, (E.var("x1"),)
                        ),
                    ),
                    Halt(),
                )
            ]
        )
        result = execute(program)
        obs = result[0].observations[0]
        assert obs.exprs[0] == E.add(E.var("x0"), E.const(8))

    def test_false_guard_drops_observation(self):
        program = Program(
            [
                Block(
                    "a",
                    (
                        Observe(
                            ObsTag.BASE,
                            ObsKind.LOAD_ADDR,
                            (E.var("x0"),),
                            guard=E.FALSE,
                        ),
                    ),
                    Halt(),
                )
            ]
        )
        assert execute(program)[0].observations == ()

    def test_symbolic_guard_retained(self):
        guard = E.ult(E.var("x0"), E.const(8))
        program = Program(
            [
                Block(
                    "a",
                    (Observe(ObsTag.BASE, ObsKind.LOAD_ADDR, (E.var("x0"),), guard=guard),),
                    Halt(),
                )
            ]
        )
        obs = execute(program)[0].observations[0]
        assert obs.guard == guard

    def test_tag_projection(self, template_a):
        from repro.obs.models import MspecModel

        result = execute(MspecModel().augment(lift(template_a)))
        taken = result[1]
        assert all(o.tag is ObsTag.BASE for o in taken.base_observations())
        refined = taken.refined_only_observations()
        assert len(refined) == 1
        assert refined[0].kind is ObsKind.SPEC_LOAD_ADDR

    def test_input_variables(self, template_a):
        result = execute(lift(template_a))
        names = {v.name for v in result.input_variables()}
        assert {"x1", "x4"} <= names

    def test_describe_smoke(self, template_a):
        text = execute(lift(template_a)).describe()
        assert "2 path(s)" in text


class TestPathBound:
    """Boundary behaviour of the ``max_paths`` guard.

    The executor bounds *pending work* (completed paths plus the DFS
    stack), not just completed paths, so exponential programs are rejected
    early instead of after enumerating everything under the limit.
    """

    @staticmethod
    def _chain(forks):
        """A program with ``forks`` independent symbolic CJmps: 2**forks paths."""
        blocks = []
        for i in range(forks):
            cond = E.Cmp(E.CmpKind.EQ, E.var(f"v{i}"), E.const(0))
            blocks.append(
                Block(f"b{i}", (), CJmp(cond, f"t{i}", f"b{i+1}"))
            )
            blocks.append(Block(f"t{i}", (), Jmp(f"b{i+1}")))
        blocks.append(Block(f"b{forks}", (), Halt()))
        return Program(blocks)

    def test_exactly_max_paths_is_accepted(self):
        result = SymbolicExecutor(max_paths=8).run(self._chain(3))
        assert len(result) == 8

    def test_one_over_max_paths_raises(self):
        with pytest.raises(PathExplosionError):
            SymbolicExecutor(max_paths=7).run(self._chain(3))

    def test_pending_stack_counts_toward_bound(self):
        # 2**40 potential paths: enumerating up to the limit path-by-path
        # would already be infeasible if only *completed* paths counted.
        # The stack bound rejects this immediately.
        with pytest.raises(PathExplosionError):
            SymbolicExecutor(max_paths=64).run(self._chain(40))
