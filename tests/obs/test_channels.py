"""Unit tests for the new-channel observation models and campaigns."""

import pytest

from repro.bir import expr as E
from repro.bir.stmt import Observe
from repro.bir.tags import ObsKind, ObsTag
from repro.hw.platform import Channel, ExperimentPlatform, PlatformConfig
from repro.isa.assembler import assemble
from repro.isa.lifter import lift
from repro.obs.base import AttackerRegion
from repro.obs.channels import MpageRefinedModel, MtimeRefinedModel
from repro.symbolic.executor import execute

REGION = AttackerRegion(61, 127)


def observations(program):
    return [
        stmt
        for _lbl, stmt in program.statements()
        if isinstance(stmt, Observe)
    ]


class TestMpageRefined:
    def test_base_line_refined_page(self, stride_program):
        augmented = MpageRefinedModel(REGION).augment(lift(stride_program))
        obs = observations(augmented)
        base = [o for o in obs if o.tag is ObsTag.BASE]
        refined = [o for o in obs if o.tag is ObsTag.REFINED]
        assert all(o.kind is ObsKind.CACHE_LINE for o in base)
        assert all(o.kind is ObsKind.PAGE for o in refined)
        assert len(base) == len(refined) == 3

    def test_page_expr_semantics(self):
        model = MpageRefinedModel(REGION)
        e = model.page_expr(E.var("a"))
        assert E.evaluate(e, E.Valuation(regs={"a": 0x5FFF})) == 5

    def test_has_refinement(self):
        assert MpageRefinedModel(REGION).has_refinement


class TestMtimeRefined:
    def test_observes_multiplier_operand(self):
        augmented = MtimeRefinedModel().augment(
            lift(assemble("mul x2, x0, x1\nret"))
        )
        refined = [
            o for o in observations(augmented) if o.tag is ObsTag.REFINED
        ]
        assert len(refined) == 1
        assert refined[0].kind is ObsKind.OPERAND
        assert refined[0].exprs[0] == E.var("x1")

    def test_pc_base_observations(self):
        augmented = MtimeRefinedModel().augment(
            lift(assemble("mul x2, x0, x1\nadd x3, x2, x0\nret"))
        )
        base = [o for o in observations(augmented) if o.tag is ObsTag.BASE]
        assert all(o.kind is ObsKind.PC for o in base)
        assert len(base) == 3

    def test_non_mul_arithmetic_unobserved(self):
        augmented = MtimeRefinedModel().augment(
            lift(assemble("add x2, x0, x1\nret"))
        )
        assert all(
            o.tag is not ObsTag.REFINED for o in observations(augmented)
        )


class TestChannelsEndToEnd:
    def test_tlb_channel_distinguishes_pages_not_lines(self):
        program = assemble("ldr x1, [x0]\nret")
        platform = ExperimentPlatform(PlatformConfig(channel=Channel.TLB))
        from repro.hw.platform import StateInputs

        same_line_other_page = platform.run_experiment(
            program,
            StateInputs(regs={"x0": 0x2040}),
            StateInputs(regs={"x0": 0x2040 + 0x2000}),  # same set, new page
        )
        assert same_line_other_page.distinguishable
        same_page = platform.run_experiment(
            program,
            StateInputs(regs={"x0": 0x2040}),
            StateInputs(regs={"x0": 0x2080}),  # same page, different line
        )
        assert not same_page.distinguishable

    def test_time_channel_distinguishes_mul_magnitude(self):
        program = assemble("mul x2, x0, x1\nret")
        platform = ExperimentPlatform(PlatformConfig(channel=Channel.TIME))
        from repro.hw.platform import StateInputs

        result = platform.run_experiment(
            program,
            StateInputs(regs={"x0": 3, "x1": 5}),
            StateInputs(regs={"x0": 3, "x1": 1 << 60}),
        )
        assert result.distinguishable
        result = platform.run_experiment(
            program,
            StateInputs(regs={"x0": 3, "x1": 5}),
            StateInputs(regs={"x0": 4, "x1": 9}),  # same chunk count
        )
        assert not result.distinguishable

    def test_tlb_campaign_shapes(self):
        from repro.exps import tlb_campaign
        from repro.pipeline import ScamV

        unref = ScamV(
            tlb_campaign(refined=False, num_programs=4, tests_per_program=8, seed=9)
        ).run().stats
        refined = ScamV(
            tlb_campaign(refined=True, num_programs=4, tests_per_program=8, seed=9)
        ).run().stats
        assert refined.counterexamples > 0
        assert refined.counterexample_rate > unref.counterexample_rate

    def test_timing_campaign_shapes(self):
        from repro.exps import timing_campaign
        from repro.pipeline import ScamV

        refined = ScamV(
            timing_campaign(refined=True, num_programs=4, tests_per_program=8, seed=9)
        ).run().stats
        assert refined.counterexamples > 0

    def test_timing_sound_on_constant_time_core(self):
        from repro.exps import timing_campaign
        from repro.hw.core import CoreConfig
        from repro.pipeline import ScamV

        stats = ScamV(
            timing_campaign(
                refined=True,
                num_programs=4,
                tests_per_program=8,
                seed=9,
                core=CoreConfig(variable_time_multiply=False),
            )
        ).run().stats
        assert stats.counterexamples == 0
