"""Unit tests for the observational models (augmentation passes)."""

import pytest

from repro.bir import expr as E
from repro.bir.stmt import Observe
from repro.bir.tags import ObsKind, ObsTag
from repro.errors import ObservationModelError
from repro.isa.lifter import lift
from repro.obs.base import AttackerRegion
from repro.obs.models import (
    MctModel,
    MlineModel,
    MpartModel,
    MpartRefinedModel,
    MpcModel,
    MspecModel,
    MspecOneLoadModel,
    MspecStraightLineModel,
)
from repro.symbolic.executor import execute

REGION = AttackerRegion(61, 127)


def observations(program):
    return [
        stmt
        for _label, stmt in program.statements()
        if isinstance(stmt, Observe)
    ]


class TestAttackerRegion:
    def test_bounds_validated(self):
        with pytest.raises(ObservationModelError):
            AttackerRegion(100, 50)
        with pytest.raises(ObservationModelError):
            AttackerRegion(0, 128)

    def test_contains_set(self):
        assert REGION.contains_set(61)
        assert REGION.contains_set(127)
        assert not REGION.contains_set(60)

    def test_line_expr_semantics(self):
        val = E.Valuation(regs={"a": 93 * 64 + 5})
        assert E.evaluate(REGION.line_expr(E.var("a")), val) == 93

    def test_contains_expr_semantics(self):
        e = REGION.contains_expr(E.var("a"))
        assert E.evaluate(e, E.Valuation(regs={"a": 61 * 64})) == 1
        assert E.evaluate(e, E.Valuation(regs={"a": 60 * 64})) == 0
        # Set indexes wrap modulo the cache size.
        assert E.evaluate(e, E.Valuation(regs={"a": (128 + 61) * 64})) == 1


class TestMpc:
    def test_one_pc_observation_per_instruction(self, template_a):
        augmented = MpcModel().augment(lift(template_a))
        obs = observations(augmented)
        assert all(o.kind is ObsKind.PC for o in obs)
        assert len(obs) == len(template_a)

    def test_pc_values_are_instruction_indices(self, stride_program):
        augmented = MpcModel().augment(lift(stride_program))
        values = [o.exprs[0].value for o in observations(augmented)]
        assert values == list(range(len(stride_program)))


class TestMline:
    def test_observes_line_of_each_access(self, stride_program):
        augmented = MlineModel(REGION).augment(lift(stride_program))
        obs = observations(augmented)
        assert len(obs) == 3
        assert all(o.kind is ObsKind.CACHE_LINE for o in obs)


class TestMpart:
    def test_guarded_observation_per_access(self, stride_program):
        augmented = MpartModel(REGION).augment(lift(stride_program))
        obs = observations(augmented)
        assert len(obs) == 3
        assert all(o.tag is ObsTag.BASE for o in obs)
        assert all(o.guard != E.TRUE for o in obs)

    def test_no_refinement_flag(self):
        assert not MpartModel(REGION).has_refinement
        assert MpartRefinedModel(REGION).has_refinement

    def test_refined_adds_complement_guard(self, stride_program):
        augmented = MpartRefinedModel(REGION).augment(lift(stride_program))
        obs = observations(augmented)
        assert len(obs) == 6
        refined = [o for o in obs if o.tag is ObsTag.REFINED]
        assert len(refined) == 3

    def test_symbolic_guards_partition(self, stride_program):
        # At any concrete address exactly one of (BASE, REFINED) guard holds.
        augmented = MpartRefinedModel(REGION).augment(lift(stride_program))
        result = execute(augmented)
        path = result[0]
        base = path.base_observations()
        refined = path.refined_only_observations()
        val = E.Valuation(regs={"x0": 62 * 64})
        for b, r in zip(base, refined):
            assert E.evaluate(b.guard, val) != E.evaluate(r.guard, val)


class TestMct:
    def test_pc_and_addresses_observed(self, template_a):
        augmented = MctModel().augment(lift(template_a))
        kinds = [o.kind for o in observations(augmented)]
        assert kinds.count(ObsKind.PC) == len(template_a)
        assert kinds.count(ObsKind.LOAD_ADDR) == 2

    def test_store_observed(self):
        from repro.isa.assembler import assemble

        augmented = MctModel().augment(lift(assemble("str x1, [x2]\nret")))
        kinds = [o.kind for o in observations(augmented)]
        assert ObsKind.STORE_ADDR in kinds

    def test_no_refined_observations(self, template_a):
        augmented = MctModel().augment(lift(template_a))
        assert all(o.tag is ObsTag.BASE for o in observations(augmented))


class TestMspec:
    def test_transient_loads_refined(self, template_a):
        augmented = MspecModel().augment(lift(template_a))
        refined = [
            o for o in observations(augmented) if o.tag is ObsTag.REFINED
        ]
        assert len(refined) == 1
        assert refined[0].kind is ObsKind.SPEC_LOAD_ADDR

    def test_both_transient_loads_observed(self, template_c):
        augmented = MspecModel().augment(lift(template_c))
        refined = [
            o for o in observations(augmented) if o.tag is ObsTag.REFINED
        ]
        assert len(refined) == 2

    def test_mspec1_first_load_is_base(self, template_c):
        augmented = MspecOneLoadModel().augment(lift(template_c))
        spec = [
            o
            for o in observations(augmented)
            if o.kind is ObsKind.SPEC_LOAD_ADDR
        ]
        assert [o.tag for o in spec] == [ObsTag.BASE, ObsTag.REFINED]

    def test_mspec1_on_single_load_arm_has_no_refined(self, template_a):
        augmented = MspecOneLoadModel().augment(lift(template_a))
        assert all(
            o.tag is not ObsTag.REFINED for o in observations(augmented)
        )


class TestMspecStraightLine:
    def test_dead_loads_observed(self, template_d):
        augmented = MspecStraightLineModel().augment(lift(template_d))
        refined = [
            o for o in observations(augmented) if o.tag is ObsTag.REFINED
        ]
        assert len(refined) == 1

    def test_architectural_path_carries_refined_obs(self, template_d):
        augmented = MspecStraightLineModel().augment(lift(template_d))
        result = execute(augmented)
        assert len(result) == 1
        assert len(result[0].refined_only_observations()) == 1
