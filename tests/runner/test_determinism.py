"""The acceptance property: bit-identical results at any worker count.

Runs the same campaign through the legacy sequential entry point
(``ScamV.run``), the in-process runner (``--workers 1``), and a real
process pool (``--workers 4``), and asserts identical deterministic
counters and identical counterexample sets — state for state.
"""

import pytest

from repro.exps import mct_campaign, timing_campaign
from repro.pipeline import ScamV
from repro.runner import ParallelRunner, RunnerConfig


def _config(seed=3, **kwargs):
    defaults = dict(num_programs=4, tests_per_program=2)
    defaults.update(kwargs)
    return mct_campaign("A", refined=True, seed=seed, **defaults)


def _fingerprint(result):
    """Everything seed-determined about a campaign result."""
    return (
        result.stats.deterministic_counters(),
        [
            (
                record.program_index,
                record.program_name,
                record.template,
                record.outcome.value,
                record.test.pair,
                record.test.refined,
                record.test.state1,
                record.test.state2,
                record.test.train,
            )
            for record in result.records
        ],
    )


class TestWorkerCountInvariance:
    def test_sequential_vs_workers1_vs_workers4(self):
        cfg = _config()
        sequential = ScamV(cfg).run()
        inline = ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        pooled = ParallelRunner(
            RunnerConfig(workers=4, start_method="fork")
        ).run(cfg)
        assert _fingerprint(sequential) == _fingerprint(inline)
        assert _fingerprint(sequential) == _fingerprint(pooled)

    def test_shard_size_invariance(self):
        cfg = _config(num_programs=5)
        per_program = ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        chunked = ParallelRunner(
            RunnerConfig(workers=1, programs_per_shard=2)
        ).run(cfg)
        assert _fingerprint(per_program) == _fingerprint(chunked)

    def test_counterexample_sets_identical_with_noise(self):
        # A noisy campaign exercises the per-program platform RNG streams.
        cfg = timing_campaign(
            refined=True, num_programs=3, tests_per_program=3, seed=11
        )
        sequential = ScamV(cfg).run()
        pooled = ParallelRunner(
            RunnerConfig(workers=2, start_method="fork")
        ).run(cfg)
        assert _fingerprint(sequential) == _fingerprint(pooled)

    def test_repeated_runs_identical(self):
        cfg = _config(seed=9)
        runner = ParallelRunner(RunnerConfig(workers=2, start_method="fork"))
        assert _fingerprint(runner.run(cfg)) == _fingerprint(runner.run(cfg))

    def test_seed_actually_matters(self):
        base = ParallelRunner(RunnerConfig(workers=1)).run(_config(seed=1))
        other = ParallelRunner(RunnerConfig(workers=1)).run(_config(seed=2))
        assert _fingerprint(base) != _fingerprint(other)

    def test_merged_ttc_is_campaign_relative(self):
        cfg = _config()
        result = ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        if result.stats.counterexamples:
            assert result.stats.time_to_counterexample is not None
            assert result.stats.time_to_counterexample >= 0.0

    def test_triage_witnesses_worker_count_invariant(self):
        """With triage on, the merged witness list (names, documents, and
        order) is identical at any worker count and shard size —
        per-program dedup never looks across shard boundaries."""
        from dataclasses import replace

        cfg = replace(
            _config(num_programs=3, tests_per_program=3, noise_rate=0.0),
            triage=True,
        )
        sequential = ScamV(cfg).run()
        pooled = ParallelRunner(
            RunnerConfig(workers=2, start_method="fork")
        ).run(cfg)
        chunked = ParallelRunner(
            RunnerConfig(workers=1, programs_per_shard=2)
        ).run(cfg)
        docs = lambda result: [w.to_json() for w in result.witnesses]
        assert docs(sequential) == docs(pooled)
        assert docs(sequential) == docs(chunked)
        assert _fingerprint(sequential) == _fingerprint(pooled)
