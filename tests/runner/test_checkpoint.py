"""Checkpoint journal: round-trip fidelity and resume semantics."""

import json
import os

from repro.exps import mct_campaign
from repro.runner import (
    CheckpointJournal,
    EventLog,
    ParallelRunner,
    RunnerConfig,
    ShardFinished,
    ShardStarted,
    campaign_key,
)
from repro.runner.worker import ShardSpec, run_shard


def _config(**kwargs):
    defaults = dict(num_programs=4, tests_per_program=2, seed=5)
    defaults.update(kwargs)
    return mct_campaign("A", refined=True, **defaults)


def _fingerprint(result):
    return (
        result.stats.deterministic_counters(),
        [
            (r.program_index, r.outcome.value, r.test.state1, r.test.state2)
            for r in result.records
        ],
    )


class TestJournalRoundTrip:
    def test_shard_survives_serialization(self, tmp_path):
        cfg = _config()
        shard = run_shard(cfg, ShardSpec(1, (1,)), attempt=2)
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        journal.append(0, campaign_key(cfg), shard)
        loaded = journal.load({0: campaign_key(cfg)})[(0, 1)]
        assert loaded.shard_id == shard.shard_id
        assert loaded.attempt == 2
        assert (
            loaded.stats.deterministic_counters()
            == shard.stats.deterministic_counters()
        )
        assert len(loaded.records) == len(shard.records)
        for a, b in zip(loaded.records, shard.records):
            assert a.program_index == b.program_index
            assert a.outcome is b.outcome
            assert a.test.state1 == b.test.state1
            assert a.test.state2 == b.test.state2
            assert a.test.train == b.test.train
            assert a.test.pair == b.test.pair
            # the reassembled program re-disassembles identically
            assert a.test.program.name == b.test.program.name
        assert [p.index for p in loaded.programs] == [
            p.index for p in shard.programs
        ]

    def test_mismatched_campaign_key_ignored(self, tmp_path):
        cfg = _config()
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        journal.append(0, campaign_key(cfg), run_shard(cfg, ShardSpec(0, (0,))))
        other = _config(seed=99)
        assert journal.load({0: campaign_key(other)}) == {}

    def test_partial_trailing_line_skipped(self, tmp_path):
        cfg = _config()
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path)
        journal.append(0, campaign_key(cfg), run_shard(cfg, ShardSpec(0, (0,))))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "campaign": 0, "key": "trunc')  # interrupted
        assert set(journal.load({0: campaign_key(cfg)})) == {(0, 0)}

    def test_missing_file_is_empty(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "absent.jsonl"))
        assert journal.load({0: "anything"}) == {}

    def test_witnesses_survive_serialization(self, tmp_path):
        from dataclasses import replace

        cfg = replace(_config(noise_rate=0.0), triage=True)
        spec = ShardSpec(0, tuple(range(cfg.num_programs)))
        shard = run_shard(cfg, spec)
        assert shard.witnesses, "shard produced no witnesses to journal"
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        journal.append(0, campaign_key(cfg), shard)
        loaded = journal.load({0: campaign_key(cfg)})[(0, 0)]
        assert [w.to_json() for w in loaded.witnesses] == [
            w.to_json() for w in shard.witnesses
        ]

    def test_triage_flag_changes_campaign_key(self):
        from dataclasses import replace

        cfg = _config()
        assert campaign_key(cfg) != campaign_key(replace(cfg, triage=True))


class TestResume:
    def test_resume_skips_completed_shards_and_reproduces_result(
        self, tmp_path
    ):
        cfg = _config()
        path = str(tmp_path / "j.jsonl")
        full = ParallelRunner(RunnerConfig(checkpoint_path=path)).run(cfg)
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().strip().splitlines()
        assert len(lines) == cfg.num_programs

        # Simulate a mid-campaign kill: keep only the first two shards.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:2]) + "\n")
        log = EventLog()
        resumed = ParallelRunner(
            RunnerConfig(checkpoint_path=path, resume=True), events=log
        ).run(cfg)
        cached = [e for e in log.of_type(ShardFinished) if e.cached]
        assert len(cached) == 2
        # only the remaining shards actually executed
        assert {e.shard_id for e in log.of_type(ShardStarted)} == {2, 3}
        assert _fingerprint(resumed) == _fingerprint(full)

    def test_resume_with_complete_journal_runs_nothing(self, tmp_path):
        cfg = _config(num_programs=2)
        path = str(tmp_path / "j.jsonl")
        full = ParallelRunner(RunnerConfig(checkpoint_path=path)).run(cfg)
        log = EventLog()
        resumed = ParallelRunner(
            RunnerConfig(checkpoint_path=path, resume=True), events=log
        ).run(cfg)
        assert log.of_type(ShardStarted) == []
        assert _fingerprint(resumed) == _fingerprint(full)

    def test_without_resume_flag_journal_is_not_reused(self, tmp_path):
        cfg = _config(num_programs=2)
        path = str(tmp_path / "j.jsonl")
        ParallelRunner(RunnerConfig(checkpoint_path=path)).run(cfg)
        log = EventLog()
        ParallelRunner(
            RunnerConfig(checkpoint_path=path), events=log
        ).run(cfg)
        # every shard re-ran and was re-journaled
        assert len(log.of_type(ShardStarted)) == 2
        with open(path, encoding="utf-8") as handle:
            assert len(handle.read().strip().splitlines()) == 4

    def test_one_journal_hosts_multiple_campaigns(self, tmp_path):
        configs = [_config(num_programs=2), _config(seed=8, num_programs=2)]
        path = str(tmp_path / "j.jsonl")
        full = ParallelRunner(RunnerConfig(checkpoint_path=path)).run_many(
            configs
        )
        log = EventLog()
        resumed = ParallelRunner(
            RunnerConfig(checkpoint_path=path, resume=True), events=log
        ).run_many(configs)
        assert log.of_type(ShardStarted) == []
        for a, b in zip(full, resumed):
            assert _fingerprint(a) == _fingerprint(b)
