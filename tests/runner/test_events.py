"""The structured event stream and its CLI progress renderer."""

import io

from repro.exps import mct_campaign
from repro.runner import (
    CampaignFinished,
    CampaignScheduled,
    CounterexampleFound,
    EventLog,
    ParallelRunner,
    RunnerConfig,
    ShardFinished,
    ShardStarted,
    progress_printer,
)


def _config(**kwargs):
    defaults = dict(num_programs=3, tests_per_program=2, seed=3)
    defaults.update(kwargs)
    return mct_campaign("A", refined=True, **defaults)


class TestEventStream:
    def test_lifecycle_events_emitted_in_order(self):
        cfg = _config()
        log = EventLog()
        result = ParallelRunner(RunnerConfig(workers=1), events=log).run(cfg)
        scheduled = log.of_type(CampaignScheduled)
        assert [e.shards for e in scheduled] == [cfg.num_programs]
        assert len(log.of_type(ShardStarted)) == cfg.num_programs
        finished = log.of_type(ShardFinished)
        assert len(finished) == cfg.num_programs
        assert (
            sum(e.experiments for e in finished) == result.stats.experiments
        )
        assert (
            sum(e.counterexamples for e in finished)
            == result.stats.counterexamples
        )
        # one CounterexampleFound per counterexample record
        assert (
            len(log.of_type(CounterexampleFound))
            == result.stats.counterexamples
        )
        done = log.of_type(CampaignFinished)
        assert [e.campaign for e in done] == [cfg.name]
        # scheduling precedes every shard start, which precedes the finish
        kinds = [type(e).__name__ for e in log.events]
        assert kinds[0] == "CampaignScheduled"
        assert kinds[-1] == "CampaignFinished"

    def test_progress_printer_renders_cumulative_lines(self):
        cfg = _config()
        stream = io.StringIO()
        ParallelRunner(
            RunnerConfig(workers=1), events=progress_printer(stream)
        ).run(cfg)
        lines = [l for l in stream.getvalue().splitlines() if l]
        # one line per shard plus the final campaign summary line
        assert len(lines) == cfg.num_programs + 1
        assert lines[0].startswith(f"[{cfg.name}] shard 1/{cfg.num_programs}")
        assert "counterexamples in" in lines[-2]
        summary = lines[-1]
        assert summary.startswith(f"[{cfg.name}] finished:")
        assert f"{cfg.num_programs} shards" in summary
        assert "% inconclusive" in summary
        assert "wall-clock" in summary

    def test_progress_printer_ignores_unknown_campaign_gracefully(self):
        stream = io.StringIO()
        sink = progress_printer(stream)
        sink(ShardFinished(campaign="never-scheduled", shard_id=0))
        assert "never-scheduled" in stream.getvalue()
