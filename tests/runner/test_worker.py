"""Unit tests for shard slicing and shard execution."""

import pytest

from repro.exps import mct_campaign
from repro.runner.worker import ShardSpec, run_shard, shard_rng, shard_specs


def _config(**kwargs):
    defaults = dict(num_programs=3, tests_per_program=2, seed=7)
    defaults.update(kwargs)
    return mct_campaign("A", refined=True, **defaults)


class TestShardSpecs:
    def test_per_program_sharding(self):
        specs = shard_specs(_config(num_programs=4))
        assert [s.shard_id for s in specs] == [0, 1, 2, 3]
        assert [s.program_indices for s in specs] == [(0,), (1,), (2,), (3,)]

    def test_chunked_sharding_covers_all_programs(self):
        specs = shard_specs(_config(num_programs=5), programs_per_shard=2)
        assert [s.program_indices for s in specs] == [(0, 1), (2, 3), (4,)]

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            shard_specs(_config(), programs_per_shard=0)

    def test_describe(self):
        assert ShardSpec(0, (3,)).describe() == "program 3"
        assert ShardSpec(0, (3, 4, 5)).describe() == "programs 3..5"


class TestShardRng:
    def test_independent_of_execution_order(self):
        cfg = _config()
        # Deriving program 2's stream never requires deriving 0's and 1's
        # first: the value is a pure function of (seed, index).
        first = shard_rng(cfg, 2).getrandbits(64)
        again = shard_rng(cfg, 2).getrandbits(64)
        assert first == again

    def test_distinct_programs_distinct_streams(self):
        cfg = _config()
        values = {shard_rng(cfg, i).getrandbits(64) for i in range(10)}
        assert len(values) == 10

    def test_seed_changes_streams(self):
        assert (
            shard_rng(_config(seed=1), 0).getrandbits(64)
            != shard_rng(_config(seed=2), 0).getrandbits(64)
        )


class TestRunShard:
    def test_pure_function_of_config_and_indices(self):
        cfg = _config()
        spec = ShardSpec(shard_id=1, program_indices=(1,))
        a = run_shard(cfg, spec)
        b = run_shard(cfg, spec, attempt=3)  # retries reproduce the result
        assert a.stats.deterministic_counters() == b.stats.deterministic_counters()
        assert [
            (r.program_index, r.test.state1, r.test.state2) for r in a.records
        ] == [
            (r.program_index, r.test.state1, r.test.state2) for r in b.records
        ]
        assert b.attempt == 3

    def test_program_records_cover_every_program(self):
        cfg = _config(num_programs=3)
        shard = run_shard(cfg, ShardSpec(0, (0, 1, 2)))
        assert [p.index for p in shard.programs] == [0, 1, 2]
        assert shard.stats.programs == 3
        # every experiment record maps back to a program row
        indices = {p.index for p in shard.programs}
        assert all(r.program_index in indices for r in shard.records)

    def test_fault_injector_is_called_per_attempt(self):
        cfg = _config(num_programs=1)
        calls = []

        def fault(spec, attempt):
            calls.append((spec.shard_id, attempt))

        run_shard(cfg, ShardSpec(5, (0,)), attempt=2, fault=fault)
        assert calls == [(5, 2)]

    def test_generation_attempts_counted(self):
        cfg = _config(num_programs=2, tests_per_program=3)
        shard = run_shard(cfg, ShardSpec(0, (0, 1)))
        stats = shard.stats
        # One attempt per generate() call: at least one per experiment, at
        # most tests_per_program per analysable program.
        assert stats.experiments <= stats.generation_attempts
        assert stats.generation_attempts <= 2 * 3
        # avg_gen_time divides by attempts, so it is defined whenever any
        # generation ran, even if every attempt failed.
        if stats.generation_attempts:
            assert stats.avg_gen_time >= 0.0
