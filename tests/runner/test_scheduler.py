"""Scheduler fault tolerance: crashes, hangs, retry budgets, degradation."""

import time

import pytest

from repro.exps import mct_campaign
from repro.pipeline import ExperimentDatabase, ScamV
from repro.runner import (
    EventLog,
    ParallelRunner,
    RunnerConfig,
    RunnerDegraded,
    ShardExhaustedError,
    ShardFinished,
    ShardRetried,
)


def _config(**kwargs):
    defaults = dict(num_programs=4, tests_per_program=2, seed=5)
    defaults.update(kwargs)
    return mct_campaign("A", refined=True, **defaults)


def _fingerprint(result):
    return (
        result.stats.deterministic_counters(),
        [
            (r.program_index, r.outcome.value, r.test.state1, r.test.state2)
            for r in result.records
        ],
    )


# Fault injectors must be importable top-level functions so they can ride
# along with the pickled shard task into worker processes.

def crash_shard1_once(spec, attempt):
    if spec.shard_id == 1 and attempt == 0:
        raise RuntimeError("injected crash")


def hang_shard2_once(spec, attempt):
    if spec.shard_id == 2 and attempt == 0:
        time.sleep(60)


def always_crash_shard0(spec, attempt):
    if spec.shard_id == 0:
        raise RuntimeError("unrecoverable")


def always_crash_shard1(spec, attempt):
    if spec.shard_id == 1:
        raise RuntimeError("unrecoverable")


class TestRetry:
    def test_inline_crash_is_retried_without_corrupting_stats(self):
        cfg = _config()
        baseline = ScamV(cfg).run()
        log = EventLog()
        result = ParallelRunner(
            RunnerConfig(
                fault_injector=crash_shard1_once, retry_backoff=0.01
            ),
            events=log,
        ).run(cfg)
        retries = log.of_type(ShardRetried)
        assert len(retries) == 1
        assert retries[0].shard_id == 1
        assert "injected crash" in retries[0].reason
        assert _fingerprint(result) == _fingerprint(baseline)

    def test_pool_crash_is_retried_without_corrupting_stats(self):
        cfg = _config()
        baseline = ScamV(cfg).run()
        log = EventLog()
        result = ParallelRunner(
            RunnerConfig(
                workers=2,
                start_method="fork",
                fault_injector=crash_shard1_once,
                retry_backoff=0.01,
            ),
            events=log,
        ).run(cfg)
        assert [e.shard_id for e in log.of_type(ShardRetried)] == [1]
        assert _fingerprint(result) == _fingerprint(baseline)

    def test_pool_hang_is_killed_and_retried(self):
        cfg = _config()
        baseline = ScamV(cfg).run()
        log = EventLog()
        started = time.monotonic()
        result = ParallelRunner(
            RunnerConfig(
                workers=2,
                start_method="fork",
                fault_injector=hang_shard2_once,
                shard_timeout=1.0,
                retry_backoff=0.01,
            ),
            events=log,
        ).run(cfg)
        elapsed = time.monotonic() - started
        retries = log.of_type(ShardRetried)
        assert any("timed out" in e.reason for e in retries)
        assert elapsed < 30  # the 60s hang was cut short
        assert _fingerprint(result) == _fingerprint(baseline)

    def test_retry_budget_exhaustion_raises(self):
        cfg = _config(num_programs=2)
        with pytest.raises(ShardExhaustedError):
            ParallelRunner(
                RunnerConfig(
                    fault_injector=always_crash_shard0,
                    max_retries=1,
                    retry_backoff=0.01,
                )
            ).run(cfg)

    def test_exhaustion_leaves_completed_shards_in_journal(self, tmp_path):
        cfg = _config(num_programs=2)
        path = str(tmp_path / "j.jsonl")
        with pytest.raises(ShardExhaustedError):
            ParallelRunner(
                RunnerConfig(
                    fault_injector=always_crash_shard1,
                    max_retries=0,
                    retry_backoff=0.01,
                    checkpoint_path=path,
                )
            ).run(cfg)
        # shard 0 completed before the failure surfaced; a --resume rerun
        # without the fault picks it up and only runs shard 1.
        log = EventLog()
        result = ParallelRunner(
            RunnerConfig(checkpoint_path=path, resume=True), events=log
        ).run(cfg)
        cached = [e for e in log.of_type(ShardFinished) if e.cached]
        assert len(cached) == 1
        assert _fingerprint(result) == _fingerprint(ScamV(cfg).run())


class TestDegradation:
    def test_unknown_start_method_falls_back_to_inline(self):
        cfg = _config(num_programs=2)
        log = EventLog()
        result = ParallelRunner(
            RunnerConfig(workers=4, start_method="no-such-method"),
            events=log,
        ).run(cfg)
        assert len(log.of_type(RunnerDegraded)) == 1
        assert _fingerprint(result) == _fingerprint(ScamV(cfg).run())


class TestCampaignSets:
    def test_run_many_matches_individual_runs(self):
        configs = [
            _config(num_programs=2),
            _config(num_programs=2, seed=8),
        ]
        merged = ParallelRunner(
            RunnerConfig(workers=2, start_method="fork")
        ).run_many(configs)
        for cfg, result in zip(configs, merged):
            assert _fingerprint(result) == _fingerprint(ScamV(cfg).run())

    def test_run_many_records_every_campaign_in_database(self):
        configs = [
            _config(num_programs=2),
            _config(num_programs=2, seed=8),
        ]
        with ExperimentDatabase() as db:
            results = ParallelRunner(RunnerConfig(workers=1)).run_many(
                configs, database=db
            )
            for campaign_id, result in enumerate(results, start=1):
                assert (
                    db.experiment_count(campaign_id)
                    == result.stats.experiments
                )
                counts = db.outcome_counts(campaign_id)
                assert (
                    counts.get("counterexample", 0)
                    == result.stats.counterexamples
                )

    def test_pool_database_content_matches_sequential(self):
        cfg = _config()
        with ExperimentDatabase() as sequential_db:
            ScamV(cfg, database=sequential_db).run()
            with ExperimentDatabase() as pool_db:
                ParallelRunner(
                    RunnerConfig(workers=2, start_method="fork")
                ).run(cfg, database=pool_db)
                assert sequential_db.outcome_counts(
                    1
                ) == pool_db.outcome_counts(1)
                assert sequential_db.counterexamples(
                    1
                ) == pool_db.counterexamples(1)
