"""Unit tests for test-case generation (well-formedness, training, caching)."""

import pytest

from repro.bir import expr as E
from repro.core.coverage import MlineCoverage, NoCoverage
from repro.core.probes import (
    add_address_probes,
    architectural_probe_addresses,
    probe_addresses,
)
from repro.core.testgen import TestCaseGenerator, TestGenConfig
from repro.isa.lifter import lift
from repro.obs.base import AttackerRegion
from repro.obs.models import MctModel, MpartRefinedModel, MspecModel
from repro.symbolic.executor import execute
from repro.utils.rng import SplittableRandom

REGION = AttackerRegion(61, 127)


class TestProbes:
    def test_every_access_probed(self, template_a):
        probed = add_address_probes(MspecModel().augment(lift(template_a)))
        result = execute(probed)
        body_path = result[0]
        assert len(list(probe_addresses(body_path))) == 2
        skip_path = result[1]
        # One architectural load plus the transient one.
        assert len(list(probe_addresses(skip_path))) == 2
        assert len(list(architectural_probe_addresses(skip_path))) == 1

    def test_probes_invisible_to_relation(self, template_a):
        from repro.core.relation import RelationSynthesizer

        plain = execute(MctModel().augment(lift(template_a)))
        probed = execute(add_address_probes(MctModel().augment(lift(template_a))))
        for i in range(2):
            a = RelationSynthesizer(plain, False).pair(i, i)
            b = RelationSynthesizer(probed, False).pair(i, i)
            assert a.base_equalities == b.base_equalities


class TestGeneration:
    def test_generates_valid_states(self, template_a):
        gen = TestCaseGenerator(
            template_a, MspecModel(), rng=SplittableRandom(1)
        )
        test = gen.generate()
        assert test is not None
        assert set(test.state1.regs) == {
            r.name for r in template_a.input_registers()
        }
        assert test.refined

    def test_states_satisfy_path_conditions(self, template_a):
        gen = TestCaseGenerator(
            template_a, MspecModel(), rng=SplittableRandom(2)
        )
        test = gen.generate()
        path = gen.result[test.pair[0]]
        val = E.Valuation(
            regs=dict(test.state1.regs), mems={"MEM": dict(test.state1.memory)}
        )
        for cond in path.path_condition:
            assert E.evaluate(cond, val) == 1

    def test_wellformed_addresses_in_region(self, template_a):
        config = TestGenConfig()
        gen = TestCaseGenerator(
            template_a, MspecModel(), config=config, rng=SplittableRandom(3)
        )
        for _ in range(5):
            test = gen.generate()
            assert test is not None
            for state in (test.state1, test.state2):
                val = E.Valuation(
                    regs=dict(state.regs), mems={"MEM": dict(state.memory)}
                )
                path = gen.result[test.pair[0]]
                for addr in probe_addresses(path):
                    concrete = E.evaluate(addr, val)
                    assert config.region_base <= concrete < (
                        config.region_base + config.region_size
                    )
                    assert concrete % config.alignment == 0

    def test_training_state_takes_other_path(self, template_a):
        gen = TestCaseGenerator(
            template_a, MspecModel(), rng=SplittableRandom(4)
        )
        test = gen.generate()
        assert test.train is not None
        measured = gen.result[test.pair[0]]
        train_val = E.Valuation(
            regs=dict(test.train.regs), mems={"MEM": dict(test.train.memory)}
        )
        assert E.evaluate(measured.condition_expr(), train_val) == 0

    def test_single_path_program_has_no_training(self, stride_program):
        gen = TestCaseGenerator(
            stride_program,
            MpartRefinedModel(REGION),
            rng=SplittableRandom(5),
        )
        test = gen.generate()
        assert test is not None
        assert test.train is None

    def test_round_robin_covers_pairs(self, template_a):
        gen = TestCaseGenerator(template_a, MctModel(), rng=SplittableRandom(6))
        pairs = {gen.generate().pair for _ in range(6)}
        assert pairs == {(0, 0), (1, 1)}

    def test_refinement_fallback_when_no_refined_obs(self, stride_program):
        # Mspec on a branch-free program has no transient observations;
        # generation falls back to plain equivalence.
        gen = TestCaseGenerator(
            stride_program, MspecModel(), rng=SplittableRandom(7)
        )
        test = gen.generate()
        assert test is not None
        assert not test.refined

    def test_symbolic_execution_cached(self, template_a):
        gen = TestCaseGenerator(template_a, MspecModel(), rng=SplittableRandom(8))
        first = gen.result
        gen.generate()
        gen.generate()
        assert gen.result is first

    def test_refined_states_differ_in_transient_address(self, template_a):
        gen = TestCaseGenerator(
            template_a, MspecModel(), rng=SplittableRandom(9)
        )
        found_difference = False
        for _ in range(5):
            test = gen.generate()
            # Transient load address is x5 + mem[x0 + x1].
            def spec_addr(state):
                base = state.regs["x5"]
                a = (state.regs["x0"] + state.regs["x1"]) % 2**64
                return (base + state.memory.get(a, 0)) % 2**64

            if spec_addr(test.state1) != spec_addr(test.state2):
                found_difference = True
        assert found_difference


class TestCoverage:
    def test_mline_coverage_pins_lines(self, stride_program):
        region = REGION
        gen = TestCaseGenerator(
            stride_program,
            MpartRefinedModel(region),
            rng=SplittableRandom(10),
            coverage=MlineCoverage(region),
        )
        lines = set()
        for _ in range(12):
            test = gen.generate()
            if test is None:
                continue
            lines.add((test.state1.regs["x0"] >> 6) & 127)
            lines.add((test.state2.regs["x0"] >> 6) & 127)
        # Uniform line sampling must spread the anchors around.
        assert len(lines) >= 6

    def test_no_coverage_returns_no_constraints(self, stride_program):
        from repro.core.relation import RelationSynthesizer

        result = execute(
            add_address_probes(MctModel().augment(lift(stride_program)))
        )
        pair = RelationSynthesizer(result, False).pair(0, 0)
        sampler = NoCoverage()
        assert sampler.constraints(pair, result, SplittableRandom(0)) == []
