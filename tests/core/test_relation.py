"""Unit tests for relation synthesis (Eq. 1, §5.4) and refinement (§3)."""

import pytest

from repro.bir import expr as E
from repro.core.relation import PairRelation, RelationSynthesizer
from repro.core.rename import rename_expr, rename_observation
from repro.isa.lifter import lift
from repro.obs.base import AttackerRegion
from repro.obs.models import (
    MctModel,
    MpartModel,
    MpartRefinedModel,
    MspecModel,
)
from repro.symbolic.executor import execute
from repro.symbolic.path import SymbolicObservation
from repro.bir.tags import ObsKind, ObsTag

REGION = AttackerRegion(61, 127)


def synth(asm, model, refinement):
    result = execute(model.augment(lift(asm)))
    return RelationSynthesizer(result, refinement=refinement), result


class TestRename:
    def test_rename_expr_suffixes_vars_and_memories(self):
        e = E.Load(E.MemVar("MEM"), E.add(E.var("x0"), E.var("x1")))
        out = rename_expr(e, 2)
        assert {v.name for v in out.variables()} == {"x0#2", "x1#2"}
        assert {m.name for m in out.memories()} == {"MEM#2"}

    def test_rename_observation(self):
        obs = SymbolicObservation(
            ObsTag.BASE, ObsKind.LOAD_ADDR, (E.var("a"),), guard=E.var("g", 1)
        )
        out = rename_observation(obs, 1)
        assert out.exprs[0] == E.var("a#1")
        assert out.guard == E.var("g#1", 1)
        assert out.tag is obs.tag and out.kind is obs.kind


class TestSamePathPairs:
    def test_mct_same_path_equalities(self, template_a):
        synthesizer, result = synth(template_a, MctModel(), refinement=False)
        pair = synthesizer.pair(0, 0)
        assert not pair.statically_infeasible
        # PC observations are equal constants and simplify away; the load
        # addresses stay as equalities.
        assert len(pair.base_equalities) == 2
        assert pair.refined_difference is None

    def test_antecedent_contains_both_conditions(self, template_a):
        synthesizer, result = synth(template_a, MctModel(), refinement=False)
        pair = synthesizer.pair(1, 1)
        names = set()
        for c in pair.antecedent:
            names.update(v.name for v in c.variables())
        assert any(n.endswith("#1") for n in names)
        assert any(n.endswith("#2") for n in names)

    def test_equivalence_constraints_hold_on_equal_states(self, template_a):
        synthesizer, _ = synth(template_a, MctModel(), refinement=False)
        pair = synthesizer.pair(1, 1)
        regs = {"x0": 3, "x1": 9, "x4": 2, "x5": 0x100, "x2": 0}
        val = E.Valuation(
            regs={
                **{f"{k}#1": v for k, v in regs.items()},
                **{f"{k}#2": v for k, v in regs.items()},
            }
        )
        for c in pair.equivalence_constraints():
            assert E.evaluate(c, val) == 1


class TestCrossPathPairs:
    def test_mct_cross_path_infeasible(self, template_a):
        # Mct observes the pc: paths of different lengths can never be
        # observationally equivalent ("trivially false", §2.3).
        synthesizer, _ = synth(template_a, MctModel(), refinement=False)
        pair = synthesizer.pair(0, 1)
        assert pair.statically_infeasible

    def test_feasible_pairs_only_diagonal_for_mct(self, template_a):
        synthesizer, result = synth(template_a, MctModel(), refinement=False)
        pairs = synthesizer.feasible_pairs()
        assert [(p.path1_index, p.path2_index) for p in pairs] == [(0, 0), (1, 1)]

    def test_mpart_unequal_load_counts_infeasible(self, template_a):
        # Template A's body path has two loads, the skip path one: the
        # observation lists cannot match, even though Mpart has no pc
        # observations.
        synthesizer, _ = synth(
            template_a, MpartModel(REGION), refinement=False
        )
        assert synthesizer.pair(0, 1).statically_infeasible

    def test_mpart_cross_path_can_be_feasible(self):
        # With one (guarded) load on each arm, Mpart does not observe the
        # pc, so the cross-path pair is not statically ruled out.
        from repro.isa.assembler import assemble

        src = """
            cmp x0, x1
            b.ge other
            ldr x2, [x3]
            b end
        other:
            ldr x2, [x4]
        end:
            ret
        """
        synthesizer, _ = synth(
            assemble(src), MpartModel(REGION), refinement=False
        )
        pair = synthesizer.pair(0, 1)
        assert not pair.statically_infeasible


class TestRefinement:
    def test_refined_difference_present(self, template_a):
        synthesizer, _ = synth(template_a, MspecModel(), refinement=True)
        taken = synthesizer.pair(1, 1)
        assert taken.usable_for_refinement
        body = synthesizer.pair(0, 0)
        assert not body.usable_for_refinement  # no transient obs there

    def test_refinement_constraints_satisfied_by_differing_spec_state(
        self, template_a
    ):
        synthesizer, _ = synth(template_a, MspecModel(), refinement=True)
        pair = synthesizer.pair(1, 1)
        base = {"x0": 3, "x1": 9, "x4": 2, "x2": 0}
        val = E.Valuation(
            regs={
                **{f"{k}#1": v for k, v in base.items()},
                **{f"{k}#2": v for k, v in base.items()},
                "x5#1": 0x100,
                "x5#2": 0x900,  # the transient load base differs
            }
        )
        for c in pair.refinement_constraints():
            assert E.evaluate(c, val) == 1

    def test_refinement_rejects_identical_states(self, template_a):
        synthesizer, _ = synth(template_a, MspecModel(), refinement=True)
        pair = synthesizer.pair(1, 1)
        regs = {"x0": 3, "x1": 9, "x4": 2, "x5": 0x100, "x2": 0}
        val = E.Valuation(
            regs={
                **{f"{k}#1": v for k, v in regs.items()},
                **{f"{k}#2": v for k, v in regs.items()},
            }
        )
        assert E.evaluate(pair.refined_difference, val) == 0

    def test_mpart_refined_difference_requires_non_ar_difference(
        self, stride_program
    ):
        synthesizer, _ = synth(
            stride_program, MpartRefinedModel(REGION), refinement=True
        )
        pair = synthesizer.pair(0, 0)
        # Equal non-AR strides: no refined difference.
        val = E.Valuation(regs={"x0#1": 0x80, "x0#2": 0x80})
        assert E.evaluate(pair.refined_difference, val) == 0
        # Different non-AR strides: refined difference holds.
        val = E.Valuation(regs={"x0#1": 0x80, "x0#2": 0x400})
        assert E.evaluate(pair.refined_difference, val) == 1


class TestFullRelation:
    def test_full_relation_on_running_example(self, running_example):
        synthesizer, _ = synth(running_example, MctModel(), refinement=False)
        relation = synthesizer.synthesize_full()
        # Two equal states on the same path are related.
        regs = {"x0": 0x100, "x1": 5, "x2": 0, "x3": 0}
        equal = E.Valuation(
            regs={
                **{f"{k}#1": v for k, v in regs.items()},
                **{f"{k}#2": v for k, v in regs.items()},
            }
        )
        assert E.evaluate(relation, equal) == 1
        # States on different paths are not related under Mct.
        cross = E.Valuation(
            regs={
                "x0#1": 0,
                "x1#1": 100,  # takes the body
                "x0#2": 100,
                "x1#2": 0,  # skips the body
                "x2#1": 0,
                "x3#1": 0,
                "x2#2": 0,
                "x3#2": 0,
            }
        )
        assert E.evaluate(relation, cross) == 0

    def test_full_relation_detects_observable_difference(self, running_example):
        synthesizer, _ = synth(running_example, MctModel(), refinement=False)
        relation = synthesizer.synthesize_full()
        val = E.Valuation(
            regs={
                "x0#1": 0x100,
                "x1#1": 5,
                "x0#2": 0x200,  # different first load address
                "x1#2": 5,
            }
        )
        assert E.evaluate(relation, val) == 0
