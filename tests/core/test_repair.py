"""Unit tests for automatic model repair (§8 future work)."""

import pytest

from repro.bir.stmt import Observe
from repro.bir.tags import ObsTag
from repro.core.repair import ModelRepairer, PromotedModel, RepairReport, RepairStep
from repro.exps import mct_campaign, timing_campaign, tlb_campaign
from repro.isa.lifter import lift
from repro.obs.models import MspecModel
from repro.pipeline.metrics import CampaignStats


def _observations(program):
    return [
        stmt
        for _lbl, stmt in program.statements()
        if isinstance(stmt, Observe)
    ]


class TestPromotedModel:
    def test_promotion_retags_refined_to_base(self, template_a):
        promoted = PromotedModel(MspecModel())
        augmented = promoted.augment(lift(template_a))
        assert all(o.tag is ObsTag.BASE for o in _observations(augmented))

    def test_promoted_model_has_no_refinement(self):
        assert not PromotedModel(MspecModel()).has_refinement

    def test_name_reflects_promotion(self):
        assert "promoted" in PromotedModel(MspecModel()).name


class TestRepairReport:
    def _step(self, name, counterexamples):
        stats = CampaignStats(name=name, counterexamples=counterexamples)
        return RepairStep(model_name=name, stats=stats)

    def test_success_detection(self):
        report = RepairReport(steps=[self._step("m", 5), self._step("m'", 0)])
        assert report.succeeded
        assert report.promotions == 1

    def test_failure_detection(self):
        report = RepairReport(steps=[self._step("m", 5), self._step("m'", 2)])
        assert not report.succeeded

    def test_describe(self):
        report = RepairReport(steps=[self._step("m", 5), self._step("m'", 0)])
        text = report.describe()
        assert "5 counterexamples" in text
        assert "repaired after 1 promotion(s)" in text


class TestRepairLoop:
    def test_repairs_mct_against_speculation(self):
        campaign = mct_campaign(
            "A", refined=True, num_programs=3, tests_per_program=8, seed=41
        )
        report = ModelRepairer(campaign).repair()
        assert report.succeeded
        assert report.promotions == 1
        assert report.repaired_model is not None
        assert not report.repaired_model.has_refinement

    def test_repairs_line_model_against_tlb(self):
        campaign = tlb_campaign(
            refined=True, num_programs=3, tests_per_program=8, seed=42
        )
        report = ModelRepairer(campaign).repair()
        assert report.succeeded

    def test_repairs_pc_model_against_timing(self):
        campaign = timing_campaign(
            refined=True, num_programs=3, tests_per_program=8, seed=43
        )
        report = ModelRepairer(campaign).repair()
        assert report.succeeded

    def test_sound_model_needs_no_promotion(self):
        # Template D: the model is already consistent with the hardware
        # (no straight-line speculation), so step 0 finds nothing.
        from repro.exps import straightline_campaign

        campaign = straightline_campaign(
            num_programs=3, tests_per_program=8, seed=44
        )
        report = ModelRepairer(campaign).repair()
        assert report.succeeded
        assert report.promotions == 0
