"""Unit tests for the ISA -> BIR lifter."""

import pytest

from repro.bir import expr as E
from repro.bir.cfg import ControlFlowGraph
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Store
from repro.isa.assembler import assemble
from repro.isa.instructions import Cond
from repro.isa.lifter import (
    CMP_LHS,
    CMP_RHS,
    END_LABEL,
    block_label,
    condition_expr,
    instruction_index,
    lift,
)


class TestStructure:
    def test_one_block_per_instruction_plus_end(self, template_a):
        bir = lift(template_a)
        assert len(bir) == len(template_a) + 1
        assert END_LABEL in bir

    def test_block_labels_roundtrip(self):
        assert instruction_index(block_label(7)) == 7
        assert instruction_index(END_LABEL) is None
        assert instruction_index("i3_spec_t") is None

    def test_fallthrough_chains(self, stride_program):
        bir = lift(stride_program)
        assert bir.block("i0").terminator == Jmp("i1")

    def test_conditional_branch_targets(self, template_a):
        bir = lift(template_a)
        term = bir.block("i2").terminator
        assert isinstance(term, CJmp)
        assert term.target_true == "i4"  # 'end' label points at ret
        assert term.target_false == "i3"

    def test_ret_halts(self, template_a):
        assert isinstance(lift(template_a).block("i4").terminator, Halt)

    def test_explicit_jump_flagged(self, template_d):
        bir = lift(template_d)
        term = bir.block("i1").terminator
        assert isinstance(term, Jmp) and term.explicit

    def test_fallthrough_jump_not_flagged(self, stride_program):
        assert not lift(stride_program).block("i0").terminator.explicit

    def test_lifted_program_is_acyclic(self, template_a):
        assert ControlFlowGraph(lift(template_a)).is_acyclic()


class TestSemantics:
    def test_mov_and_alu(self):
        bir = lift(assemble("mov x1, #5\nadd x2, x1, #3\nret"))
        assign = bir.block("i0").body[0]
        assert assign == Assign(E.var("x1"), E.const(5))
        add = bir.block("i1").body[0]
        assert add.target == E.var("x2")

    def test_load_effective_address_register_offset(self):
        bir = lift(assemble("ldr x1, [x2, x3]\nret"))
        assign = bir.block("i0").body[0]
        assert isinstance(assign.value, E.Load)
        assert assign.value.addr == E.add(E.var("x2"), E.var("x3"))

    def test_load_effective_address_immediate(self):
        bir = lift(assemble("ldr x1, [x2, #0x40]\nret"))
        assign = bir.block("i0").body[0]
        assert assign.value.addr == E.add(E.var("x2"), E.const(0x40))

    def test_load_no_offset(self):
        bir = lift(assemble("ldr x1, [x2]\nret"))
        assert bir.block("i0").body[0].value.addr == E.var("x2")

    def test_store_becomes_store_stmt(self):
        bir = lift(assemble("str x1, [x2]\nret"))
        assert isinstance(bir.block("i0").body[0], Store)

    def test_cmp_sets_comparison_state(self):
        bir = lift(assemble("cmp x1, x2\nret"))
        body = bir.block("i0").body
        assert body[0] == Assign(CMP_LHS, E.var("x1"))
        assert body[1] == Assign(CMP_RHS, E.var("x2"))

    def test_tst_masks(self):
        bir = lift(assemble("tst x1, #0x80\nret"))
        body = bir.block("i0").body
        assert body[0].value == E.band(E.var("x1"), E.const(0x80))
        assert body[1] == Assign(CMP_RHS, E.const(0))


class TestConditions:
    @pytest.mark.parametrize(
        "cond,lhs,rhs,expected",
        [
            (Cond.EQ, 5, 5, 1),
            (Cond.EQ, 5, 6, 0),
            (Cond.NE, 5, 6, 1),
            (Cond.LO, 1, 2, 1),
            (Cond.LO, 2, 1, 0),
            (Cond.HS, 2, 2, 1),
            (Cond.LS, 2, 2, 1),
            (Cond.HI, 3, 2, 1),
            (Cond.LT, 2**64 - 1, 0, 1),  # -1 < 0 signed
            (Cond.GE, 0, 2**64 - 1, 1),  # 0 >= -1 signed
            (Cond.LE, 5, 5, 1),
            (Cond.GT, 6, 5, 1),
        ],
    )
    def test_condition_semantics(self, cond, lhs, rhs, expected):
        val = E.Valuation(regs={CMP_LHS.name: lhs, CMP_RHS.name: rhs})
        assert E.evaluate(condition_expr(cond), val) == expected

    def test_negated_condition_is_complement(self):
        val = E.Valuation(regs={CMP_LHS.name: 3, CMP_RHS.name: 9})
        for cond in Cond:
            a = E.evaluate(condition_expr(cond), val)
            b = E.evaluate(condition_expr(cond.negated()), val)
            assert a != b
