"""Unit tests for the assembler/disassembler and AsmProgram."""

import pytest

from repro.errors import IsaError
from repro.isa.assembler import assemble, disassemble, format_instruction
from repro.isa.instructions import (
    AluImm,
    AluOp,
    AluReg,
    B,
    BCond,
    CmpImm,
    CmpReg,
    Cond,
    Ldr,
    MovImm,
    MovReg,
    Nop,
    Ret,
    Str,
    TstImm,
)
from repro.isa.program import AsmProgram
from repro.isa.registers import Reg, x


class TestParsing:
    def test_mov_forms(self):
        p = assemble("mov x1, #0x40\nmov x2, x1")
        assert p[0] == MovImm(x(1), 0x40)
        assert p[1] == MovReg(x(2), x(1))

    def test_alu_forms(self):
        p = assemble("add x1, x2, x3\nsub x1, x2, #8\nlsl x4, x5, #6")
        assert p[0] == AluReg(AluOp.ADD, x(1), x(2), x(3))
        assert p[1] == AluImm(AluOp.SUB, x(1), x(2), 8)
        assert p[2] == AluImm(AluOp.LSL, x(4), x(5), 6)

    def test_memory_forms(self):
        p = assemble(
            "ldr x1, [x2]\nldr x1, [x2, x3]\nldr x1, [x2, #0x40]\n"
            "str x1, [x2, x3]"
        )
        assert p[0] == Ldr(x(1), x(2))
        assert p[1] == Ldr(x(1), x(2), x(3))
        assert p[2] == Ldr(x(1), x(2), None, 0x40)
        assert p[3] == Str(x(1), x(2), x(3))

    def test_compare_and_branch(self):
        p = assemble(
            "cmp x1, x2\ncmp x1, #5\ntst x1, #0x80\nb.ge out\nb out\nout:\nret"
        )
        assert p[0] == CmpReg(x(1), x(2))
        assert p[1] == CmpImm(x(1), 5)
        assert p[2] == TstImm(x(1), 0x80)
        assert p[3] == BCond(Cond.GE, "out")
        assert p[4] == B("out")
        assert p[5] == Ret()

    def test_labels_and_comments(self):
        p = assemble(
            """
            start:              // entry
                nop             ; a comment
                b start
            """
        )
        assert p.labels == {"start": 0}
        assert p[0] == Nop()

    def test_end_label(self):
        p = assemble("b end\nend:")
        assert p.labels["end"] == 1

    def test_negative_immediate(self):
        p = assemble("mov x1, #-8")
        assert p[0] == MovImm(x(1), -8)


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError):
            assemble("frobnicate x1, x2")

    def test_undefined_label(self):
        with pytest.raises(IsaError):
            assemble("b nowhere")

    def test_duplicate_label(self):
        with pytest.raises(IsaError):
            assemble("a:\nnop\na:\nret")

    def test_bad_register(self):
        with pytest.raises(IsaError):
            assemble("mov y1, #0")
        with pytest.raises(IsaError):
            assemble("mov x99, #0")

    def test_wrong_operand_count(self):
        with pytest.raises(IsaError):
            assemble("mov x1")

    def test_bad_memory_operand(self):
        with pytest.raises(IsaError):
            assemble("ldr x1, x2")

    def test_ldr_register_and_immediate_offset_conflict(self):
        with pytest.raises(IsaError):
            Ldr(x(1), x(2), x(3), 8)

    def test_unknown_condition(self):
        with pytest.raises(IsaError):
            assemble("b.zz end\nend:")


class TestRoundTrip:
    SOURCE = """
        mov x1, #0x40
        add x2, x0, x1
        ldr x3, [x2, x1]
        ldr x4, [x2, #8]
        str x3, [x2]
        cmp x3, x4
        tst x3, #0x80
        b.ge skip
        ldr x5, [x6, x3]
    skip:
        b done
        nop
    done:
        ret
    """

    def test_disassemble_reassembles_identically(self):
        p = assemble(self.SOURCE)
        q = assemble(disassemble(p))
        assert list(p) == list(q)
        assert p.labels == q.labels

    def test_format_every_instruction(self):
        for inst in assemble(self.SOURCE):
            assert format_instruction(inst)


class TestAsmProgram:
    def test_input_registers(self, template_a):
        names = {r.name for r in template_a.input_registers()}
        assert names == {"x0", "x1", "x4", "x5"}

    def test_registers_used(self, template_a):
        names = {r.name for r in template_a.registers_used()}
        assert {"x0", "x1", "x2", "x4", "x5", "x6"} == names

    def test_loads(self, template_a):
        assert [i for i, _ in template_a.loads()] == [0, 3]

    def test_count_branches(self, template_a):
        assert template_a.count_branches() == 1

    def test_target_index(self, template_a):
        assert template_a.target_index("end") == 4
        with pytest.raises(IsaError):
            template_a.target_index("nope")

    def test_label_out_of_range_rejected(self):
        with pytest.raises(IsaError):
            AsmProgram([Nop()], {"far": 5})

    def test_reads_and_writes(self):
        inst = Ldr(x(1), x(2), x(3))
        assert inst.reads() == (x(2), x(3))
        assert inst.writes() == (x(1),)
        assert inst.is_load()
        store = Str(x(1), x(2))
        assert x(1) in store.reads()
        assert store.writes() == ()
