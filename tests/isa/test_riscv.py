"""Unit tests for the RISC-V front-end."""

import pytest

from repro.errors import IsaError
from repro.hw.core import Core
from repro.hw.state import MachineState, Memory
from repro.isa.instructions import (
    AluImm,
    AluOp,
    AluReg,
    B,
    BCond,
    CmpImm,
    CmpReg,
    Cond,
    Ldr,
    MovImm,
    MovReg,
    Nop,
    Ret,
    Str,
)
from repro.isa.lifter import lift
from repro.isa.registers import x
from repro.isa.riscv import assemble_riscv
from repro.symbolic.executor import execute


class TestParsing:
    def test_li_and_mv(self):
        p = assemble_riscv("li a0, 0x40\nmv a1, a0\nmv a2, zero")
        assert p[0] == MovImm(x(10), 0x40)
        assert p[1] == MovReg(x(11), x(10))
        assert p[2] == MovImm(x(12), 0)

    def test_alu_register_and_immediate(self):
        p = assemble_riscv(
            "add a0, a1, a2\nsub t0, t1, t2\nxor s2, s3, s4\n"
            "addi a0, a1, -8\nslli a3, a4, 6\nmul a5, a6, a7"
        )
        assert p[0] == AluReg(AluOp.ADD, x(10), x(11), x(12))
        assert p[1] == AluReg(AluOp.SUB, x(5), x(6), x(7))
        assert p[2] == AluReg(AluOp.EOR, x(18), x(19), x(20))
        assert p[3] == AluImm(AluOp.ADD, x(10), x(11), -8)
        assert p[4] == AluImm(AluOp.LSL, x(13), x(14), 6)
        assert p[5] == AluReg(AluOp.MUL, x(15), x(16), x(17))

    def test_loads_and_stores(self):
        p = assemble_riscv("ld a0, 8(a1)\nld a2, 0(a3)\nsd a0, 16(sp)")
        assert p[0] == Ldr(x(10), x(11), None, 8)
        assert p[1] == Ldr(x(12), x(13), None, 0)
        assert p[2] == Str(x(10), x(2), None, 16)

    def test_branches_expand_to_cmp_pairs(self):
        p = assemble_riscv("blt a0, a1, out\nnop\nout:\nret")
        assert p[0] == CmpReg(x(10), x(11))
        assert p[1] == BCond(Cond.LT, "out")
        assert p.labels["out"] == 3

    def test_zero_branches(self):
        p = assemble_riscv("beqz a0, out\nbnez a1, out\nout:\nret")
        assert p[0] == CmpImm(x(10), 0)
        assert p[1] == BCond(Cond.EQ, "out")
        assert p[2] == CmpImm(x(11), 0)
        assert p[3] == BCond(Cond.NE, "out")

    def test_add_with_zero_becomes_move(self):
        p = assemble_riscv("add a0, a1, zero\nadd a2, x0, a3")
        assert p[0] == MovReg(x(10), x(11))
        assert p[1] == MovReg(x(12), x(13))

    def test_unconditional_jump_and_misc(self):
        p = assemble_riscv("j out\nnop\nout:\nret")
        assert p[0] == B("out")
        assert p[1] == Nop()
        assert p[2] == Ret()

    def test_all_branch_conditions(self):
        for mnemonic, cond in [
            ("beq", Cond.EQ),
            ("bne", Cond.NE),
            ("blt", Cond.LT),
            ("bge", Cond.GE),
            ("bltu", Cond.LO),
            ("bgeu", Cond.HS),
        ]:
            p = assemble_riscv(f"{mnemonic} a0, a1, out\nout:\nret")
            assert p[1] == BCond(cond, "out")

    def test_comments(self):
        p = assemble_riscv("nop  # hash comment\nnop // slash comment")
        assert len(p) == 2


class TestRejections:
    def test_general_zero_use_rejected(self):
        with pytest.raises(IsaError):
            assemble_riscv("sub a0, zero, a1")
        with pytest.raises(IsaError):
            assemble_riscv("ld a0, 0(zero)")

    def test_x31_rejected(self):
        with pytest.raises(IsaError):
            assemble_riscv("mv x31, a0")
        with pytest.raises(IsaError):
            assemble_riscv("add t6, a0, a1")

    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError):
            assemble_riscv("vadd.vv v0, v1, v2")

    def test_bad_register(self):
        with pytest.raises(IsaError):
            assemble_riscv("mv q7, a0")


class TestSemantics:
    def test_executes_on_the_core(self):
        src = """
            li  a0, 6
            li  a1, 7
            mul a2, a0, a1
            sd  a2, 0(sp)
            ld  a3, 0(sp)
            ret
        """
        program = assemble_riscv(src)
        state = MachineState(regs={"x2": 0x1000})
        Core().execute(program, state)
        assert state.regs["x12"] == 42
        assert state.regs["x13"] == 42

    def test_branch_semantics(self):
        src = """
            bltu a0, a1, small
            li a2, 1
            ret
        small:
            li a2, 2
            ret
        """
        program = assemble_riscv(src)
        lo = MachineState(regs={"x10": 1, "x11": 5})
        Core().execute(program, lo)
        assert lo.regs["x12"] == 2
        hi = MachineState(regs={"x10": 9, "x11": 5})
        Core().execute(program, hi)
        assert hi.regs["x12"] == 1

    def test_lifts_and_symbolically_executes(self):
        src = """
            ld  a2, 0(a0)
            bge a1, a4, end
            add a3, a5, a2
            ld  a6, 0(a3)
        end:
            ret
        """
        result = execute(lift(assemble_riscv(src)))
        assert len(result) == 2

    def test_full_pipeline_finds_speculative_leak(self):
        from repro.core import TestCaseGenerator
        from repro.hw import ExperimentPlatform
        from repro.obs import MspecModel
        from repro.utils.rng import SplittableRandom

        src = """
            ld  a2, 0(a0)
            bge a1, a4, end
            add a3, a5, a2
            ld  a6, 0(a3)
        end:
            ret
        """
        asm = assemble_riscv(src, name="rv")
        gen = TestCaseGenerator(asm, MspecModel(), rng=SplittableRandom(3))
        platform = ExperimentPlatform()
        hits = 0
        for _ in range(6):
            tc = gen.generate()
            if tc is None:
                continue
            hits += platform.run_experiment(
                asm, tc.state1, tc.state2, tc.train
            ).distinguishable
        assert hits > 0
