"""Unit tests for the BIR expression language."""

import pytest

from repro.bir import expr as E
from repro.errors import BirTypeError


class TestConstruction:
    def test_const_canonicalises(self):
        assert E.Const(-1, 8).value == 0xFF
        assert E.Const(0x1FF, 8).value == 0xFF

    def test_binop_width_mismatch_rejected(self):
        with pytest.raises(BirTypeError):
            E.BinOp(E.BinOpKind.ADD, E.const(1, 8), E.const(1, 16))

    def test_cmp_width_mismatch_rejected(self):
        with pytest.raises(BirTypeError):
            E.Cmp(E.CmpKind.EQ, E.const(1, 8), E.const(1, 16))

    def test_cmp_yields_bool_width(self):
        assert E.eq(E.var("a"), E.var("b")).width == 1

    def test_ite_requires_bool_condition(self):
        with pytest.raises(BirTypeError):
            E.Ite(E.const(1, 8), E.const(0), E.const(1))

    def test_ite_arm_width_mismatch_rejected(self):
        with pytest.raises(BirTypeError):
            E.Ite(E.TRUE, E.const(0, 8), E.const(0, 16))

    def test_unop_inherits_width(self):
        assert E.UnOp(E.UnOpKind.NOT, E.const(0, 8)).width == 8


class TestBoolHelpers:
    def test_bool_not_folds_constants(self):
        assert E.bool_not(E.TRUE) == E.FALSE
        assert E.bool_not(E.FALSE) == E.TRUE

    def test_double_negation_cancels(self):
        v = E.var("c", 1)
        assert E.bool_not(E.bool_not(v)) == v

    def test_bool_and_identity_and_absorber(self):
        v = E.var("c", 1)
        assert E.bool_and(E.TRUE, v) == v
        assert E.bool_and(E.FALSE, v) == E.FALSE
        assert E.bool_and() == E.TRUE

    def test_bool_or_identity_and_absorber(self):
        v = E.var("c", 1)
        assert E.bool_or(E.FALSE, v) == v
        assert E.bool_or(E.TRUE, v) == E.TRUE
        assert E.bool_or() == E.FALSE

    def test_bool_ops_reject_wide_operands(self):
        with pytest.raises(BirTypeError):
            E.bool_and(E.const(1, 8))
        with pytest.raises(BirTypeError):
            E.bool_not(E.const(1, 8))

    def test_eq_of_identical_terms_is_true(self):
        v = E.var("a")
        assert E.eq(v, v) == E.TRUE
        assert E.ne(v, v) == E.FALSE


class TestTraversal:
    def test_variables_collects_all(self):
        e = E.add(E.var("a"), E.Load(E.MemVar(), E.var("b")))
        assert {v.name for v in e.variables()} == {"a", "b"}

    def test_variables_inside_store_chain(self):
        mem = E.MemStore(E.MemVar(), E.var("p"), E.var("q"))
        e = E.Load(mem, E.var("a"))
        assert {v.name for v in e.variables()} == {"a", "p", "q"}

    def test_memories_collects_bases(self):
        e = E.Load(E.MemVar("M1"), E.Load(E.MemVar("M2"), E.var("a")))
        assert {m.name for m in e.memories()} == {"M1", "M2"}


class TestSubstitute:
    def test_substitute_variable(self):
        e = E.add(E.var("a"), E.var("b"))
        out = E.substitute(e, {E.var("a"): E.const(5)})
        assert out == E.add(E.const(5), E.var("b"))

    def test_substitute_inside_load_and_store_chain(self):
        mem = E.MemStore(E.MemVar(), E.var("p"), E.var("q"))
        e = E.Load(mem, E.var("a"))
        out = E.substitute(e, {E.var("p"): E.const(8)})
        assert isinstance(out, E.Load)
        assert out.mem.addr == E.const(8)

    def test_substitute_memory_renames_base(self):
        e = E.Load(E.MemVar("MEM"), E.var("a"))
        out = E.substitute_memory(e, {E.MemVar("MEM"): E.MemVar("MEM#1")})
        assert out.mem == E.MemVar("MEM#1")


class TestEvaluate:
    def test_arithmetic(self):
        val = E.Valuation(regs={"a": 3, "b": 4})
        assert E.evaluate(E.add(E.var("a"), E.var("b")), val) == 7
        assert E.evaluate(E.sub(E.var("a"), E.var("b")), val) == 2**64 - 1

    def test_comparisons_signed_vs_unsigned(self):
        val = E.Valuation(regs={"a": 2**64 - 1, "b": 1})
        assert E.evaluate(E.ult(E.var("b"), E.var("a")), val) == 1
        assert E.evaluate(E.slt(E.var("a"), E.var("b")), val) == 1  # -1 < 1

    def test_unbound_variable_raises(self):
        with pytest.raises(BirTypeError):
            E.evaluate(E.var("missing"), E.Valuation())

    def test_load_from_base_memory(self):
        val = E.Valuation(regs={"a": 0x40}, mems={"MEM": {0x40: 99}})
        assert E.evaluate(E.Load(E.MemVar(), E.var("a")), val) == 99

    def test_load_unwritten_defaults_to_zero(self):
        val = E.Valuation(regs={"a": 0x40})
        assert E.evaluate(E.Load(E.MemVar(), E.var("a")), val) == 0

    def test_load_through_store_chain(self):
        mem = E.MemStore(E.MemVar(), E.const(0x40), E.const(7))
        val = E.Valuation(mems={"MEM": {0x40: 99, 0x48: 1}})
        assert E.evaluate(E.Load(mem, E.const(0x40)), val) == 7
        assert E.evaluate(E.Load(mem, E.const(0x48)), val) == 1

    def test_store_chain_shadowing_order(self):
        # Later stores shadow earlier ones at the same address.
        mem = E.MemStore(
            E.MemStore(E.MemVar(), E.const(8), E.const(1)),
            E.const(8),
            E.const(2),
        )
        assert E.evaluate(E.Load(mem, E.const(8)), E.Valuation()) == 2

    def test_ite(self):
        val = E.Valuation(regs={"c": 1})
        e = E.Ite(E.var("c", 1), E.const(10), E.const(20))
        assert E.evaluate(e, val) == 10
        val.regs["c"] = 0
        assert E.evaluate(e, val) == 20

    def test_shift_semantics(self):
        val = E.Valuation(regs={"a": 0x80})
        e = E.BinOp(E.BinOpKind.LSHR, E.var("a"), E.const(4))
        assert E.evaluate(e, val) == 8
