"""Unit tests for BIR statements, blocks, programs and the CFG."""

import pytest

from repro.bir import expr as E
from repro.bir.cfg import ControlFlowGraph
from repro.bir.program import Block, Program
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Store
from repro.bir.tags import ObsKind, ObsTag
from repro.errors import BirError


def _assign(name="a", value=0):
    return Assign(E.var(name), E.const(value))


class TestStatements:
    def test_assign_width_mismatch_rejected(self):
        with pytest.raises(BirError):
            Assign(E.var("a", 8), E.const(0, 16))

    def test_observe_guard_must_be_bool(self):
        with pytest.raises(BirError):
            Observe(ObsTag.BASE, ObsKind.PC, (E.const(0),), guard=E.const(0, 8))

    def test_cjmp_condition_must_be_bool(self):
        with pytest.raises(BirError):
            CJmp(E.const(0, 8), "a", "b")

    def test_observe_defaults(self):
        obs = Observe(ObsTag.BASE, ObsKind.PC, (E.const(0),))
        assert obs.guard == E.TRUE
        assert obs.exprs == (E.const(0),)


class TestBlocks:
    def test_terminator_must_terminate(self):
        with pytest.raises(BirError):
            Block("b", (), _assign())

    def test_body_cannot_contain_terminators(self):
        with pytest.raises(BirError):
            Block("b", (Jmp("x"),), Halt())

    def test_successors(self):
        assert Block("b", (), Jmp("t")).successors() == ("t",)
        cjmp = Block("b", (), CJmp(E.var("c", 1), "t", "f"))
        assert cjmp.successors() == ("t", "f")
        assert Block("b", (), Halt()).successors() == ()

    def test_with_body_replaces(self):
        block = Block("b", (), Halt())
        updated = block.with_body([_assign()])
        assert len(updated.body) == 1
        assert updated.label == "b"


class TestPrograms:
    def test_empty_program_rejected(self):
        with pytest.raises(BirError):
            Program([])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(BirError):
            Program([Block("a", (), Halt()), Block("a", (), Halt())])

    def test_undefined_jump_target_rejected(self):
        with pytest.raises(BirError):
            Program([Block("a", (), Jmp("missing"))])

    def test_entry_is_first_block(self):
        p = Program([Block("x", (), Jmp("y")), Block("y", (), Halt())])
        assert p.entry == "x"
        assert p.entry_block().label == "x"

    def test_block_lookup_and_errors(self):
        p = Program([Block("x", (), Halt())])
        assert p.block("x").label == "x"
        with pytest.raises(BirError):
            p.block("nope")

    def test_statements_iterates_in_order(self):
        p = Program(
            [
                Block("x", (_assign("a"),), Jmp("y")),
                Block("y", (_assign("b"),), Halt()),
            ]
        )
        labels = [label for label, _stmt in p.statements()]
        assert labels == ["x", "x", "y", "y"]

    def test_count_observations(self):
        obs = Observe(ObsTag.BASE, ObsKind.PC, (E.const(0),))
        p = Program([Block("x", (obs, _assign()), Halt())])
        assert p.count_observations() == 1

    def test_map_blocks_preserves_order(self):
        p = Program([Block("x", (), Jmp("y")), Block("y", (), Halt())])
        mapped = p.map_blocks(lambda b: b.with_body([_assign()]))
        assert mapped.labels == ("x", "y")
        assert all(len(b.body) == 1 for b in mapped)


class TestCfg:
    def _diamond(self):
        cond = E.var("c", 1)
        return Program(
            [
                Block("top", (), CJmp(cond, "left", "right")),
                Block("left", (), Jmp("join")),
                Block("right", (), Jmp("join")),
                Block("join", (), Halt()),
            ]
        )

    def test_successors_and_predecessors(self):
        cfg = ControlFlowGraph(self._diamond())
        assert cfg.successors["top"] == ("left", "right")
        assert sorted(cfg.predecessors["join"]) == ["left", "right"]

    def test_reachability(self):
        p = Program(
            [
                Block("a", (), Halt()),
                Block("orphan", (), Halt()),
            ]
        )
        assert ControlFlowGraph(p).reachable() == {"a"}

    def test_acyclic_detection(self):
        assert ControlFlowGraph(self._diamond()).is_acyclic()
        loop = Program([Block("a", (), Jmp("a"))])
        assert not ControlFlowGraph(loop).is_acyclic()

    def test_topological_order(self):
        order = ControlFlowGraph(self._diamond()).topological_order()
        assert order[0] == "top"
        assert order[-1] == "join"

    def test_topological_order_rejects_cycles(self):
        loop = Program([Block("a", (), Jmp("a"))])
        with pytest.raises(BirError):
            ControlFlowGraph(loop).topological_order()

    def test_mutually_exclusive_arms(self):
        cfg = ControlFlowGraph(self._diamond())
        assert cfg.mutually_exclusive_arms() == [("top", "left", "right")]

    def test_blocks_on_path_from(self):
        cfg = ControlFlowGraph(self._diamond())
        assert cfg.blocks_on_path_from("left") == {"left", "join"}
