"""Unit tests for the cache registry behind the interned expression core."""

import pytest

from repro.bir import expr as E
from repro.bir import intern
from repro.bir.simp import simplify
from repro.smt.compiled import compile_expr


@pytest.fixture(autouse=True)
def _restore_enabled():
    """Every test leaves the layer enabled (the process-wide default)."""
    yield
    intern.set_enabled(True)


class TestRegistry:
    def test_register_returns_stats_object(self):
        stats = intern.register_cache(
            "test_scratch", lambda: None, lambda: 0
        )
        assert stats.hits == 0
        stats.hits += 3
        assert intern.cache_stats()["test_scratch"]["hits"] == 3

    def test_reregistration_keeps_counters(self):
        stats = intern.register_cache("test_rereg", lambda: None, lambda: 0)
        stats.misses = 5
        again = intern.register_cache("test_rereg", lambda: None, lambda: 1)
        assert again is stats
        assert intern.cache_stats()["test_rereg"]["misses"] == 5
        assert intern.cache_stats()["test_rereg"]["size"] == 1

    def test_counter_totals_flat_view(self):
        stats = intern.register_cache("test_flat", lambda: None, lambda: 0)
        stats.hits, stats.misses = 2, 7
        totals = intern.counter_totals()
        assert totals["test_flat_hits"] == 2
        assert totals["test_flat_misses"] == 7

    def test_clear_caches_invokes_hooks_and_keeps_counters(self):
        cleared = []
        stats = intern.register_cache(
            "test_clear", lambda: cleared.append(True), lambda: 0
        )
        stats.hits = 4
        intern.clear_caches()
        assert cleared == [True]
        assert stats.hits == 4

    def test_hit_rate(self):
        stats = intern.CacheStats()
        assert stats.hit_rate == 0.0
        stats.hits, stats.misses = 3, 1
        assert stats.hit_rate == 0.75

    def test_describe_lines_mention_each_cache(self):
        intern.register_cache("test_describe", lambda: None, lambda: 2)
        lines = intern.describe()
        assert any(line.startswith("test_describe:") for line in lines)


class TestEnableDisable:
    def test_disable_stops_canonicalisation(self):
        intern.set_enabled(False)
        assert not intern.enabled()
        a = E.add(E.var("x"), E.const(1))
        b = E.add(E.var("x"), E.const(1))
        assert a is not b
        assert a == b  # structural fallback still holds
        assert hash(a) == hash(b)

    def test_reenable_restarts_interning_cold(self):
        intern.set_enabled(False)
        intern.set_enabled(True)
        a = E.add(E.var("x"), E.const(1))
        b = E.add(E.var("x"), E.const(1))
        assert a is b

    def test_disabled_layer_is_observationally_equal(self):
        expr = E.band(
            E.lshr(E.add(E.var("a"), E.const(64)), E.const(6)), E.const(127)
        )
        val = E.Valuation(regs={"a": 0x80000})
        enabled_simp = simplify(expr)
        enabled_value = compile_expr(expr)(val.regs, val.read_mem)
        intern.set_enabled(False)
        assert simplify(expr) == enabled_simp
        assert compile_expr(expr)(val.regs, val.read_mem) == enabled_value
        assert enabled_value == E.evaluate(expr, val)

    def test_clear_generation_equality_bridge(self):
        # Nodes created before a clear compare equal (and hash equal) to
        # re-created ones even though they are different objects.
        old = E.add(E.var("y"), E.const(3))
        intern.clear_caches()
        new = E.add(E.var("y"), E.const(3))
        assert old == new
        assert hash(old) == hash(new)
        assert len({old, new}) == 1
