"""Unit tests for the BIR text parser."""

import pytest

from repro.bir import expr as E
from repro.bir.parser import parse_expr, parse_program, parse_stmt
from repro.bir.printer import format_expr, format_program, format_stmt
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Store
from repro.bir.tags import ObsKind, ObsTag
from repro.errors import BirError
from repro.isa import assemble, lift
from repro.obs.base import AttackerRegion
from repro.obs.models import MctModel, MpartRefinedModel, MspecModel
from tests.conftest import RUNNING_EXAMPLE, TEMPLATE_A, TEMPLATE_C


class TestParseExpr:
    def test_atoms(self):
        assert parse_expr("x0") == E.var("x0")
        assert parse_expr("42") == E.const(42)
        assert parse_expr("0xff") == E.const(0xFF)

    def test_binops(self):
        assert parse_expr("(a + b)") == E.add(E.var("a"), E.var("b"))
        assert parse_expr("(a >>u 6)") == E.lshr(E.var("a"), E.const(6))

    def test_comparisons(self):
        assert parse_expr("(a <u b)") == E.ult(E.var("a"), E.var("b"))
        assert parse_expr("(a <s b)") == E.slt(E.var("a"), E.var("b"))
        assert parse_expr("(a == b)") == E.Cmp(E.CmpKind.EQ, E.var("a"), E.var("b"))

    def test_unops(self):
        inner = E.ult(E.var("a"), E.var("b"))
        assert parse_expr("~(a <u b)") == E.UnOp(E.UnOpKind.NOT, inner)
        assert parse_expr("-a") == E.UnOp(E.UnOpKind.NEG, E.var("a"))

    def test_load_and_store_chain(self):
        assert parse_expr("MEM[a]") == E.Load(E.MemVar(), E.var("a"))
        chained = parse_expr("MEM{p := 1}[a]")
        assert chained == E.Load(
            E.MemStore(E.MemVar(), E.var("p"), E.const(1)), E.var("a")
        )

    def test_ite(self):
        expr = parse_expr("(if (a <u b) then a else b)")
        assert isinstance(expr, E.Ite)

    def test_widths_mapping(self):
        assert parse_expr("g", widths={"g": 1}).width == 1

    def test_errors(self):
        with pytest.raises(BirError):
            parse_expr("(a ?? b)")
        with pytest.raises(BirError):
            parse_expr("a b")
        with pytest.raises(BirError):
            parse_expr("(a + b")

    def test_expr_roundtrip_samples(self):
        samples = [
            E.add(E.var("x0"), E.const(0x40)),
            E.band(E.lshr(E.var("a"), E.const(6)), E.const(127)),
            E.Ite(E.ult(E.var("a"), E.var("b")), E.var("a"), E.var("b")),
            E.Load(E.MemStore(E.MemVar(), E.var("p"), E.var("q")), E.var("a")),
            E.bool_not(E.slt(E.var("a"), E.var("b"))),
        ]
        for expr in samples:
            assert parse_expr(format_expr(expr)) == expr


class TestParseStmt:
    def test_assign(self):
        assert parse_stmt("a := (b + 1)") == Assign(
            E.var("a"), E.add(E.var("b"), E.const(1))
        )

    def test_store(self):
        stmt = parse_stmt("MEM[(a + 8)] := b")
        assert isinstance(stmt, Store)
        assert stmt.mem == E.MemVar()

    def test_observe_with_guard(self):
        stmt = parse_stmt("observe<BASE>[x0] when (x0 <u 8) (load)")
        assert isinstance(stmt, Observe)
        assert stmt.tag is ObsTag.BASE
        assert stmt.kind is ObsKind.LOAD_ADDR
        assert stmt.guard != E.TRUE

    def test_observe_pc_kind_from_label(self):
        stmt = parse_stmt("observe<BASE>[3] (pc:3)")
        assert stmt.kind is ObsKind.PC

    def test_terminators(self):
        assert parse_stmt("jmp next") == Jmp("next")
        cjmp = parse_stmt("cjmp (a <u b) ? t : f")
        assert isinstance(cjmp, CJmp)
        assert parse_stmt("halt (ret)") == Halt(reason="ret")

    def test_stmt_roundtrip(self):
        statements = [
            Assign(E.var("a"), E.add(E.var("b"), E.const(2))),
            Store(E.MemVar(), E.var("a"), E.var("b")),
            Jmp("x"),
            Halt(reason="end"),
        ]
        for stmt in statements:
            assert parse_stmt(format_stmt(stmt)) == stmt

    def test_unparseable(self):
        with pytest.raises(BirError):
            parse_stmt("frobnicate the thing")


class TestProgramRoundTrip:
    @pytest.mark.parametrize("source", [RUNNING_EXAMPLE, TEMPLATE_A, TEMPLATE_C])
    def test_lifted_program(self, source):
        program = lift(assemble(source))
        text = format_program(program)
        assert format_program(parse_program(text)) == text

    @pytest.mark.parametrize(
        "model",
        [
            MctModel(),
            MspecModel(),
            MpartRefinedModel(AttackerRegion(61, 127)),
        ],
    )
    def test_augmented_program(self, model):
        program = model.augment(lift(assemble(TEMPLATE_A)))
        text = format_program(program)
        assert format_program(parse_program(text)) == text

    def test_parsed_program_executes_identically(self):
        from repro.hw.platform import StateInputs
        from repro.symbolic.concrete import run_concrete

        program = MspecModel().augment(lift(assemble(TEMPLATE_A)))
        parsed = parse_program(format_program(program))
        inputs = StateInputs(
            regs={"x0": 0x80000, "x1": 8, "x4": 2, "x5": 0x90000},
            memory={0x80008: 0x40},
        )
        original = run_concrete(program, inputs)
        reparsed = run_concrete(parsed, inputs)
        assert original.observations == reparsed.observations
        assert original.block_trace == reparsed.block_trace

    def test_program_name_preserved(self):
        program = lift(assemble("ret", name="tiny"))
        assert parse_program(format_program(program)).name == "tiny"

    def test_errors(self):
        with pytest.raises(BirError):
            parse_program("a := 1")  # statement before any label
        with pytest.raises(BirError):
            parse_program("lbl:")  # no terminator
