"""Unit tests for the expression simplifier."""

from repro.bir import expr as E
from repro.bir.simp import simplify


class TestConstantFolding:
    def test_binop_folds(self):
        assert simplify(E.add(E.const(2), E.const(3))) == E.const(5)
        assert simplify(E.sub(E.const(2), E.const(3))) == E.const(2**64 - 1)

    def test_cmp_folds(self):
        assert simplify(E.ult(E.const(1), E.const(2))) == E.TRUE
        assert simplify(E.eq(E.const(1), E.const(2))) == E.FALSE

    def test_signed_cmp_folds(self):
        minus_one = E.const(-1)
        assert simplify(E.slt(minus_one, E.const(0))) == E.TRUE

    def test_unop_folds(self):
        assert simplify(E.UnOp(E.UnOpKind.NEG, E.const(1, 8))) == E.const(0xFF, 8)

    def test_double_negation(self):
        v = E.var("a")
        e = E.UnOp(E.UnOpKind.NOT, E.UnOp(E.UnOpKind.NOT, v))
        assert simplify(e) == v


class TestIdentities:
    def test_add_zero(self):
        v = E.var("a")
        assert simplify(E.add(v, E.const(0))) == v
        assert simplify(E.add(E.const(0), v)) == v

    def test_add_reassociates_constants(self):
        v = E.var("a")
        e = E.add(E.add(v, E.const(3)), E.const(4))
        assert simplify(e) == E.add(v, E.const(7))

    def test_sub_self_is_zero(self):
        v = E.var("a")
        assert simplify(E.sub(v, v)) == E.const(0)

    def test_and_with_zero_and_ones(self):
        v = E.var("a")
        assert simplify(E.band(v, E.const(0))) == E.const(0)
        ones = E.const((1 << 64) - 1)
        assert simplify(E.band(v, ones)) == v
        assert simplify(E.band(v, v)) == v

    def test_or_identities(self):
        v = E.var("a")
        zero = E.const(0)
        assert simplify(E.BinOp(E.BinOpKind.OR, v, zero)) == v
        ones = E.const((1 << 64) - 1)
        assert simplify(E.BinOp(E.BinOpKind.OR, v, ones)) == ones

    def test_xor_self_is_zero(self):
        v = E.var("a")
        assert simplify(E.BinOp(E.BinOpKind.XOR, v, v)) == E.const(0)

    def test_mul_identities(self):
        v = E.var("a")
        assert simplify(E.BinOp(E.BinOpKind.MUL, v, E.const(1))) == v
        assert simplify(E.BinOp(E.BinOpKind.MUL, v, E.const(0))) == E.const(0)

    def test_shift_by_zero(self):
        v = E.var("a")
        assert simplify(E.lshr(v, E.const(0))) == v

    def test_cmp_of_identical_terms(self):
        v = E.add(E.var("a"), E.var("b"))
        assert simplify(E.Cmp(E.CmpKind.ULE, v, v)) == E.TRUE
        assert simplify(E.Cmp(E.CmpKind.ULT, v, v)) == E.FALSE


class TestIte:
    def test_constant_condition(self):
        e = E.Ite(E.TRUE, E.var("a"), E.var("b"))
        assert simplify(e) == E.var("a")
        e = E.Ite(E.FALSE, E.var("a"), E.var("b"))
        assert simplify(e) == E.var("b")

    def test_equal_arms_collapse(self):
        e = E.Ite(E.var("c", 1), E.var("a"), E.var("a"))
        assert simplify(e) == E.var("a")


class TestLoads:
    def test_select_over_matching_store(self):
        mem = E.MemStore(E.MemVar(), E.var("a"), E.const(7))
        e = E.Load(mem, E.var("a"))
        assert simplify(e) == E.const(7)

    def test_select_skips_distinct_constant_store(self):
        mem = E.MemStore(E.MemVar(), E.const(8), E.const(7))
        e = E.Load(mem, E.const(16))
        assert simplify(e) == E.Load(E.MemVar(), E.const(16))

    def test_select_keeps_undecidable_store(self):
        mem = E.MemStore(E.MemVar(), E.var("p"), E.const(7))
        e = E.Load(mem, E.var("a"))
        out = simplify(e)
        assert isinstance(out, E.Load)
        assert isinstance(out.mem, E.MemStore)


class TestSoundness:
    def test_simplify_preserves_semantics_on_samples(self):
        val = E.Valuation(
            regs={"a": 0x123, "b": 0xFFFF, "c": 1},
            mems={"MEM": {0x123: 5}},
        )
        samples = [
            E.add(E.add(E.var("a"), E.const(1)), E.const(2)),
            E.band(E.lshr(E.var("b"), E.const(6)), E.const(127)),
            E.Ite(E.var("c", 1), E.var("a"), E.var("b")),
            E.Load(E.MemStore(E.MemVar(), E.var("a"), E.const(9)), E.var("a")),
            E.bool_and(E.ult(E.var("a"), E.var("b")), E.TRUE),
        ]
        for e in samples:
            assert E.evaluate(e, val) == E.evaluate(simplify(e), val)
