"""Unit tests for the BIR pretty printer."""

from repro.bir import expr as E
from repro.bir.printer import format_expr, format_program, format_stmt
from repro.bir.program import Block, Program
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Store
from repro.bir.tags import ObsKind, ObsTag


class TestFormatExpr:
    def test_atoms(self):
        assert format_expr(E.var("x0")) == "x0"
        assert format_expr(E.const(5)) == "5"
        assert format_expr(E.const(255)) == "0xff"

    def test_operators(self):
        assert format_expr(E.add(E.var("a"), E.var("b"))) == "(a + b)"
        assert format_expr(E.ult(E.var("a"), E.var("b"))) == "(a <u b)"
        assert format_expr(E.slt(E.var("a"), E.var("b"))) == "(a <s b)"

    def test_load_and_store_chain(self):
        load = E.Load(E.MemVar(), E.var("a"))
        assert format_expr(load) == "MEM[a]"
        chained = E.Load(
            E.MemStore(E.MemVar(), E.var("p"), E.const(1)), E.var("a")
        )
        assert format_expr(chained) == "MEM{p := 1}[a]"

    def test_ite(self):
        e = E.Ite(E.var("c", 1), E.const(1), E.const(2))
        assert format_expr(e) == "(if c then 1 else 2)"


class TestFormatStmt:
    def test_assign(self):
        assert format_stmt(Assign(E.var("a"), E.const(1))) == "a := 1"

    def test_store(self):
        s = Store(E.MemVar(), E.var("a"), E.var("b"))
        assert format_stmt(s) == "MEM[a] := b"

    def test_observe_with_guard_and_label(self):
        obs = Observe(
            ObsTag.REFINED,
            ObsKind.LOAD_ADDR,
            (E.var("a"),),
            guard=E.var("g", 1),
            label="probe",
        )
        text = format_stmt(obs)
        assert "observe<REFINED>" in text
        assert "when g" in text
        assert "(probe)" in text

    def test_terminators(self):
        assert format_stmt(Jmp("x")) == "jmp x"
        assert "cjmp" in format_stmt(CJmp(E.var("c", 1), "t", "f"))
        assert "halt" in format_stmt(Halt())


def test_format_program_contains_all_blocks():
    p = Program(
        [
            Block("a", (Assign(E.var("v"), E.const(1)),), Jmp("b")),
            Block("b", (), Halt()),
        ],
        name="demo",
    )
    text = format_program(p)
    assert "program demo:" in text
    assert "a:" in text and "b:" in text
    assert "v := 1" in text
