"""Unit tests for Flush+Reload and the SiSCLoak proofs of concept."""

import pytest

from repro.attacks.flushreload import FlushReload
from repro.attacks.siscloak import (
    A_BASE,
    B_BASE,
    LINE,
    SECRET_FLAG,
    SiSCloakAttack,
    siscloak_classification_program,
    siscloak_v1_program,
)
from repro.hw.core import Core, CoreConfig
from repro.hw.state import MachineState, Memory
from repro.isa.assembler import assemble


class TestFlushReload:
    def test_detects_victim_access(self):
        core = Core()
        fr = FlushReload(core)
        monitored = [0x5000, 0x5040, 0x5080]
        fr.flush(monitored)
        core.execute(
            assemble("ldr x1, [x0]\nret"),
            MachineState(regs={"x0": 0x5040}),
        )
        assert fr.hot_addresses(monitored) == [0x5040]

    def test_no_access_no_hits(self):
        core = Core()
        fr = FlushReload(core)
        monitored = [0x5000, 0x5040]
        fr.flush(monitored)
        assert fr.hot_addresses(monitored) == []

    def test_probe_results_carry_latency(self):
        core = Core()
        fr = FlushReload(core)
        core.timed_access(0x5000)
        results = fr.reload([0x5000])
        assert results[0].hit
        assert results[0].latency == core.config.hit_latency

    def test_threshold_between_latencies(self):
        core = Core()
        fr = FlushReload(core)
        assert core.config.hit_latency < fr.threshold < core.config.miss_latency


def _v1_setup():
    size = 4 * 8
    secret = 37 * LINE
    memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
    memory[A_BASE + size] = secret
    return size, secret, memory


class TestSiSCloakV1:
    def test_recovers_out_of_bounds_secret(self):
        size, secret, memory = _v1_setup()
        attack = SiSCloakAttack(siscloak_v1_program(), memory)
        outcome = attack.recover(
            benign_regs={"x0": 8, "x1": size},
            malicious_regs={"x0": size, "x1": size},
            secret=secret,
        )
        assert outcome.success
        assert outcome.recovered == secret

    def test_requires_training(self):
        size, secret, memory = _v1_setup()
        attack = SiSCloakAttack(siscloak_v1_program(), memory)
        # Train the predictor toward "taken" (the out-of-bounds direction):
        # then the malicious run predicts correctly and nothing leaks.
        attack.train({"x0": size, "x1": size})
        hot = attack.leak_once({"x0": size, "x1": size})
        assert hot == []

    def test_no_leak_without_vulnerable_speculation(self):
        size, secret, memory = _v1_setup()
        attack = SiSCloakAttack(
            siscloak_v1_program(),
            memory,
            core_config=CoreConfig(spec_window=0),
        )
        outcome = attack.recover(
            benign_regs={"x0": 8, "x1": size},
            malicious_regs={"x0": size, "x1": size},
            secret=secret,
        )
        assert not outcome.success

    def test_architectural_result_unaffected(self):
        size, secret, memory = _v1_setup()
        core = Core()
        state = MachineState(
            regs={"x0": size, "x1": size}, memory=Memory(memory)
        )
        core.execute(siscloak_v1_program(), state)
        assert state.regs["x3"] == 0  # the use never retires


class TestSiSCloakClassification:
    def test_recovers_confidential_element(self):
        secret = SECRET_FLAG | (29 * LINE)
        memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
        memory[A_BASE + 4 * 8] = secret
        attack = SiSCloakAttack(
            siscloak_classification_program(),
            memory,
            candidate_offsets=[SECRET_FLAG | (i * LINE) for i in range(64)],
        )
        outcome = attack.recover(
            benign_regs={"x0": 8},
            malicious_regs={"x0": 4 * 8},
            secret=secret,
        )
        assert outcome.success

    def test_public_element_leaks_nothing_new(self):
        memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
        memory[A_BASE + 4 * 8] = SECRET_FLAG | (29 * LINE)
        attack = SiSCloakAttack(siscloak_classification_program(), memory)
        # Benign access vs. benign baseline: the difference is empty.
        outcome = attack.recover(
            benign_regs={"x0": 8},
            malicious_regs={"x0": 8},
            secret=12345,
        )
        assert outcome.recovered is None
