"""Shared fixtures: deterministic RNGs and canonical sample programs."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.utils.rng import SplittableRandom


@pytest.fixture
def rng() -> SplittableRandom:
    return SplittableRandom(1234)


#: The paper's Fig. 2 running example, in mini-ISA form.
RUNNING_EXAMPLE = """
    ldr x2, [x0]
    add x1, x1, #1
    cmp x0, x1
    b.ge end
    ldr x3, [x2]
end:
    ret
"""

#: Fig. 5 Template A shape with fixed registers.
TEMPLATE_A = """
    ldr x2, [x0, x1]
    cmp x1, x4
    b.ge end
    ldr x6, [x5, x2]
end:
    ret
"""

#: Fig. 7 Template C shape (two causally dependent loads in the body).
TEMPLATE_C = """
    cmp x1, x2
    b.ge end
    ldr x6, [x5, x3]
    ldr x8, [x7, x6]
end:
    ret
"""

#: Straight-line stride of loads (Fig. 5 stride template).
STRIDE = """
    ldr x1, [x0]
    ldr x2, [x0, #0x40]
    ldr x3, [x0, #0x80]
    ret
"""

#: Template D shape: a load behind an unconditional branch.
TEMPLATE_D = """
    ldr x1, [x2, x3]
    b end
    ldr x4, [x5, x6]
end:
    ret
"""


@pytest.fixture
def running_example():
    return assemble(RUNNING_EXAMPLE, name="fig2")


@pytest.fixture
def template_a():
    return assemble(TEMPLATE_A, name="templateA")


@pytest.fixture
def template_c():
    return assemble(TEMPLATE_C, name="templateC")


@pytest.fixture
def stride_program():
    return assemble(STRIDE, name="stride")


@pytest.fixture
def template_d():
    return assemble(TEMPLATE_D, name="templateD")
