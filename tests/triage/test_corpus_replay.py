"""Witness serialization, the corpus directory, and corpus replay.

The checked-in seed corpus at ``tests/triage/corpus/`` is part of the
test contract: every witness in it must re-certify deterministically on
the current simulator at any worker count (CI replays it too).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.errors import TriageError
from repro.isa.assembler import disassemble
from repro.triage import (
    WITNESS_VERSION,
    Witness,
    WitnessCorpus,
    minimize_witness,
    model_from_json,
    model_to_json,
    platform_from_json,
    platform_to_json,
)
from repro.triage.replay import replay_corpus, replay_witness
from repro.triage.signature import compute_signature

SEED_CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


@pytest.fixture(scope="session")
def prefetch_witness(prefetch_case) -> Witness:
    minimized = minimize_witness(
        prefetch_case["program"],
        prefetch_case["state1"],
        prefetch_case["state2"],
        None,
        prefetch_case["model"],
        prefetch_case["platform"],
    )
    signature = compute_signature(
        minimized.program,
        minimized.state1,
        minimized.state2,
        minimized.train,
        prefetch_case["platform"],
    )
    return Witness(
        name="test-prefetch-w0",
        campaign="unit",
        template="stride",
        program="prefetch-ce",
        asm=disassemble(minimized.program),
        model=model_to_json(prefetch_case["model"]),
        platform=platform_to_json(prefetch_case["platform"]),
        state1=minimized.state1,
        state2=minimized.state2,
        train=minimized.train,
        signature=signature,
        reduction=minimized.reduction(),
    )


# -- model / platform serialization -------------------------------------------


def test_model_roundtrip(prefetch_case, speculation_case):
    for case in (prefetch_case, speculation_case):
        doc = model_to_json(case["model"])
        rebuilt = model_from_json(doc)
        assert type(rebuilt) is type(case["model"])
        assert model_to_json(rebuilt) == doc


def test_model_unknown_kind_rejected():
    with pytest.raises(TriageError):
        model_from_json({"kind": "not-a-model"})


def test_platform_roundtrip_is_noise_free(prefetch_case):
    doc = platform_to_json(prefetch_case["platform"])
    assert "noise_rate" not in doc
    rebuilt = platform_from_json(doc)
    assert rebuilt.noise_rate == 0.0
    assert rebuilt.repetitions == 1
    assert rebuilt.channel == prefetch_case["platform"].channel
    assert rebuilt.attacker_sets == prefetch_case["platform"].attacker_sets
    assert rebuilt.core == prefetch_case["platform"].core
    assert platform_to_json(rebuilt) == doc


# -- the witness document -----------------------------------------------------


def test_witness_json_roundtrip(prefetch_witness):
    doc = prefetch_witness.to_json()
    rebuilt = Witness.from_json(json.loads(json.dumps(doc)))
    assert rebuilt == prefetch_witness
    assert rebuilt.to_json() == doc


def test_witness_rejects_missing_fields(prefetch_witness):
    doc = prefetch_witness.to_json()
    del doc["state2"]
    with pytest.raises(TriageError):
        Witness.from_json(doc)


def test_witness_rejects_wrong_types(prefetch_witness):
    doc = prefetch_witness.to_json()
    doc["reduction"]["oracle_checks"] = "many"
    with pytest.raises(TriageError):
        Witness.from_json(doc)


def test_witness_rejects_future_version(prefetch_witness):
    doc = prefetch_witness.to_json()
    doc["version"] = WITNESS_VERSION + 1
    with pytest.raises(TriageError):
        Witness.from_json(doc)


# -- the corpus directory -----------------------------------------------------


def test_corpus_save_and_load(tmp_path, prefetch_witness):
    corpus = WitnessCorpus(str(tmp_path / "corpus"))
    path = corpus.save(prefetch_witness)
    assert os.path.exists(path)
    assert corpus.names() == [prefetch_witness.name]
    assert corpus.load(prefetch_witness.name) == prefetch_witness
    assert corpus.load_all() == [prefetch_witness]


def test_corpus_save_is_canonical(tmp_path, prefetch_witness):
    corpus = WitnessCorpus(str(tmp_path))
    first = open(corpus.save(prefetch_witness)).read()
    second = open(corpus.save(prefetch_witness)).read()
    assert first == second  # byte-stable: safe to check into git


def test_corpus_missing_directory_is_empty(tmp_path):
    corpus = WitnessCorpus(str(tmp_path / "nope"))
    assert corpus.names() == []
    assert corpus.load_all() == []


def test_corpus_corrupt_file_raises(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "bad.json").write_text("{not json")
    with pytest.raises(TriageError):
        WitnessCorpus(str(root)).load("bad")


# -- replay -------------------------------------------------------------------


def test_replay_reproduces_fresh_witness(prefetch_witness):
    outcome = replay_witness(prefetch_witness)
    assert outcome.reproduced, outcome.reason


def test_replay_detects_broken_pair(prefetch_witness):
    # An identical pair is model-equivalent but not distinguishable.
    tampered = dataclasses.replace(
        prefetch_witness, state2=prefetch_witness.state1
    )
    outcome = replay_witness(tampered)
    assert not outcome.reproduced
    assert "expected a counterexample" in outcome.reason


def test_replay_detects_root_cause_drift(prefetch_witness):
    tampered = dataclasses.replace(
        prefetch_witness,
        signature=dataclasses.replace(
            prefetch_witness.signature, feature="speculative-load"
        ),
    )
    outcome = replay_witness(tampered)
    assert not outcome.reproduced
    assert "root cause drifted" in outcome.reason


def test_seed_corpus_exists():
    corpus = WitnessCorpus(SEED_CORPUS)
    assert len(corpus.names()) >= 2


def test_seed_corpus_replays_at_any_worker_count():
    """The acceptance bar: 100% of the checked-in corpus re-certifies,
    and the report is identical however it is parallelized."""
    witnesses = WitnessCorpus(SEED_CORPUS).load_all()
    inline = replay_corpus(witnesses, workers=1)
    assert inline.all_reproduced, inline.describe()
    assert inline.total == len(witnesses)
    pooled = replay_corpus(witnesses, workers=2)
    assert pooled == inline
