"""Unit tests for ddmin, subprogram extraction, and witness minimization."""

from __future__ import annotations

from repro.hw.platform import StateInputs
from repro.isa.assembler import assemble, disassemble
from repro.triage.minimize import (
    MinimizeConfig,
    WitnessOracle,
    ddmin,
    minimize_witness,
    subprogram,
)


# -- ddmin --------------------------------------------------------------------


def test_ddmin_finds_minimal_core():
    core = {2, 5}
    result = ddmin(range(8), lambda items: core <= set(items))
    assert sorted(result) == [2, 5]


def test_ddmin_single_essential_item():
    result = ddmin(range(10), lambda items: 7 in items)
    assert result == [7]


def test_ddmin_keeps_everything_when_all_essential():
    items = [0, 1, 2]
    result = ddmin(items, lambda subset: subset == items)
    assert result == items


def test_ddmin_is_one_minimal():
    test = lambda items: {1, 4, 6} <= set(items)
    result = ddmin(range(8), test)
    for index in range(len(result)):
        without = result[:index] + result[index + 1 :]
        assert not test(without)


def test_ddmin_deterministic():
    test = lambda items: {0, 3} <= set(items)
    assert ddmin(range(12), test) == ddmin(range(12), test)


# -- subprogram ---------------------------------------------------------------


def test_subprogram_remaps_labels():
    program = assemble(
        """
        mov x1, #1
        cmp x1, x2
        b.hs end
        mov x3, #2
    end:
        ret
    """,
        name="p",
    )
    reduced = subprogram(program, [2, 4])
    assert len(reduced) == 2
    # "end" originally pointed at instruction 4; only instruction 2
    # precedes it among the kept ones, so it now points at index 1.
    assert reduced.labels["end"] == 1
    # The reduced program still assembles/disassembles cleanly.
    assert assemble(disassemble(reduced), name="p2").labels["end"] == 1


def test_subprogram_label_may_point_past_end():
    program = assemble(
        """
        b.hs end
        mov x1, #1
    end:
        ret
    """,
        name="p",
    )
    reduced = subprogram(program, [0, 1])
    assert reduced.labels["end"] == 2  # one past the end: a legal target


# -- the oracle ---------------------------------------------------------------


def test_oracle_holds_on_real_counterexample(prefetch_case):
    oracle = WitnessOracle(
        prefetch_case["model"], prefetch_case["platform"]
    )
    assert oracle.holds(
        prefetch_case["program"],
        prefetch_case["state1"],
        prefetch_case["state2"],
        None,
    )
    assert oracle.checks == 1


def test_oracle_rejects_identical_states(prefetch_case):
    oracle = WitnessOracle(
        prefetch_case["model"], prefetch_case["platform"]
    )
    assert not oracle.holds(
        prefetch_case["program"],
        prefetch_case["state1"],
        prefetch_case["state1"],
        None,
    )


def test_oracle_forces_noise_free_platform(prefetch_case):
    oracle = WitnessOracle(
        prefetch_case["model"], prefetch_case["platform"]
    )
    assert oracle.config.noise_rate == 0.0
    assert oracle.config.repetitions == 1


# -- minimize_witness ---------------------------------------------------------


def test_minimize_prefetch_witness(prefetch_case):
    minimized = minimize_witness(
        prefetch_case["program"],
        prefetch_case["state1"],
        prefetch_case["state2"],
        None,
        prefetch_case["model"],
        prefetch_case["platform"],
    )
    assert minimized is not None
    # The ret and one load are droppable; the prefetch needs the stride
    # history of at least some loads, so the program cannot vanish.
    assert 1 <= minimized.instructions_after < len(prefetch_case["program"])
    oracle = WitnessOracle(
        prefetch_case["model"], prefetch_case["platform"]
    )
    assert oracle.holds(
        minimized.program, minimized.state1, minimized.state2, minimized.train
    )


def test_minimize_speculation_witness(speculation_case):
    minimized = minimize_witness(
        speculation_case["program"],
        speculation_case["state1"],
        speculation_case["state2"],
        None,
        speculation_case["model"],
        speculation_case["platform"],
    )
    assert minimized is not None
    assert minimized.instructions_after <= len(speculation_case["program"])
    # The secret-dependent cell differs between the states and must
    # survive shrinking.
    assert minimized.state1.memory != minimized.state2.memory
    oracle = WitnessOracle(
        speculation_case["model"], speculation_case["platform"]
    )
    assert oracle.holds(
        minimized.program, minimized.state1, minimized.state2, minimized.train
    )


def test_minimize_returns_none_when_not_reproducing(prefetch_case):
    minimized = minimize_witness(
        prefetch_case["program"],
        prefetch_case["state1"],
        prefetch_case["state1"],  # identical pair: not distinguishable
        None,
        prefetch_case["model"],
        prefetch_case["platform"],
    )
    assert minimized is None


def test_minimize_respects_check_budget(prefetch_case):
    minimized = minimize_witness(
        prefetch_case["program"],
        prefetch_case["state1"],
        prefetch_case["state2"],
        None,
        prefetch_case["model"],
        prefetch_case["platform"],
        config=MinimizeConfig(max_checks=1),
    )
    # The entry check spends the whole budget: every reduction attempt is
    # rejected, so the witness comes back unreduced but valid.
    assert minimized is not None
    assert minimized.instructions_after == minimized.instructions_before
    assert minimized.oracle_checks <= 2


def test_minimize_is_deterministic(prefetch_case):
    run = lambda: minimize_witness(
        prefetch_case["program"],
        prefetch_case["state1"],
        prefetch_case["state2"],
        None,
        prefetch_case["model"],
        prefetch_case["platform"],
    )
    first, second = run(), run()
    assert disassemble(first.program) == disassemble(second.program)
    assert first.state1 == second.state1
    assert first.state2 == second.state2
    assert first.oracle_checks == second.oracle_checks
