"""Shared triage fixtures: two handcrafted, arithmetically-distinct
counterexamples (one prefetcher-caused, one speculation-caused) and the
models/platforms they violate."""

from __future__ import annotations

import pytest

from repro.exps.presets import mpart_campaign
from repro.hw.platform import PlatformConfig, StateInputs
from repro.isa.assembler import assemble
from repro.obs.models import MctModel

#: Three strided loads: from s1's base they stay in sets 0..2 and the
#: prefetcher fills set 3 (invisible to the attacker at sets 61..127);
#: from s2's base they cover sets 58..60 and the prefetch lands in set 61
#: — inside the attacker region.  Model-equivalent under Mpart (neither
#: state demand-accesses the region), hardware-distinguishable.
PREFETCH_ASM = """
    ldr x1, [x0]
    ldr x2, [x0, #0x40]
    ldr x3, [x0, #0x80]
    ret
"""

#: The branch is architecturally taken (x1 >= x4), but the untrained
#: predictor says not-taken, so the dependent load runs transiently; its
#: address comes from the secret-dependent memory cell, which differs
#: between the states.  BASE traces are equal (the load never retires).
SPECULATION_ASM = """
    ldr x2, [x0, x1]
    cmp x1, x4
    b.hs end
    ldr x6, [x5, x2]
end:
    ret
"""


@pytest.fixture(scope="session")
def prefetch_case():
    config = mpart_campaign(refined=False, noise_rate=0.0)
    return {
        "program": assemble(PREFETCH_ASM, name="prefetch-ce"),
        "state1": StateInputs(regs={"x0": 0x80000}, memory={}),
        "state2": StateInputs(regs={"x0": 0x80E80}, memory={}),
        "model": config.model,
        "platform": config.platform,
    }


@pytest.fixture(scope="session")
def speculation_case():
    regs = {"x0": 0x80000, "x1": 0x100, "x4": 0, "x5": 0x81000}
    return {
        "program": assemble(SPECULATION_ASM, name="speculation-ce"),
        "state1": StateInputs(regs=dict(regs), memory={0x80100: 0x40}),
        "state2": StateInputs(regs=dict(regs), memory={0x80100: 0x2040}),
        "model": MctModel(),
        "platform": PlatformConfig(noise_rate=0.0),
    }
