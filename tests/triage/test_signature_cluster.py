"""Root-cause signatures and clustering.

The golden test: a prefetcher-caused counterexample and a
speculation-caused one must land in *different* clusters, and duplicates
of the same cause must merge.
"""

from __future__ import annotations

from repro.exps.presets import mpart_campaign
from repro.hw.platform import PlatformConfig, StateInputs
from repro.triage import Witness, model_to_json, platform_to_json
from repro.triage.cluster import cluster_witnesses, reduction_ratio
from repro.triage.signature import (
    RootCauseSignature,
    compute_signature,
    region_page_aligned,
)


def _signature(case) -> RootCauseSignature:
    return compute_signature(
        case["program"],
        case["state1"],
        case["state2"],
        None,
        case["platform"],
    )


def test_prefetch_signature(prefetch_case):
    signature = _signature(prefetch_case)
    assert signature.channel == "dcache"
    assert signature.feature == "prefetcher"
    assert signature.first_divergence == "prefetch"
    assert not signature.page_aligned
    # The prefetched line crossed into the attacker region.
    assert 61 in signature.divergent_sets


def test_speculation_signature(speculation_case):
    signature = _signature(speculation_case)
    assert signature.channel == "dcache"
    assert signature.feature == "speculative-load"
    assert signature.first_divergence == "speculative-load"


def test_signature_is_deterministic(prefetch_case):
    assert _signature(prefetch_case) == _signature(prefetch_case)


def test_identical_states_have_no_divergence(prefetch_case):
    signature = compute_signature(
        prefetch_case["program"],
        prefetch_case["state1"],
        prefetch_case["state1"],
        None,
        prefetch_case["platform"],
    )
    assert signature.first_divergence == "none"
    assert signature.divergent_sets == ()


def test_signature_key_excludes_instance_detail():
    a = RootCauseSignature(
        "dcache", "prefetcher", "prefetch", divergent_sets=(61,), detail="x"
    )
    b = RootCauseSignature(
        "dcache", "prefetcher", "prefetch", divergent_sets=(99,), detail="y"
    )
    assert a.key() == b.key()
    assert a.key() == "dcache/prefetcher/prefetch/unaligned"


def test_signature_json_roundtrip(prefetch_case):
    signature = _signature(prefetch_case)
    assert RootCauseSignature.from_json(signature.to_json()) == signature


def test_region_page_alignment():
    unaligned = mpart_campaign(refined=False).platform
    aligned = mpart_campaign(refined=False, page_aligned=True).platform
    assert not region_page_aligned(unaligned)
    assert region_page_aligned(aligned)
    # No attacker restriction: the region is the whole cache, aligned.
    assert region_page_aligned(PlatformConfig())


# -- clustering ---------------------------------------------------------------


def _witness(name, case, signature, instructions, cells) -> Witness:
    from repro.isa.assembler import disassemble

    return Witness(
        name=name,
        campaign="test",
        template="t",
        program=case["program"].name,
        asm=disassemble(case["program"]),
        model=model_to_json(case["model"]),
        platform=platform_to_json(case["platform"]),
        state1=case["state1"],
        state2=case["state2"],
        train=None,
        signature=signature,
        reduction={
            "instructions_before": 5,
            "instructions_after": instructions,
            "cells_before": 10,
            "cells_after": cells,
            "oracle_checks": 1,
        },
    )


def test_clustering_splits_prefetch_from_speculation(
    prefetch_case, speculation_case
):
    """The golden split: one cluster per root cause, not per occurrence."""
    pf_sig = _signature(prefetch_case)
    sp_sig = _signature(speculation_case)
    witnesses = [
        _witness("pf-0", prefetch_case, pf_sig, 3, 2),
        _witness("sp-0", speculation_case, sp_sig, 4, 6),
        _witness("pf-1", prefetch_case, pf_sig, 2, 2),
        _witness("sp-1", speculation_case, sp_sig, 3, 4),
        _witness("pf-2", prefetch_case, pf_sig, 3, 4),
    ]
    clusters = cluster_witnesses(witnesses)
    assert len(clusters) == 2
    by_key = {cluster.key: cluster for cluster in clusters}
    assert by_key[pf_sig.key()].size == 3
    assert by_key[sp_sig.key()].size == 2
    # Largest cluster first; representative is the smallest witness.
    assert clusters[0].key == pf_sig.key()
    assert by_key[pf_sig.key()].representative.name == "pf-1"
    assert by_key[sp_sig.key()].representative.name == "sp-1"
    assert reduction_ratio(5, clusters) == 2 / 5


def test_reduction_ratio_without_counterexamples():
    assert reduction_ratio(0, []) is None
