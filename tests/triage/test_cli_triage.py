"""The ``triage`` and ``replay`` CLI subcommands, end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestTriageCommand:
    def test_triage_reduces_and_writes_corpus(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        db = tmp_path / "exp.sqlite"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "triage",
                "--experiment",
                "mct-a",
                "--refined",
                "--programs",
                "2",
                "--tests",
                "4",
                "--corpus",
                str(corpus),
                "--db",
                str(db),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "triage:" in out
        assert "distinct violation" in out
        # The acceptance bar: clustered minimized witnesses number at most
        # half the raw counterexamples, measured via the telemetry gauge.
        doc = json.loads(metrics.read_text())["metrics"]
        assert doc["triage.reduction_ratio"]["value"] <= 0.5
        assert doc["triage.clusters"]["value"] >= 1
        # One representative per cluster was written.
        files = sorted(corpus.glob("*.json"))
        assert len(files) == int(doc["triage.clusters"]["value"])
        # Witnesses were recorded in the database too.
        from repro.pipeline import ExperimentDatabase

        with ExperimentDatabase(str(db)) as handle:
            assert len(handle.witnesses(1)) >= len(files)

    def test_triage_then_replay_roundtrip(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert (
            main(
                [
                    "triage",
                    "--experiment",
                    "mct-a",
                    "--refined",
                    "--programs",
                    "2",
                    "--tests",
                    "4",
                    "--corpus",
                    str(corpus),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["replay", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_save_all_writes_every_witness(self, tmp_path, capsys):
        few = tmp_path / "few"
        everything = tmp_path / "all"
        base = [
            "triage",
            "--experiment",
            "mct-a",
            "--refined",
            "--programs",
            "2",
            "--tests",
            "4",
        ]
        assert main(base + ["--corpus", str(few)]) == 0
        assert main(base + ["--corpus", str(everything), "--save-all"]) == 0
        assert len(list(everything.glob("*.json"))) >= len(
            list(few.glob("*.json"))
        )


class TestReplayCommand:
    def test_missing_corpus_directory(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "nope")]) == 2
        assert "no such corpus" in capsys.readouterr().err

    def test_empty_corpus_directory(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["replay", str(empty)]) == 2
        assert "no witnesses" in capsys.readouterr().err

    def test_unreadable_witness(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt"
        corrupt.mkdir()
        (corrupt / "bad.json").write_text("{broken")
        assert main(["replay", str(corrupt)]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_failing_witness_sets_exit_code(self, tmp_path, capsys):
        import dataclasses
        import os

        from repro.triage import WitnessCorpus

        seed = os.path.join(os.path.dirname(__file__), "corpus")
        witness = WitnessCorpus(seed).load_all()[0]
        broken = dataclasses.replace(witness, state2=witness.state1)
        target = tmp_path / "broken"
        WitnessCorpus(str(target)).save(broken)
        assert main(["replay", str(target)]) == 1
        assert "FAIL" in capsys.readouterr().out
