"""Unit tests for the structure-aware repair primitives."""

import pytest

from repro.bir import expr as E
from repro.bir.expr import evaluate
from repro.smt.invert import try_set
from repro.smt.valuation import LazyValuation, SamplingPolicy
from repro.utils.rng import SplittableRandom


def fresh_val(divergence=0.0, seed=5):
    policy = SamplingPolicy(rng=SplittableRandom(seed), divergence=divergence)
    return LazyValuation(policy)


def assert_set(expr, target, val=None, rng=None):
    val = val or fresh_val()
    rng = rng or SplittableRandom(9)
    assert try_set(expr, target, val, rng)
    assert evaluate(expr, val) == target & ((1 << expr.width) - 1)
    return val


class TestAtoms:
    def test_var(self):
        val = assert_set(E.var("a"), 42)
        assert val.register("a") == 42

    def test_const_only_matches_itself(self):
        val = fresh_val()
        rng = SplittableRandom(1)
        assert try_set(E.const(5), 5, val, rng)
        assert not try_set(E.const(5), 6, val, rng)

    def test_memory_cell(self):
        val = fresh_val()
        val.set_register("a", 0x100)
        assert_set(E.Load(E.MemVar("MEM"), E.var("a")), 7, val)

    def test_load_through_shadowing_store(self):
        mem = E.MemStore(E.MemVar("MEM"), E.var("p"), E.var("q"))
        val = fresh_val()
        val.set_register("p", 8)
        val.set_register("a", 8)  # read hits the store
        assert_set(E.Load(mem, E.var("a")), 3, val)
        assert val.register("q") == 3


class TestArithmetic:
    def test_add_with_constant(self):
        assert_set(E.add(E.var("a"), E.const(10)), 50)

    def test_sub(self):
        assert_set(E.sub(E.var("a"), E.var("b")), 5)

    def test_xor(self):
        assert_set(E.BinOp(E.BinOpKind.XOR, E.var("a"), E.const(0xFF)), 0xA5)

    def test_and_mask_field(self):
        e = E.band(E.var("a"), E.const(0xFF0))
        val = assert_set(e, 0x120)
        # Only the masked field may constrain a; the rest is free.
        assert val.register("a") & 0xFF0 == 0x120

    def test_and_unreachable_target_fails(self):
        val = fresh_val()
        e = E.band(E.var("a"), E.const(0x0F))
        assert not try_set(e, 0xF0, val, SplittableRandom(2))

    def test_lshr_field(self):
        e = E.lshr(E.var("a"), E.const(6))
        val = assert_set(e, 0x1234)
        assert val.register("a") >> 6 == 0x1234

    def test_shl(self):
        e = E.BinOp(E.BinOpKind.SHL, E.var("a"), E.const(4))
        assert_set(e, 0x120)

    def test_cache_line_pattern(self):
        # ((a >> 6) & 127) == 93 — the Mline/AR shape.
        e = E.band(E.lshr(E.var("a"), E.const(6)), E.const(127))
        val = assert_set(e, 93)
        assert (val.register("a") >> 6) & 127 == 93

    def test_not_and_neg(self):
        assert_set(E.UnOp(E.UnOpKind.NOT, E.var("a")), 0x1234)
        assert_set(E.UnOp(E.UnOpKind.NEG, E.var("a")), 0x10)


class TestComparisons:
    def test_equality_copies(self):
        val = fresh_val()
        val.set_register("b", 1000)
        assert_set(E.eq(E.var("a"), E.var("b")), 1, val)

    def test_equality_false_forces_difference(self):
        val = fresh_val()
        val.set_register("a", 5)
        val.set_register("b", 5)
        assert_set(E.eq(E.var("a"), E.var("b")), 0, val)

    def test_disequality(self):
        val = fresh_val()
        val.set_register("a", 5)
        val.set_register("b", 5)
        assert_set(E.ne(E.var("a"), E.var("b")), 1, val)

    def test_one_bit_disequality(self):
        # Regression: forcing g1 != g2 on one-bit operands must flip a bit.
        val = fresh_val()
        val.set_register("g", 1)
        val.set_register("h", 1)
        assert_set(E.ne(E.var("g", 1), E.var("h", 1)), 1, val)

    @pytest.mark.parametrize("kind", ["ult", "ule", "slt", "sle"])
    def test_orderings_both_polarities(self, kind):
        make = getattr(E, kind)
        for target in (1, 0):
            val = fresh_val()
            assert_set(make(E.var("a"), E.var("b")), target, val)

    def test_ordering_with_constant_bound(self):
        val = fresh_val()
        assert_set(E.ule(E.const(0x80000), E.var("a")), 1, val)
        assert val.register("a") >= 0x80000


class TestBooleanStructure:
    def test_conjunction_true(self):
        e = E.bool_and(E.eq(E.var("a"), E.const(1)), E.eq(E.var("b"), E.const(2)))
        val = assert_set(e, 1)
        assert val.register("a") == 1 and val.register("b") == 2

    def test_disjunction_true(self):
        e = E.bool_or(E.eq(E.var("a"), E.const(1)), E.eq(E.var("b"), E.const(2)))
        assert_set(e, 1)

    def test_negated_guard(self):
        e = E.bool_not(E.ule(E.const(61), E.lshr(E.var("a"), E.const(6))))
        assert_set(e, 1)

    def test_ite_repairs_taken_arm(self):
        e = E.Ite(E.var("c", 1), E.var("a"), E.var("b"))
        val = fresh_val()
        val.set_register("c", 1)
        assert_set(e, 777, val)
        assert val.register("a") == 777


class TestTwinPreference:
    def test_ordered_repair_prefers_twin_witness(self):
        val = fresh_val(divergence=0.0)
        # State 1 already satisfies a < 100 with a#1 == 50.
        val.set_register("a#1", 50)
        val.set_register("a#2", 500)
        rng = SplittableRandom(3)
        assert try_set(E.ult(E.var("a#2"), E.const(100)), 1, val, rng)
        assert val.register("a#2") == 50  # copied the twin, not a random pick
