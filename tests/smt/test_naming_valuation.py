"""Unit tests for relational naming and the lazy valuation."""

from repro.smt.naming import base_name, rename_for_state, split, state_of
from repro.smt.valuation import LazyValuation, SamplingPolicy
from repro.utils.rng import SplittableRandom


class TestNaming:
    def test_rename_and_split(self):
        assert rename_for_state("x0", 1) == "x0#1"
        assert split("x0#2") == ("x0", 2)
        assert split("x0") == ("x0", None)

    def test_base_name(self):
        assert base_name("x0#1") == "x0"
        assert base_name("MEM#2") == "MEM"
        assert base_name("plain") == "plain"

    def test_state_of_non_numeric_suffix(self):
        assert state_of("weird#abc") is None


def _policy(divergence=0.0, seed=3):
    return SamplingPolicy(rng=SplittableRandom(seed), divergence=divergence)


class TestSamplingPolicy:
    def test_fresh_values_in_domain(self):
        policy = _policy()
        for _ in range(100):
            value = policy.fresh_value()
            in_region = 0x80000 <= value < 0x80000 + 0x40000
            small = 0 <= value <= 255
            assert in_region or small
            if in_region:
                assert value % 8 == 0


class TestLazyValuation:
    def test_pairing_without_divergence(self):
        val = LazyValuation(_policy(0.0))
        assert val.register("a#1") == val.register("a#2")
        assert val.read_mem("MEM#1", 0x80000) == val.read_mem("MEM#2", 0x80000)

    def test_divergence_occasionally_differs(self):
        val = LazyValuation(_policy(1.0))
        # With certain divergence every draw is independent; over many
        # names at least one pair must differ.
        assert any(
            val.register(f"v{i}#1") != val.register(f"v{i}#2")
            for i in range(64)
        )

    def test_values_stable_after_first_read(self):
        val = LazyValuation(_policy(0.5))
        first = val.register("a#1")
        assert val.register("a#1") == first

    def test_pins_override_sampling(self):
        val = LazyValuation(_policy(), pins={"a": 99})
        assert val.register("a") == 99

    def test_set_register_refuses_conflicting_pin(self):
        val = LazyValuation(_policy(), pins={"a": 99})
        assert not val.set_register("a", 1)
        assert val.set_register("a", 99)

    def test_resolve_shares_storage(self):
        resolve = lambda n: "rep" if n in ("a", "b") else n
        val = LazyValuation(_policy(), resolve=resolve)
        assert val.register("a") == val.register("b")
        val.set_register("a", 123)
        assert val.register("b") == 123

    def test_mutation_log_records_sets(self):
        val = LazyValuation(_policy())
        val.set_register("a", 1)
        val.set_cell("MEM#1", 0x80000, 2)
        assert val.mutation_log == ["a", "MEM#1"]

    def test_twin_register(self):
        val = LazyValuation(_policy(0.0))
        val.set_register("a#1", 77)
        assert val.twin_register("a#2") == 77
        assert val.twin_register("plain") is None

    def test_materialised_snapshot(self):
        val = LazyValuation(_policy())
        val.register("a")
        val.read_mem("MEM", 8)
        regs, mems = val.materialised()
        assert "a" in regs
        assert 8 in mems["MEM"]
