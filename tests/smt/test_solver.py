"""Unit tests for the model finder — the constraint shapes relation
synthesis actually generates."""

import pytest

from repro.bir import expr as E
from repro.errors import SolverError
from repro.smt.solver import Model, ModelFinder, SolverConfig
from repro.utils.rng import SplittableRandom


def finder(seed=1, **kwargs):
    return ModelFinder(SolverConfig(**kwargs), SplittableRandom(seed))


def line(addr):
    return E.band(E.lshr(addr, E.const(6)), E.const(127))


def check(constraints, model):
    assert model is not None
    for c in constraints:
        assert model.evaluate(c) == 1, f"violated: {c}"


class TestBasics:
    def test_empty_constraints_sat(self):
        assert finder().solve([]) is not None

    def test_pin_to_constant(self):
        cons = [E.eq(E.var("a"), E.const(42))]
        model = finder().solve(cons)
        check(cons, model)
        assert model.register("a") == 42

    def test_contradictory_pins_unsat(self):
        cons = [
            E.eq(E.var("a"), E.const(5)),
            E.eq(E.var("a"), E.const(6)),
        ]
        assert finder().solve(cons) is None

    def test_variable_equality_classes(self):
        cons = [
            E.eq(E.var("a"), E.var("b")),
            E.eq(E.var("b"), E.var("c")),
            E.eq(E.var("c"), E.const(9)),
        ]
        model = finder().solve(cons)
        check(cons, model)
        assert model.register("a") == model.register("b") == 9

    def test_union_class_pin_conflict_unsat(self):
        cons = [
            E.eq(E.var("a"), E.var("b")),
            E.eq(E.var("a"), E.const(1)),
            E.eq(E.var("b"), E.const(2)),
        ]
        assert finder().solve(cons) is None

    def test_syntactically_false_unsat(self):
        assert finder().solve([E.FALSE]) is None

    def test_non_boolean_constraint_rejected(self):
        with pytest.raises(SolverError):
            finder().solve([E.const(1, 8)])


class TestArithmeticShapes:
    def test_sum_equality_across_states(self):
        cons = [
            E.eq(
                E.add(E.var("x0#1"), E.var("x1#1")),
                E.add(E.var("x0#2"), E.var("x1#2")),
            )
        ]
        check(cons, finder().solve(cons))

    def test_disequality(self):
        cons = [E.ne(E.var("a"), E.var("b"))]
        model = finder().solve(cons)
        check(cons, model)
        assert model.register("a") != model.register("b")

    def test_ordering_unsigned_and_signed(self):
        cons = [
            E.ult(E.var("a"), E.var("b")),
            E.slt(E.var("c"), E.const(0)),
        ]
        model = finder().solve(cons)
        check(cons, model)

    def test_range_constraints(self):
        lo, hi = 0x80000, 0xBFFF8
        cons = [
            E.ule(E.const(lo), E.var("a")),
            E.ule(E.var("a"), E.const(hi)),
            E.eq(E.band(E.var("a"), E.const(7)), E.const(0)),
        ]
        model = finder().solve(cons)
        check(cons, model)
        a = model.register("a")
        assert lo <= a <= hi and a % 8 == 0

    def test_cache_line_pinning(self):
        cons = [E.eq(line(E.var("a")), E.const(93))]
        model = finder().solve(cons)
        check(cons, model)
        assert (model.register("a") >> 6) & 127 == 93

    def test_combined_region_and_line(self):
        cons = [
            E.ule(E.const(0x80000), E.var("a")),
            E.ule(E.var("a"), E.const(0xBFFF8)),
            E.eq(line(E.var("a")), E.const(5)),
            E.eq(E.band(E.var("a"), E.const(7)), E.const(0)),
        ]
        check(cons, finder().solve(cons))

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 167])
    def test_sum_coupled_with_masks_on_both_operands(self, seed):
        # Deterministic repair cycles here: fixing a + c == 0x18 dirties the
        # masked bits of one operand, fixing the mask breaks the sum again.
        # Only the exploration phase's kept-bits redraw in the AND inverter
        # escapes the cycle (found by tests/props/test_solver_props.py).
        cons = [
            E.eq(E.band(E.var("c"), E.const(0xFF0)), E.const(0)),
            E.eq(E.add(E.var("a"), E.var("c")), E.const(0x18)),
            E.eq(E.band(E.var("a"), E.const(0xFF0)), E.const(0)),
        ]
        check(cons, finder(seed=seed).solve(cons))


class TestMemoryShapes:
    def test_memory_cell_disequality(self):
        m1, m2 = E.MemVar("MEM#1"), E.MemVar("MEM#2")
        addr = E.add(E.var("x0#1"), E.var("x1#1"))
        addr2 = E.add(E.var("x0#2"), E.var("x1#2"))
        cons = [
            E.eq(addr, addr2),
            E.ne(E.Load(m1, addr), E.Load(m2, addr2)),
        ]
        model = finder().solve(cons)
        check(cons, model)

    def test_memory_value_equality(self):
        m = E.MemVar("MEM")
        cons = [E.eq(E.Load(m, E.var("a")), E.const(0x55))]
        model = finder().solve(cons)
        check(cons, model)
        assert model.read_mem("MEM", model.register("a")) == 0x55

    def test_dependent_load_chain(self):
        # mem[mem[a]] == 3: the solver must place both cells.
        m = E.MemVar("MEM")
        inner = E.Load(m, E.var("a"))
        cons = [E.eq(E.Load(m, inner), E.const(3))]
        check(cons, finder().solve(cons))


class TestGuardedShapes:
    def _ar(self, addr, lo=61, hi=127):
        l = line(addr)
        return E.bool_and(E.ule(E.const(lo), l), E.ule(l, E.const(hi)))

    def test_guard_equality(self):
        cons = [E.eq(self._ar(E.var("a")), self._ar(E.var("b")))]
        check(cons, finder().solve(cons))

    def test_guarded_implication(self):
        guard = self._ar(E.var("a"))
        cons = [E.bool_or(E.bool_not(guard), E.eq(E.var("a"), E.var("b")))]
        check(cons, finder().solve(cons))

    def test_mpart_refinement_shape(self):
        # Both outside the region, but different (the §4.2.1 constraint).
        a, b = E.var("a"), E.var("b")
        cons = [
            E.bool_not(self._ar(a)),
            E.bool_not(self._ar(b)),
            E.ne(a, b),
        ]
        model = finder().solve(cons)
        check(cons, model)
        for name in ("a", "b"):
            assert not 61 <= (model.register(name) >> 6) & 127 <= 127


class TestModelCompletion:
    def test_unconstrained_pair_shares_values(self):
        # With zero divergence, the two states' unconstrained registers
        # must be identical (the Z3 don't-care behaviour).
        model = finder(divergence=0.0).solve([E.eq(E.var("q#1"), E.var("q#1"))])
        assert model.register("x7#1") == model.register("x7#2")
        assert model.register("x9#1") == model.register("x9#2")

    def test_unconstrained_memory_cells_paired(self):
        model = finder(divergence=0.0).solve([])
        assert model.read_mem("MEM#1", 0x80040) == model.read_mem(
            "MEM#2", 0x80040
        )

    def test_model_evaluate_matches_reads(self):
        cons = [E.eq(E.var("a"), E.const(7))]
        model = finder().solve(cons)
        assert model.evaluate(E.add(E.var("a"), E.const(1))) == 8

    def test_memory_names_and_contents(self):
        m = E.MemVar("MEM#1")
        cons = [E.eq(E.Load(m, E.const(0x80000)), E.const(1))]
        model = finder().solve(cons)
        assert "MEM#1" in model.memory_names()
        assert model.memory("MEM#1")[0x80000] == 1


class TestDeterminism:
    def test_same_seed_same_model(self):
        cons = [E.ult(E.var("a"), E.var("b"))]
        m1 = finder(seed=7).solve(cons)
        m2 = finder(seed=7).solve(cons)
        assert m1.register("a") == m2.register("a")
        assert m1.register("b") == m2.register("b")


class TestPropagateEdgeCases:
    """Direct coverage of ``_propagate``'s contradiction handling."""

    def _propagate(self, cons):
        f = finder()
        conjuncts = f._flatten(cons)
        assert conjuncts is not None
        return f._propagate(conjuncts)

    def test_contradiction_through_union_chain(self):
        # x == y, x == 1, y == 2: each pin is consistent with its raw name;
        # the clash only appears after re-keying by class representative.
        pins, uf, _residual = self._propagate(
            [
                E.eq(E.var("x"), E.var("y")),
                E.eq(E.var("x"), E.const(1)),
                E.eq(E.var("y"), E.const(2)),
            ]
        )
        assert pins is None
        assert uf.find("x") == uf.find("y")

    def test_contradiction_through_long_chain(self):
        pins, uf, _ = self._propagate(
            [
                E.eq(E.var("a"), E.var("b")),
                E.eq(E.var("b"), E.var("c")),
                E.eq(E.var("c"), E.var("d")),
                E.eq(E.var("a"), E.const(10)),
                E.eq(E.var("d"), E.const(11)),
            ]
        )
        assert pins is None
        assert uf.find("a") == uf.find("d")

    def test_pin_vs_pin_clash_after_rekey_order_independent(self):
        # The union arrives *after* both pins: the clash is only visible in
        # the re-keying pass, never in the raw setdefault check.
        pins, _, _ = self._propagate(
            [
                E.eq(E.var("x"), E.const(1)),
                E.eq(E.var("y"), E.const(2)),
                E.eq(E.var("x"), E.var("y")),
            ]
        )
        assert pins is None

    def test_same_raw_pin_twice_is_not_a_clash(self):
        pins, _, _ = self._propagate(
            [
                E.eq(E.var("x"), E.const(3)),
                E.eq(E.const(3), E.var("x")),
            ]
        )
        assert pins == {"x": 3}

    def test_agreeing_pins_across_union_survive_rekey(self):
        pins, uf, _ = self._propagate(
            [
                E.eq(E.var("x"), E.var("y")),
                E.eq(E.var("x"), E.const(4)),
                E.eq(E.var("y"), E.const(4)),
            ]
        )
        assert pins is not None
        assert pins[uf.find("x")] == 4
        assert list(pins) == [uf.find("x")]

    def test_residual_keeps_non_propagatable_conjuncts(self):
        pins, _, residual = self._propagate(
            [
                E.eq(E.var("x"), E.const(1)),
                E.ult(E.var("y"), E.var("z")),
            ]
        )
        assert pins == {"x": 1}
        assert len(residual) == 1


class TestPreparedConstraints:
    def test_solve_prepared_matches_solve(self):
        cons = [
            E.eq(E.var("a"), E.var("b")),
            E.ult(E.var("b"), E.const(100)),
        ]
        f = finder(seed=3)
        prepared = f.prepare(cons)
        model = finder(seed=3).solve_prepared(prepared)
        check(cons, model)
        assert model.register("a") == model.register("b")

    def test_prepared_is_reusable_across_solves(self):
        cons = [E.ult(E.var("a"), E.var("b"))]
        prepared = finder().prepare(cons)
        m1 = finder(seed=5).solve_prepared(prepared)
        m2 = finder(seed=6).solve_prepared(prepared)
        check(cons, m1)
        check(cons, m2)

    def test_prepare_unsat_flag(self):
        prepared = finder().prepare([E.FALSE])
        assert prepared.unsat
        assert finder().solve_prepared(prepared) is None

    def test_extra_constraints_are_honoured(self):
        base = [E.ule(E.const(0x80000), E.var("a"))]
        extra = [E.eq(E.var("a"), E.const(0x80040))]
        prepared = finder().prepare(base)
        model = finder().solve_prepared(prepared, extra=extra)
        check(base + extra, model)
        assert model.register("a") == 0x80040

    def test_extra_pin_conflicts_with_prepared_pin(self):
        prepared = finder().prepare([E.eq(E.var("a"), E.const(1))])
        assert (
            finder().solve_prepared(
                prepared, extra=[E.eq(E.var("a"), E.const(2))]
            )
            is None
        )

    def test_extra_union_merges_with_prepared_pin(self):
        # The extra equality unions a pinned class with a fresh variable;
        # dependency re-keying must propagate the pin to the new member.
        prepared = finder().prepare([E.eq(E.var("a"), E.const(7))])
        cons_extra = [E.eq(E.var("a"), E.var("b"))]
        model = finder().solve_prepared(prepared, extra=cons_extra)
        assert model is not None
        assert model.register("b") == 7

    def test_extra_union_creating_pin_clash(self):
        prepared = finder().prepare(
            [
                E.eq(E.var("a"), E.const(1)),
                E.eq(E.var("b"), E.const(2)),
            ]
        )
        assert (
            finder().solve_prepared(
                prepared, extra=[E.eq(E.var("a"), E.var("b"))]
            )
            is None
        )

    def test_prepared_state_not_mutated_by_extras(self):
        prepared = finder().prepare([E.eq(E.var("a"), E.const(1))])
        before = dict(prepared.raw_pins)
        finder().solve_prepared(prepared, extra=[E.eq(E.var("b"), E.const(9))])
        assert prepared.raw_pins == before
        assert "b" not in prepared.pins


class TestWarmRestarts:
    def test_warm_and_cold_both_solve(self):
        cons = [
            E.ult(E.var("a"), E.var("b")),
            E.ult(E.var("b"), E.var("c")),
        ]
        warm = finder(seed=2, warm_restarts=True).solve(cons)
        cold = finder(seed=2, warm_restarts=False).solve(cons)
        check(cons, warm)
        check(cons, cold)

    def test_warm_restarts_deterministic(self):
        cons = [E.ult(E.var("a"), E.var("b"))]
        m1 = finder(seed=11, warm_restarts=True).solve(cons)
        m2 = finder(seed=11, warm_restarts=True).solve(cons)
        assert m1.register("a") == m2.register("a")
        assert m1.register("b") == m2.register("b")

    def test_unsat_still_unsat_with_warm_restarts(self):
        cons = [
            E.ult(E.var("a"), E.var("b")),
            E.ult(E.var("b"), E.var("a")),
        ]
        assert finder(seed=1, warm_restarts=True).solve(cons) is None
