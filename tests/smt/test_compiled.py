"""Unit tests for the expression compiler (compiled vs. tree-walk parity)."""

import pytest

from repro.bir import expr as E
from repro.smt.compiled import compile_expr


def run(expr, regs=None, mems=None):
    valuation = E.Valuation(regs=regs or {}, mems=mems or {})
    compiled = compile_expr(expr)

    def read_mem(name, addr):
        return valuation.read_mem(name, addr)

    got = compiled(valuation.regs, read_mem)
    want = E.evaluate(expr, valuation)
    assert got == want
    return got


class TestParity:
    def test_constants_and_vars(self):
        run(E.const(0xDEAD), {})
        run(E.var("a"), {"a": 7})

    def test_all_binops(self):
        regs = {"a": 0xF0F0, "b": 0x0FF0}
        for kind in E.BinOpKind:
            run(E.BinOp(kind, E.var("a"), E.var("b")), regs)

    def test_all_unops(self):
        for kind in E.UnOpKind:
            run(E.UnOp(kind, E.var("a")), {"a": 5})

    def test_all_cmps_unsigned_and_signed_values(self):
        regs = {"a": 2**64 - 3, "b": 4}
        for kind in E.CmpKind:
            run(E.Cmp(kind, E.var("a"), E.var("b")), regs)

    def test_wrapping_arithmetic(self):
        run(E.add(E.var("a"), E.var("b")), {"a": 2**64 - 1, "b": 10})

    def test_shifts_beyond_width(self):
        run(
            E.BinOp(E.BinOpKind.SHL, E.var("a"), E.var("b")),
            {"a": 3, "b": 200},
        )
        run(
            E.BinOp(E.BinOpKind.ASHR, E.var("a"), E.var("b")),
            {"a": 2**63, "b": 100},
        )

    def test_ite(self):
        e = E.Ite(E.var("c", 1), E.var("a"), E.var("b"))
        run(e, {"c": 1, "a": 10, "b": 20})
        run(e, {"c": 0, "a": 10, "b": 20})

    def test_load_base_memory(self):
        e = E.Load(E.MemVar("MEM"), E.var("a"))
        run(e, {"a": 0x40}, {"MEM": {0x40: 123}})

    def test_load_store_chain(self):
        mem = E.MemStore(
            E.MemStore(E.MemVar("MEM"), E.const(8), E.const(1)),
            E.var("p"),
            E.const(2),
        )
        e = E.Load(mem, E.var("a"))
        # Hits the outer store, the inner store, and the base memory.
        run(e, {"a": 16, "p": 16}, {"MEM": {16: 9}})
        run(e, {"a": 8, "p": 16}, {"MEM": {16: 9}})
        run(e, {"a": 24, "p": 16}, {"MEM": {24: 7}})

    def test_nested_guard_shape(self):
        # The AR predicate shape used by Mpart.
        l = E.band(E.lshr(E.var("a"), E.const(6)), E.const(127))
        guard = E.bool_and(E.ule(E.const(61), l), E.ule(l, E.const(127)))
        run(guard, {"a": 61 * 64})
        run(guard, {"a": 3 * 64})

    def test_narrow_width_ops(self):
        e = E.BinOp(E.BinOpKind.AND, E.var("g", 1), E.var("h", 1))
        run(e, {"g": 1, "h": 0})


class TestSafety:
    def test_eval_namespace_is_sandboxed(self):
        fn = compile_expr(E.var("a"))
        # The compiled lambda must not see builtins.
        assert fn.__globals__.get("__builtins__") == {}
