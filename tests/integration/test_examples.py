"""Smoke tests: the runnable examples must run and report success."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "counterexample" in out
    assert "Symbolic execution" in out


def test_siscloak_attack(capsys):
    out = run_example("siscloak_attack.py", capsys)
    assert out.count("SUCCESS") == 2


def test_riscv_validation(capsys):
    out = run_example("riscv_validation.py", capsys)
    assert "speculative core" in out
    assert "speculation disabled: 0/" in out


@pytest.mark.slow
def test_new_channels(capsys):
    out = run_example("new_channels.py", capsys)
    assert "New channels" in out


@pytest.mark.slow
def test_model_repair(capsys):
    out = run_example("model_repair.py", capsys)
    assert out.count("repaired after 1 promotion(s)") == 3


@pytest.mark.slow
def test_cache_coloring(capsys):
    out = run_example("cache_coloring.py", capsys)
    assert "Page-aligned region: 0 counterexamples" in out


@pytest.mark.slow
def test_spectre_validation(capsys):
    out = run_example("spectre_validation.py", capsys)
    assert "Expected shape" in out
