"""Cross-layer consistency checks that tie specific paper claims to code.

Each test pins one mechanism the reproduction depends on, across at least
two packages, so a regression in either side fails loudly.
"""

import pytest

from repro.bir import expr as E
from repro.core import TestCaseGenerator
from repro.exps import REGION_UNALIGNED
from repro.hw import Core, CoreConfig, ExperimentPlatform, PlatformConfig, StateInputs
from repro.hw.state import MachineState, Memory
from repro.isa import assemble, lift
from repro.obs import MpartRefinedModel, MspecModel
from repro.obs.base import AttackerRegion
from repro.symbolic import execute
from repro.utils.rng import SplittableRandom
from tests.conftest import STRIDE, TEMPLATE_A


class TestPrefetchMechanism:
    """§4.2.1's worked example: the stride crossing the partition border."""

    def test_paper_example_states(self):
        # The paper's s2: accesses at lines 62 and 63 trigger a prefetch of
        # line 64 (with a 3-load stride in our template).
        asm = assemble(STRIDE)
        region = AttackerRegion(61, 127)
        # Stride ending just below the region: lines 58, 59, 60 -> prefetch 61.
        base = 58 * 64
        core = Core(CoreConfig())
        state = MachineState(regs={"x0": base})
        trace = core.execute(asm, state)
        assert trace.prefetches == [61 * 64]
        snapshot = core.cache.snapshot().restrict(range(61, 128))
        assert snapshot.occupied_sets() == (61,)

    def test_region_predicate_agrees_with_snapshot_restriction(self):
        # The symbolic AR predicate and the platform's attacker view must
        # agree on every set index.
        region = REGION_UNALIGNED
        for set_index in range(128):
            addr = set_index * 64
            symbolic = E.evaluate(
                region.contains_expr(E.var("a")),
                E.Valuation(regs={"a": addr}),
            )
            assert bool(symbolic) == region.contains_set(set_index)


class TestSpeculationMechanism:
    """§6.4: the transient load's address must come from pre-branch state."""

    def test_transient_address_uses_architectural_value(self):
        asm = assemble(TEMPLATE_A)
        core = Core(CoreConfig())
        for _ in range(4):
            core.predictor.update(2, False)  # train toward the body
        state = MachineState(
            regs={"x0": 0x80000, "x1": 0x10, "x4": 2, "x5": 0x90000},
            memory=Memory({0x80010: 0x1240}),
        )
        trace = core.execute(asm, state)
        # ldr x6, [x5, x2] with x2 = mem[x0+x1] loaded before the branch.
        assert trace.transient_loads == [0x90000 + 0x1240]

    def test_generated_counterexample_reproduces_on_fresh_hardware(self):
        asm = assemble(TEMPLATE_A, name="ta")
        generator = TestCaseGenerator(asm, MspecModel(), rng=SplittableRandom(17))
        platform_a = ExperimentPlatform(PlatformConfig())
        platform_b = ExperimentPlatform(PlatformConfig())
        test = generator.generate()
        result_a = platform_a.run_experiment(asm, test.state1, test.state2, test.train)
        result_b = platform_b.run_experiment(asm, test.state1, test.state2, test.train)
        # Deterministic hardware: the verdict is a property of the states.
        assert result_a.outcome == result_b.outcome


class TestSymbolicHardwareAgreement:
    def test_mpart_guards_match_hardware_visibility(self):
        # For a batch of generated stride tests: an access is symbolically
        # AR-observed iff the platform's restricted snapshot can see its set.
        asm = assemble(STRIDE, name="stride")
        region = AttackerRegion(61, 127)
        model = MpartRefinedModel(region)
        result = execute(model.augment(lift(asm)))
        path = result[0]
        for x0 in (0, 58 * 64, 61 * 64, 127 * 64):
            val = E.Valuation(regs={"x0": x0})
            for obs in path.base_observations():
                guard_holds = E.evaluate(obs.guard, val) == 1
                addr = E.evaluate(obs.exprs[0], val)
                assert guard_holds == region.contains_set((addr >> 6) & 127)
