"""End-to-end integration tests: the full Fig. 1 pipeline on one program."""

import pytest

from repro.core.testgen import TestCaseGenerator
from repro.hw.platform import (
    ExperimentOutcome,
    ExperimentPlatform,
    PlatformConfig,
)
from repro.obs.base import AttackerRegion
from repro.obs.models import MctModel, MpartRefinedModel, MspecModel
from repro.core.coverage import MlineCoverage
from repro.core.testgen import TestGenConfig
from repro.smt.solver import SolverConfig
from repro.utils.rng import SplittableRandom


def _run_tests(asm, model, platform, n=12, coverage=None, config=None):
    gen = TestCaseGenerator(
        asm, model, config=config, rng=SplittableRandom(99), coverage=coverage
    )
    outcomes = []
    for _ in range(n):
        test = gen.generate()
        if test is None:
            continue
        outcomes.append(
            platform.run_experiment(
                asm, test.state1, test.state2, test.train
            ).outcome
        )
    return outcomes


class TestSpeculativeLeakDetection:
    def test_mspec_refinement_finds_counterexamples(self, template_a):
        outcomes = _run_tests(
            template_a, MspecModel(), ExperimentPlatform(PlatformConfig())
        )
        assert ExperimentOutcome.COUNTEREXAMPLE in outcomes

    def test_counterexamples_vanish_without_speculation(self, template_a):
        from repro.hw.core import CoreConfig

        platform = ExperimentPlatform(
            PlatformConfig(core=CoreConfig(spec_window=0))
        )
        outcomes = _run_tests(template_a, MspecModel(), platform)
        assert outcomes
        assert ExperimentOutcome.COUNTEREXAMPLE not in outcomes

    def test_unguided_mct_mostly_passes(self, template_a):
        outcomes = _run_tests(
            template_a, MctModel(), ExperimentPlatform(PlatformConfig())
        )
        passes = outcomes.count(ExperimentOutcome.PASS)
        assert passes >= len(outcomes) - 1


class TestPrefetchLeakDetection:
    REGION = AttackerRegion(61, 127)

    def test_mpart_refinement_finds_prefetch_leak(self, stride_program):
        platform = ExperimentPlatform(
            PlatformConfig(attacker_sets=tuple(range(61, 128)))
        )
        config = TestGenConfig(solver=SolverConfig(divergence=0.02))
        outcomes = _run_tests(
            stride_program,
            MpartRefinedModel(self.REGION),
            platform,
            n=150,
            coverage=MlineCoverage(self.REGION),
            config=config,
        )
        assert ExperimentOutcome.COUNTEREXAMPLE in outcomes

    def test_prefetcher_off_kills_the_leak(self, stride_program):
        from repro.hw.core import CoreConfig
        from repro.hw.prefetcher import PrefetcherConfig

        platform = ExperimentPlatform(
            PlatformConfig(
                core=CoreConfig(
                    prefetcher=PrefetcherConfig(enabled=False)
                ),
                attacker_sets=tuple(range(61, 128)),
            )
        )
        config = TestGenConfig(solver=SolverConfig(divergence=0.02))
        outcomes = _run_tests(
            stride_program,
            MpartRefinedModel(self.REGION),
            platform,
            n=40,
            coverage=MlineCoverage(self.REGION),
            config=config,
        )
        assert outcomes
        assert ExperimentOutcome.COUNTEREXAMPLE not in outcomes


class TestSoundModelHasNoCounterexamples:
    def test_identity_like_model_never_distinguishes(self, template_a):
        # A model observing everything relevant (Mspec with its refined
        # observations *included in the base*) only admits pairs that agree
        # on all observations -- using equivalence-only generation, such
        # pairs must be indistinguishable on this hardware.
        from repro.bir.tags import ObsTag
        from repro.obs.models import MspecModel
        from repro.bir.stmt import Observe
        from repro.obs.base import map_block_bodies

        class MspecAsBase(MspecModel):
            """Mspec observations all tagged BASE (a sound model)."""

            has_refinement = False

            def augment(self, program):
                augmented = super().augment(program)

                def rebase(block):
                    for stmt in block.body:
                        if isinstance(stmt, Observe):
                            yield Observe(
                                ObsTag.BASE,
                                stmt.kind,
                                stmt.exprs,
                                stmt.guard,
                                stmt.label,
                            )
                        else:
                            yield stmt

                return map_block_bodies(augmented, rebase)

        outcomes = _run_tests(
            template_a, MspecAsBase(), ExperimentPlatform(PlatformConfig())
        )
        assert outcomes
        assert ExperimentOutcome.COUNTEREXAMPLE not in outcomes
