"""Scaled-down campaigns asserting the paper's qualitative results (§6).

These run the real pipeline end to end at small scale; each assertion
corresponds to a claim in Table 1, the Fig. 7 table, or the A.6.1
checklist.  Sizes are chosen so the whole module stays under a minute.
"""

import pytest

from repro.exps import (
    mct_campaign,
    mpart_campaign,
    mspec1_campaign,
    straightline_campaign,
)
from repro.pipeline import ScamV


def run(cfg):
    return ScamV(cfg).run().stats


@pytest.fixture(scope="module")
def mct_a():
    return (
        run(mct_campaign("A", refined=False, num_programs=5, tests_per_program=10, seed=2)),
        run(mct_campaign("A", refined=True, num_programs=5, tests_per_program=10, seed=2)),
    )


class TestMctTemplateA:
    def test_refinement_finds_many_counterexamples(self, mct_a):
        _unref, refined = mct_a
        assert refined.counterexamples > refined.experiments // 2
        assert refined.programs_with_counterexamples == refined.programs

    def test_unguided_finds_almost_none(self, mct_a):
        unref, refined = mct_a
        assert unref.counterexample_rate < 0.1
        assert refined.counterexamples > 10 * max(unref.counterexamples, 1)


class TestMctTemplateC:
    def test_leak_detectable_only_with_refinement(self):
        unref = run(
            mct_campaign("C", refined=False, num_programs=4, tests_per_program=10, seed=4)
        )
        refined = run(
            mct_campaign("C", refined=True, num_programs=4, tests_per_program=10, seed=4)
        )
        # The paper found 0/8000 unguided; our solver's exploration phase
        # occasionally desynchronises a pair, so allow a sub-5% residue.
        assert unref.counterexample_rate < 0.05
        assert refined.counterexamples > 10 * max(unref.counterexamples, 1)


class TestSpeculationScope:
    def test_mspec1_no_counterexamples_on_dependent_loads(self):
        stats = run(
            mspec1_campaign("C", num_programs=4, tests_per_program=10, seed=5)
        )
        assert stats.counterexamples == 0

    def test_mspec1_counterexamples_on_independent_loads(self):
        stats = run(
            mspec1_campaign("B", num_programs=12, tests_per_program=12, seed=5)
        )
        # Rare but present (paper: ~0.6% of experiments).
        assert stats.counterexamples > 0
        assert stats.counterexample_rate < 0.25

    def test_no_straight_line_speculation(self):
        stats = run(
            straightline_campaign(num_programs=5, tests_per_program=10, seed=6)
        )
        assert stats.counterexamples == 0
        assert stats.experiments > 0


class TestMpart:
    def test_page_aligned_region_immune(self):
        stats = run(
            mpart_campaign(
                refined=True,
                page_aligned=True,
                num_programs=4,
                tests_per_program=10,
                seed=7,
                noise_rate=0.0,
            )
        )
        assert stats.counterexamples == 0
        assert stats.experiments > 0

    def test_refinement_beats_unguided(self):
        unref = run(
            mpart_campaign(
                refined=False,
                num_programs=8,
                tests_per_program=15,
                seed=8,
                noise_rate=0.0,
            )
        )
        refined = run(
            mpart_campaign(
                refined=True,
                num_programs=8,
                tests_per_program=15,
                seed=8,
                noise_rate=0.0,
            )
        )
        assert refined.counterexamples > 0
        assert refined.counterexample_rate > unref.counterexample_rate
