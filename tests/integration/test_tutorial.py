"""The docs/TUTORIAL.md walkthrough, executed end to end.

Keeps the tutorial honest: the toy page-only model must be unsound for
the cache channel, sound for the TLB channel, and repairable by one
promotion.
"""

from dataclasses import dataclass, replace

import pytest

from repro.bir import expr as E
from repro.bir.stmt import Observe
from repro.bir.tags import ObsKind, ObsTag
from repro.core import ModelRepairer
from repro.gen import StrideTemplate
from repro.hw import Channel, PlatformConfig
from repro.obs.base import (
    ObservationModel,
    is_transient,
    load_address,
    map_block_bodies,
    store_address,
)
from repro.pipeline import CampaignConfig, CounterexampleAnalysis, ScamV


@dataclass
class PageOnlyModel(ObservationModel):
    name = "Mpageonly"

    def augment(self, program):
        def rewrite(block):
            for stmt in block.body:
                addr = load_address(stmt) or store_address(stmt)
                if addr is not None and not is_transient(stmt):
                    yield Observe(
                        tag=ObsTag.BASE,
                        kind=ObsKind.PAGE,
                        exprs=(E.lshr(addr, E.const(12)),),
                        label="page",
                    )
                yield stmt

        return map_block_bodies(program, rewrite)


@dataclass
class PageOnlyRefined(PageOnlyModel):
    name = "Mpageonly+line"
    has_refinement = True

    def augment(self, program):
        base = super().augment(program)

        def rewrite(block):
            for stmt in block.body:
                yield stmt
                addr = load_address(stmt) or store_address(stmt)
                if addr is not None and not is_transient(stmt):
                    yield Observe(
                        tag=ObsTag.REFINED,
                        kind=ObsKind.CACHE_LINE,
                        exprs=(
                            E.band(
                                E.lshr(addr, E.const(6)), E.const(127)
                            ),
                        ),
                        label="line",
                    )

        return map_block_bodies(base, rewrite)


def _campaign(**kwargs):
    defaults = dict(
        name="tutorial",
        template=StrideTemplate(),
        model=PageOnlyRefined(),
        num_programs=6,
        tests_per_program=12,
        seed=123,
        certify=True,
    )
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


@pytest.fixture(scope="module")
def cache_result():
    return ScamV(_campaign()).run()


class TestTutorial:
    def test_page_only_model_unsound_for_cache(self, cache_result):
        assert cache_result.stats.counterexamples > 0
        assert cache_result.stats.uncertified == 0

    def test_analysis_runs(self, cache_result):
        analysis = CounterexampleAnalysis.of(cache_result)
        assert analysis.total == cache_result.stats.counterexamples

    def test_page_only_model_sound_for_tlb(self):
        config = _campaign(
            platform=PlatformConfig(channel=Channel.TLB), certify=False
        )
        stats = ScamV(config).run().stats
        assert stats.experiments > 0
        assert stats.counterexamples == 0

    def test_repairable_with_one_promotion(self):
        report = ModelRepairer(_campaign(certify=False)).repair()
        assert report.succeeded
        assert report.promotions == 1
