"""Unit tests for the splittable RNG."""

from repro.utils.rng import SplittableRandom


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SplittableRandom(42)
        b = SplittableRandom(42)
        assert [a.randint(0, 1000) for _ in range(10)] == [
            b.randint(0, 1000) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = SplittableRandom(1)
        b = SplittableRandom(2)
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]


class TestSplit:
    def test_split_streams_are_independent(self):
        parent = SplittableRandom(7)
        child1 = parent.split("a")
        # Drawing more from child1 must not change what a later-split
        # sibling produces.
        parent2 = SplittableRandom(7)
        _ = parent2.split("a")
        child2 = parent.split("b")
        child2_replay = parent2.split("b")
        for _ in range(100):
            child1.randint(0, 100)
        assert [child2.randint(0, 10**6) for _ in range(5)] == [
            child2_replay.randint(0, 10**6) for _ in range(5)
        ]

    def test_split_deterministic_given_order(self):
        a = SplittableRandom(3).split("x")
        b = SplittableRandom(3).split("x")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)


class TestHelpers:
    def test_chance_extremes(self):
        r = SplittableRandom(0)
        assert all(r.chance(1.0) for _ in range(20))
        assert not any(r.chance(0.0) for _ in range(20))

    def test_choice_and_sample(self):
        r = SplittableRandom(5)
        values = list(range(10))
        assert r.choice(values) in values
        picked = r.sample(values, 3)
        assert len(picked) == 3
        assert len(set(picked)) == 3

    def test_getrandbits_zero(self):
        assert SplittableRandom(0).getrandbits(0) == 0

    def test_shuffle_preserves_elements(self):
        r = SplittableRandom(9)
        values = list(range(20))
        shuffled = list(values)
        r.shuffle(shuffled)
        assert sorted(shuffled) == values
