"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


def test_all_exceptions_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


@pytest.mark.parametrize(
    "child,parent",
    [
        (errors.BirTypeError, errors.BirError),
        (errors.PathExplosionError, errors.SymbolicExecutionError),
        (errors.UnsatError, errors.SolverError),
        (errors.SolverTimeoutError, errors.SolverError),
        (errors.PlatformError, errors.HardwareError),
        (errors.ExperimentError, errors.PipelineError),
        (errors.LiftError, errors.ReproError),
        (errors.RefinementError, errors.ReproError),
    ],
)
def test_specialisation_relationships(child, parent):
    assert issubclass(child, parent)


def test_catching_the_root_covers_library_failures():
    from repro.isa.assembler import assemble

    with pytest.raises(errors.ReproError):
        assemble("bogus x1")
