"""Unit tests for the stopwatch helper."""

from repro.utils.timing import Stopwatch


def test_accumulates_laps():
    sw = Stopwatch()
    with sw:
        pass
    with sw:
        pass
    assert sw.laps == 2
    assert sw.total >= 0.0


def test_mean_of_zero_laps_is_zero():
    assert Stopwatch().mean == 0.0


def test_mean_is_total_over_laps():
    sw = Stopwatch()
    with sw:
        pass
    assert sw.mean == sw.total
