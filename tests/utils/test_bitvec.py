"""Unit tests for fixed-width bit-vector arithmetic."""

import pytest

from repro.utils import bitvec


class TestMask:
    def test_small_widths(self):
        assert bitvec.mask(1) == 1
        assert bitvec.mask(8) == 0xFF
        assert bitvec.mask(64) == (1 << 64) - 1

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            bitvec.mask(0)
        with pytest.raises(ValueError):
            bitvec.mask(-3)

    def test_mask_cached_value_consistent(self):
        assert bitvec.mask(13) == bitvec.mask(13) == 0x1FFF


class TestTruncateAndSign:
    def test_truncate_wraps(self):
        assert bitvec.truncate(0x1FF, 8) == 0xFF
        assert bitvec.truncate(-1, 8) == 0xFF

    def test_to_signed_negative(self):
        assert bitvec.to_signed(0xFF, 8) == -1
        assert bitvec.to_signed(0x80, 8) == -128

    def test_to_signed_positive(self):
        assert bitvec.to_signed(0x7F, 8) == 127
        assert bitvec.to_signed(0, 64) == 0

    def test_to_unsigned_roundtrip(self):
        for value in (-1, -128, 0, 127):
            assert (
                bitvec.to_signed(bitvec.to_unsigned(value, 8), 8) == value
            )

    def test_sign_extend(self):
        assert bitvec.sign_extend(0xFF, 8, 16) == 0xFFFF
        assert bitvec.sign_extend(0x7F, 8, 16) == 0x7F

    def test_sign_extend_rejects_narrowing(self):
        with pytest.raises(ValueError):
            bitvec.sign_extend(0, 16, 8)

    def test_zero_extend(self):
        assert bitvec.zero_extend(0xFF, 8, 16) == 0xFF
        with pytest.raises(ValueError):
            bitvec.zero_extend(0, 16, 8)


class TestArithmetic:
    def test_add_wraps(self):
        assert bitvec.bv_add(0xFF, 1, 8) == 0
        assert bitvec.bv_add(2**64 - 1, 1, 64) == 0

    def test_sub_wraps(self):
        assert bitvec.bv_sub(0, 1, 8) == 0xFF

    def test_mul_wraps(self):
        assert bitvec.bv_mul(0x80, 2, 8) == 0

    def test_bitwise(self):
        assert bitvec.bv_and(0xF0, 0x3C, 8) == 0x30
        assert bitvec.bv_or(0xF0, 0x0C, 8) == 0xFC
        assert bitvec.bv_xor(0xFF, 0x0F, 8) == 0xF0
        assert bitvec.bv_not(0x0F, 8) == 0xF0

    def test_shifts(self):
        assert bitvec.bv_shl(1, 4, 8) == 0x10
        assert bitvec.bv_shl(1, 8, 8) == 0  # full-width shift is zero
        assert bitvec.bv_lshr(0x80, 4, 8) == 8
        assert bitvec.bv_lshr(0x80, 9, 8) == 0

    def test_ashr_sign_fills(self):
        assert bitvec.bv_ashr(0x80, 4, 8) == 0xF8
        assert bitvec.bv_ashr(0x40, 4, 8) == 4
        # Shift count >= width saturates at the sign bit.
        assert bitvec.bv_ashr(0x80, 100, 8) == 0xFF
        assert bitvec.bv_ashr(0x40, 100, 8) == 0


class TestBitSlice:
    def test_extract_field(self):
        assert bitvec.bit_slice(0b1101_0110, 5, 2) == 0b0101

    def test_single_bit(self):
        assert bitvec.bit_slice(0x80, 7, 7) == 1

    def test_invalid_slice(self):
        with pytest.raises(ValueError):
            bitvec.bit_slice(0, 1, 3)
