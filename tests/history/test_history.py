"""Cross-run performance history: store, summaries, trends, CLI gates.

The ISSUE 10 acceptance path lives here end to end: two consecutive
``validate`` runs recorded into one store, ``trends`` exiting 0 on the
identical pair and 1 once a summary is doctored with an over-tolerance
solver-time regression.
"""

import pytest

from repro.cli import main
from repro.history import (
    HistoryStore,
    compare_summaries,
    run_summary,
    scenario_digest,
)


def _summary(label="Mpart", wall=1.0, solver_s=0.4, digest="d0", **over):
    solver_us = int(round(solver_s * 1e6))
    doc = run_summary(
        "validate",
        label,
        wall_seconds=wall,
        digest=digest,
        solver={
            "version": 1,
            "classes": {
                "pair:0-1": {
                    "queries": 10,
                    "sat": 8,
                    "unsat": 0,
                    "exhausted": 2,
                    "seconds_us": solver_us,
                    "restarts": 12,
                    "repairs": 40,
                    "warm_sat": 3,
                    "cold_sat": 5,
                    "prepared_hits": 9,
                    "prepared_misses": 1,
                    "restart_hist": {"1": 10},
                }
            },
            "phases": {
                "testgen.generate": {"queries": 10, "seconds_us": solver_us}
            },
            "top": [],
        },
    )
    doc.update(over)
    return doc


class TestStore:
    def test_record_and_get_round_trip(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.sqlite"))
        run_id = store.record(_summary())
        row = store.get(run_id)
        assert row["kind"] == "validate"
        assert row["label"] == "Mpart"
        assert row["digest"] == "d0"
        assert row["summary"]["solver_seconds"] == pytest.approx(0.4)
        store.close()

    def test_runs_newest_first_with_filters(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.sqlite"))
        store.record(_summary(label="A"))
        store.record(_summary(label="B"))
        store.record(_summary(label="A"))
        rows = store.runs()
        assert [row["label"] for row in rows] == ["A", "B", "A"]
        assert [row["label"] for row in store.runs(label="A")] == ["A", "A"]
        assert store.latest()["id"] == 3
        store.close()

    def test_baseline_fallback_chain(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.sqlite"))
        first = store.record(_summary(label="A", digest="d0"))
        other = store.record(_summary(label="B", digest="dX"))
        same = store.record(_summary(label="A", digest="d1"))
        last = store.record(_summary(label="A", digest="d1"))
        # exact label+digest match wins
        assert store.baseline_for(store.get(last))["id"] == same
        # no digest match: same label
        assert store.baseline_for(store.get(same))["id"] == first
        # no label match either: any earlier run
        assert store.baseline_for(store.get(other))["id"] == first
        assert store.baseline_for(store.get(first)) is None
        store.close()

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "h.sqlite")
        HistoryStore(path).record(_summary())
        store = HistoryStore(path)
        assert store.latest() is not None
        store.close()


class TestSummary:
    def test_digest_is_stable_and_order_independent(self):
        assert scenario_digest({"a": 1, "b": 2}) == scenario_digest(
            {"b": 2, "a": 1}
        )
        assert scenario_digest("x") != scenario_digest("y")

    def test_summary_shape(self):
        doc = _summary()
        assert doc["version"] == 1
        assert doc["solver_queries"] == 10
        assert doc["solver_seconds"] == pytest.approx(0.4)
        assert "git_sha" in doc["meta"]


class TestTrends:
    def test_identical_summaries_are_ok(self):
        report = compare_summaries(_summary(), _summary())
        assert report.ok
        assert report.deltas  # it compared something

    def test_solver_time_regression_gates(self):
        report = compare_summaries(
            _summary(solver_s=0.4), _summary(solver_s=0.8, wall=1.5)
        )
        names = {d.name for d in report.regressions}
        assert "solver_seconds" in names
        assert "wall_seconds" in names
        assert not report.ok

    def test_small_absolute_deltas_stay_under_the_floor(self):
        # +300% relative but only 3ms absolute: scheduler noise, not a
        # regression.
        report = compare_summaries(
            _summary(solver_s=0.001, wall=0.01),
            _summary(solver_s=0.004, wall=0.012),
        )
        assert report.ok

    def test_counter_mismatch_on_same_digest_is_a_violation(self):
        base = _summary(counters={"experiments": 8})
        current = _summary(counters={"experiments": 9})
        report = compare_summaries(base, current)
        assert any("determinism" in v for v in report.violations)
        assert not report.ok

    def test_counter_mismatch_on_different_digest_is_fine(self):
        base = _summary(counters={"experiments": 8}, digest="d0")
        current = _summary(counters={"experiments": 9}, digest="d1")
        assert compare_summaries(base, current).ok

    def test_cache_rate_drop_gates(self):
        base = _summary(cache_hit_rates={"prepare": 0.8})
        current = _summary(cache_hit_rates={"prepare": 0.5})
        report = compare_summaries(base, current)
        assert [d.name for d in report.regressions] == [
            "cache.prepare.hit_rate"
        ]

    def test_render_mentions_verdict(self):
        text = compare_summaries(_summary(), _summary()).render()
        assert "verdict: ok" in text


class TestCliGate:
    """The acceptance criterion, through the real CLI."""

    def _validate(self, db):
        return main(
            [
                "validate",
                "--experiment",
                "mpart",
                "--programs",
                "2",
                "--tests",
                "4",
                "--history",
                db,
            ]
        )

    def test_two_runs_then_trends_exits_zero(self, tmp_path, capsys):
        db = str(tmp_path / "h.sqlite")
        assert self._validate(db) == 0
        assert self._validate(db) == 0
        store = HistoryStore(db)
        assert len(store.runs()) == 2
        store.close()
        assert main(["trends", db]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_doctored_regression_exits_one(self, tmp_path, capsys):
        db = str(tmp_path / "h.sqlite")
        assert self._validate(db) == 0
        store = HistoryStore(db)
        doctored = dict(store.latest()["summary"])
        doctored["wall_seconds"] = doctored["wall_seconds"] + 30.0
        doctored["solver_seconds"] = (
            doctored["solver_seconds"] or 0.0
        ) + 10.0
        store.record(doctored)
        store.close()
        assert main(["trends", db]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_history_lists_runs_and_compares(self, tmp_path, capsys):
        db = str(tmp_path / "h.sqlite")
        assert self._validate(db) == 0
        assert self._validate(db) == 0
        assert main(["history", db]) == 0
        out = capsys.readouterr().out
        assert "validate" in out and "wall=" in out
        assert main(["history", db, "--compare", "1", "2"]) == 0
        assert "trends:" in capsys.readouterr().out

    def test_trends_missing_store_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["trends", str(tmp_path / "nope.sqlite")])
        assert exc.value.code == 2

    def test_first_run_has_no_baseline_and_passes(self, tmp_path, capsys):
        db = str(tmp_path / "h.sqlite")
        assert self._validate(db) == 0
        assert main(["trends", db]) == 0
        assert "no earlier baseline" in capsys.readouterr().err
