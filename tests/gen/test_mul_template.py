"""Unit tests for the variable-time-arithmetic template and its coverage."""

from repro.bir import expr as E
from repro.bir.tags import ObsKind
from repro.core.coverage import MagnitudeCoverage
from repro.core.probes import add_address_probes
from repro.core.relation import RelationSynthesizer
from repro.core.testgen import TestCaseGenerator
from repro.gen.templates import MulTemplate
from repro.isa.instructions import AluOp, AluReg
from repro.isa.lifter import lift
from repro.obs.channels import MtimeRefinedModel
from repro.symbolic.executor import execute
from repro.utils.rng import SplittableRandom


class TestMulTemplate:
    def test_always_contains_one_multiply(self, rng):
        for _ in range(20):
            prog = MulTemplate().generate(rng)
            muls = [
                inst
                for inst in prog.asm
                if isinstance(inst, AluReg) and inst.op is AluOp.MUL
            ]
            assert len(muls) == 1

    def test_straight_line(self, rng):
        for _ in range(10):
            prog = MulTemplate().generate(rng)
            assert prog.asm.count_branches() == 0
            assert len(execute(lift(prog.asm))) == 1

    def test_distinct_registers(self, rng):
        prog = MulTemplate().generate(rng)
        mul = next(
            inst
            for inst in prog.asm
            if isinstance(inst, AluReg) and inst.op is AluOp.MUL
        )
        assert len({mul.rd, mul.rn, mul.rm}) == 3


class TestMagnitudeCoverage:
    def _result(self, seed=3):
        asm = MulTemplate().generate(SplittableRandom(seed)).asm
        program = add_address_probes(MtimeRefinedModel().augment(lift(asm)))
        return asm, execute(program)

    def test_constraints_pin_magnitude_class(self):
        asm, result = self._result()
        pair = RelationSynthesizer(result, True).pair(0, 0)
        sampler = MagnitudeCoverage()
        seen_classes = set()
        for seed in range(20):
            constraints = sampler.constraints(
                pair, result, SplittableRandom(seed)
            )
            # 0, 1, or 2 constraints per state depending on the class.
            assert len(constraints) <= 4
            for c in constraints:
                assert c.width == 1
            seen_classes.add(len(constraints))
        assert len(seen_classes) > 1  # different classes get sampled

    def test_generated_operands_span_magnitudes(self):
        asm, _result = self._result()
        gen = TestCaseGenerator(
            asm,
            MtimeRefinedModel(),
            rng=SplittableRandom(5),
            coverage=MagnitudeCoverage(),
        )
        mul = next(
            inst
            for inst in asm
            if isinstance(inst, AluReg) and inst.op is AluOp.MUL
        )
        chunk_counts = set()
        for _ in range(20):
            test = gen.generate()
            if test is None:
                continue
            operand = test.state1.regs.get(mul.rm.name, 0)
            chunk_counts.add(max(1, (operand.bit_length() + 15) // 16))
        assert len(chunk_counts) >= 2

    def test_no_operand_obs_no_constraints(self, stride_program):
        from repro.obs.models import MctModel

        program = add_address_probes(
            MctModel().augment(lift(stride_program))
        )
        result = execute(program)
        pair = RelationSynthesizer(result, False).pair(0, 0)
        assert (
            MagnitudeCoverage().constraints(pair, result, SplittableRandom(0))
            == []
        )
