"""Unit tests for generator combinators and the paper's templates."""

import pytest

from repro.errors import GeneratorError
from repro.gen.combinators import (
    Gen,
    choice,
    constant,
    distinct_registers,
    frequency,
    integer,
    lists,
)
from repro.gen.templates import (
    StrideTemplate,
    TemplateA,
    TemplateB,
    TemplateC,
    TemplateD,
)
from repro.isa.instructions import B, BCond, Ldr
from repro.isa.lifter import lift
from repro.symbolic.executor import execute
from repro.utils.rng import SplittableRandom


class TestCombinators:
    def test_constant(self, rng):
        assert constant(7).sample(rng) == 7

    def test_integer_in_range(self, rng):
        for _ in range(50):
            assert 3 <= integer(3, 9).sample(rng) <= 9

    def test_choice(self, rng):
        assert choice([1, 2, 3]).sample(rng) in (1, 2, 3)
        with pytest.raises(GeneratorError):
            choice([])

    def test_map_and_bind(self, rng):
        doubled = integer(1, 3).map(lambda v: v * 2)
        assert doubled.sample(rng) in (2, 4, 6)
        dependent = integer(1, 3).bind(lambda v: constant(v + 10))
        assert 11 <= dependent.sample(rng) <= 13

    def test_such_that(self, rng):
        even = integer(0, 100).such_that(lambda v: v % 2 == 0)
        assert even.sample(rng) % 2 == 0

    def test_such_that_gives_up(self, rng):
        never = integer(0, 1).such_that(lambda v: v > 5, retries=10)
        with pytest.raises(GeneratorError):
            never.sample(rng)

    def test_frequency(self, rng):
        gen = frequency([(1, constant("a")), (0, constant("b"))])
        assert all(gen.sample(rng) == "a" for _ in range(10))
        with pytest.raises(GeneratorError):
            frequency([(0, constant("a"))])

    def test_lists(self, rng):
        out = lists(constant(1), 2, 5).sample(rng)
        assert 2 <= len(out) <= 5

    def test_distinct_registers(self, rng):
        regs = distinct_registers(rng, 10, exclude=(0, 1))
        assert len(set(regs)) == 10
        assert not {0, 1} & set(regs)
        with pytest.raises(GeneratorError):
            distinct_registers(rng, 29, pool_size=28)


def _loads(asm):
    return [inst for inst in asm if isinstance(inst, Ldr)]


class TestStrideTemplate:
    def test_shape(self, rng):
        for _ in range(20):
            prog = StrideTemplate().generate(rng)
            loads = _loads(prog.asm)
            assert 3 <= len(loads) <= 5
            # All loads share the base register; offsets are equidistant
            # multiples of the line size.
            bases = {l.rn for l in loads}
            assert len(bases) == 1
            offsets = [l.imm for l in loads]
            stride = prog.params["stride_lines"] * 64
            assert offsets == [i * stride for i in range(len(loads))]

    def test_destinations_distinct_from_base(self, rng):
        for _ in range(20):
            prog = StrideTemplate().generate(rng)
            loads = _loads(prog.asm)
            dests = {l.rt for l in loads}
            assert len(dests) == len(loads)
            assert loads[0].rn not in dests

    def test_single_path(self, rng):
        prog = StrideTemplate().generate(rng)
        assert len(execute(lift(prog.asm))) == 1


class TestTemplateA:
    def test_shape(self, rng):
        for _ in range(20):
            prog = TemplateA().generate(rng)
            loads = _loads(prog.asm)
            assert len(loads) == 2
            assert prog.asm.count_branches() == 1
            assert len(execute(lift(prog.asm))) == 2

    def test_side_constraints(self, rng):
        for _ in range(30):
            params = TemplateA().generate(rng).params
            assert params["r2"] != params["r1"]
            assert params["r4"] not in (params["r1"], params["r2"])

    def test_body_load_uses_loaded_value(self, rng):
        prog = TemplateA().generate(rng)
        loads = _loads(prog.asm)
        assert loads[1].rm == loads[0].rt


class TestTemplateB:
    def test_shape_ranges(self, rng):
        for _ in range(30):
            prog = TemplateB().generate(rng)
            loads = len(_loads(prog.asm))
            assert 1 <= loads <= 4
            assert prog.asm.count_branches() == 1

    def test_register_aliasing_allowed(self, rng):
        # With a small pool, some instance must reuse a register.
        aliased = False
        for _ in range(40):
            prog = TemplateB().generate(rng)
            regs = prog.asm.registers_used()
            reads = sum(
                len(inst.reads()) + len(inst.writes())
                for inst in prog.asm
            )
            if len(regs) < reads:
                aliased = True
                break
        assert aliased

    def test_programs_analysable(self, rng):
        for _ in range(10):
            prog = TemplateB().generate(rng)
            assert 1 <= len(execute(lift(prog.asm))) <= 2


class TestTemplateC:
    def test_causally_dependent_loads(self, rng):
        for _ in range(20):
            prog = TemplateC().generate(rng)
            loads = _loads(prog.asm)
            assert len(loads) == 2
            first, second = loads
            assert second.rm == first.rt  # dependency chain

    def test_interleaving_sometimes_present(self, rng):
        seen = {True: False, False: False}
        for _ in range(40):
            prog = TemplateC().generate(rng)
            seen[prog.params["interleave"]] = True
        assert seen[True] and seen[False]


class TestTemplateD:
    def test_dead_code_after_unconditional_branch(self, rng):
        for _ in range(20):
            prog = TemplateD().generate(rng)
            instructions = list(prog.asm)
            jump_at = next(
                i for i, inst in enumerate(instructions) if isinstance(inst, B)
            )
            dead = instructions[jump_at + 1 : prog.asm.target_index("end")]
            assert all(isinstance(inst, Ldr) for inst in dead)
            assert 1 <= len(dead) <= 2

    def test_single_architectural_path(self, rng):
        prog = TemplateD().generate(rng)
        result = execute(lift(prog.asm))
        assert len(result) == 1
        # The dead loads never appear on the architectural path.
        assert "i2" not in result[0].block_trace
