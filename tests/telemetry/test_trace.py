"""Span tracer: nesting, attributes, kill-switch, no-op overhead."""

import time

from repro.telemetry import trace


class TestSpanRecording:
    def test_disabled_by_default_and_returns_shared_noop(self):
        assert not trace.enabled()
        a = trace.span("phase", key=1)
        b = trace.span("other")
        assert a is b  # one shared null span: no allocation while off
        with a as s:
            s.set_attr("ignored", True)
        assert trace.drain() == []

    def test_span_records_name_attrs_and_duration(self):
        trace.set_enabled(True)
        with trace.span("smt.solve", program=3, attempt=1) as s:
            s.set_attr("sat", True)
        (record,) = trace.drain()
        assert record.name == "smt.solve"
        assert record.attrs == {"program": 3, "attempt": 1, "sat": True}
        assert record.duration >= 0.0
        assert record.parent_id is None

    def test_exact_parent_child_nesting(self):
        trace.set_enabled(True)
        with trace.span("program") as outer:
            with trace.span("testgen.generate") as mid:
                with trace.span("smt.solve"):
                    pass
            with trace.span("hw.experiment"):
                pass
        by_name = {r.name: r for r in trace.drain()}
        assert by_name["program"].parent_id is None
        assert by_name["testgen.generate"].parent_id == outer.span_id
        assert by_name["smt.solve"].parent_id == mid.span_id
        assert by_name["hw.experiment"].parent_id == outer.span_id
        # children are fully contained in the parent's interval
        prog = by_name["program"]
        for child in ("testgen.generate", "hw.experiment"):
            rec = by_name[child]
            assert rec.start >= prog.start
            assert rec.start + rec.duration <= prog.start + prog.duration

    def test_sibling_spans_share_parent_not_each_other(self):
        trace.set_enabled(True)
        with trace.span("parent") as p:
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        by_name = {r.name: r for r in trace.drain()}
        assert by_name["first"].parent_id == p.span_id
        assert by_name["second"].parent_id == p.span_id

    def test_exception_unwinds_and_tags_error(self):
        trace.set_enabled(True)
        try:
            with trace.span("explodes"):
                raise ValueError("boom")
        except ValueError:
            pass
        (record,) = trace.drain()
        assert record.attrs["error"] == "ValueError"
        # the stack unwound: a new span is a root again
        with trace.span("after"):
            pass
        (after,) = trace.drain()
        assert after.parent_id is None

    def test_disable_mid_span_is_tolerated(self):
        trace.set_enabled(True)
        span = trace.span("phase")
        with span:
            trace.set_enabled(False)
        assert trace.drain() == []

    def test_drain_moves_spans_out(self):
        trace.set_enabled(True)
        with trace.span("x"):
            pass
        assert len(trace.drain()) == 1
        assert trace.drain() == []

    def test_on_finish_hook_sees_every_record(self):
        trace.set_enabled(True)
        seen = []
        trace.tracer.on_finish(seen.append)
        try:
            with trace.span("hooked"):
                pass
        finally:
            trace.tracer.on_finish(None)
        assert [r.name for r in seen] == ["hooked"]


class TestNoOpOverhead:
    def test_disabled_span_is_the_shared_singleton(self):
        """No allocation on the disabled path: every call hands back the
        one null span, so the per-call cost is a flag check."""
        assert trace.span("a", x=1) is trace.span("b")

    def test_disabled_span_per_call_cost_is_microscopic(self):
        """Kill-switch guard for the < 3% acceptance bar: the disabled
        path must cost well under 5 microseconds per span (real pipeline
        phases run for milliseconds), with a bound loose enough to be
        immune to CI noise."""
        assert not trace.enabled()
        n = 50_000

        def instrumented():
            acc = 0
            for i in range(n):
                with trace.span("hot", index=i):
                    acc += i * i
            return acc

        instrumented()  # warm-up
        best = min(_timed(instrumented) for _ in range(3))
        assert best / n < 5e-6
        assert trace.drain() == []


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
