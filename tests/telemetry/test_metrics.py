"""Metrics registry: instruments, bucketing, snapshot algebra."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    diff_snapshot,
    merge_snapshot,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.set_enabled(True)
    return reg


class TestInstruments:
    def test_disabled_registry_hands_out_inert_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.gauge("b").set(2.0)
        reg.histogram("c").observe(0.1)
        assert reg.snapshot() == {}

    def test_counter_accumulates(self, registry):
        registry.counter("runs").inc()
        registry.counter("runs").inc(4)
        assert registry.snapshot()["runs"] == {"type": "counter", "value": 5}

    def test_gauge_last_write_wins(self, registry):
        registry.gauge("rate").set(0.25)
        registry.gauge("rate").set(0.75)
        assert registry.snapshot()["rate"]["value"] == 0.75

    def test_instruments_are_created_once_per_name(self, registry):
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")


class TestHistogramBucketing:
    def test_observations_land_in_the_first_covering_bucket(self):
        hist = Histogram("h", buckets=(0.001, 0.01, 0.1))
        hist.observe(0.0005)  # <= 0.001
        hist.observe(0.001)  # boundary: still the 0.001 bucket
        hist.observe(0.05)  # <= 0.1
        hist.observe(3.0)  # overflow
        assert hist.counts == [2, 0, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.0005 + 0.001 + 0.05 + 3.0)
        assert hist.min == pytest.approx(0.0005)
        assert hist.max == pytest.approx(3.0)

    def test_default_buckets_cover_the_pipeline_range(self):
        hist = Histogram("h")
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS
        assert hist.buckets[0] <= 1e-4  # sub-ms SMT repairs
        assert hist.buckets[-1] >= 10.0  # whole shards

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for _ in range(10):
            hist.observe(1.5)  # all in the (1.0, 2.0] bucket
        p50 = hist.percentile(0.50)
        assert 1.0 <= p50 <= 2.0

    def test_percentile_of_overflow_is_bounded_by_max(self):
        hist = Histogram("h", buckets=(0.1,))
        hist.observe(5.0)
        assert hist.percentile(0.99) == pytest.approx(5.0)

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(0.5) == 0.0


class TestSnapshotAlgebra:
    def test_merge_adds_counters_and_histograms(self, registry):
        registry.counter("c").inc(2)
        registry.histogram("h", (1.0,)).observe(0.5)
        a = registry.snapshot()
        b = registry.snapshot()
        merged = merge_snapshot(dict(a), b)
        assert merged["c"]["value"] == 4
        assert merged["h"]["count"] == 2
        assert merged["h"]["counts"] == [2, 0]
        assert merged["h"]["sum"] == pytest.approx(1.0)

    def test_merge_into_empty_copies(self, registry):
        registry.counter("c").inc(3)
        merged = merge_snapshot({}, registry.snapshot())
        assert merged["c"]["value"] == 3
        # a copy, not an alias
        registry.counter("c").inc(10)
        assert merged["c"]["value"] == 3

    def test_diff_attributes_one_window(self, registry):
        registry.counter("c").inc(2)
        registry.histogram("h", (1.0,)).observe(0.5)
        before = registry.snapshot()
        registry.counter("c").inc(5)
        registry.histogram("h", (1.0,)).observe(2.0)
        delta = diff_snapshot(registry.snapshot(), before)
        assert delta["c"]["value"] == 5
        assert delta["h"]["count"] == 1
        assert delta["h"]["counts"] == [0, 1]

    def test_diff_drops_unchanged_metrics(self, registry):
        registry.counter("same").inc()
        before = registry.snapshot()
        assert diff_snapshot(registry.snapshot(), before) == {}

    def test_absorb_folds_a_delta_into_a_live_registry(self, registry):
        other = MetricsRegistry()
        other.set_enabled(True)
        other.counter("c").inc(7)
        other.histogram("h", (1.0,)).observe(0.25)
        registry.counter("c").inc(1)
        registry.absorb(other.snapshot())
        snap = registry.snapshot()
        assert snap["c"]["value"] == 8
        assert snap["h"]["count"] == 1

    def test_disabling_drops_state(self, registry):
        registry.counter("c").inc()
        registry.set_enabled(False)
        registry.set_enabled(True)
        assert registry.snapshot() == {}
