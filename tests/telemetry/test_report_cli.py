"""``repro-scamv report`` robustness: degenerate inputs fail cleanly.

The contract (exercised end-to-end through ``main``): any unreadable,
empty, truncated, or garbage input yields a **one-line diagnostic on
stderr and exit code 1** (2 for a missing file) — never a traceback.
"""

import json

import pytest

from repro.cli import main


def _run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def campaign_files(tmp_path):
    """One tiny real campaign leaving a trace + ledger + events behind."""
    paths = {
        "trace": str(tmp_path / "trace.jsonl"),
        "ledger": str(tmp_path / "ledger.json"),
        "events": str(tmp_path / "events.jsonl"),
        "html": str(tmp_path / "dash.html"),
    }
    code = main(
        [
            "validate",
            "--experiment",
            "mct-a",
            "--refined",
            "--programs",
            "3",
            "--tests",
            "2",
            "--trace",
            paths["trace"],
            "--ledger-out",
            paths["ledger"],
            "--events-out",
            paths["events"],
        ]
    )
    assert code == 0
    return paths


class TestDegenerateTraces:
    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        code, _, err = _run(capsys, ["report", str(tmp_path / "no.jsonl")])
        assert code == 2
        assert "no such trace" in err

    def test_empty_file_is_exit_1_with_one_line(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, _, err = _run(capsys, ["report", str(empty)])
        assert code == 1
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_truncated_trace_is_exit_1(self, tmp_path, capsys):
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text('[\n{"name": "span", "ph": "X", "ts"')
        code, _, err = _run(capsys, ["report", str(truncated)])
        assert code == 1
        assert len(err.strip().splitlines()) == 1

    def test_binary_garbage_is_exit_1(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_bytes(b"\x89PNG\r\n\x1a\n\xff\xfe\x00\x01binary")
        code, _, err = _run(capsys, ["report", str(garbage)])
        assert code == 1
        assert "unreadable" in err or "no spans" in err
        assert "Traceback" not in err

    def test_text_garbage_reports_no_spans(self, tmp_path, capsys):
        noise = tmp_path / "noise.jsonl"
        noise.write_text("hello\nworld\n")
        code, _, err = _run(capsys, ["report", str(noise)])
        assert code == 1
        assert "no spans" in err

    def test_unreadable_metrics_file_is_exit_1(
        self, campaign_files, tmp_path, capsys
    ):
        bad = tmp_path / "metrics.json"
        bad.write_text("{broken")
        code, _, err = _run(
            capsys,
            ["report", campaign_files["trace"], "--metrics", str(bad)],
        )
        assert code == 1
        assert "metrics file" in err


class TestHtmlExport:
    def test_html_with_ledger_and_events(self, campaign_files, capsys):
        code, out, err = _run(
            capsys,
            [
                "report",
                campaign_files["trace"],
                "--html",
                campaign_files["html"],
                "--ledger",
                campaign_files["ledger"],
                "--events",
                campaign_files["events"],
            ],
        )
        assert code == 0
        assert "dashboard written to" in err
        text = open(campaign_files["html"], encoding="utf-8").read()
        assert text.startswith("<!DOCTYPE html>")
        assert "Phase time breakdown" in text
        assert "Coverage &amp; convergence" in text
        # the ledger file holds one campaign; its name titles the page
        with open(campaign_files["ledger"], encoding="utf-8") as handle:
            (name,) = json.load(handle)["campaigns"].keys()
        assert f"Campaign dashboard — {name}" in text

    def test_unreadable_ledger_is_exit_1(
        self, campaign_files, tmp_path, capsys
    ):
        bad = tmp_path / "bad-ledger.json"
        bad.write_text("{")
        code, _, err = _run(
            capsys,
            [
                "report",
                campaign_files["trace"],
                "--html",
                campaign_files["html"],
                "--ledger",
                str(bad),
            ],
        )
        assert code == 1
        assert "ledger file" in err
