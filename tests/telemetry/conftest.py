"""Telemetry tests always start from (and restore) the disabled default."""

from __future__ import annotations

import pytest

from repro.telemetry import collect


@pytest.fixture(autouse=True)
def telemetry_disabled():
    collect.disable()
    yield
    collect.disable()
