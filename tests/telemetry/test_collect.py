"""Cross-process aggregation, bridges, and the determinism contract."""

import os

import pytest

from repro.exps import mct_campaign
from repro.pipeline.driver import ScamV
from repro.runner import ParallelRunner, RunnerConfig
from repro.runner.events import RunnerDegraded, ShardFinished, ShardRetried
from repro.telemetry import collect, metrics, trace


def _config(**kwargs):
    defaults = dict(num_programs=4, tests_per_program=2, seed=11)
    defaults.update(kwargs)
    return mct_campaign("A", refined=True, **defaults)


class TestShardWindows:
    def test_disabled_shard_window_is_free_and_none(self):
        marker = collect.shard_begin()
        assert marker is None
        assert collect.shard_end(marker) is None

    def test_shard_window_captures_spans_and_metric_delta(self):
        collect.enable()
        metrics.counter("noise.before").inc()
        marker = collect.shard_begin()
        with trace.span("shard", shard=0):
            with trace.span("testgen.generate"):
                pass
        metrics.counter("pipeline.experiments").inc(3)
        pid, spans, delta, solver_doc = collect.shard_end(marker)
        assert pid == os.getpid()
        assert solver_doc is None  # no solver queries ran in this window
        assert [s.name for s in spans] == ["testgen.generate", "shard"]
        assert delta["pipeline.experiments"]["value"] == 3
        assert "noise.before" not in delta
        # the span hook fed the latency histograms
        assert delta["span.shard.seconds"]["count"] == 1

    def test_absorb_skips_same_process_metrics_but_takes_spans(self):
        collect.enable()
        marker = collect.shard_begin()
        with trace.span("shard"):
            pass
        metrics.counter("pipeline.experiments").inc()
        payload = collect.shard_end(marker)
        spans, snapshot = [], {}
        collect.absorb_shard_payload(payload, spans, snapshot)
        assert [s.name for s in spans] == ["shard"]
        # inline shards already live in this process's registry
        assert snapshot == {}
        assert metrics.snapshot()["pipeline.experiments"]["value"] == 1

    def test_absorb_merges_foreign_process_metrics(self):
        collect.enable()
        pid, spans, delta = (
            99999,
            [],
            {"pipeline.experiments": {"type": "counter", "value": 4}},
        )
        snapshot = {}
        collect.absorb_shard_payload((pid, spans, delta), [], snapshot)
        assert snapshot["pipeline.experiments"]["value"] == 4


class TestEventBridge:
    def test_runner_events_become_metrics(self):
        collect.enable()
        seen = []
        sink = collect.event_bridge(chain=seen.append)
        sink(ShardFinished(campaign="A", shard_id=0, duration=0.5))
        sink(ShardFinished(campaign="A", shard_id=1, duration=0.1, cached=True))
        sink(ShardRetried(campaign="A", shard_id=0, attempt=1, reason="x"))
        sink(RunnerDegraded(reason="no fork"))
        snap = metrics.snapshot()
        assert snap["runner.shards_finished"]["value"] == 1
        assert snap["runner.shards_resumed"]["value"] == 1
        assert snap["runner.shard_retries"]["value"] == 1
        assert snap["runner.degraded"]["value"] == 1
        # cached durations never reach the latency histogram
        assert snap["runner.shard.seconds"]["count"] == 1
        assert snap["runner.shard.seconds"]["sum"] == pytest.approx(0.5)
        assert len(seen) == 4  # the chained sink saw everything


class TestDeterminismContract:
    def test_sequential_counters_identical_with_telemetry_on(self):
        cfg = _config()
        baseline = ScamV(cfg).run()
        collect.enable()
        traced = ScamV(cfg).run()
        assert (
            traced.stats.deterministic_counters()
            == baseline.stats.deterministic_counters()
        )
        assert traced.spans  # and telemetry actually recorded
        names = {s.name for s in traced.spans}
        assert {"shard", "program", "testgen.generate"} <= names

    def test_worker_counters_identical_at_1_and_4_workers(self):
        cfg = _config()
        baseline = ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        collect.enable()
        pooled = ParallelRunner(
            RunnerConfig(workers=4, start_method="fork")
        ).run(cfg)
        assert (
            pooled.stats.deterministic_counters()
            == baseline.stats.deterministic_counters()
        )
        # worker telemetry crossed the pipes: spans from other pids, and
        # their metric deltas add up to the deterministic totals
        assert any(s.pid != os.getpid() for s in pooled.spans)
        assert (
            pooled.metrics["pipeline.experiments"]["value"]
            == pooled.stats.experiments
        )

    def test_inline_runner_leaves_metrics_in_live_registry(self):
        cfg = _config(num_programs=2)
        collect.enable()
        result = ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        assert result.metrics == {}  # same-process shards: no double copy
        assert (
            metrics.snapshot()["pipeline.experiments"]["value"]
            == result.stats.experiments
        )
        assert {s.name for s in result.spans} >= {"shard", "program"}

    def test_resumed_cached_shards_excluded_from_wallclock(self, tmp_path):
        from repro.runner import CheckpointJournal, campaign_key
        from repro.runner.merge import merge_shard_results
        from repro.runner.worker import ShardSpec, run_shard

        cfg = _config(num_programs=2)
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        executed = run_shard(cfg, ShardSpec(0, (0,)))
        executed.duration = 100.0  # pretend the original run was slow
        journal.append(0, campaign_key(cfg), executed)
        loaded = journal.load({0: campaign_key(cfg)})[(0, 0)]
        assert loaded.cached
        loaded.stats.time_to_counterexample = None  # isolate the timeline
        fresh = run_shard(cfg, ShardSpec(1, (1,)))
        fresh.stats.time_to_counterexample = 0.5
        fresh.duration = 2.0
        merged = merge_shard_results(cfg.name, [loaded, fresh])
        # the cached 100s never enter the resumed run's timeline
        assert merged.stats.time_to_counterexample == pytest.approx(0.5)
