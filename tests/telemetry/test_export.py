"""Exporters: Chrome trace events, Prometheus text, stamped JSON, schema."""

import json

import pytest

from repro.telemetry.export import (
    METRICS_EVENT,
    STAMP_EVENT,
    read_trace,
    render_prometheus,
    spans_to_events,
    stamp,
    write_chrome_trace,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.telemetry.schema import METRICS_SCHEMA, SchemaError, validate
from repro.telemetry.trace import SpanRecord

_SPANS = [
    SpanRecord(
        name="shard",
        start=1.0,
        duration=0.5,
        pid=42,
        span_id=0,
        attrs={"shard": 3},
    ),
    SpanRecord(
        name="smt.solve",
        start=1.1,
        duration=0.2,
        pid=42,
        span_id=1,
        parent_id=0,
        attrs={"sat": True},
    ),
]

_SNAPSHOT = {
    "cache.expr.hits": {"type": "counter", "value": 10},
    "campaign.A.rate": {"type": "gauge", "value": 0.5},
    "span.smt.solve.seconds": {
        "type": "histogram",
        "buckets": [0.1, 1.0],
        "counts": [1, 2, 1],
        "sum": 2.5,
        "count": 4,
        "min": 0.05,
        "max": 1.5,
    },
}


class TestChromeTrace:
    def test_events_golden(self):
        events = spans_to_events(_SPANS)
        assert events == [
            {
                "name": "shard",
                "cat": "repro",
                "ph": "X",
                "ts": 1000000.0,
                "dur": 500000.0,
                "pid": 42,
                "tid": 1,
                "args": {"span_id": 0, "shard": 3},
            },
            {
                "name": "smt.solve",
                "cat": "repro",
                "ph": "X",
                "ts": 1100000.0,
                "dur": 200000.0,
                "pid": 42,
                "tid": 1,
                "args": {"span_id": 1, "parent_id": 0, "sat": True},
            },
        ]

    def test_streaming_format_is_json_array_prefix(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_chrome_trace(_SPANS, path, metrics_snapshot=_SNAPSHOT)
        lines = open(path, encoding="utf-8").read().splitlines()
        assert lines[0] == "["
        # every event line is one JSON object with a trailing comma
        for line in lines[1:]:
            assert line.endswith(",")
            json.loads(line.rstrip(","))
        # closing the array by hand yields strict JSON (what Perfetto and
        # Chrome tolerate without the close)
        strict = "\n".join(lines)[:-1] + "]"
        doc = json.loads(strict)
        assert [e["name"] for e in doc] == [
            STAMP_EVENT,
            METRICS_EVENT,
            "shard",
            "smt.solve",
        ]

    def test_read_trace_round_trips_and_embeds_metrics(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_chrome_trace(_SPANS, path, metrics_snapshot=_SNAPSHOT)
        events = read_trace(path)
        names = [e["name"] for e in events]
        assert names == [STAMP_EVENT, METRICS_EVENT, "shard", "smt.solve"]
        metrics = next(e for e in events if e["name"] == METRICS_EVENT)
        assert metrics["args"]["snapshot"] == _SNAPSHOT

    def test_read_trace_tolerates_truncation(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_chrome_trace(_SPANS, path)
        text = open(path, encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(text[: len(text) - 25])
        events = read_trace(path)
        assert [e["name"] for e in events][:2] == [STAMP_EVENT, "shard"]

    def test_read_trace_accepts_strict_arrays_and_jsonl(self, tmp_path):
        strict = tmp_path / "strict.json"
        strict.write_text(json.dumps(spans_to_events(_SPANS)))
        assert len(read_trace(str(strict))) == 2
        jsonl = tmp_path / "plain.jsonl"
        jsonl.write_text(
            "\n".join(json.dumps(e) for e in spans_to_events(_SPANS))
        )
        assert len(read_trace(str(jsonl))) == 2


class TestPrometheus:
    def test_render_golden(self):
        assert render_prometheus(_SNAPSHOT) == (
            "# TYPE repro_cache_expr_hits_total counter\n"
            "repro_cache_expr_hits_total 10\n"
            "# TYPE repro_campaign_A_rate gauge\n"
            "repro_campaign_A_rate 0.5\n"
            "# TYPE repro_span_smt_solve_seconds histogram\n"
            'repro_span_smt_solve_seconds_bucket{le="0.1"} 1\n'
            'repro_span_smt_solve_seconds_bucket{le="1"} 3\n'
            'repro_span_smt_solve_seconds_bucket{le="+Inf"} 4\n'
            "repro_span_smt_solve_seconds_sum 2.5\n"
            "repro_span_smt_solve_seconds_count 4\n"
        )

    def test_write_prometheus_file(self, tmp_path):
        path = str(tmp_path / "m.prom")
        write_metrics_prometheus(_SNAPSHOT, path)
        text = open(path, encoding="utf-8").read()
        assert text == render_prometheus(_SNAPSHOT)


class TestMetricsJson:
    def test_document_layout_and_stamp(self, tmp_path):
        path = str(tmp_path / "m.json")
        doc = write_metrics_json(_SNAPSHOT, path)
        loaded = json.load(open(path, encoding="utf-8"))
        assert loaded == doc
        assert loaded["version"] == 1
        assert loaded["metrics"] == _SNAPSHOT
        meta = loaded["meta"]
        assert set(meta) >= {"git_sha", "python", "platform", "timestamp"}

    def test_stamp_fields(self):
        meta = stamp()
        assert meta["python"].count(".") == 2
        assert meta["timestamp"].endswith("Z")

    def test_snapshot_document_validates(self, tmp_path):
        doc = write_metrics_json(_SNAPSHOT, str(tmp_path / "m.json"))
        validate(doc, METRICS_SCHEMA)  # does not raise

    def test_schema_rejects_malformed_documents(self):
        good = {
            "version": 1,
            "meta": stamp(),
            "metrics": {"c": {"type": "counter", "value": 1}},
        }
        validate(good, METRICS_SCHEMA)
        bad_type = json.loads(json.dumps(good))
        bad_type["metrics"]["c"]["type"] = "exotic"
        with pytest.raises(SchemaError):
            validate(bad_type, METRICS_SCHEMA)
        with pytest.raises(SchemaError):
            validate({"version": 1}, METRICS_SCHEMA)
