"""The solver observatory: kill-switch contract, aggregation, merge
invariance, and end-to-end attribution (ISSUE 10 acceptance gates)."""

import time

import pytest

from repro.exps import mct_campaign, mpart_campaign
from repro.runner import ParallelRunner, RunnerConfig
from repro.telemetry import collect, solver
from repro.telemetry.report import solver_section_lines


def _record(klass="pair:0-1", phase="testgen.generate", **kwargs):
    defaults = dict(
        seconds=0.001,
        outcome="sat",
        restarts=1,
        repairs=3,
        warm_sat=False,
        conjuncts=4,
        extras=1,
        term_size=40,
    )
    defaults.update(kwargs)
    with solver.query_context(phase, klass, prepared_hit=True):
        solver.record_query(**defaults)


class TestKillSwitch:
    def test_disabled_context_is_the_shared_singleton(self):
        assert not solver.enabled()
        assert solver.query_context("p", "a") is solver.query_context(
            "q", "b"
        )

    def test_disabled_record_is_a_no_op(self):
        solver.record_query(
            seconds=1.0,
            outcome="sat",
            restarts=1,
            repairs=1,
            warm_sat=True,
            conjuncts=1,
            extras=0,
            term_size=1,
        )
        assert solver.drain() is None

    def test_disabled_per_call_cost_is_microscopic(self):
        """The <=5% overhead bar rests on the off path costing one flag
        check; bound it well under 5us per call (a solver query runs for
        hundreds of microseconds at minimum)."""
        assert not solver.enabled()
        n = 50_000

        def instrumented():
            for i in range(n):
                with solver.query_context("p", "k"):
                    solver.record_query(
                        seconds=0.0,
                        outcome="sat",
                        restarts=0,
                        repairs=0,
                        warm_sat=False,
                        conjuncts=1,
                        extras=0,
                        term_size=i,
                    )

        instrumented()  # warm-up
        best = min(_timed(instrumented) for _ in range(3))
        assert best / n < 5e-6
        assert solver.drain() is None

    def test_disabling_drops_the_buffered_aggregate(self):
        solver.set_enabled(True)
        _record()
        solver.set_enabled(False)
        assert solver.drain() is None


class TestAggregation:
    def setup_method(self):
        solver.set_enabled(True)

    def test_class_and_phase_tallies(self):
        _record(seconds=0.002, outcome="sat", restarts=2, warm_sat=True)
        _record(seconds=0.001, outcome="exhausted", restarts=5)
        _record(klass="pair:1-1", phase="testgen.train", seconds=0.004)
        doc = solver.drain()
        tally = doc["classes"]["pair:0-1"]
        assert tally["queries"] == 2
        assert tally["sat"] == 1
        assert tally["exhausted"] == 1
        assert tally["seconds_us"] == 3000
        assert tally["restarts"] == 7
        assert tally["warm_sat"] == 1
        assert tally["cold_sat"] == 0
        assert tally["prepared_hits"] == 2
        assert tally["restart_hist"] == {"2": 1, "5": 1}
        assert doc["phases"]["testgen.generate"]["queries"] == 2
        assert doc["phases"]["testgen.train"]["seconds_us"] == 4000

    def test_unattributed_fallback_outside_any_context(self):
        solver.record_query(
            seconds=0.001,
            outcome="sat",
            restarts=1,
            repairs=0,
            warm_sat=False,
            conjuncts=1,
            extras=0,
            term_size=3,
        )
        doc = solver.drain()
        assert set(doc["classes"]) == {solver.UNATTRIBUTED}
        assert solver.attribution(doc) == 0.0

    def test_contexts_nest_and_restore(self):
        with solver.query_context("outer", "a"):
            with solver.query_context("inner", "b", prepared_hit=True):
                assert solver.current_context() == ("inner", "b", True)
            assert solver.current_context() == ("outer", "a", None)
        assert solver.current_context() is None

    def test_top_list_keeps_the_k_slowest_sorted(self):
        for i in range(3 * solver.TOP_K):
            _record(seconds=0.0001 * (i + 1), term_size=i)
        doc = solver.drain()
        top = doc["top"]
        assert len(top) == solver.TOP_K
        times = [entry["seconds_us"] for entry in top]
        assert times == sorted(times, reverse=True)
        assert times[0] == 100 * 3 * solver.TOP_K

    def test_drain_takes_ownership(self):
        _record()
        assert solver.drain() is not None
        assert solver.drain() is None

    def test_doc_totals_and_attribution(self):
        _record(seconds=0.009)
        solver.record_query(  # unattributed
            seconds=0.001,
            outcome="sat",
            restarts=0,
            repairs=0,
            warm_sat=False,
            conjuncts=1,
            extras=0,
            term_size=1,
        )
        doc = solver.drain()
        totals = solver.doc_totals(doc)
        assert totals["queries"] == 2
        assert totals["seconds_us"] == 10000
        assert solver.attribution(doc) == pytest.approx(0.9)


class TestMergeInvariance:
    def _campaign_doc(self, workers):
        collect.enable()
        config = mct_campaign(
            "A", refined=True, num_programs=4, tests_per_program=2, seed=11
        )
        runner_config = (
            RunnerConfig(workers=workers, start_method="fork")
            if workers > 1
            else RunnerConfig(workers=1)
        )
        result = ParallelRunner(runner_config).run(config)
        if workers == 1:
            # inline shards leave the aggregate in this process
            return solver.merge_solver_docs(
                [result.solver, solver.drain()]
            )
        return result.solver

    def test_1_vs_4_workers_byte_identical_aggregate(self):
        """Worker-count invariance: the timing-free projection (every
        query/outcome/restart/repair tally) is byte-identical at 1 and 4
        workers; wall times are measurements and excluded by design."""
        doc1 = self._campaign_doc(1)
        collect.disable()
        doc4 = self._campaign_doc(4)
        assert doc1 is not None and doc4 is not None
        assert solver.canonical(
            solver.deterministic_doc(doc1)
        ) == solver.canonical(solver.deterministic_doc(doc4))

    def test_worker_solver_doc_travels_over_shard_payload(self):
        doc = self._campaign_doc(4)
        assert doc["classes"]
        assert all(
            k.startswith(("pair:", "train:")) for k in doc["classes"]
        )
        assert any(k.startswith("pair:") for k in doc["classes"])


class TestReportSection:
    def test_campaign_attribution_exceeds_95_percent(self):
        """The acceptance gate: >=95% of profiled smt.solve wall time lands
        on named coverage classes, and the section lists them."""
        collect.enable()
        config = mpart_campaign(
            refined=True, num_programs=3, tests_per_program=4, seed=3
        )
        result = ParallelRunner(RunnerConfig(workers=1)).run(config)
        doc = solver.merge_solver_docs([result.solver, solver.drain()])
        assert doc is not None
        assert solver.attribution(doc) >= 0.95
        text = "\n".join(solver_section_lines(doc))
        assert "Solver observatory" in text
        assert "pair:" in text
        assert "Hardest queries" in text

    def test_section_renders_empty_doc_as_nothing(self):
        assert solver_section_lines(None) == []
        assert solver_section_lines(solver.empty_doc()) == []


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
