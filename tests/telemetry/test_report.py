"""Trace analysis and the ``repro-scamv report`` command."""

import pytest

from repro.cli import main
from repro.telemetry.report import PhaseStats, analyze_events

_EVENTS = [
    {"name": "repro_stamp", "ph": "M", "pid": 0, "tid": 0,
     "args": {"git_sha": "abc123", "python": "3.11.0",
              "timestamp": "2026-01-01T00:00:00Z"}},
    # program (1s) containing two solves (0.2s + 0.4s): self time 0.4s
    {"name": "program", "ph": "X", "ts": 0.0, "dur": 1_000_000.0,
     "pid": 7, "tid": 1, "args": {"span_id": 0, "name": "templateA_1"}},
    {"name": "smt.solve", "ph": "X", "ts": 100_000.0, "dur": 200_000.0,
     "pid": 7, "tid": 1, "args": {"span_id": 1, "parent_id": 0}},
    {"name": "smt.solve", "ph": "X", "ts": 400_000.0, "dur": 400_000.0,
     "pid": 7, "tid": 1, "args": {"span_id": 2, "parent_id": 0}},
    # same span ids in another pid must not be confused with pid 7's
    {"name": "program", "ph": "X", "ts": 0.0, "dur": 500_000.0,
     "pid": 8, "tid": 1, "args": {"span_id": 0, "name": "templateA_2"}},
]

_SNAPSHOT = {
    "cache.expr.hits": {"type": "counter", "value": 30},
    "cache.expr.misses": {"type": "counter", "value": 10},
    "other.metric": {"type": "gauge", "value": 1.0},
}


class TestAnalysis:
    def test_phase_totals_and_self_time(self):
        report = analyze_events(_EVENTS)
        program = report.phases["program"]
        assert program.count == 2
        assert program.total == pytest.approx(1.5)
        # pid 7's program: 1.0 - 0.6 children; pid 8's: 0.5, no children
        assert program.self_time == pytest.approx(0.9)
        solve = report.phases["smt.solve"]
        assert solve.count == 2
        assert solve.self_time == pytest.approx(0.6)

    def test_wall_time_spans_the_whole_trace(self):
        report = analyze_events(_EVENTS)
        assert report.wall_time == pytest.approx(1.0)

    def test_slowest_programs_ranked(self):
        report = analyze_events(_EVENTS)
        assert [label for label, _ in report.slowest_programs] == [
            "templateA_1",
            "templateA_2",
        ]

    def test_cache_rates_from_snapshot(self):
        report = analyze_events(_EVENTS, metrics_snapshot=_SNAPSHOT)
        hits, misses, rate = report.cache_rates["expr"]
        assert (hits, misses) == (30, 10)
        assert rate == pytest.approx(0.75)

    def test_meta_comes_from_stamp_event(self):
        report = analyze_events(_EVENTS)
        assert report.meta["git_sha"] == "abc123"

    def test_percentiles_nearest_rank(self):
        stats = PhaseStats(name="p", durations=[0.1, 0.2, 0.3, 0.4])
        assert stats.percentile(0.50) == pytest.approx(0.2)
        assert stats.percentile(0.95) == pytest.approx(0.4)

    def test_render_contains_the_table_and_sections(self):
        report = analyze_events(_EVENTS, metrics_snapshot=_SNAPSHOT)
        text = report.render(top=1)
        assert "Phase" in text and "Self (s)" in text
        assert "smt.solve" in text
        assert "expr: 75.0%" in text
        assert "templateA_1" in text
        assert "templateA_2" not in text  # top=1


class TestReportCommand:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        code = main(
            [
                "validate",
                "--experiment",
                "mct-a",
                "--refined",
                "--programs",
                "3",
                "--tests",
                "2",
                "--trace",
                path,
                "--metrics-out",
                str(tmp_path / "m.json"),
            ]
        )
        assert code == 0
        return path

    def test_report_covers_the_pipeline_phases(self, trace_path, capsys):
        assert main(["report", trace_path]) == 0
        out = capsys.readouterr().out
        phases = [
            "template.generate",
            "obs.augment",
            "symbolic.execute",
            "relation.synthesize",
            "smt.restart",
            "smt.solve",
            "testgen.generate",
            "hw.experiment",
        ]
        for phase in phases:
            assert phase in out
        assert "Cache hit rates:" in out
        assert "Slowest programs" in out

    def test_report_reads_external_metrics_snapshot(
        self, trace_path, tmp_path, capsys
    ):
        assert main(
            ["report", trace_path, "--metrics", str(tmp_path / "m.json")]
        ) == 0
        assert "Cache hit rates:" in capsys.readouterr().out

    def test_report_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_report_empty_trace_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("[\n")
        assert main(["report", str(empty)]) == 1
        assert "no spans" in capsys.readouterr().err
