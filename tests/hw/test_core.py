"""Unit tests for the simulated core: ISA semantics and speculation."""

import pytest

from repro.errors import HardwareError
from repro.hw.core import Core, CoreConfig
from repro.hw.state import MachineState, Memory
from repro.isa.assembler import assemble


def run(src, regs=None, memory=None, config=None):
    core = Core(config or CoreConfig())
    state = MachineState(regs=regs or {}, memory=Memory(memory or {}))
    trace = core.execute(assemble(src), state)
    return core, state, trace


class TestIsaSemantics:
    def test_mov_and_alu(self):
        _, state, _ = run(
            "mov x1, #5\nadd x2, x1, #3\nsub x3, x2, x1\n"
            "and x4, x2, #0xF\norr x5, x1, #0x10\neor x6, x1, x1\n"
            "lsl x7, x1, #2\nlsr x8, x7, #1\nret"
        )
        assert state.regs["x2"] == 8
        assert state.regs["x3"] == 3
        assert state.regs["x4"] == 8
        assert state.regs["x5"] == 0x15
        assert state.regs["x6"] == 0
        assert state.regs["x7"] == 20
        assert state.regs["x8"] == 10

    def test_load_and_store(self):
        _, state, _ = run(
            "str x1, [x2]\nldr x3, [x2]\nldr x4, [x2, #8]\nret",
            regs={"x1": 0xAB, "x2": 0x1000},
            memory={0x1008: 7},
        )
        assert state.regs["x3"] == 0xAB
        assert state.regs["x4"] == 7

    def test_wrapping_address_arithmetic(self):
        _, state, _ = run(
            "ldr x1, [x2, x3]\nret",
            regs={"x2": 2**64 - 8, "x3": 8 + 0x40},
            memory={0x40: 5},
        )
        assert state.regs["x1"] == 5

    def test_branch_taken_and_not_taken(self):
        src = "cmp x0, x1\nb.ge skip\nmov x2, #1\nskip:\nret"
        _, taken, _ = run(src, regs={"x0": 5, "x1": 3})
        assert taken.regs["x2"] == 0
        _, fall, _ = run(src, regs={"x0": 1, "x1": 3})
        assert fall.regs["x2"] == 1

    def test_signed_conditions(self):
        src = "cmp x0, x1\nb.lt neg\nmov x2, #1\nneg:\nret"
        _, state, _ = run(src, regs={"x0": 2**64 - 1, "x1": 0})  # -1 < 0
        assert state.regs["x2"] == 0

    def test_tst_and_ne(self):
        src = "tst x0, #0x80\nb.ne flagged\nmov x2, #1\nflagged:\nret"
        _, state, _ = run(src, regs={"x0": 0x80})
        assert state.regs["x2"] == 0
        _, state, _ = run(src, regs={"x0": 0x7F})
        assert state.regs["x2"] == 1

    def test_unconditional_branch(self):
        _, state, _ = run("b over\nmov x1, #1\nover:\nret")
        assert state.regs["x1"] == 0

    def test_runaway_program_guarded(self):
        core = Core(CoreConfig(max_steps=100))
        with pytest.raises(HardwareError):
            core.execute(assemble("loop:\nb loop"), MachineState())

    def test_trace_records_pcs_and_loads(self):
        _, _, trace = run("ldr x1, [x0]\nret", regs={"x0": 0x1000})
        assert trace.executed_pcs == [0, 1]
        assert trace.load_addresses == [0x1000]


class TestCacheIntegration:
    def test_loads_fill_cache(self):
        core, _, _ = run("ldr x1, [x0]\nret", regs={"x0": 0x1000})
        assert core.cache.contains(0x1000)

    def test_stride_triggers_prefetch(self):
        core, _, trace = run(
            "ldr x1, [x0]\nldr x2, [x0, #0x40]\nldr x3, [x0, #0x80]\nret",
            regs={"x0": 0x1000},
        )
        assert trace.prefetches == [0x10C0]
        assert core.cache.contains(0x10C0)

    def test_cycle_counting_hit_vs_miss(self):
        cfg = CoreConfig()
        core1, _, _ = run("ldr x1, [x0]\nret", regs={"x0": 0x1000}, config=cfg)
        core2, _, _ = run(
            "ldr x1, [x0]\nldr x2, [x0]\nret", regs={"x0": 0x1000}, config=cfg
        )
        # Second load hits: cheaper than another miss.
        assert core2.cycles < 2 * core1.cycles

    def test_timed_access_distinguishes_hit_miss(self):
        core = Core()
        miss = core.timed_access(0x3000)  # cold: TLB miss + cache miss
        hit = core.timed_access(0x3000)
        assert miss == core.config.miss_latency + core.config.tlb_miss_latency
        assert hit == core.config.hit_latency

    def test_flush_line(self):
        core = Core()
        core.timed_access(0x3000)
        core.flush_line(0x3000)
        assert core.timed_access(0x3000) == core.config.miss_latency


class TestSpeculation:
    SPEC_SRC = """
        cmp x0, x1
        b.ge end
        ldr x6, [x5, x2]
    end:
        ret
    """

    def _trained_core(self, taken: bool):
        """A core whose predictor expects the branch at pc=1."""
        core = Core()
        for _ in range(4):
            core.predictor.update(1, taken)
        return core

    def test_correct_prediction_no_transient(self):
        core = self._trained_core(taken=True)
        state = MachineState(regs={"x0": 9, "x1": 1, "x5": 0x2000, "x2": 0})
        trace = core.execute(assemble(self.SPEC_SRC), state)
        assert trace.mispredictions == 0
        assert trace.transient_loads == []

    def test_misprediction_issues_transient_load(self):
        core = self._trained_core(taken=False)
        state = MachineState(regs={"x0": 9, "x1": 1, "x5": 0x2000, "x2": 0x40})
        trace = core.execute(assemble(self.SPEC_SRC), state)
        assert trace.mispredictions == 1
        assert trace.transient_loads == [0x2040]
        assert core.cache.contains(0x2040)

    def test_transient_load_does_not_change_registers(self):
        core = self._trained_core(taken=False)
        state = MachineState(
            regs={"x0": 9, "x1": 1, "x5": 0x2000, "x2": 0x40},
            memory=Memory({0x2040: 0xDEAD}),
        )
        core.execute(assemble(self.SPEC_SRC), state)
        assert state.regs["x6"] == 0  # squashed

    def test_no_forwarding_blocks_dependent_load(self):
        src = """
            cmp x0, x1
            b.ge end
            ldr x6, [x5, x3]
            ldr x8, [x7, x6]
        end:
            ret
        """
        core = self._trained_core(taken=False)
        state = MachineState(
            regs={"x0": 9, "x1": 1, "x5": 0x2000, "x3": 0, "x7": 0x3000}
        )
        trace = core.execute(assemble(src), state)
        assert trace.transient_loads == [0x2000]  # second never issues

    def test_forwarding_ablation_enables_dependent_load(self):
        src = """
            cmp x0, x1
            b.ge end
            ldr x6, [x5, x3]
            ldr x8, [x7, x6]
        end:
            ret
        """
        core = Core(CoreConfig(forward_speculative_results=True))
        for _ in range(4):
            core.predictor.update(1, False)
        state = MachineState(
            regs={"x0": 9, "x1": 1, "x5": 0x2000, "x3": 0, "x7": 0x3000},
            memory=Memory({0x2000: 0x40}),
        )
        trace = core.execute(assemble(src), state)
        assert trace.transient_loads == [0x2000, 0x3040]

    def test_second_independent_load_requires_first_hit(self):
        src = """
            cmp x0, x1
            b.ge end
            ldr x6, [x5, x3]
            ldr x8, [x7, x4]
        end:
            ret
        """
        regs = {"x0": 9, "x1": 1, "x5": 0x2000, "x3": 0, "x7": 0x3000, "x4": 0}
        # Cold cache: first transient load misses, LSU busy, second skipped.
        core = self._trained_core(taken=False)
        trace = core.execute(assemble(src), MachineState(regs=dict(regs)))
        assert trace.transient_loads == [0x2000]
        # Warm cache: first hits, second issues.
        core = self._trained_core(taken=False)
        core.cache.access(0x2000)
        trace = core.execute(assemble(src), MachineState(regs=dict(regs)))
        assert trace.transient_loads == [0x2000, 0x3000]

    def test_transient_window_bounded(self):
        body = "\n".join("nop" for _ in range(20)) + "\nldr x6, [x5, x2]"
        src = f"cmp x0, x1\nb.ge end\n{body}\nend:\nret"
        core = self._trained_core(taken=False)
        state = MachineState(regs={"x0": 9, "x1": 1, "x5": 0x2000, "x2": 0})
        trace = core.execute(assemble(src), state)
        assert trace.transient_loads == []  # beyond the window

    def test_transient_mov_feeds_load_address(self):
        # SiSCLoak v1 shape: an immediate mov inside the transient window
        # provides the base address; the load still issues.
        src = """
            cmp x0, x1
            b.hs end
            mov x6, #0x3000
            ldr x3, [x6, x2]
        end:
            ret
        """
        core = self._trained_core(taken=False)
        state = MachineState(regs={"x0": 9, "x1": 1, "x2": 0x40})
        trace = core.execute(assemble(src), state)
        assert trace.transient_loads == [0x3040]

    def test_transient_store_has_no_effect(self):
        src = """
            cmp x0, x1
            b.ge end
            str x2, [x5]
        end:
            ret
        """
        core = self._trained_core(taken=False)
        state = MachineState(regs={"x0": 9, "x1": 1, "x5": 0x2000, "x2": 7})
        core.execute(assemble(src), state)
        assert state.memory.read(0x2000) == 0
        assert not core.cache.contains(0x2000)

    def test_no_straight_line_speculation_by_default(self):
        src = "b end\nldr x1, [x2]\nend:\nret"
        core = Core()
        state = MachineState(regs={"x2": 0x4000})
        trace = core.execute(assemble(src), state)
        assert trace.transient_loads == []
        assert not core.cache.contains(0x4000)

    def test_straight_line_speculation_ablation(self):
        src = "b end\nldr x1, [x2]\nend:\nret"
        core = Core(CoreConfig(straight_line_speculation=True))
        state = MachineState(regs={"x2": 0x4000})
        trace = core.execute(assemble(src), state)
        assert trace.transient_loads == [0x4000]

    def test_nested_branch_stops_transient_window(self):
        src = """
            cmp x0, x1
            b.ge end
            b.ge also
            ldr x6, [x5]
        also:
            nop
        end:
            ret
        """
        core = self._trained_core(taken=False)
        state = MachineState(regs={"x0": 9, "x1": 1, "x5": 0x2000})
        trace = core.execute(assemble(src), state)
        assert trace.transient_loads == []
