"""Unit tests for the performance monitor counters."""

from repro.hw.core import Core
from repro.hw.pmc import PerformanceCounters, PmcEvent, PmcReading
from repro.hw.state import MachineState
from repro.isa.assembler import assemble


def test_reading_tracks_core_counters():
    core = Core()
    pmc = PerformanceCounters(core)
    core.execute(
        assemble("ldr x1, [x0]\nldr x2, [x0]\nret"),
        MachineState(regs={"x0": 0x1000}),
    )
    reading = pmc.read()
    assert reading[PmcEvent.L1D_CACHE_MISS] == 1
    assert reading[PmcEvent.L1D_CACHE_HIT] == 1
    assert reading[PmcEvent.L1D_TLB_MISS] == 1
    assert reading[PmcEvent.CPU_CYCLES] == core.cycles


def test_delta_between_readings():
    core = Core()
    pmc = PerformanceCounters(core)
    before = pmc.read()
    core.timed_access(0x2000)
    delta = pmc.read().delta(before)
    assert delta[PmcEvent.L1D_CACHE_MISS] == 1
    assert delta[PmcEvent.CPU_CYCLES] > 0


def test_measure_wraps_an_action():
    core = Core()
    pmc = PerformanceCounters(core)
    delta = pmc.measure(lambda: core.timed_access(0x3000))
    assert delta[PmcEvent.L1D_CACHE_MISS] == 1
    # A second, hitting access costs fewer cycles.
    delta_hit = pmc.measure(lambda: core.timed_access(0x3000))
    assert delta_hit[PmcEvent.CPU_CYCLES] < delta[PmcEvent.CPU_CYCLES]


def test_timing_side_channel_visible_through_pmc():
    # The attacker's actual measurement: victim cycle counts differ with
    # the secret multiplier magnitude.
    program = assemble("mul x2, x0, x1\nret")
    pmc_small = PerformanceCounters(Core())
    small = pmc_small.measure(
        lambda: pmc_small.core.execute(
            program, MachineState(regs={"x0": 3, "x1": 5})
        )
    )
    pmc_large = PerformanceCounters(Core())
    large = pmc_large.measure(
        lambda: pmc_large.core.execute(
            program, MachineState(regs={"x0": 3, "x1": 1 << 60})
        )
    )
    assert large[PmcEvent.CPU_CYCLES] > small[PmcEvent.CPU_CYCLES]


def test_describe_lists_all_events():
    text = PerformanceCounters(Core()).read().describe()
    for event in PmcEvent:
        assert event.value in text
