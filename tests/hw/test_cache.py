"""Unit tests for the set-associative cache."""

import pytest

from repro.errors import HardwareError
from repro.hw.cache import Cache, CacheConfig, CacheSnapshot


class TestConfig:
    def test_a53_geometry(self):
        cfg = CacheConfig()
        assert cfg.sets == 128 and cfg.ways == 4 and cfg.line_size == 64
        assert cfg.line_shift == 6

    def test_power_of_two_enforced(self):
        with pytest.raises(HardwareError):
            CacheConfig(sets=100)
        with pytest.raises(HardwareError):
            CacheConfig(line_size=48)

    def test_set_index_and_tag(self):
        cfg = CacheConfig()
        addr = (5 << 13) | (93 << 6) | 17
        assert cfg.set_index(addr) == 93
        assert cfg.tag(addr) == 5
        assert cfg.line_of(addr) == addr >> 6

    def test_set_index_wraps(self):
        cfg = CacheConfig()
        assert cfg.set_index(128 * 64) == 0
        assert cfg.set_index(129 * 64) == 1


class TestAccess:
    def test_miss_then_hit(self):
        cache = Cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.misses == 1 and cache.hits == 1

    def test_same_line_offsets_hit(self):
        cache = Cache()
        cache.access(0x1000)
        assert cache.access(0x103F)
        assert not cache.access(0x1040)  # next line

    def test_contains_has_no_side_effect(self):
        cache = Cache()
        assert not cache.contains(0x1000)
        cache.access(0x1000)
        hits = cache.hits
        assert cache.contains(0x1000)
        assert cache.hits == hits

    def test_lru_eviction(self):
        cfg = CacheConfig(sets=2, ways=2, line_size=64)
        cache = Cache(cfg)
        set_stride = 2 * 64  # same set every stride
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a: b is now LRU
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_prefetch_fills_without_counting(self):
        cache = Cache()
        cache.prefetch(0x2000)
        assert cache.contains(0x2000)
        assert cache.hits == 0 and cache.misses == 0

    def test_prefetch_existing_line_noop(self):
        cache = Cache()
        cache.access(0x2000)
        cache.prefetch(0x2000)
        assert len(cache.snapshot()) == 1


class TestFlush:
    def test_flush_all(self):
        cache = Cache()
        cache.access(0x1000)
        cache.flush_all()
        assert not cache.contains(0x1000)
        assert len(cache.snapshot()) == 0

    def test_flush_line_only_touches_target(self):
        cache = Cache()
        cache.access(0x1000)
        cache.access(0x2000)
        cache.flush_line(0x1000)
        assert not cache.contains(0x1000)
        assert cache.contains(0x2000)


class TestSnapshot:
    def test_snapshot_equality(self):
        a, b = Cache(), Cache()
        a.access(0x1000)
        b.access(0x1000)
        assert a.snapshot() == b.snapshot()
        b.access(0x9000)
        assert a.snapshot() != b.snapshot()

    def test_snapshot_ignores_lru_order(self):
        a, b = Cache(), Cache()
        same_set = 128 * 64
        a.access(0x0)
        a.access(same_set)
        b.access(same_set)
        b.access(0x0)
        assert a.snapshot() == b.snapshot()

    def test_restrict_hides_other_sets(self):
        cache = Cache()
        cache.access(61 * 64)
        cache.access(3 * 64)
        snap = cache.snapshot().restrict(range(61, 128))
        assert snap.occupied_sets() == (61,)

    def test_resident_lines(self):
        cache = Cache()
        cache.access(5 * 64)
        assert cache.resident_lines() == ((5, 0),)

    def test_noise_hooks(self):
        cache = Cache()
        cache.access(5 * 64)
        cache.evict_set_way(5)
        assert not cache.contains(5 * 64)
        cache.insert_line(9, tag=3)
        assert (9, 3) in cache.resident_lines()
