"""Unit tests for the cache replacement-policy axis (lru/plru/random)."""

import hashlib

import pytest

from repro.errors import HardwareError
from repro.hw.cache import REPLACEMENT_POLICIES, Cache, CacheConfig

#: One-set, four-way geometry: every address i*64 maps to set 0 with tag i.
ONE_SET = dict(sets=1, ways=4, line_size=64)


def tag_addrs(*tags):
    return [t * 64 for t in tags]


class TestConfig:
    def test_registry(self):
        assert REPLACEMENT_POLICIES == ("lru", "plru", "random")

    def test_default_is_lru(self):
        assert CacheConfig().replacement == "lru"
        assert CacheConfig().replacement_seed == 0

    def test_unknown_policy_rejected_with_known_list(self):
        with pytest.raises(HardwareError, match="lru, plru, random"):
            CacheConfig(replacement="fifo")

    def test_all_registered_policies_construct(self):
        for policy in REPLACEMENT_POLICIES:
            Cache(CacheConfig(replacement=policy, **ONE_SET))


class TestPlru:
    def test_cold_fills_do_not_evict(self):
        cache = Cache(CacheConfig(replacement="plru", **ONE_SET))
        for addr in tag_addrs(0, 1, 2, 3):
            cache.access(addr)
        assert all(cache.contains(a) for a in tag_addrs(0, 1, 2, 3))

    def test_plru_victim_differs_from_lru(self):
        # Fill ways 0..3 (tags 0..3), refresh tag 0, then conflict with
        # tag 4.  True LRU evicts tag 1 (the oldest untouched line);
        # tree-PLRU walks the bit tree to the *other* half and evicts
        # tag 2.  The divergence is exactly what makes replacement a
        # model-soundness axis.
        lru = Cache(CacheConfig(replacement="lru", **ONE_SET))
        plru = Cache(CacheConfig(replacement="plru", **ONE_SET))
        for cache in (lru, plru):
            for addr in tag_addrs(0, 1, 2, 3):
                cache.access(addr)
            assert cache.access(tag_addrs(0)[0])  # refresh tag 0
            cache.access(tag_addrs(4)[0])  # conflict fill
        assert not lru.contains(64 * 1) and lru.contains(64 * 2)
        assert plru.contains(64 * 1) and not plru.contains(64 * 2)

    def test_plru_is_deterministic(self):
        a = Cache(CacheConfig(replacement="plru", **ONE_SET))
        b = Cache(CacheConfig(replacement="plru", **ONE_SET))
        sequence = tag_addrs(0, 1, 2, 3, 1, 5, 0, 6, 2)
        for addr in sequence:
            a.access(addr)
            b.access(addr)
        assert a.snapshot() == b.snapshot()

    def test_flush_line_then_refill_uses_free_way(self):
        cache = Cache(CacheConfig(replacement="plru", **ONE_SET))
        for addr in tag_addrs(0, 1, 2, 3):
            cache.access(addr)
        cache.flush_line(64 * 2)
        cache.access(64 * 9)  # takes the freed way, no eviction
        assert all(cache.contains(a) for a in tag_addrs(0, 1, 3, 9))

    def test_noise_hooks(self):
        cache = Cache(CacheConfig(replacement="plru", **ONE_SET))
        for addr in tag_addrs(0, 1, 2, 3):
            cache.access(addr)
        cache.evict_set_way(0)
        assert len(cache.snapshot()) == 3
        cache.insert_line(0, tag=7)
        assert (0, 7) in cache.resident_lines()
        cache.insert_line(0, tag=7)  # already resident: no duplicate
        assert len(cache.snapshot()) == 4


class TestRandom:
    def test_victim_follows_seeded_hash(self):
        seed = 11
        cache = Cache(
            CacheConfig(replacement="random", replacement_seed=seed, **ONE_SET)
        )
        for addr in tag_addrs(0, 1, 2, 3):  # fills ways 0..3 in order
            cache.access(addr)
        cache.access(64 * 4)  # first conflict fill in set 0
        digest = hashlib.blake2b(
            f"{seed}:0:1".encode("utf-8"), digest_size=8
        ).digest()
        victim_tag = int.from_bytes(digest, "big") % 4
        assert not cache.contains(64 * victim_tag)
        survivors = {0, 1, 2, 3, 4} - {victim_tag}
        assert all(cache.contains(64 * t) for t in survivors)

    def test_same_seed_same_contents(self):
        sequence = tag_addrs(0, 1, 2, 3, 4, 5, 1, 6, 2, 7)
        snaps = []
        for _ in range(2):
            cache = Cache(
                CacheConfig(replacement="random", replacement_seed=3, **ONE_SET)
            )
            for addr in sequence:
                cache.access(addr)
            snaps.append(cache.snapshot())
        assert snaps[0] == snaps[1]

    def test_hits_keep_no_recency_state(self):
        cache = Cache(CacheConfig(replacement="random", **ONE_SET))
        for addr in tag_addrs(0, 1, 2, 3):
            cache.access(addr)
        before = cache.snapshot()
        assert cache.access(0)  # hit: must not perturb replacement state
        assert cache.snapshot() == before

    def test_flush_all_resets_fill_counter(self):
        config = CacheConfig(replacement="random", **ONE_SET)
        fresh = Cache(config)
        reused = Cache(config)
        warmup = tag_addrs(0, 1, 2, 3, 4, 5)
        for addr in warmup:
            reused.access(addr)
        reused.flush_all()
        replay = tag_addrs(8, 9, 10, 11, 12)
        for addr in replay:
            fresh.access(addr)
            reused.access(addr)
        assert fresh.snapshot() == reused.snapshot()


class TestPolicyIndependentContract:
    @pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
    def test_hit_miss_accounting(self, policy):
        cache = Cache(CacheConfig(replacement=policy, **ONE_SET))
        assert not cache.access(0x0)
        assert cache.access(0x0)
        assert cache.hits == 1 and cache.misses == 1

    @pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
    def test_capacity_never_exceeded(self, policy):
        cache = Cache(CacheConfig(replacement=policy, **ONE_SET))
        for tag in range(16):
            cache.access(tag * 64)
        assert len(cache.snapshot()) == 4

    @pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
    def test_prefetch_port_fills_without_counting(self, policy):
        cache = Cache(CacheConfig(replacement=policy, **ONE_SET))
        cache.prefetch(0x40)
        assert cache.contains(0x40)
        assert cache.hits == 0 and cache.misses == 0

    def test_policy_changes_config_digest(self):
        from repro.hw.profiles import config_digest

        digests = {
            config_digest(CacheConfig(replacement=policy))
            for policy in REPLACEMENT_POLICIES
        }
        assert len(digests) == len(REPLACEMENT_POLICIES)
