"""L2 path and TLB latency under non-default ``CoreConfig``s.

The sweep subsystem (:mod:`repro.matrix`) runs campaigns on cores far from
the A53 defaults; these tests pin the latency and hierarchy semantics the
grid points rely on — a non-default TLB miss cost must surface in cycle
counts, and the L2 path must behave identically under every replacement
policy the matrix can select.
"""

import pytest

from repro.hw.cache import REPLACEMENT_POLICIES, CacheConfig
from repro.hw.core import Core, CoreConfig
from repro.hw.hierarchy import CacheHierarchy, HitLevel
from repro.hw.state import MachineState
from repro.hw.tlb import TlbConfig
from repro.isa.assembler import assemble

TINY_L1 = CacheConfig(sets=1, ways=1, line_size=64)
L2 = CacheConfig(sets=512, ways=16, line_size=64)


def timed_core(**overrides):
    defaults = dict(
        cache=TINY_L1,
        l2=L2,
        hit_latency=3,
        l2_hit_latency=9,
        miss_latency=55,
        tlb_miss_latency=33,
    )
    defaults.update(overrides)
    return Core(CoreConfig(**defaults))


class TestL2Latency:
    def test_each_level_pays_its_configured_latency(self):
        core = timed_core()
        core.tlb.access(0x1000)  # warm the page so only cache latency shows
        assert core.timed_access(0x1000) == 55  # memory
        assert core.timed_access(0x1000) == 3  # L1 hit
        core.tlb.access(0x2000)
        core.timed_access(0x2000)  # evicts 0x1000 from the 1-entry L1
        core.tlb.access(0x1000)
        assert core.timed_access(0x1000) == 9  # served from inclusive L2

    def test_l2_latency_between_l1_and_memory(self):
        core = timed_core()
        cfg = core.config
        assert cfg.hit_latency < cfg.l2_hit_latency < cfg.miss_latency

    def test_tlb_miss_adds_configured_cycles(self):
        core = timed_core()
        assert core.timed_access(0x5000) == 33 + 55  # cold page, cold line

    @pytest.mark.parametrize("policy", REPLACEMENT_POLICIES)
    def test_l2_path_under_every_replacement_policy(self, policy):
        l1 = CacheConfig(sets=1, ways=1, line_size=64, replacement=policy)
        hierarchy = CacheHierarchy(l1, CacheConfig(replacement=policy))
        assert hierarchy.access(0x1000) is HitLevel.MEMORY
        hierarchy.access(0x2000)  # evicts 0x1000 from L1 only
        assert hierarchy.access(0x1000) is HitLevel.L2
        hierarchy.evict_l2_line(0x1000)
        assert hierarchy.access(0x1000) is HitLevel.MEMORY  # back-invalidated


class TestExecutionLatency:
    def test_tlb_miss_cost_in_executed_programs(self):
        config = CoreConfig(tlb_miss_latency=27)
        program = assemble("ldr x1, [x0]\nret")
        warm = Core(config)
        warm.tlb.access(0x5000)
        cold = Core(config)
        warm.execute(program, MachineState(regs={"x0": 0x5000}))
        cold.execute(program, MachineState(regs={"x0": 0x5000}))
        assert cold.cycles == warm.cycles + 27

    def test_small_tlb_evicts_and_repays_miss(self):
        core = Core(CoreConfig(tlb=TlbConfig(entries=2), tlb_miss_latency=31))
        for page in (1, 2, 3):  # page 1 falls out of the 2-entry TLB
            core.tlb.access(page << 12)
        baseline = Core(CoreConfig(tlb=TlbConfig(entries=2), tlb_miss_latency=31))
        baseline.tlb.access(1 << 12)
        program = assemble("ldr x1, [x0]\nret")
        state = MachineState(regs={"x0": 1 << 12})
        core.execute(program, MachineState(regs={"x0": 1 << 12}))
        baseline.execute(program, state)
        assert core.cycles == baseline.cycles + 31

    def test_l2_hit_cheaper_than_memory_in_execution(self):
        config = CoreConfig(cache=TINY_L1, l2=L2, l2_hit_latency=9)
        program = assemble("ldr x1, [x0]\nret")
        l2_warm = Core(config)
        l2_warm.tlb.access(0x1000)
        l2_warm.hierarchy.l2.access(0x1000)  # resident in L2 only
        cold = Core(config)
        cold.tlb.access(0x1000)
        l2_warm.execute(program, MachineState(regs={"x0": 0x1000}))
        cold.execute(program, MachineState(regs={"x0": 0x1000}))
        delta = config.miss_latency - config.l2_hit_latency
        assert cold.cycles == l2_warm.cycles + delta
