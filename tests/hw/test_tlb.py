"""Unit tests for the data micro-TLB and its core integration."""

from repro.hw.core import Core, CoreConfig
from repro.hw.state import MachineState
from repro.hw.tlb import Tlb, TlbConfig, TlbSnapshot
from repro.isa.assembler import assemble


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb()
        assert not tlb.access(0x1000)
        assert tlb.access(0x1FFF)  # same 4 KiB page
        assert not tlb.access(0x2000)  # next page
        assert tlb.hits == 1 and tlb.misses == 2

    def test_lru_eviction(self):
        tlb = Tlb(TlbConfig(entries=2))
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x0000)  # refresh page 0
        tlb.access(0x2000)  # evicts page 1
        assert tlb.contains_page(0)
        assert not tlb.contains_page(1)
        assert tlb.contains_page(2)

    def test_snapshot_is_page_set(self):
        tlb = Tlb()
        tlb.access(0x3000)
        tlb.access(0x5000)
        assert tlb.snapshot() == TlbSnapshot(frozenset({3, 5}))

    def test_flush(self):
        tlb = Tlb()
        tlb.access(0x3000)
        tlb.flush_page(3)
        assert not tlb.contains_page(3)
        tlb.access(0x3000)
        tlb.flush_all()
        assert len(tlb.snapshot()) == 0


class TestCoreTlbIntegration:
    def test_demand_loads_fill_tlb(self):
        core = Core()
        core.execute(
            assemble("ldr x1, [x0]\nret"), MachineState(regs={"x0": 0x5000})
        )
        assert core.tlb.contains_page(5)

    def test_tlb_miss_costs_cycles(self):
        warm = Core()
        warm.tlb.access(0x5000)
        cold = Core()
        program = assemble("ldr x1, [x0]\nret")
        warm.execute(program, MachineState(regs={"x0": 0x5000}))
        cold.execute(program, MachineState(regs={"x0": 0x5000}))
        assert cold.cycles == warm.cycles + cold.config.tlb_miss_latency

    def test_transient_loads_fill_tlb(self):
        core = Core()
        for _ in range(4):
            core.predictor.update(1, False)
        src = "cmp x0, x1\nb.ge end\nldr x6, [x5]\nend:\nret"
        core.execute(
            assemble(src), MachineState(regs={"x0": 9, "x1": 1, "x5": 0x7000})
        )
        assert core.tlb.contains_page(7)  # translation before the squash

    def test_prefetch_does_not_touch_tlb(self):
        core = Core()
        src = (
            "ldr x1, [x0]\nldr x2, [x0, #0x40]\nldr x3, [x0, #0x80]\nret"
        )
        # Stride within one page triggers a prefetch of the next line.
        core.execute(assemble(src), MachineState(regs={"x0": 0x5000}))
        assert core.tlb.snapshot().pages == frozenset({5})

    def test_flush_all_clears_tlb(self):
        core = Core()
        core.timed_access(0x5000)
        core.flush_all()
        assert len(core.tlb.snapshot()) == 0


class TestVariableTimeMultiply:
    def test_latency_grows_with_magnitude(self):
        program = assemble("mul x2, x0, x1\nret")
        small = Core()
        small.execute(program, MachineState(regs={"x0": 3, "x1": 5}))
        large = Core()
        large.execute(
            program, MachineState(regs={"x0": 3, "x1": 1 << 60})
        )
        assert large.cycles == small.cycles + 3  # 4 chunks vs 1 chunk

    def test_first_operand_magnitude_irrelevant(self):
        program = assemble("mul x2, x0, x1\nret")
        a = Core()
        a.execute(program, MachineState(regs={"x0": 1 << 60, "x1": 5}))
        b = Core()
        b.execute(program, MachineState(regs={"x0": 3, "x1": 5}))
        assert a.cycles == b.cycles

    def test_constant_time_ablation(self):
        from repro.hw.core import CoreConfig

        program = assemble("mul x2, x0, x1\nret")
        config = CoreConfig(variable_time_multiply=False)
        a = Core(config)
        a.execute(program, MachineState(regs={"x0": 3, "x1": 5}))
        b = Core(config)
        b.execute(program, MachineState(regs={"x0": 3, "x1": 1 << 60}))
        assert a.cycles == b.cycles

    def test_mul_result_correct(self):
        core = Core()
        state = MachineState(regs={"x0": 7, "x1": 6})
        core.execute(assemble("mul x2, x0, x1\nret"), state)
        assert state.regs["x2"] == 42

    def test_mul_immediate_latency(self):
        program = assemble("mul x2, x0, #0x10000\nret")
        core = Core()
        core.execute(program, MachineState(regs={"x0": 3}))
        baseline = Core()
        baseline.execute(
            assemble("mul x2, x0, #2\nret"), MachineState(regs={"x0": 3})
        )
        assert core.cycles == baseline.cycles + 1
