"""Unit tests for the prefetcher ``kind`` axis (stride/nextline/off)."""

import pytest

from repro.errors import HardwareError
from repro.hw.prefetcher import (
    PREFETCHER_KINDS,
    PrefetcherConfig,
    StridePrefetcher,
)


class TestConfig:
    def test_registry(self):
        assert PREFETCHER_KINDS == ("stride", "nextline", "off")

    def test_default_is_stride(self):
        assert PrefetcherConfig().kind == "stride"

    def test_unknown_kind_rejected_with_known_list(self):
        with pytest.raises(HardwareError, match="stride, nextline, off"):
            PrefetcherConfig(kind="markov")


class TestOff:
    def test_never_prefetches(self):
        pf = StridePrefetcher(PrefetcherConfig(kind="off"))
        assert all(pf.on_load(0x1000 + i * 64) == [] for i in range(6))

    def test_matches_enabled_false(self):
        off = StridePrefetcher(PrefetcherConfig(kind="off"))
        disabled = StridePrefetcher(PrefetcherConfig(enabled=False))
        loads = [0x1000 + i * 128 for i in range(5)]
        assert [off.on_load(a) for a in loads] == [
            disabled.on_load(a) for a in loads
        ]


class TestNextline:
    def test_every_load_triggers(self):
        pf = StridePrefetcher(PrefetcherConfig(kind="nextline"))
        assert pf.on_load(0x1000) == [0x1040]  # no warm-up run needed

    def test_degree_reaches_further(self):
        pf = StridePrefetcher(PrefetcherConfig(kind="nextline", degree=3))
        assert pf.on_load(0x2000) == [0x2040, 0x2080, 0x20C0]

    def test_page_boundary_stops(self):
        pf = StridePrefetcher(PrefetcherConfig(kind="nextline", degree=4))
        assert pf.on_load(0x1F80) == [0x1FC0]  # 0x2000 is the next page

    def test_custom_line_size(self):
        pf = StridePrefetcher(
            PrefetcherConfig(kind="nextline", line_size=128)
        )
        assert pf.on_load(0x1000) == [0x1080]

    def test_ignores_stride_state(self):
        # Alternating directions would disarm the stride detector; the
        # next-line prefetcher fires regardless.
        pf = StridePrefetcher(PrefetcherConfig(kind="nextline"))
        assert pf.on_load(0x3000) == [0x3040]
        assert pf.on_load(0x1000) == [0x1040]
        assert pf.on_load(0x2000) == [0x2040]


class TestStrideUnchanged:
    def test_arms_after_trigger_loads(self):
        pf = StridePrefetcher(PrefetcherConfig(kind="stride"))
        assert pf.on_load(0x1000) == []
        assert pf.on_load(0x1040) == []
        assert pf.on_load(0x1080) == [0x10C0]  # third equidistant load

    def test_kind_changes_config_digest(self):
        from repro.hw.profiles import config_digest

        digests = {
            config_digest(PrefetcherConfig(kind=kind))
            for kind in PREFETCHER_KINDS
        }
        assert len(digests) == len(PREFETCHER_KINDS)
