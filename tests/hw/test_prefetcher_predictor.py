"""Unit tests for the stride prefetcher and the branch predictor."""

from repro.hw.predictor import BranchPredictor, PredictorConfig
from repro.hw.prefetcher import PrefetcherConfig, StridePrefetcher


class TestStrideDetection:
    def test_three_equidistant_loads_trigger(self):
        pf = StridePrefetcher()
        assert pf.on_load(0x1000) == []
        assert pf.on_load(0x1040) == []
        assert pf.on_load(0x1080) == [0x10C0]

    def test_two_loads_insufficient(self):
        pf = StridePrefetcher()
        pf.on_load(0x1000)
        assert pf.on_load(0x1040) == []

    def test_non_equidistant_resets(self):
        pf = StridePrefetcher()
        pf.on_load(0x1000)
        pf.on_load(0x1040)
        pf.on_load(0x10C0)  # different stride: run restarts
        assert pf.on_load(0x1100) == []  # only 2 loads at the new stride
        assert pf.on_load(0x1140) == [0x1180]  # 3rd equidistant load

    def test_negative_stride(self):
        pf = StridePrefetcher()
        pf.on_load(0x2000)
        pf.on_load(0x1FC0)
        assert pf.on_load(0x1F80) == [0x1F40]

    def test_repeated_address_resets_run(self):
        pf = StridePrefetcher()
        pf.on_load(0x1000)
        pf.on_load(0x1040)
        assert pf.on_load(0x1040) == []
        assert pf.on_load(0x1080) == []

    def test_continues_prefetching_along_stream(self):
        pf = StridePrefetcher()
        for addr in (0x1000, 0x1040, 0x1080):
            pf.on_load(addr)
        assert pf.on_load(0x10C0) == [0x1100]

    def test_custom_trigger_count(self):
        pf = StridePrefetcher(PrefetcherConfig(trigger_loads=4))
        pf.on_load(0x1000)
        pf.on_load(0x1040)
        assert pf.on_load(0x1080) == []
        assert pf.on_load(0x10C0) == [0x1100]

    def test_degree_two(self):
        pf = StridePrefetcher(PrefetcherConfig(degree=2))
        pf.on_load(0x1000)
        pf.on_load(0x1040)
        assert pf.on_load(0x1080) == [0x10C0, 0x1100]

    def test_disabled(self):
        pf = StridePrefetcher(PrefetcherConfig(enabled=False))
        for addr in (0x1000, 0x1040, 0x1080):
            assert pf.on_load(addr) == []

    def test_reset_clears_stream(self):
        pf = StridePrefetcher()
        pf.on_load(0x1000)
        pf.on_load(0x1040)
        pf.reset()
        assert pf.on_load(0x1080) == []


class TestPageBoundary:
    def test_prefetch_stops_at_page_boundary(self):
        pf = StridePrefetcher()
        # Stride ends at the last line of a 4 KiB page.
        for addr in (0xF80, 0xFC0 - 0x40, 0xFC0):
            pf.on_load(addr)
        assert pf.on_load(0xFC0) == []  # repeated: reset anyway
        pf.reset()
        pf.on_load(0xF40)
        pf.on_load(0xF80)
        assert pf.on_load(0xFC0) == []  # next would cross into 0x1000

    def test_prefetch_within_page_allowed(self):
        pf = StridePrefetcher()
        pf.on_load(0xE80)
        pf.on_load(0xEC0)
        assert pf.on_load(0xF00) == [0xF40]

    def test_boundary_stop_disabled(self):
        pf = StridePrefetcher(PrefetcherConfig(page_size=0))
        pf.on_load(0xF40)
        pf.on_load(0xF80)
        assert pf.on_load(0xFC0) == [0x1000]

    def test_degree_two_truncated_at_boundary(self):
        pf = StridePrefetcher(PrefetcherConfig(degree=2))
        pf.on_load(0xF00)
        pf.on_load(0xF40)
        # First target fits the page, second would cross: only one emitted.
        assert pf.on_load(0xF80) == [0xFC0]


class TestPredictor:
    def test_initial_prediction_not_taken(self):
        assert not BranchPredictor().predict(4)

    def test_training_flips_prediction(self):
        p = BranchPredictor()
        p.update(4, True)
        assert p.predict(4)

    def test_saturation(self):
        p = BranchPredictor()
        for _ in range(10):
            p.update(4, True)
        assert p.counter(4) == 3
        p.update(4, False)
        assert p.predict(4)  # still weakly taken

    def test_counter_floors_at_zero(self):
        p = BranchPredictor()
        for _ in range(10):
            p.update(4, False)
        assert p.counter(4) == 0

    def test_per_pc_entries(self):
        p = BranchPredictor()
        p.update(4, True)
        assert p.predict(4)
        assert not p.predict(5)

    def test_aliasing_across_table_size(self):
        p = BranchPredictor(PredictorConfig(entries=16))
        p.update(4, True)
        assert p.predict(4 + 16)  # aliases onto the same entry

    def test_reset(self):
        p = BranchPredictor()
        p.update(4, True)
        p.reset()
        assert not p.predict(4)
