"""Unit tests for the named core profiles."""

from repro.exps import mct_campaign, mspec1_campaign, timing_campaign
from repro.hw.core import Core
from repro.hw.profiles import (
    cortex_a53,
    cortex_a53_no_prefetch,
    cortex_a53_no_speculation,
    cortex_m0_like,
    out_of_order,
)
from repro.hw.state import MachineState
from repro.isa.assembler import assemble
from repro.pipeline import ScamV


class TestProfiles:
    def test_a53_defaults(self):
        config = cortex_a53()
        assert config.spec_window > 0
        assert not config.forward_speculative_results
        assert config.prefetcher.enabled
        assert config.prefetcher.page_size == 4096

    def test_no_speculation_profile_kills_transient_loads(self):
        core = Core(cortex_a53_no_speculation())
        for _ in range(4):
            core.predictor.update(1, False)
        src = "cmp x0, x1\nb.ge end\nldr x6, [x5]\nend:\nret"
        trace = core.execute(
            assemble(src), MachineState(regs={"x0": 9, "x1": 1, "x5": 0x2000})
        )
        assert trace.transient_loads == []

    def test_no_prefetch_profile(self):
        core = Core(cortex_a53_no_prefetch())
        src = "ldr x1, [x0]\nldr x2, [x0, #0x40]\nldr x3, [x0, #0x80]\nret"
        trace = core.execute(assemble(src), MachineState(regs={"x0": 0x1000}))
        assert trace.prefetches == []

    def test_out_of_order_forwards_transient_results(self):
        core = Core(out_of_order())
        for _ in range(4):
            core.predictor.update(1, False)
        src = (
            "cmp x0, x1\nb.ge end\nldr x6, [x5]\nldr x8, [x7, x6]\nend:\nret"
        )
        state = MachineState(regs={"x0": 9, "x1": 1, "x5": 0x2000, "x7": 0x3000})
        state.memory.write(0x2000, 0x40)
        trace = core.execute(assemble(src), state)
        assert trace.transient_loads == [0x2000, 0x3040]

    def test_m0_profile_is_timing_quiet(self):
        config = cortex_m0_like()
        program = assemble("mul x2, x0, x1\nret")
        a = Core(config)
        a.execute(program, MachineState(regs={"x0": 3, "x1": 5}))
        b = Core(config)
        b.execute(program, MachineState(regs={"x0": 3, "x1": 1 << 60}))
        assert a.cycles == b.cycles


class TestProfilesInCampaigns:
    def test_mspec1_unsound_on_out_of_order_core(self):
        stats = ScamV(
            mspec1_campaign(
                "C",
                num_programs=4,
                tests_per_program=8,
                seed=91,
                core=out_of_order(),
            )
        ).run().stats
        assert stats.counterexamples > 0

    def test_mct_sound_without_speculation(self):
        stats = ScamV(
            mct_campaign(
                "A",
                refined=True,
                num_programs=4,
                tests_per_program=8,
                seed=92,
                core=cortex_a53_no_speculation(),
            )
        ).run().stats
        assert stats.counterexamples == 0

    def test_timing_model_sound_on_m0(self):
        stats = ScamV(
            timing_campaign(
                refined=True,
                num_programs=4,
                tests_per_program=8,
                seed=93,
                core=cortex_m0_like(),
            )
        ).run().stats
        assert stats.counterexamples == 0


class TestProfileRegistry:
    """The named-profile registry shared by the CLI and the spec format."""

    def test_names_sorted_and_complete(self):
        from repro.hw.profiles import PROFILES, profile_names

        names = profile_names()
        assert names == sorted(names)
        assert set(names) == set(PROFILES)
        assert "cortex-a53" in names
        assert "out-of-order" in names
        assert "cortex-m0" in names

    def test_resolve_builds_fresh_configs(self):
        from repro.hw.profiles import resolve_profile

        first = resolve_profile("cortex-a53")
        second = resolve_profile("cortex-a53")
        assert first is not second  # factories, not shared singletons
        assert first.spec_window == second.spec_window

    def test_resolve_matches_factories(self):
        from repro.hw.profiles import resolve_profile

        assert resolve_profile("cortex-m0").spec_window == (
            cortex_m0_like().spec_window
        )
        assert resolve_profile("out-of-order").forward_speculative_results

    def test_unknown_profile_names_the_known_ones(self):
        import pytest

        from repro.errors import HardwareError
        from repro.hw.profiles import resolve_profile

        with pytest.raises(HardwareError, match="cortex-a53"):
            resolve_profile("z80")
