"""Unit tests for the two-level cache hierarchy."""

import pytest

from repro.hw.cache import CacheConfig
from repro.hw.core import Core, CoreConfig
from repro.hw.hierarchy import CacheHierarchy, HitLevel
from repro.hw.profiles import cortex_a53_with_l2
from repro.hw.state import MachineState
from repro.isa.assembler import assemble

L2 = CacheConfig(sets=512, ways=16, line_size=64)


def hierarchy():
    return CacheHierarchy(CacheConfig(), L2)


class TestHierarchy:
    def test_cold_access_misses_everywhere(self):
        h = hierarchy()
        assert h.access(0x1000) is HitLevel.MEMORY
        assert h.l1.contains(0x1000)
        assert h.l2.contains(0x1000)

    def test_l1_hit(self):
        h = hierarchy()
        h.access(0x1000)
        assert h.access(0x1000) is HitLevel.L1

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy(CacheConfig(sets=1, ways=1, line_size=64), L2)
        h.access(0x1000)
        h.access(0x2000)  # evicts 0x1000 from the 1-entry L1, not from L2
        assert h.access(0x1000) is HitLevel.L2

    def test_l1_only_mode(self):
        h = CacheHierarchy(CacheConfig(), None)
        assert h.access(0x1000) is HitLevel.MEMORY
        assert h.access(0x1000) is HitLevel.L1
        assert h.l2_snapshot() is None

    def test_flush_line_clears_both_levels(self):
        h = hierarchy()
        h.access(0x1000)
        h.flush_line(0x1000)
        assert not h.l1.contains(0x1000)
        assert not h.l2.contains(0x1000)
        assert h.access(0x1000) is HitLevel.MEMORY

    def test_flush_all(self):
        h = hierarchy()
        h.access(0x1000)
        h.flush_all()
        assert len(h.l1_snapshot()) == 0
        assert len(h.l2_snapshot()) == 0

    def test_prefetch_fills_both_levels(self):
        h = hierarchy()
        h.prefetch(0x3000)
        assert h.l1.contains(0x3000)
        assert h.l2.contains(0x3000)
        assert h.l1.misses == 0

    def test_contains_checks_both_levels(self):
        h = CacheHierarchy(CacheConfig(sets=1, ways=1, line_size=64), L2)
        h.access(0x1000)
        h.access(0x2000)
        assert h.contains(0x1000)  # resident only in L2

    def test_cross_core_eviction_back_invalidates(self):
        h = hierarchy()
        h.access(0x1000)
        h.evict_l2_line(0x1000)
        assert not h.l1.contains(0x1000)  # inclusive back-invalidation
        assert h.access(0x1000) is HitLevel.MEMORY


class TestCoreWithL2:
    def test_latency_ordering(self):
        core = Core(cortex_a53_with_l2())
        miss = core.timed_access(0x5000)
        core.hierarchy.l1.flush_line(0x5000)  # keep the L2 copy
        l2_hit = core.timed_access(0x5000)
        l1_hit = core.timed_access(0x5000)
        assert l1_hit < l2_hit < miss

    def test_default_profile_has_no_l2(self):
        core = Core(CoreConfig())
        assert core.hierarchy.l2 is None

    def test_architectural_results_independent_of_l2(self):
        program = assemble("ldr x1, [x0]\nadd x2, x1, #1\nret")
        with_l2 = MachineState(regs={"x0": 0x2000})
        without = MachineState(regs={"x0": 0x2000})
        with_l2.memory.write(0x2000, 41)
        without.memory.write(0x2000, 41)
        Core(cortex_a53_with_l2()).execute(program, with_l2)
        Core(CoreConfig()).execute(program, without)
        assert with_l2.regs["x2"] == without.regs["x2"] == 42

    def test_transient_lsu_rule_keys_on_l1(self):
        # A transient load hitting only in L2 still occupies the LSU long
        # enough to block a second transient load.
        src = """
            cmp x0, x1
            b.ge end
            ldr x6, [x5, x3]
            ldr x8, [x7, x4]
        end:
            ret
        """
        core = Core(
            CoreConfig(
                cache=CacheConfig(sets=1, ways=1, line_size=64), l2=L2
            )
        )
        for _ in range(4):
            core.predictor.update(1, False)
        # Warm 0x2000 into L2 but evict it from the tiny L1.
        core.hierarchy.access(0x2000)
        core.hierarchy.access(0x9000)
        regs = {"x0": 9, "x1": 1, "x5": 0x2000, "x3": 0, "x7": 0x3000, "x4": 0}
        trace = core.execute(assemble(src), MachineState(regs=regs))
        assert trace.transient_loads == [0x2000]

    def test_flush_reload_still_works_with_l2(self):
        from repro.attacks.flushreload import FlushReload

        core = Core(cortex_a53_with_l2())
        fr = FlushReload(core)
        monitored = [0x5000, 0x5040]
        fr.flush(monitored)
        core.execute(
            assemble("ldr x1, [x0]\nret"),
            MachineState(regs={"x0": 0x5040}),
        )
        assert fr.hot_addresses(monitored) == [0x5040]
