"""Unit tests for the experiment platform (measurement protocol)."""

from repro.hw.core import CoreConfig
from repro.hw.platform import (
    ExperimentOutcome,
    ExperimentPlatform,
    PlatformConfig,
    StateInputs,
)
from repro.isa.assembler import assemble
from repro.utils.rng import SplittableRandom

LOAD_PROGRAM = assemble("ldr x1, [x0]\nret", name="one_load")

SPEC_PROGRAM = assemble(
    """
        cmp x0, x1
        b.ge end
        ldr x6, [x5, x2]
    end:
        ret
    """,
    name="spec",
)


def platform(**kwargs):
    return ExperimentPlatform(PlatformConfig(**kwargs), SplittableRandom(7))


class TestOutcomes:
    def test_identical_states_pass(self):
        s = StateInputs(regs={"x0": 0x1000})
        result = platform().run_experiment(LOAD_PROGRAM, s, s)
        assert result.outcome is ExperimentOutcome.PASS

    def test_different_lines_distinguishable(self):
        s1 = StateInputs(regs={"x0": 0x1000})
        s2 = StateInputs(regs={"x0": 0x2000})
        result = platform().run_experiment(LOAD_PROGRAM, s1, s2)
        assert result.outcome is ExperimentOutcome.COUNTEREXAMPLE
        assert result.distinguishable

    def test_same_line_different_offset_pass(self):
        s1 = StateInputs(regs={"x0": 0x1000})
        s2 = StateInputs(regs={"x0": 0x1008})
        result = platform().run_experiment(LOAD_PROGRAM, s1, s2)
        assert result.outcome is ExperimentOutcome.PASS

    def test_memory_inputs_applied(self):
        program = assemble("ldr x1, [x0]\nldr x2, [x1]\nret")
        s1 = StateInputs(regs={"x0": 0x1000}, memory={0x1000: 0x4000})
        s2 = StateInputs(regs={"x0": 0x1000}, memory={0x1000: 0x8000})
        result = platform().run_experiment(program, s1, s2)
        assert result.distinguishable


class TestAttackerView:
    def test_restricted_view_hides_difference(self):
        # Loads land in set 3 — outside an attacker view of sets 64..127 —
        # with different tags; the restricted attacker cannot see them.
        s1 = StateInputs(regs={"x0": 3 * 64})
        s2 = StateInputs(regs={"x0": 3 * 64 + 128 * 64})
        restricted = platform(attacker_sets=tuple(range(64, 128)))
        assert (
            restricted.run_experiment(LOAD_PROGRAM, s1, s2).outcome
            is ExperimentOutcome.PASS
        )
        full = platform()
        assert full.run_experiment(LOAD_PROGRAM, s1, s2).distinguishable


class TestTraining:
    def test_training_controls_speculative_distinction(self):
        # Equivalent architecturally (branch taken, body skipped), but the
        # transient body load differs.  Training toward the wrong direction
        # forces the misprediction; training toward the right direction
        # suppresses it.
        s1 = StateInputs(regs={"x0": 9, "x1": 1, "x5": 0x2000, "x2": 0})
        s2 = StateInputs(regs={"x0": 9, "x1": 1, "x5": 0x6000, "x2": 0})
        mistrain = StateInputs(regs={"x0": 0, "x1": 5, "x5": 0x2000, "x2": 0})
        mistrained = platform().run_experiment(
            SPEC_PROGRAM, s1, s2, train=mistrain
        )
        assert mistrained.distinguishable
        well_trained = platform().run_experiment(
            SPEC_PROGRAM, s1, s2, train=s1
        )
        assert well_trained.outcome is ExperimentOutcome.PASS


class TestNoise:
    def test_noise_free_runs_are_conclusive(self):
        s = StateInputs(regs={"x0": 0x1000})
        result = platform(noise_rate=0.0).run_experiment(LOAD_PROGRAM, s, s)
        assert result.outcome is not ExperimentOutcome.INCONCLUSIVE

    def test_heavy_noise_yields_inconclusive(self):
        s = StateInputs(regs={"x0": 0x1000})
        result = platform(noise_rate=1.0).run_experiment(LOAD_PROGRAM, s, s)
        assert result.outcome is ExperimentOutcome.INCONCLUSIVE

    def test_noise_rate_statistics(self):
        # With p per measured run and 10 repetitions x 2 states, the
        # inconclusive rate should be roughly 1 - (1-p)^20.
        p = ExperimentPlatform(
            PlatformConfig(noise_rate=0.02), SplittableRandom(1)
        )
        s = StateInputs(regs={"x0": 0x1000})
        outcomes = [
            p.run_experiment(LOAD_PROGRAM, s, s).outcome for _ in range(150)
        ]
        rate = outcomes.count(ExperimentOutcome.INCONCLUSIVE) / len(outcomes)
        assert 0.15 < rate < 0.55  # expectation ~0.33

    def test_experiments_counter(self):
        p = platform()
        s = StateInputs(regs={"x0": 0x1000})
        p.run_experiment(LOAD_PROGRAM, s, s)
        p.run_experiment(LOAD_PROGRAM, s, s)
        assert p.experiments_run == 2
