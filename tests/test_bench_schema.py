"""Benchmark-report envelope schema: unit checks + retro-validation of
every checked-in ``BENCH_*.json`` artifact."""

import json
import os

import pytest

from repro.bench_schema import (
    main,
    validate_bench,
    validate_bench_file,
)
from repro.telemetry.schema import SchemaError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _doc(**over):
    doc = {
        "bench": "solver",
        "smoke": True,
        "params": {"programs": 2, "label": "smoke"},
        "scenarios": {
            "solve_prepared": {"seconds": 0.12, "per_call": 0.001},
        },
        "counters": {"queries": 50, "restarts": 316},
    }
    doc.update(over)
    return doc


class TestValidate:
    def test_minimal_valid_envelope(self):
        validate_bench({"bench": "x", "scenarios": {}})

    def test_full_envelope(self):
        validate_bench(_doc())

    def test_missing_bench_fails(self):
        with pytest.raises(SchemaError):
            validate_bench({"scenarios": {}})

    def test_missing_scenarios_fails(self):
        with pytest.raises(SchemaError):
            validate_bench({"bench": "x"})

    def test_non_object_scenario_row_fails(self):
        with pytest.raises(SchemaError):
            validate_bench(_doc(scenarios={"a": 3.0}))

    def test_nested_scenario_field_fails(self):
        with pytest.raises(SchemaError) as exc:
            validate_bench(_doc(scenarios={"a": {"times": [1, 2]}}))
        assert "scalars" in str(exc.value)

    def test_non_integer_counter_fails(self):
        with pytest.raises(SchemaError):
            validate_bench(_doc(counters={"queries": "many"}))

    def test_solver_doc_shape_is_checked(self):
        with pytest.raises(SchemaError):
            validate_bench(_doc(solver={"version": 1}))
        validate_bench(
            _doc(
                solver={
                    "version": 1,
                    "classes": {},
                    "phases": {},
                    "top": [],
                }
            )
        )


class TestRetroValidation:
    """The checked-in artifacts must satisfy the schema they predate."""

    @pytest.mark.parametrize(
        "artifact",
        [
            "BENCH_expr_core.json",
            "BENCH_solver.json",
            os.path.join("benchmarks", "BENCH_solver_baseline.json"),
        ],
    )
    def test_checked_in_artifact_is_valid(self, artifact):
        path = os.path.join(REPO_ROOT, artifact)
        doc = validate_bench_file(path)
        assert doc["scenarios"]


class TestCli:
    def test_no_args_exits_two(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_ok.json"
        path.write_text(json.dumps(_doc()))
        assert main([str(path)]) == 0
        assert "valid (solver, 1 scenario(s))" in capsys.readouterr().out

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"scenarios": {}}))
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_missing_file_exits_one(self, tmp_path):
        assert main([str(tmp_path / "nope.json")]) == 1

    def test_mixed_batch_still_fails(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_doc()))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([str(good), str(bad)]) == 1
