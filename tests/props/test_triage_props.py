"""Property-based tests for the triage subsystem.

The central invariant (the paper's Definition 1, preserved by every
reduction step): a minimized witness is still *related under the model
under validation* — identical BASE observation traces on a concrete run —
*and* still distinguishable on the simulated hardware.  Every witness a
real campaign produces must satisfy it, whatever ddmin and the state
shrinker did to the original counterexample.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TriageError
from repro.exps.presets import mct_campaign
from repro.pipeline.driver import ScamV
from repro.triage import Witness
from repro.triage.minimize import WitnessOracle
from repro.triage.signature import compute_signature


@pytest.fixture(scope="module")
def triaged_campaign():
    config = replace(
        mct_campaign(
            "A",
            refined=True,
            num_programs=3,
            tests_per_program=4,
            noise_rate=0.0,
        ),
        triage=True,
    )
    result = ScamV(config).run()
    assert result.witnesses, "campaign produced no witnesses to check"
    return config, result


def test_every_witness_satisfies_definition_one(triaged_campaign):
    """s1 ~M1 s2 (equal BASE traces) and hardware-distinguishable."""
    config, result = triaged_campaign
    for witness in result.witnesses:
        oracle = WitnessOracle(witness.build_model(), witness.build_platform())
        program = witness.asm_program()
        assert oracle.holds(
            program, witness.state1, witness.state2, witness.train
        ), f"{witness.name} no longer certifies"


def test_every_witness_is_no_larger_than_its_original(triaged_campaign):
    _, result = triaged_campaign
    for witness in result.witnesses:
        reduction = witness.reduction
        assert (
            reduction["instructions_after"]
            <= reduction["instructions_before"]
        )
        assert reduction["cells_after"] <= reduction["cells_before"]


def test_every_witness_signature_matches_recomputation(triaged_campaign):
    """The stored signature is that of the *minimized* pair."""
    _, result = triaged_campaign
    for witness in result.witnesses:
        recomputed = compute_signature(
            witness.asm_program(),
            witness.state1,
            witness.state2,
            witness.train,
            witness.build_platform(),
        )
        assert recomputed.key() == witness.signature.key()


def test_every_witness_roundtrips_through_json(triaged_campaign):
    _, result = triaged_campaign
    for witness in result.witnesses:
        assert Witness.from_json(witness.to_json()) == witness


# -- junk injection -----------------------------------------------------------

_KEYS = [
    "version",
    "name",
    "campaign",
    "template",
    "program",
    "asm",
    "model",
    "platform",
    "state1",
    "state2",
    "signature",
    "reduction",
]

_JUNK = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.text(max_size=8),
    st.lists(st.integers(), max_size=3),
)


@given(key=st.sampled_from(_KEYS), junk=_JUNK)
@settings(max_examples=60, deadline=None)
def test_witness_loader_rejects_mutated_documents(
    triaged_campaign, key, junk
):
    """Corrupting any required field either still validates (rare — the
    junk happened to be schema-conformant) or raises TriageError, never
    an unhandled exception."""
    _, result = triaged_campaign
    doc = result.witnesses[0].to_json()
    doc[key] = junk
    try:
        Witness.from_json(doc)
    except TriageError:
        pass


@given(doc=st.dictionaries(st.text(max_size=6), _JUNK, max_size=4))
@settings(max_examples=60, deadline=None)
def test_witness_loader_rejects_arbitrary_documents(doc):
    with pytest.raises(TriageError):
        Witness.from_json(doc)
