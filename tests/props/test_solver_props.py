"""Property-based stress tests for the model finder.

Constraint systems are generated *satisfiable by construction*: a random
witness assignment is drawn first and every emitted constraint is true
under it.  The solver must then find some model (not necessarily the
witness) satisfying everything.
"""

from hypothesis import given, settings, strategies as st

from repro.bir import expr as E
from repro.smt.solver import ModelFinder, SolverConfig
from repro.utils.rng import SplittableRandom

NAMES = ["a#1", "b#1", "c#1", "a#2", "b#2", "c#2"]


@st.composite
def satisfiable_system(draw):
    witness = {
        name: draw(st.integers(min_value=0, max_value=2**64 - 1))
        for name in NAMES
    }
    val = E.Valuation(regs=witness)
    constraints = []
    kinds = draw(
        st.lists(
            st.sampled_from(["eq", "ne", "ult", "ule", "sum", "mask"]),
            min_size=1,
            max_size=6,
        )
    )
    name_picker = st.sampled_from(NAMES)
    for kind in kinds:
        x = E.var(draw(name_picker))
        y = E.var(draw(name_picker))
        xv = E.evaluate(x, val)
        yv = E.evaluate(y, val)
        if kind == "eq":
            constraints.append(E.eq(x, E.const(xv)))
        elif kind == "ne":
            if xv != yv:
                constraints.append(E.ne(x, y))
        elif kind == "ult":
            if xv < yv:
                constraints.append(E.ult(x, y))
        elif kind == "ule":
            lo, hi = sorted((xv, yv))
            constraints.append(E.ule(E.const(lo), E.const(hi)))
            if xv <= yv:
                constraints.append(E.ule(x, y))
        elif kind == "sum":
            total = E.add(x, y)
            constraints.append(E.eq(total, E.const(E.evaluate(total, val))))
        elif kind == "mask":
            masked = E.band(x, E.const(0xFF0))
            constraints.append(
                E.eq(masked, E.const(E.evaluate(masked, val)))
            )
    return constraints


@given(satisfiable_system(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=80, deadline=None)
def test_solver_finds_model_for_satisfiable_systems(constraints, seed):
    finder = ModelFinder(SolverConfig(), SplittableRandom(seed))
    model = finder.solve(constraints)
    assert model is not None
    for c in constraints:
        assert model.evaluate(c) == 1


@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_solver_respects_exact_pin_chains(value, seed):
    constraints = [
        E.eq(E.var("a"), E.const(value)),
        E.eq(E.var("a"), E.var("b")),
        E.eq(E.add(E.var("b"), E.const(1)), E.var("c")),
    ]
    model = ModelFinder(SolverConfig(), SplittableRandom(seed)).solve(
        constraints
    )
    assert model is not None
    assert model.register("b") == value
    assert model.register("c") == (value + 1) % 2**64


@given(st.integers(min_value=0, max_value=127), st.integers(min_value=0, max_value=500))
@settings(max_examples=60, deadline=None)
def test_solver_hits_any_cache_line_class(line, seed):
    line_expr = E.band(E.lshr(E.var("a"), E.const(6)), E.const(127))
    constraints = [
        E.eq(line_expr, E.const(line)),
        E.ule(E.const(0x80000), E.var("a")),
        E.ule(E.var("a"), E.const(0xBFFF8)),
    ]
    model = ModelFinder(SolverConfig(), SplittableRandom(seed)).solve(
        constraints
    )
    assert model is not None
    a = model.register("a")
    assert (a >> 6) & 127 == line
    assert 0x80000 <= a <= 0xBFFF8
