"""Property-based tests over the expression language.

The central invariants:

* ``simplify`` preserves semantics under every valuation,
* the compiled evaluator agrees with the tree-walking evaluator,
* substitution commutes with evaluation.
"""

from hypothesis import given, settings, strategies as st

from repro.bir import expr as E
from repro.bir.simp import simplify
from repro.smt.compiled import compile_expr

VAR_NAMES = ["a", "b", "c", "d"]
WIDTH = 64


def leaf():
    return st.one_of(
        st.integers(min_value=0, max_value=2**64 - 1).map(
            lambda v: E.Const(v, WIDTH)
        ),
        st.sampled_from(VAR_NAMES).map(lambda n: E.Var(n, WIDTH)),
    )


def build_binop(children):
    return st.tuples(
        st.sampled_from(list(E.BinOpKind)), children, children
    ).map(lambda t: E.BinOp(t[0], t[1], t[2]))


def build_load(children):
    return children.map(lambda a: E.Load(E.MemVar("MEM"), a, WIDTH))


def build_ite(children):
    return st.tuples(
        st.sampled_from(list(E.CmpKind)), children, children, children, children
    ).map(lambda t: E.Ite(E.Cmp(t[0], t[1], t[2]), t[3], t[4]))


def exprs(max_depth=3):
    return st.recursive(
        leaf(),
        lambda children: st.one_of(
            build_binop(children),
            build_load(children),
            build_ite(children),
            st.tuples(st.sampled_from(list(E.UnOpKind)), children).map(
                lambda t: E.UnOp(t[0], t[1])
            ),
        ),
        max_leaves=12,
    )


def valuations():
    return st.fixed_dictionaries(
        {name: st.integers(min_value=0, max_value=2**64 - 1) for name in VAR_NAMES}
    ).map(lambda regs: E.Valuation(regs=regs, mems={"MEM": {0: 7, 64: 9}}))


@given(exprs(), valuations())
@settings(max_examples=150)
def test_simplify_preserves_semantics(expr, valuation):
    assert E.evaluate(expr, valuation) == E.evaluate(simplify(expr), valuation)


@given(exprs(), valuations())
@settings(max_examples=150)
def test_compiled_matches_tree_walk(expr, valuation):
    fn = compile_expr(expr)
    assert fn(valuation.regs, valuation.read_mem) == E.evaluate(expr, valuation)


@given(exprs(), valuations(), st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=100)
def test_substitution_commutes_with_evaluation(expr, valuation, value):
    # Substituting a constant for `a`, then evaluating, equals evaluating
    # with `a` bound to that constant.
    substituted = E.substitute(expr, {E.Var("a", WIDTH): E.Const(value, WIDTH)})
    valuation.regs["a"] = value
    assert E.evaluate(substituted, valuation) == E.evaluate(expr, valuation)


@given(exprs())
@settings(max_examples=100)
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    assert simplify(once) == once


@given(exprs())
@settings(max_examples=100)
def test_walk_reaches_all_variables(expr):
    names = {v.name for v in expr.variables()}
    assert names <= set(VAR_NAMES)
