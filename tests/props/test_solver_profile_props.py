"""Property-based tests for the solver query-profile merge algebra.

The solver observatory promises the coverage-ledger contract: shard
aggregates merge as a **commutative monoid** (``merge_docs`` with
``empty_doc`` as identity), so any shard arrival order — 1 worker, N
workers, resumed halves — folds to the byte-identical canonical document.
Wall times are stored as integer microseconds precisely so summation is
exact and associative; these properties would fail with float seconds.
"""

from functools import reduce

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import solver

pytestmark = pytest.mark.usefixtures("profile_disabled")


@pytest.fixture
def profile_disabled():
    solver.set_enabled(False)
    yield
    solver.set_enabled(False)


# -- strategies ---------------------------------------------------------------

classes = st.sampled_from(
    ["pair:0-1", "pair:1-1", "train:0", solver.UNATTRIBUTED]
)
phases = st.sampled_from(
    ["testgen.generate", "testgen.train", solver.UNATTRIBUTED]
)
#: One recorded query: everything record_query folds into the aggregate.
queries = st.fixed_dictionaries(
    {
        "klass": classes,
        "phase": phases,
        "seconds": st.integers(0, 50_000).map(lambda us: us / 1e6),
        "outcome": st.sampled_from(solver.OUTCOMES),
        "restarts": st.integers(0, 8),
        "repairs": st.integers(0, 40),
        "warm_sat": st.booleans(),
        "prepared_hit": st.sampled_from([None, True, False]),
        "conjuncts": st.integers(1, 40),
        "extras": st.integers(0, 4),
        "term_size": st.integers(1, 500),
    }
)
recordings = st.lists(queries, max_size=30)


def _doc_of(recs):
    """Record a shard's worth of queries and drain its aggregate doc."""
    solver.set_enabled(True)
    for rec in recs:
        with solver.query_context(
            rec["phase"], rec["klass"], prepared_hit=rec["prepared_hit"]
        ):
            solver.record_query(
                seconds=rec["seconds"],
                outcome=rec["outcome"],
                restarts=rec["restarts"],
                repairs=rec["repairs"],
                warm_sat=rec["warm_sat"],
                conjuncts=rec["conjuncts"],
                extras=rec["extras"],
                term_size=rec["term_size"],
            )
    doc = solver.drain() or solver.empty_doc()
    solver.set_enabled(False)
    return doc


def _canon(doc):
    return solver.canonical(solver.merge_docs(doc, solver.empty_doc()))


# -- merge algebra ------------------------------------------------------------


@settings(max_examples=50)
@given(recordings, recordings)
def test_merge_is_commutative(recs_a, recs_b):
    a, b = _doc_of(recs_a), _doc_of(recs_b)
    assert solver.canonical(
        solver.merge_docs(a, b)
    ) == solver.canonical(solver.merge_docs(b, a))


@settings(max_examples=50)
@given(recordings, recordings, recordings)
def test_merge_is_associative(recs_a, recs_b, recs_c):
    a, b, c = _doc_of(recs_a), _doc_of(recs_b), _doc_of(recs_c)
    left = solver.merge_docs(solver.merge_docs(a, b), c)
    right = solver.merge_docs(a, solver.merge_docs(b, c))
    assert solver.canonical(left) == solver.canonical(right)


@settings(max_examples=50)
@given(recordings)
def test_empty_doc_is_the_identity(recs):
    doc = _doc_of(recs)
    empty = solver.empty_doc()
    assert solver.canonical(solver.merge_docs(doc, empty)) == _canon(doc)
    assert solver.canonical(solver.merge_docs(empty, doc)) == _canon(doc)


@settings(max_examples=30)
@given(
    st.lists(recordings, min_size=1, max_size=5),
    st.randoms(use_true_random=False),
)
def test_any_shard_arrival_order_yields_one_document(shards, shuffler):
    """The worker-count-invariance property, in miniature."""
    docs = [_doc_of(recs) for recs in shards]
    reference = solver.merge_solver_docs(docs)
    shuffled = list(docs)
    shuffler.shuffle(shuffled)
    merged = solver.merge_solver_docs(shuffled)
    if reference is None:
        assert merged is None
        return
    assert solver.canonical(merged) == solver.canonical(reference)
    # pairwise reduction (how the merge layer actually folds shards)
    folded = reduce(solver.merge_docs, docs[1:], docs[0])
    assert solver.canonical(
        solver.merge_docs(folded, solver.empty_doc())
    ) == solver.canonical(reference)


@settings(max_examples=50)
@given(recordings)
def test_splitting_one_stream_never_changes_the_aggregate(recs):
    """Recording a query stream in one shard or split across two shards
    merges to the same document — the inline-vs-worker contract."""
    whole = _doc_of(recs)
    half = len(recs) // 2
    split = solver.merge_solver_docs(
        [_doc_of(recs[:half]), _doc_of(recs[half:])]
    )
    assert solver.canonical(split) == _canon(whole)


@settings(max_examples=50)
@given(recordings)
def test_totals_and_top_are_consistent(recs):
    doc = _doc_of(recs)
    totals = solver.doc_totals(doc)
    assert totals["queries"] == len(recs)
    assert totals["queries"] == sum(
        s["queries"] for s in doc["phases"].values()
    )
    assert len(doc["top"]) == min(len(recs), solver.TOP_K)
    assert 0.0 <= solver.attribution(doc) <= 1.0
    times = [entry["seconds_us"] for entry in doc["top"]]
    assert times == sorted(times, reverse=True)
