"""Property-based tests for bit-vector arithmetic."""

from hypothesis import given, strategies as st

from repro.utils import bitvec

widths = st.sampled_from([1, 8, 16, 32, 64])
values = st.integers(min_value=-(2**65), max_value=2**65)


@given(values, widths)
def test_truncate_idempotent(v, w):
    once = bitvec.truncate(v, w)
    assert bitvec.truncate(once, w) == once
    assert 0 <= once < (1 << w)


@given(values, widths)
def test_signed_unsigned_roundtrip(v, w):
    u = bitvec.truncate(v, w)
    assert bitvec.to_unsigned(bitvec.to_signed(u, w), w) == u


@given(values, values, widths)
def test_add_matches_modular_arithmetic(a, b, w):
    assert bitvec.bv_add(a, b, w) == (a + b) % (1 << w)


@given(values, values, widths)
def test_sub_is_add_of_negation(a, b, w):
    neg_b = bitvec.bv_sub(0, b, w)
    assert bitvec.bv_sub(a, b, w) == bitvec.bv_add(a, neg_b, w)


@given(values, widths)
def test_not_is_involution(a, w):
    t = bitvec.truncate(a, w)
    assert bitvec.bv_not(bitvec.bv_not(t, w), w) == t


@given(values, values, widths)
def test_xor_cancels(a, b, w):
    x = bitvec.bv_xor(a, b, w)
    assert bitvec.bv_xor(x, b, w) == bitvec.truncate(a, w)


@given(values, st.integers(min_value=0, max_value=130), widths)
def test_shl_matches_multiplication(a, s, w):
    expected = (bitvec.truncate(a, w) << s) % (1 << w) if s < w else 0
    assert bitvec.bv_shl(a, s, w) == expected


@given(values, st.integers(min_value=0, max_value=130), widths)
def test_lshr_matches_floor_division(a, s, w):
    expected = bitvec.truncate(a, w) >> s if s < w else 0
    assert bitvec.bv_lshr(a, s, w) == expected


@given(values, st.integers(min_value=0, max_value=130), widths)
def test_ashr_preserves_sign(a, s, w):
    out = bitvec.bv_ashr(a, s, w)
    assert (bitvec.to_signed(out, w) < 0) == (bitvec.to_signed(a, w) < 0) or out in (
        0,
        bitvec.mask(w),
    )


@given(values, widths)
def test_sign_extend_preserves_value(a, w):
    extended = bitvec.sign_extend(a, w, 64)
    assert bitvec.to_signed(extended, 64) == bitvec.to_signed(a, w)
