"""Property: the three execution semantics agree.

For random template programs and random concrete inputs:

* the concrete BIR interpreter's observation trace must equal the
  satisfied symbolic path's observation list, evaluated at the inputs
  (symbolic-vs-concrete agreement on *augmented* programs);
* the parser round-trip must preserve the concrete trace.
"""

from hypothesis import given, settings, strategies as st

from repro.bir import expr as E
from repro.bir.parser import parse_program
from repro.bir.printer import format_program
from repro.gen.templates import MulTemplate, StrideTemplate, TemplateA, TemplateC
from repro.hw.platform import StateInputs
from repro.isa.lifter import lift
from repro.obs.base import AttackerRegion
from repro.obs.channels import MtimeRefinedModel
from repro.obs.models import MctModel, MpartRefinedModel, MspecModel
from repro.symbolic.concrete import run_concrete
from repro.symbolic.executor import execute
from repro.utils.rng import SplittableRandom

TEMPLATES = [StrideTemplate(), TemplateA(), TemplateC(), MulTemplate()]
MODELS = [
    MctModel(),
    MspecModel(),
    MpartRefinedModel(AttackerRegion(61, 127)),
    MtimeRefinedModel(),
]

reg_values = st.integers(min_value=0, max_value=2**64 - 1)


def _setting(seed, template_index, model_index):
    asm = TEMPLATES[template_index % len(TEMPLATES)].generate(
        SplittableRandom(seed)
    ).asm
    model = MODELS[model_index % len(MODELS)]
    return asm, model.augment(lift(asm))


def _inputs(asm, raw_regs, mem_value):
    regs = {
        reg.name: raw_regs[i % len(raw_regs)]
        for i, reg in enumerate(asm.input_registers())
    }
    return StateInputs(regs=regs, memory={0x2000: mem_value})


@given(
    seed=st.integers(min_value=0, max_value=5000),
    template_index=st.integers(min_value=0, max_value=3),
    model_index=st.integers(min_value=0, max_value=3),
    raw_regs=st.lists(reg_values, min_size=6, max_size=6),
    mem_value=reg_values,
)
@settings(max_examples=50, deadline=None)
def test_concrete_trace_matches_symbolic_path(
    seed, template_index, model_index, raw_regs, mem_value
):
    asm, program = _setting(seed, template_index, model_index)
    inputs = _inputs(asm, raw_regs, mem_value)
    concrete = run_concrete(program, inputs)

    val = E.Valuation(
        regs={**{f"x{i}": 0 for i in range(31)}, **inputs.regs},
        mems={"MEM": dict(inputs.memory)},
    )
    matching = [
        p
        for p in execute(program)
        if E.evaluate(p.condition_expr(), val) == 1
    ]
    assert len(matching) == 1
    symbolic = matching[0]
    # Guarded observations may be dropped concretely; filter symbolically
    # the same way before comparing.
    expected = [
        (o.tag, o.kind, tuple(E.evaluate(e, val) for e in o.exprs))
        for o in symbolic.observations
        if E.evaluate(o.guard, val) == 1
    ]
    got = [(o.tag, o.kind, o.values) for o in concrete.observations]
    assert got == expected


@given(
    seed=st.integers(min_value=0, max_value=5000),
    template_index=st.integers(min_value=0, max_value=3),
    model_index=st.integers(min_value=0, max_value=3),
    raw_regs=st.lists(reg_values, min_size=6, max_size=6),
)
@settings(max_examples=30, deadline=None)
def test_parser_roundtrip_preserves_concrete_trace(
    seed, template_index, model_index, raw_regs
):
    asm, program = _setting(seed, template_index, model_index)
    inputs = _inputs(asm, raw_regs, 0x40)
    reparsed = parse_program(format_program(program))
    original = run_concrete(program, inputs)
    roundtripped = run_concrete(reparsed, inputs)
    assert [
        (o.tag, o.values) for o in original.observations
    ] == [(o.tag, o.values) for o in roundtripped.observations]
    assert original.block_trace == roundtripped.block_trace
