"""Cross-validation properties tying the layers together.

1. **Lifter vs. hardware**: for random template programs and random input
   states, the architectural register results of the simulated core must
   equal the BIR path semantics (pick the satisfied path, evaluate its
   final environment).
2. **Observation consistency**: the addresses Mct observes symbolically
   must equal the demand-load addresses the hardware actually issues.
3. **Solver soundness**: every model returned by the model finder satisfies
   all its constraints.
"""

from hypothesis import given, settings, strategies as st

from repro.bir import expr as E
from repro.bir.tags import ObsKind
from repro.gen.templates import StrideTemplate, TemplateA, TemplateB, TemplateC
from repro.hw.core import Core, CoreConfig
from repro.hw.state import MachineState, Memory
from repro.isa.lifter import lift
from repro.obs.models import MctModel
from repro.smt.solver import ModelFinder, SolverConfig
from repro.symbolic.executor import execute
from repro.utils.rng import SplittableRandom

TEMPLATES = [StrideTemplate(), TemplateA(), TemplateB(), TemplateC()]

reg_values = st.integers(min_value=0, max_value=2**64 - 1)


def _program(seed, template_index):
    template = TEMPLATES[template_index % len(TEMPLATES)]
    return template.generate(SplittableRandom(seed)).asm


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    template_index=st.integers(min_value=0, max_value=3),
    raw_regs=st.lists(reg_values, min_size=8, max_size=8),
    mem_value=reg_values,
)
@settings(max_examples=60, deadline=None)
def test_hardware_agrees_with_bir_semantics(
    seed, template_index, raw_regs, mem_value
):
    asm = _program(seed, template_index)
    inputs = list(asm.input_registers())
    regs = {
        reg.name: raw_regs[i % len(raw_regs)] for i, reg in enumerate(inputs)
    }
    memory = {0x1000: mem_value}

    # Hardware run (speculation cannot change architectural results).
    core = Core(CoreConfig())
    hw_state = MachineState(regs=dict(regs), memory=Memory(dict(memory)))
    core.execute(asm, hw_state)

    # Symbolic run: find the satisfied path, evaluate its final env.
    result = execute(lift(asm))
    val = E.Valuation(regs=dict(regs), mems={"MEM": dict(memory)})
    matching = [
        p for p in result if E.evaluate(p.condition_expr(), val) == 1
    ]
    assert len(matching) == 1, "exactly one path condition must hold"
    path = matching[0]
    for name, symbolic_value in path.final_env.items():
        if not name.startswith("x"):
            continue  # hidden comparison state has no hardware counterpart
        assert hw_state.regs[name] == E.evaluate(symbolic_value, val), name


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    template_index=st.integers(min_value=0, max_value=3),
    raw_regs=st.lists(reg_values, min_size=8, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_observed_addresses_match_hardware_loads(seed, template_index, raw_regs):
    asm = _program(seed, template_index)
    inputs = list(asm.input_registers())
    regs = {
        reg.name: raw_regs[i % len(raw_regs)] for i, reg in enumerate(inputs)
    }

    core = Core(CoreConfig())
    hw_state = MachineState(regs=dict(regs))
    trace = core.execute(asm, hw_state)

    result = execute(MctModel().augment(lift(asm)))
    val = E.Valuation(regs=dict(regs))
    path = next(
        p for p in result if E.evaluate(p.condition_expr(), val) == 1
    )
    observed = [
        E.evaluate(o.exprs[0], val)
        for o in path.observations
        if o.kind in (ObsKind.LOAD_ADDR, ObsKind.STORE_ADDR)
    ]
    assert observed == trace.load_addresses + trace.store_addresses or observed == (
        trace.load_addresses
    )


@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=1, max_size=3
    ),
    bound=st.integers(min_value=1, max_value=2**32),
)
@settings(max_examples=40, deadline=None)
def test_solver_models_satisfy_constraints(seeds, bound):
    constraints = [
        E.ult(E.var("a"), E.const(bound)),
        E.eq(E.add(E.var("a"), E.var("b")), E.add(E.var("c"), E.var("d"))),
        E.ne(E.var("c"), E.var("d")),
    ]
    for seed in seeds:
        model = ModelFinder(SolverConfig(), SplittableRandom(seed)).solve(
            constraints
        )
        assert model is not None
        for c in constraints:
            assert model.evaluate(c) == 1
