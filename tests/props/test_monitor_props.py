"""Property-based tests for the coverage ledger and classification hooks.

1. **Classification is pure**: ``CoverageSampler.classify`` depends only on
   the test case — never on the sampler's RNG stream — so ledgers recorded
   in different shards (different ``SplittableRandom`` splits) classify
   identical tests identically.  This is what makes the merged ledger a
   pure function of the campaign config.
2. **Merge is a commutative monoid**: shard deltas merge associatively and
   commutatively with the empty ledger as identity, so any shard arrival
   order (1 worker, 4 workers, resumed halves) produces the byte-identical
   canonical document.
"""

from functools import reduce

from hypothesis import given, settings, strategies as st

from repro.core.coverage import (
    CoverageSampler,
    MagnitudeCoverage,
    MlineCoverage,
    NoCoverage,
)
from repro.hw.platform import StateInputs
from repro.monitor.ledger import CoverageLedger, merge_ledger_docs
from repro.obs.base import AttackerRegion
from repro.utils.rng import SplittableRandom


# -- strategies ---------------------------------------------------------------

regs = st.dictionaries(
    st.sampled_from(["x1", "x2", "x5", "x6"]),
    st.integers(min_value=0, max_value=2**64 - 1),
    max_size=4,
)
memory = st.dictionaries(
    st.integers(min_value=0, max_value=2**20), st.integers(0, 255), max_size=4
)
states = st.builds(StateInputs, regs=regs, memory=memory)
pairs = st.tuples(st.integers(0, 7), st.integers(0, 7))


@st.composite
def case_strategy(draw):
    """A structural stand-in for TestCase: classify only reads these."""

    class Case:
        pair = draw(pairs)
        state1 = draw(states)
        state2 = draw(states)

    return Case()


samplers = st.sampled_from(
    [
        NoCoverage(),
        MagnitudeCoverage(),
        MlineCoverage(region=AttackerRegion(lo_set=61, hi_set=127)),
    ]
)

outcomes = st.sampled_from(["pass", "counterexample", "inconclusive"])
#: (classes, outcome, program_index, test_index) recordings.
recordings = st.lists(
    st.tuples(
        st.dictionaries(
            st.sampled_from(["Mpc", "Mline", "Mmagnitude"]),
            st.tuples(st.sampled_from(["a", "b", "c", "d"])),
            min_size=1,
            max_size=2,
        ),
        outcomes,
        st.integers(0, 5),
        st.integers(0, 5),
    ),
    max_size=12,
)


def _ledger_of(recs):
    ledger = CoverageLedger("c", spaces={"Mline": 128, "Mmagnitude": 4})
    for classes, outcome, program, test in recs:
        ledger.record(classes, outcome, program, test)
    return ledger


# -- classification purity ----------------------------------------------------


@settings(max_examples=60)
@given(samplers, case_strategy(), st.integers(0, 2**32 - 1))
def test_classify_is_independent_of_rng_splits(sampler, case, seed):
    """Classify twice around unrelated RNG consumption: same answer.

    Shards draw from different ``SplittableRandom(seed).split(f"prog{i}")``
    streams; classification must not read them at all.
    """
    before = sampler.classify(case)
    rng = SplittableRandom(seed).split(f"prog{seed % 7}")
    rng.randint(0, 1 << 30)
    assert sampler.classify(case) == before
    assert sampler.classify(case) == before  # and idempotent


@settings(max_examples=60)
@given(samplers, case_strategy())
def test_classify_keys_lie_in_declared_spaces(sampler, case):
    classes = sampler.classify(case)
    spaces = sampler.spaces()
    assert set(classes) <= set(spaces)
    assert classes["Mpc"] == (f"pair:{case.pair[0]}-{case.pair[1]}",)
    for model, keys in classes.items():
        space = spaces[model]
        if space is None:
            continue
        for key in keys:
            index = int(key.partition(":")[2])
            assert 0 <= index < space


# -- merge algebra ------------------------------------------------------------


@settings(max_examples=50)
@given(recordings, recordings)
def test_merge_is_commutative(recs_a, recs_b):
    a, b = _ledger_of(recs_a), _ledger_of(recs_b)
    assert a.merge(b).canonical() == b.merge(a).canonical()


@settings(max_examples=50)
@given(recordings, recordings, recordings)
def test_merge_is_associative(recs_a, recs_b, recs_c):
    a, b, c = _ledger_of(recs_a), _ledger_of(recs_b), _ledger_of(recs_c)
    assert (
        a.merge(b).merge(c).canonical() == a.merge(b.merge(c)).canonical()
    )


@settings(max_examples=50)
@given(recordings)
def test_empty_ledger_is_the_identity(recs):
    ledger = _ledger_of(recs)
    empty = CoverageLedger("c", spaces={"Mline": 128, "Mmagnitude": 4})
    assert ledger.merge(empty).canonical() == ledger.canonical()
    assert empty.merge(ledger).canonical() == ledger.canonical()


@settings(max_examples=30)
@given(
    st.lists(recordings, min_size=1, max_size=5),
    st.randoms(use_true_random=False),
)
def test_any_shard_arrival_order_yields_one_document(shards, shuffler):
    """The worker-count-invariance property, in miniature."""
    ledgers = [_ledger_of(recs) for recs in shards]
    docs = [ledger.to_json() for ledger in ledgers]
    reference = merge_ledger_docs(docs)
    shuffled = list(docs)
    shuffler.shuffle(shuffled)
    assert merge_ledger_docs(shuffled) == reference
    # pairwise reduction (how the merge layer actually folds shards)
    folded = reduce(
        lambda acc, ledger: acc.merge(ledger),
        ledgers[1:],
        ledgers[0],
    )
    assert folded.to_json() == reference


@settings(max_examples=50)
@given(recordings)
def test_json_round_trip_preserves_canonical_form(recs):
    ledger = _ledger_of(recs)
    assert (
        CoverageLedger.from_json(ledger.to_json()).canonical()
        == ledger.canonical()
    )
