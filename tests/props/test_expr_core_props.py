"""Property-based tests for the hash-consed expression core (ISSUE 2).

The interning layer must be *observationally transparent*: canonical
construction, the per-node attribute caches, and the memoized
``simplify``/``compile_expr`` may change allocation behaviour but never a
result.  These properties pin that down against randomized expression
trees:

* interned construction is referentially canonical (structurally equal
  terms are pointer-identical) and survives pickling,
* memoized ``simplify`` returns the same simplified form as an un-memoized
  (cold-cache) run — i.e. the memo layer is extensionally equal to the
  seed implementation, whose rule set is unchanged,
* simplification and compilation agree with the tree-walking evaluator
  under random valuations regardless of cache state,
* cached ``variables()``/``memories()``/``size``/``depth`` equal a fresh
  structural recomputation.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.bir import expr as E
from repro.bir import intern
from repro.bir.simp import simplify
from repro.smt.compiled import compile_expr


@pytest.fixture(autouse=True)
def _fresh_generation():
    # The interning tables are bounded: when a table crosses its cap the
    # whole generation is dropped, and pointer-identity assertions do not
    # hold across generations.  Starting from empty tables keeps every
    # example far from the cap, so no flip can happen mid-assertion no
    # matter how much the preceding suite populated the caches.
    intern.clear_caches()
    yield

VAR_NAMES = ["a", "b", "c", "d"]
WIDTH = 64


def leaf():
    return st.one_of(
        st.integers(min_value=0, max_value=2**64 - 1).map(
            lambda v: E.Const(v, WIDTH)
        ),
        st.sampled_from(VAR_NAMES).map(lambda n: E.Var(n, WIDTH)),
    )


def exprs(max_leaves=12):
    return st.recursive(
        leaf(),
        lambda children: st.one_of(
            st.tuples(
                st.sampled_from(list(E.BinOpKind)), children, children
            ).map(lambda t: E.BinOp(t[0], t[1], t[2])),
            children.map(lambda a: E.Load(E.MemVar("MEM"), a, WIDTH)),
            st.tuples(
                st.sampled_from(list(E.CmpKind)),
                children,
                children,
                children,
                children,
            ).map(lambda t: E.Ite(E.Cmp(t[0], t[1], t[2]), t[3], t[4])),
            st.tuples(st.sampled_from(list(E.UnOpKind)), children).map(
                lambda t: E.UnOp(t[0], t[1])
            ),
        ),
        max_leaves=max_leaves,
    )


def valuations():
    return st.fixed_dictionaries(
        {
            name: st.integers(min_value=0, max_value=2**64 - 1)
            for name in VAR_NAMES
        }
    ).map(lambda regs: E.Valuation(regs=regs, mems={"MEM": {0: 7, 64: 9}}))


def _rebuild(expr):
    """Reconstruct an expression bottom-up through the public constructors."""
    if isinstance(expr, E.Const):
        return E.Const(expr.value, expr.width)
    if isinstance(expr, E.Var):
        return E.Var(expr.name, expr.width)
    if isinstance(expr, E.UnOp):
        return E.UnOp(expr.op, _rebuild(expr.operand))
    if isinstance(expr, E.BinOp):
        return E.BinOp(expr.op, _rebuild(expr.lhs), _rebuild(expr.rhs))
    if isinstance(expr, E.Cmp):
        return E.Cmp(expr.op, _rebuild(expr.lhs), _rebuild(expr.rhs))
    if isinstance(expr, E.Ite):
        return E.Ite(
            _rebuild(expr.cond), _rebuild(expr.then), _rebuild(expr.orelse)
        )
    if isinstance(expr, E.Load):
        return E.Load(_rebuild_mem(expr.mem), _rebuild(expr.addr), expr.width)
    raise AssertionError(f"unhandled {expr!r}")


def _rebuild_mem(mem):
    if isinstance(mem, E.MemVar):
        return E.MemVar(mem.name)
    return E.MemStore(
        _rebuild_mem(mem.mem), _rebuild(mem.addr), _rebuild(mem.value)
    )


@given(exprs())
@settings(max_examples=150)
def test_interned_construction_is_canonical(expr):
    rebuilt = _rebuild(expr)
    assert rebuilt is expr
    assert hash(rebuilt) == hash(expr)


@given(exprs())
@settings(max_examples=100)
def test_interning_survives_pickle(expr):
    clone = pickle.loads(pickle.dumps(expr))
    # Unpickling goes through the canonical constructors, so it lands on
    # the same interned node.
    assert clone is expr


@given(exprs())
@settings(max_examples=150)
def test_memoized_simplify_matches_cold_cache(expr):
    warm = simplify(expr)
    # A second call must hit the memo and return the identical node.
    assert simplify(expr) is warm
    # A cold-cache run (the memo-free code path, i.e. the seed
    # implementation's behaviour) must produce the same simplified form.
    intern.clear_caches()
    cold = simplify(expr)
    assert cold == warm


@given(exprs(), valuations())
@settings(max_examples=150)
def test_simplify_preserves_evaluate_across_cache_states(expr, valuation):
    expected = E.evaluate(expr, valuation)
    assert E.evaluate(simplify(expr), valuation) == expected
    intern.clear_caches()
    assert E.evaluate(simplify(expr), valuation) == expected


@given(exprs())
@settings(max_examples=100)
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    assert simplify(once) is once


@given(exprs(), valuations())
@settings(max_examples=100)
def test_memoized_compile_agrees_with_evaluate(expr, valuation):
    fn = compile_expr(expr)
    # Memo hit returns the same closure.
    assert compile_expr(expr) is fn
    assert fn(valuation.regs, valuation.read_mem) == E.evaluate(
        expr, valuation
    )
    intern.clear_caches()
    cold = compile_expr(expr)
    assert cold(valuation.regs, valuation.read_mem) == E.evaluate(
        expr, valuation
    )


def _structural_size(e):
    return 1 + sum(_structural_size(c) for c in _children(e))


def _structural_depth(e):
    return 1 + max((_structural_depth(c) for c in _children(e)), default=0)


def _structural_vars(e, out):
    if isinstance(e, E.Var):
        out.add(e)
    for child in _children(e):
        _structural_vars(child, out)
    return out


def _children(e):
    if isinstance(e, E.UnOp):
        return [e.operand]
    if isinstance(e, (E.BinOp, E.Cmp)):
        return [e.lhs, e.rhs]
    if isinstance(e, E.Ite):
        return [e.cond, e.then, e.orelse]
    if isinstance(e, E.Load):
        return [e.mem, e.addr]
    if isinstance(e, E.MemStore):
        return [e.mem, e.addr, e.value]
    return []  # Const, Var, MemVar


@given(exprs())
@settings(max_examples=150)
def test_cached_attributes_match_structural_recomputation(expr):
    assert expr.size == _structural_size(expr)
    assert expr.depth == _structural_depth(expr)
    assert expr.variables() == frozenset(_structural_vars(expr, set()))
