"""Property-based tests for the hardware substrate."""

from hypothesis import given, settings, strategies as st

from repro.hw.cache import Cache, CacheConfig
from repro.hw.predictor import BranchPredictor
from repro.hw.prefetcher import PrefetcherConfig, StridePrefetcher

addresses = st.integers(min_value=0, max_value=2**32 - 1)


@given(st.lists(addresses, max_size=60))
@settings(max_examples=80)
def test_cache_capacity_invariant(addrs):
    cfg = CacheConfig(sets=8, ways=2, line_size=64)
    cache = Cache(cfg)
    for addr in addrs:
        cache.access(addr)
    snapshot = cache.snapshot()
    assert all(len(tags) <= cfg.ways for tags in snapshot.tags_per_set)
    assert cache.hits + cache.misses == len(addrs)


@given(st.lists(addresses, max_size=60))
@settings(max_examples=80)
def test_cache_most_recent_access_resident(addrs):
    cache = Cache(CacheConfig(sets=8, ways=2, line_size=64))
    for addr in addrs:
        cache.access(addr)
        assert cache.contains(addr)


@given(st.lists(addresses, max_size=40))
@settings(max_examples=60)
def test_flush_all_empties(addrs):
    cache = Cache()
    for addr in addrs:
        cache.access(addr)
    cache.flush_all()
    assert len(cache.snapshot()) == 0
    assert not any(cache.contains(a) for a in addrs)


@given(st.lists(addresses, max_size=40))
@settings(max_examples=60)
def test_snapshot_deterministic_function_of_accesses(addrs):
    a, b = Cache(), Cache()
    for addr in addrs:
        a.access(addr)
        b.access(addr)
    assert a.snapshot() == b.snapshot()


@given(
    base=st.integers(min_value=0, max_value=2**20),
    stride=st.integers(min_value=-512, max_value=512).filter(lambda s: s != 0),
    count=st.integers(min_value=3, max_value=10),
)
@settings(max_examples=80)
def test_prefetcher_never_crosses_pages(base, stride, count):
    pf = StridePrefetcher(PrefetcherConfig(page_size=4096))
    emitted = []
    last = None
    for i in range(count):
        last = base + i * stride
        if last < 0:
            return
        emitted.extend((last, t) for t in pf.on_load(last))
    for source, target in emitted:
        assert source // 4096 == target // 4096


@given(
    base=st.integers(min_value=0, max_value=2**20),
    stride=st.integers(min_value=1, max_value=512),
)
@settings(max_examples=80)
def test_prefetch_targets_continue_the_stride(base, stride):
    pf = StridePrefetcher(PrefetcherConfig(page_size=0))
    targets = []
    for i in range(4):
        targets = pf.on_load(base + i * stride)
    assert targets == [base + 4 * stride] or targets == []


@given(st.lists(st.booleans(), min_size=1, max_size=30))
@settings(max_examples=80)
def test_predictor_counter_bounded(outcomes):
    predictor = BranchPredictor()
    for taken in outcomes:
        predictor.update(12, taken)
        assert 0 <= predictor.counter(12) <= 3


@given(st.integers(min_value=1, max_value=10))
@settings(max_examples=30)
def test_predictor_converges_to_training(rounds):
    predictor = BranchPredictor()
    for _ in range(rounds + 2):
        predictor.update(8, True)
    assert predictor.predict(8)
