"""Health detectors: unit-level with a fake clock, plus fault-injected runs."""

import pytest

from repro.exps import mct_campaign
from repro.monitor.health import HealthConfig, HealthMonitor
from repro.runner import (
    CampaignFinished,
    EventLog,
    HealthEvent,
    ParallelRunner,
    RunnerConfig,
    ShardExhaustedError,
    ShardFailed,
    ShardFinished,
    ShardRetried,
    ShardStarted,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _monitor(chain=None, metrics=None, **overrides):
    clock = FakeClock()
    monitor = HealthMonitor(
        config=HealthConfig(**overrides),
        chain=chain,
        clock=clock,
        metrics_source=metrics if metrics is not None else lambda: None,
    )
    return monitor, clock


def _finish(monitor, clock, shard_id, duration, campaign="c", **kwargs):
    monitor(ShardStarted(campaign=campaign, shard_id=shard_id))
    clock.advance(duration)
    monitor(
        ShardFinished(
            campaign=campaign,
            shard_id=shard_id,
            duration=duration,
            **kwargs,
        )
    )


def _events(monitor, detector=None):
    out = [event for _, event in monitor.log]
    if detector is not None:
        out = [e for e in out if e.detector == detector]
    return out


class TestStalledShard:
    def test_fires_when_a_shard_exceeds_the_median_multiple(self):
        monitor, clock = _monitor()
        for shard in range(3):
            _finish(monitor, clock, shard, 1.0)
        monitor(ShardStarted(campaign="c", shard_id=9))
        clock.advance(3.9)
        monitor.tick()
        assert _events(monitor, "stalled-shard") == []
        clock.advance(0.2)  # past 4x the 1.0s median
        monitor.tick()
        events = _events(monitor, "stalled-shard")
        assert len(events) == 1
        assert events[0].shard_id == 9
        assert events[0].severity == "warning"
        # deduplicated: the same stalled shard fires only once
        clock.advance(100)
        monitor.tick()
        assert len(_events(monitor, "stalled-shard")) == 1

    def test_silent_without_enough_duration_samples(self):
        monitor, clock = _monitor()
        _finish(monitor, clock, 0, 1.0)
        monitor(ShardStarted(campaign="c", shard_id=9))
        clock.advance(1000)
        monitor.tick()
        assert _events(monitor) == []

    def test_min_seconds_guards_microbenchmark_noise(self):
        monitor, clock = _monitor(stall_min_seconds=60.0)
        for shard in range(3):
            _finish(monitor, clock, shard, 0.01)
        monitor(ShardStarted(campaign="c", shard_id=9))
        clock.advance(59.0)  # way past 4x median, under min_seconds
        monitor.tick()
        assert _events(monitor) == []

    def test_finished_shard_is_no_longer_inflight(self):
        monitor, clock = _monitor()
        for shard in range(3):
            _finish(monitor, clock, shard, 1.0)
        clock.advance(1000)
        monitor.tick()
        assert _events(monitor) == []

    def test_campaign_finish_clears_inflight(self):
        monitor, clock = _monitor()
        for shard in range(3):
            _finish(monitor, clock, shard, 1.0)
        monitor(ShardStarted(campaign="c", shard_id=9))
        monitor(CampaignFinished(campaign="c"))
        clock.advance(1000)
        monitor.tick()
        assert _events(monitor) == []


class TestRetrySpike:
    def test_fires_once_at_the_threshold(self):
        monitor, _ = _monitor(retry_threshold=2)
        for attempt in (1, 2, 3):
            monitor(
                ShardRetried(
                    campaign="c",
                    shard_id=0,
                    attempt=attempt,
                    reason="injected",
                )
            )
        events = _events(monitor, "retry-spike")
        assert len(events) == 1
        assert "injected" in events[0].message

    def test_counts_per_campaign(self):
        monitor, _ = _monitor(retry_threshold=2)
        for campaign in ("a", "b"):
            monitor(
                ShardRetried(
                    campaign=campaign, shard_id=0, attempt=1, reason="x"
                )
            )
        assert _events(monitor, "retry-spike") == []


class TestShardFailure:
    def test_always_emits_critical(self):
        monitor, _ = _monitor()
        monitor(
            ShardFailed(campaign="c", shard_id=3, attempts=3, reason="boom")
        )
        monitor(
            ShardFailed(campaign="c", shard_id=4, attempts=3, reason="boom")
        )
        events = _events(monitor, "shard-failure")
        assert [e.shard_id for e in events] == [3, 4]
        assert all(e.severity == "critical" for e in events)


class TestInconclusiveDrift:
    def test_fires_on_drift_and_rearms_on_recovery(self):
        monitor, clock = _monitor(
            inconclusive_min_experiments=40,
            inconclusive_window_shards=4,
            inconclusive_drift=0.15,
        )
        # clean baseline: 10 shards x 10 experiments, none inconclusive
        for shard in range(10):
            _finish(
                monitor, clock, shard, 1.0, experiments=10, inconclusive=0
            )
        # recent window turns noisy
        for shard in range(10, 14):
            _finish(
                monitor, clock, shard, 1.0, experiments=10, inconclusive=8
            )
        drift = _events(monitor, "inconclusive-drift")
        assert len(drift) == 1
        assert "baseline" in drift[0].message
        # recovery re-arms the detector ...
        for shard in range(14, 40):
            _finish(
                monitor, clock, shard, 1.0, experiments=10, inconclusive=0
            )
        # ... so a second drift episode fires again
        for shard in range(40, 44):
            _finish(
                monitor, clock, shard, 1.0, experiments=10, inconclusive=9
            )
        assert len(_events(monitor, "inconclusive-drift")) == 2

    def test_silent_below_minimum_volume(self):
        monitor, clock = _monitor(inconclusive_min_experiments=40)
        for shard in range(3):
            _finish(
                monitor, clock, shard, 1.0, experiments=5, inconclusive=5
            )
        assert _events(monitor, "inconclusive-drift") == []


class TestMetricsDetectors:
    def _snapshot(self, solves=0, restarts=0, hits=0, misses=0):
        return {
            "span.smt.solve.seconds": {
                "type": "histogram",
                "count": solves,
            },
            "span.smt.restart.seconds": {
                "type": "histogram",
                "count": restarts,
            },
            "cache.expr.hits": {"type": "counter", "value": hits},
            "cache.expr.misses": {"type": "counter", "value": misses},
        }

    def test_solver_restart_spike(self):
        monitor, _ = _monitor()
        monitor.observe_metrics(self._snapshot(solves=40, restarts=30))
        events = _events(monitor, "solver-restarts")
        assert len(events) == 1
        assert "restarts" in events[0].message
        # dedup across repeated snapshots
        monitor.observe_metrics(self._snapshot(solves=80, restarts=70))
        assert len(_events(monitor, "solver-restarts")) == 1

    def test_solver_silent_under_minimum_solves(self):
        monitor, _ = _monitor(solver_min_solves=100)
        monitor.observe_metrics(self._snapshot(solves=40, restarts=39))
        assert _events(monitor) == []

    def test_cache_collapse_needs_real_traffic(self):
        monitor, _ = _monitor(cache_min_traffic=500)
        monitor.observe_metrics(self._snapshot(hits=1, misses=50))
        assert _events(monitor) == []
        monitor.observe_metrics(self._snapshot(hits=10, misses=600))
        events = _events(monitor, "cache-collapse")
        assert len(events) == 1
        assert "'expr'" in events[0].message

    def test_healthy_cache_stays_silent(self):
        monitor, _ = _monitor()
        monitor.observe_metrics(self._snapshot(hits=900, misses=100))
        assert _events(monitor) == []

    def test_metrics_source_consulted_on_shard_finish(self):
        calls = []

        def source():
            calls.append(1)
            return self._snapshot(solves=40, restarts=30)

        monitor, clock = _monitor(metrics=source)
        _finish(monitor, clock, 0, 1.0)
        assert calls
        assert len(_events(monitor, "solver-restarts")) == 1


class TestSinkChaining:
    def test_chain_sees_original_events_then_derived_health(self):
        log = EventLog()
        monitor, _ = _monitor(chain=log)
        failed = ShardFailed(
            campaign="c", shard_id=0, attempts=3, reason="boom"
        )
        monitor(failed)
        kinds = [type(e).__name__ for e in log.events]
        assert kinds == ["ShardFailed", "HealthEvent"]
        assert log.events[0] is failed


# Importable, picklable fault injectors (see tests/runner/test_scheduler.py).

def crash_twice(spec, attempt):
    if spec.shard_id == 1 and attempt < 2:
        raise RuntimeError("injected crash")


def always_crash_shard0(spec, attempt):
    if spec.shard_id == 0:
        raise RuntimeError("unrecoverable")


class TestInjectedFaults:
    """Acceptance: injected faults surface as HealthEvents in real runs."""

    def _config(self, **kwargs):
        defaults = dict(num_programs=3, tests_per_program=2, seed=5)
        defaults.update(kwargs)
        return mct_campaign("A", refined=True, **defaults)

    def test_repeated_crashes_raise_a_retry_spike(self):
        log = EventLog()
        ParallelRunner(
            RunnerConfig(
                fault_injector=crash_twice,
                max_retries=2,
                retry_backoff=0.01,
                health_config=HealthConfig(retry_threshold=2),
            ),
            events=log,
        ).run(self._config())
        spikes = [
            e
            for e in log.of_type(HealthEvent)
            if e.detector == "retry-spike"
        ]
        assert len(spikes) == 1
        assert "injected crash" in spikes[0].message

    def test_exhausted_shard_raises_a_critical_failure_event(self):
        log = EventLog()
        with pytest.raises(ShardExhaustedError):
            ParallelRunner(
                RunnerConfig(
                    fault_injector=always_crash_shard0,
                    max_retries=0,
                    retry_backoff=0.01,
                ),
                events=log,
            ).run(self._config(num_programs=2))
        failures = [
            e
            for e in log.of_type(HealthEvent)
            if e.detector == "shard-failure"
        ]
        assert len(failures) == 1
        assert failures[0].severity == "critical"

    def test_health_disabled_emits_no_health_events(self):
        log = EventLog()
        ParallelRunner(
            RunnerConfig(
                fault_injector=crash_twice,
                max_retries=2,
                retry_backoff=0.01,
                health=False,
            ),
            events=log,
        ).run(self._config())
        assert log.of_type(HealthEvent) == []
