"""The coverage ledger: recording, merging, convergence, persistence."""

import json

import pytest

from repro.monitor.ledger import (
    CoverageLedger,
    VERDICT_CONVERGING,
    VERDICT_EXPLORING,
    VERDICT_SATURATED,
    merge_ledger_docs,
    overall_verdict,
    validate_ledger_file,
    write_ledger_file,
)


def _record_n(ledger, classes, n, start=0, outcome="pass", program=0):
    for i in range(start, start + n):
        ledger.record(classes, outcome, program, i)


class TestRecording:
    def test_tallies_by_outcome(self):
        ledger = CoverageLedger("c")
        ledger.record({"M": ("k",)}, "pass", 0, 0)
        ledger.record({"M": ("k",)}, "inconclusive", 0, 1)
        ledger.record({"M": ("k",)}, "counterexample", 0, 2)
        tally = ledger.models["M"]["k"]
        assert (tally.conclusive, tally.inconclusive, tally.counterexamples) == (
            1,
            1,
            1,
        )
        assert tally.samples == 3
        assert ledger.samples == 3

    def test_first_seen_is_minimum_position(self):
        ledger = CoverageLedger("c")
        ledger.record({"M": ("k",)}, "pass", 5, 3)
        ledger.record({"M": ("k",)}, "pass", 2, 7)
        ledger.record({"M": ("k",)}, "pass", 2, 1)
        assert ledger.models["M"]["k"].first_seen == (2, 1)

    def test_multiple_models_and_keys_per_sample(self):
        ledger = CoverageLedger("c", spaces={"Mline": 128})
        ledger.record(
            {"Mpc": ("pair:0-1",), "Mline": ("set:3", "set:9")}, "pass", 0, 0
        )
        assert set(ledger.models) == {"Mpc", "Mline"}
        assert set(ledger.models["Mline"]) == {"set:3", "set:9"}
        # one sample, however many partition keys it touched
        assert ledger.samples == 1


class TestConvergence:
    def test_saturated_when_no_new_partitions_in_window(self):
        ledger = CoverageLedger("c")
        # partition discovered at the start, then 30 more samples of it
        _record_n(ledger, {"M": ("k",)}, 31)
        cov = ledger.convergence()["M"]
        assert cov.verdict == VERDICT_SATURATED
        assert cov.new_in_window == 0

    def test_exploring_when_discovery_is_ongoing(self):
        ledger = CoverageLedger("c")
        for i in range(20):
            ledger.record({"M": (f"k{i}",)}, "pass", 0, i)
        cov = ledger.convergence()["M"]
        assert cov.verdict == VERDICT_EXPLORING
        assert cov.partitions == 20

    def test_converging_on_a_trickle(self):
        ledger = CoverageLedger("c")
        _record_n(ledger, {"M": ("k0",)}, 199)
        # one new partition at the very end: 1 new / window 50 <= 0.1
        ledger.record({"M": ("k1",)}, "pass", 0, 199)
        cov = ledger.convergence()["M"]
        assert cov.verdict == VERDICT_CONVERGING

    def test_too_few_samples_is_always_exploring(self):
        ledger = CoverageLedger("c")
        _record_n(ledger, {"M": ("k",)}, 3)
        assert ledger.convergence()["M"].verdict == VERDICT_EXPLORING

    def test_discovery_curve_is_monotonic(self):
        ledger = CoverageLedger("c")
        for i in range(12):
            ledger.record({"M": (f"k{i // 3}",)}, "pass", 0, i)
        curve = ledger.convergence()["M"].discovery_curve
        samples = [s for s, _ in curve]
        discovered = [d for _, d in curve]
        assert samples == sorted(samples)
        assert discovered == sorted(discovered)
        assert discovered[-1] == 4

    def test_overall_verdict_is_worst(self):
        ledger = CoverageLedger("c")
        _record_n(ledger, {"A": ("k",)}, 31)
        for i in range(31):
            ledger.record({"B": (f"k{i}",)}, "pass", 1, i)
        per_model = ledger.convergence()
        assert per_model["A"].verdict == VERDICT_SATURATED
        assert per_model["B"].verdict == VERDICT_EXPLORING
        assert overall_verdict(per_model) == VERDICT_EXPLORING

    def test_coverage_fraction_uses_space(self):
        ledger = CoverageLedger("c", spaces={"M": 4})
        ledger.record({"M": ("set:0", "set:1")}, "pass", 0, 0)
        cov = ledger.convergence()["M"]
        assert cov.coverage_fraction == pytest.approx(0.5)
        assert "2/4" in cov.describe()


class TestMerge:
    def _make(self, programs):
        ledger = CoverageLedger("c", spaces={"M": 8})
        for program, keys in programs.items():
            for test, key in enumerate(keys):
                ledger.record({"M": (key,)}, "pass", program, test)
        return ledger

    def test_merge_is_commutative(self):
        a = self._make({0: ["x", "y"], 1: ["x"]})
        b = self._make({2: ["z"], 3: ["y", "y"]})
        assert a.merge(b).canonical() == b.merge(a).canonical()

    def test_merge_is_associative(self):
        a = self._make({0: ["x"]})
        b = self._make({1: ["y"]})
        c = self._make({2: ["x", "z"]})
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.canonical() == right.canonical()

    def test_merge_adds_tallies_and_takes_min_first_seen(self):
        a = CoverageLedger("c")
        b = CoverageLedger("c")
        a.record({"M": ("k",)}, "pass", 3, 0)
        b.record({"M": ("k",)}, "counterexample", 1, 5)
        merged = a.merge(b)
        tally = merged.models["M"]["k"]
        assert tally.samples == 2
        assert tally.first_seen == (1, 5)
        assert merged.samples == 2

    def test_merge_does_not_mutate_inputs(self):
        a = self._make({0: ["x"]})
        b = self._make({1: ["y"]})
        before_a, before_b = a.canonical(), b.canonical()
        a.merge(b)
        assert (a.canonical(), b.canonical()) == (before_a, before_b)

    def test_merge_ledger_docs_round_trip(self):
        a = self._make({0: ["x"]})
        b = self._make({1: ["y"]})
        doc = merge_ledger_docs([a.to_json(), None, b.to_json()])
        assert doc == a.merge(b).to_json()
        assert merge_ledger_docs([None, {}]) is None


class TestSerialization:
    def test_json_round_trip_is_lossless(self):
        ledger = CoverageLedger("camp", spaces={"M": 16, "N": None})
        ledger.record({"M": ("set:1",), "N": ("p",)}, "inconclusive", 4, 2)
        ledger.record({"M": ("set:2",)}, "counterexample", 0, 0)
        rebuilt = CoverageLedger.from_json(ledger.to_json())
        assert rebuilt.canonical() == ledger.canonical()
        assert rebuilt.spaces == {"M": 16, "N": None}

    def test_canonical_is_sorted_and_stable(self):
        ledger = CoverageLedger("c")
        ledger.record({"B": ("k",)}, "pass", 1, 0)
        ledger.record({"A": ("k",)}, "pass", 0, 0)
        text = ledger.canonical()
        assert json.loads(text) == ledger.to_json()
        assert text.index('"A"') < text.index('"B"')


class TestLedgerFile:
    def test_write_then_validate(self, tmp_path):
        ledger = CoverageLedger("camp", spaces={"M": 4})
        ledger.record({"M": ("set:0",)}, "pass", 0, 0)
        path = tmp_path / "ledger.json"
        write_ledger_file(str(path), {"camp": ledger.to_json()})
        doc = validate_ledger_file(str(path))
        assert "camp" in doc["campaigns"]
        assert doc["meta"]  # stamped

    def test_empty_ledgers_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.json"
        doc = write_ledger_file(str(path), {"a": None, "b": {}})
        assert doc["campaigns"] == {}
        validate_ledger_file(str(path))

    def test_validator_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1, "campaigns": "nope"}))
        with pytest.raises(ValueError):
            validate_ledger_file(str(path))

    def test_module_cli(self, tmp_path, capsys):
        from repro.monitor import ledger as mod

        good = tmp_path / "good.json"
        write_ledger_file(str(good), {})
        assert mod.main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert mod.main([str(bad)]) == 1
        assert mod.main([]) == 2
