"""Ledger plumbing end-to-end: workers, checkpoints, database, results."""

import json

import pytest

from repro.errors import PipelineError
from repro.exps import mct_campaign, mpart_campaign
from repro.pipeline import ExperimentDatabase, ScamV
from repro.pipeline.database import SCHEMA_VERSION
from repro.runner import ParallelRunner, RunnerConfig


def _config(**kwargs):
    defaults = dict(num_programs=4, tests_per_program=2, seed=3)
    defaults.update(kwargs)
    return mct_campaign("A", refined=True, **defaults)


def _canonical(ledger_doc):
    return json.dumps(ledger_doc, sort_keys=True)


class TestWorkerInvariance:
    def test_merged_ledger_is_byte_identical_across_worker_counts(self):
        cfg = _config()
        one = ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        four = ParallelRunner(
            RunnerConfig(workers=4, start_method="fork")
        ).run(cfg)
        assert one.ledger is not None
        assert _canonical(one.ledger) == _canonical(four.ledger)

    def test_sequential_driver_matches_parallel_runner(self):
        cfg = _config()
        sequential = ScamV(cfg).run()
        parallel = ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        assert _canonical(sequential.ledger) == _canonical(parallel.ledger)

    def test_refined_mpart_ledger_includes_mline_classes(self):
        cfg = mpart_campaign(
            refined=True, num_programs=4, tests_per_program=4, seed=3
        )
        result = ScamV(cfg).run()
        assert result.ledger is not None
        models = set(result.ledger["models"])
        assert "Mpc" in models and "Mline" in models


class TestCheckpointResume:
    def test_resumed_run_reproduces_the_ledger(self, tmp_path):
        cfg = _config()
        path = str(tmp_path / "cp.jsonl")
        full = ParallelRunner(RunnerConfig(checkpoint_path=path)).run(cfg)
        resumed = ParallelRunner(
            RunnerConfig(checkpoint_path=path, resume=True)
        ).run(cfg)
        assert _canonical(full.ledger) == _canonical(resumed.ledger)

    def test_old_journals_without_ledger_keys_still_load(self, tmp_path):
        cfg = _config(num_programs=2)
        path = str(tmp_path / "cp.jsonl")
        ParallelRunner(RunnerConfig(checkpoint_path=path)).run(cfg)
        # strip the additive "ledger" key, as a pre-monitor build wrote it
        lines = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                entry = json.loads(line)
                entry.get("shard", {}).pop("ledger", None)
                lines.append(json.dumps(entry))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        result = ParallelRunner(
            RunnerConfig(checkpoint_path=path, resume=True)
        ).run(cfg)
        # cached shards carry no deltas; the run completes without a ledger
        assert result.ledger is None
        assert result.stats.experiments > 0


class TestMonitorToggle:
    def test_monitor_off_ships_no_ledger(self):
        cfg = _config(num_programs=2)
        cfg.monitor = False
        result = ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        assert result.ledger is None
        assert result.coverage() is None

    def test_result_coverage_exposes_convergence(self):
        result = ScamV(_config()).run()
        coverage = result.coverage()
        assert coverage is not None
        assert "Mpc" in coverage
        assert coverage["Mpc"].verdict in (
            "saturated",
            "converging",
            "exploring",
        )


class TestDatabaseCoverage:
    def test_scheduler_records_coverage_rows(self):
        configs = [_config(num_programs=2), _config(num_programs=2, seed=8)]
        with ExperimentDatabase() as db:
            results = ParallelRunner(RunnerConfig(workers=1)).run_many(
                configs, database=db
            )
            for campaign_id, result in enumerate(results, start=1):
                rows = db.coverage_summary(campaign_id)
                assert [row[0] for row in rows] == sorted(
                    result.ledger["models"]
                )
                by_model = {row[0]: row for row in rows}
                mpc = by_model["Mpc"]
                coverage = result.coverage()["Mpc"]
                assert mpc[1] == coverage.partitions
                assert mpc[3] == coverage.samples
                assert mpc[7] == coverage.verdict

    def test_driver_records_coverage_rows(self):
        with ExperimentDatabase() as db:
            ScamV(_config(num_programs=2), database=db).run()
            rows = db.coverage_summary(1)
            assert rows
            assert all(row[7] for row in rows)

    def test_newer_schema_versions_are_refused(self, tmp_path):
        path = str(tmp_path / "future.sqlite")
        with ExperimentDatabase(path) as db:
            db._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
            db._conn.commit()
        with pytest.raises(PipelineError, match="schema version"):
            ExperimentDatabase(path)

    def test_v2_files_upgrade_in_place(self, tmp_path):
        path = str(tmp_path / "old.sqlite")
        with ExperimentDatabase(path) as db:
            db._conn.execute("DROP TABLE coverage")
            db._conn.execute("PRAGMA user_version = 2")
            db._conn.commit()
        with ExperimentDatabase(path) as db:
            assert db.schema_version == SCHEMA_VERSION
            campaign = db.add_campaign("c")
            db.add_coverage_summary(
                campaign, "Mpc", 3, None, 10, 8, 2, 1, "exploring"
            )
            assert db.coverage_summary(campaign) == [
                ("Mpc", 3, None, 10, 8, 2, 1, "exploring")
            ]
