"""The terminal monitor: journal/event ingestion and rendering."""

import io
import json

from repro.exps import mct_campaign
from repro.monitor.live import (
    CampaignView,
    apply_events,
    load_journal_views,
    load_views,
    monitor,
    render,
    render_campaign,
)
from repro.runner import (
    EventLog,
    ParallelRunner,
    RunnerConfig,
    event_to_json,
    jsonl_sink,
    tee,
)


def _config(**kwargs):
    defaults = dict(num_programs=4, tests_per_program=2, seed=3)
    defaults.update(kwargs)
    return mct_campaign("A", refined=True, **defaults)


def _run_campaign(tmp_path, **kwargs):
    """A real mini campaign leaving behind a journal and an events file."""
    journal = str(tmp_path / "cp.jsonl")
    events = str(tmp_path / "ev.jsonl")
    cfg = _config(**kwargs)
    log = EventLog()
    result = ParallelRunner(
        RunnerConfig(checkpoint_path=journal),
        events=tee(log, jsonl_sink(events)),
    ).run(cfg)
    return cfg, result, journal, events


class TestJournalIngestion:
    def test_views_reflect_completed_shards_and_ledger(self, tmp_path):
        cfg, result, journal, _ = _run_campaign(tmp_path)
        views = load_journal_views(journal)
        assert set(views) == {cfg.name}
        view = views[cfg.name]
        assert len(view.done) == cfg.num_programs
        assert view.experiments == result.stats.experiments
        assert view.counterexamples == result.stats.counterexamples
        # per-shard ledger deltas merged back to the campaign ledger
        assert view.ledger is not None
        assert (
            json.dumps(view.ledger, sort_keys=True)
            == json.dumps(result.ledger, sort_keys=True)
        )

    def test_missing_and_garbage_journals_yield_no_views(self, tmp_path):
        assert load_journal_views(str(tmp_path / "nope.jsonl")) == {}
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"v": 1}\nnot json\n{"v": 2, "key": 3}\n')
        assert load_journal_views(str(path)) == {}

    def test_partial_trailing_line_is_skipped(self, tmp_path):
        cfg, _, journal, _ = _run_campaign(tmp_path)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"v": 2, "key": "' + cfg.name + "|trunc")
        views = load_journal_views(journal)
        assert len(views[cfg.name].done) == 4


class TestEventOverlay:
    def test_events_supply_totals_health_and_finish(self, tmp_path):
        cfg, _, journal, events = _run_campaign(tmp_path)
        views = load_views(journal, events)
        view = views[cfg.name]
        assert view.total_shards == cfg.num_programs
        assert view.finished
        assert view.running == set()
        assert view.eta_seconds() == 0.0

    def test_running_and_failed_shards_from_stream(self):
        events = [
            {"event": "CampaignScheduled", "campaign": "c", "shards": 4},
            {"event": "ShardStarted", "campaign": "c", "shard_id": 0},
            {"event": "ShardStarted", "campaign": "c", "shard_id": 1},
            {
                "event": "ShardFailed",
                "campaign": "c",
                "shard_id": 1,
                "attempts": 3,
                "reason": "boom",
            },
            {
                "event": "HealthEvent",
                "campaign": "c",
                "detector": "shard-failure",
                "severity": "critical",
                "message": "boom",
                "shard_id": 1,
            },
        ]
        views = apply_events({}, events)
        view = views["c"]
        assert view.running == {0}
        assert view.failed == {1}
        assert [d["detector"] for d in view.health] == ["shard-failure"]

    def test_event_to_json_round_trips_through_overlay(self):
        from repro.runner import ShardStarted

        doc = event_to_json(
            ShardStarted(campaign="c", shard_id=2), ts=123.0
        )
        view = apply_events({}, [doc])["c"]
        assert view.running == {2}
        assert view.first_ts == 123.0


class TestRendering:
    def test_monitor_once_renders_shards_coverage_and_verdict(
        self, tmp_path, capsys
    ):
        cfg, result, journal, events = _run_campaign(tmp_path)
        stream = io.StringIO()
        assert monitor(journal, events_path=events, stream=stream) == 0
        text = stream.getvalue()
        assert "repro-scamv monitor" in text
        assert f"== {cfg.name} (finished: 4/4 shards" in text
        # every shard completed; counterexample shards render as C
        grid_line = next(
            l for l in text.splitlines() if l.strip(" #C") == ""
            and l.strip()
        )
        assert len(grid_line.strip()) == cfg.num_programs
        assert "Mpc" in text
        assert "samples ->" in text
        assert "convergence:" in text
        assert any(
            verdict in text
            for verdict in ("saturated", "converging", "exploring")
        )

    def test_monitor_once_without_journal_exits_1(self, tmp_path, capsys):
        stream = io.StringIO()
        code = monitor(str(tmp_path / "missing.jsonl"), stream=stream)
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_follow_mode_stops_when_campaigns_finish(self, tmp_path):
        _, _, journal, events = _run_campaign(tmp_path)
        stream = io.StringIO()
        code = monitor(
            journal,
            events_path=events,
            follow=True,
            interval=0.01,
            stream=stream,
            max_refreshes=50,
        )
        assert code == 0
        # finished on the first refresh, no ANSI codes on a plain stream
        assert "\x1b[" not in stream.getvalue()

    def test_render_without_ledger_mentions_monitor_off(self):
        view = CampaignView(name="c", index=0)
        view.done[0] = (5, 0, 0, 1.0, False)
        text = "\n".join(render_campaign(view))
        assert "no ledger in journal" in text

    def test_render_empty_views(self):
        text = render({}, clock=lambda fmt: "12:00:00")
        assert "(no campaigns in journal yet)" in text

    def test_shard_glyphs(self):
        view = CampaignView(name="c", index=0, total_shards=5)
        view.done[0] = (5, 0, 0, 1.0, False)
        view.done[1] = (5, 2, 0, 1.0, False)
        view.running.add(2)
        view.failed.add(3)
        text = "\n".join(render_campaign(view))
        assert "#CRX." in text

    def test_eta_uses_median_and_parallelism(self):
        view = CampaignView(name="c", index=0, total_shards=10)
        for shard in range(4):
            view.done[shard] = (1, 0, 0, 2.0, False)
        view.running = {4, 5}
        # 6 remaining x 2.0s median / 2 running
        assert view.eta_seconds() == 6.0
        # cached shards never contribute to the median
        view.done[4] = (1, 0, 0, 99.0, True)
        view.running = {5}
        assert view.median_duration() == 2.0
