"""The HTML dashboard: self-containment, sections, per-campaign paths."""

import re

from repro.exps import mct_campaign
from repro.monitor.dashboard import (
    build_dashboard_html,
    dashboard_path_for,
    write_dashboard,
)
from repro.monitor.ledger import CoverageLedger
from repro.pipeline import ScamV
from repro.runner import HealthEvent


def _ledger(space=8, partitions=5, samples_per=4):
    ledger = CoverageLedger("camp", spaces={"Mline": space, "Mpc": None})
    position = 0
    for index in range(partitions):
        for _ in range(samples_per):
            ledger.record(
                {"Mline": (f"set:{index}",), "Mpc": ("pair:0-1",)},
                "pass",
                0,
                position,
            )
            position += 1
    return ledger


def _assert_self_contained(text):
    """No external fetches of any kind: scripts, stylesheets, images."""
    assert "<script" not in text
    assert 'src="' not in text
    assert "http://" not in text and "https://" not in text
    assert '<link rel="stylesheet"' not in text
    assert "<style>" in text


class TestDashboardPath:
    def test_slugs_campaign_names(self):
        path = dashboard_path_for("out/dash.html", "Mpart / Mpart-ref")
        assert path == "out/dash-Mpart-Mpart-ref.html"

    def test_degenerate_name_still_yields_a_path(self):
        assert dashboard_path_for("d.html", "///") == "d-campaign.html"

    def test_extensionless_base(self):
        assert dashboard_path_for("dash", "A B") == "dash-A-B.html"


class TestBuildHtml:
    def test_coverage_section_with_heatmap_curve_and_verdict(self):
        text = build_dashboard_html("camp", ledger=_ledger().to_json())
        _assert_self_contained(text)
        assert "Coverage &amp; convergence" in text
        assert "campaign verdict:" in text
        # heatmap: one cell per Mline partition, covered and uncovered
        assert text.count('title="Mline partition') == 8
        assert "hsl(140" in text  # covered cells
        assert "#e7ecf0" in text  # uncovered cells
        # discovery curve SVG, inline
        assert "<svg" in text and "polyline" in text
        # Mpc is unbounded: no heatmap, partitions listed instead
        assert "partitions (space unbounded)" in text
        assert re.search(r"62\.5% \(5/8 classes\)", text)

    def test_unbounded_only_ledger_has_no_heatmap(self):
        ledger = CoverageLedger("camp")
        ledger.record({"Mpc": ("pair:0-1",)}, "pass", 0, 0)
        text = build_dashboard_html("camp", ledger=ledger.to_json())
        assert 'class="heatmap"' not in text

    def test_health_section_and_severity_card(self):
        events = [
            HealthEvent(
                detector="retry-spike",
                severity="warning",
                message="3 retries",
                campaign="camp",
            ),
            (
                12.5,  # HealthMonitor.log entries are (ts, event) tuples
                HealthEvent(
                    detector="shard-failure",
                    severity="critical",
                    message="boom <&>",
                    campaign="camp",
                    shard_id=7,
                ),
            ),
        ]
        text = build_dashboard_html("camp", health=events)
        _assert_self_contained(text)
        assert "Health timeline" in text
        assert "retry-spike" in text and "shard-failure" in text
        assert 'class="sev-critical"' in text
        assert "boom &lt;&amp;&gt;" in text  # escaped, not raw
        assert ">2<" in text  # health events card counts both

    def test_campaign_name_is_escaped(self):
        text = build_dashboard_html("<camp> & co")
        assert "<camp>" not in text
        assert "&lt;camp&gt; &amp; co" in text

    def test_empty_inputs_still_produce_a_document(self):
        text = build_dashboard_html("camp")
        _assert_self_contained(text)
        assert text.startswith("<!DOCTYPE html>")
        assert "Campaign dashboard" in text

    def test_meta_stamp_rendered(self):
        text = build_dashboard_html(
            "camp", meta={"git_sha": "abc123", "python": "3.11"}
        )
        assert "git_sha: abc123" in text


class TestWriteDashboard:
    def test_end_to_end_from_campaign_result(self, tmp_path):
        cfg = mct_campaign(
            "A", refined=True, num_programs=3, tests_per_program=2, seed=3
        )
        result = ScamV(cfg).run()
        path = str(tmp_path / "dash.html")
        assert write_dashboard(path, cfg.name, result) == path
        text = (tmp_path / "dash.html").read_text()
        _assert_self_contained(text)
        assert str(result.stats.experiments) in text
        assert "Coverage &amp; convergence" in text
        assert "timestamp:" in text  # build stamp embedded

    def test_campaign_config_dashboard_writes_via_driver(self, tmp_path):
        path = str(tmp_path / "driver.html")
        cfg = mct_campaign(
            "A", refined=True, num_programs=2, tests_per_program=2, seed=3
        )
        cfg.dashboard = path
        ScamV(cfg).run()
        text = (tmp_path / "driver.html").read_text()
        _assert_self_contained(text)
        assert cfg.name in text or "Campaign dashboard" in text

    def test_campaign_config_dashboard_writes_via_scheduler(self, tmp_path):
        from repro.runner import ParallelRunner, RunnerConfig

        path = str(tmp_path / "sched.html")
        cfg = mct_campaign(
            "A", refined=True, num_programs=2, tests_per_program=2, seed=3
        )
        cfg.dashboard = path
        ParallelRunner(RunnerConfig(workers=1)).run(cfg)
        text = (tmp_path / "sched.html").read_text()
        _assert_self_contained(text)
        assert "Coverage &amp; convergence" in text
