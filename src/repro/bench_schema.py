"""JSON schema for benchmark reports (``BENCH_*.json``), with a validator.

Every benchmark emitter (``benchmarks/bench_expr_core.py``,
``benchmarks/bench_solver.py``) writes the same envelope: which bench ran,
at what scale, one entry per scenario, and optionally the provenance stamp
plus deterministic counters the regression watch gates on.  ``BENCH_SCHEMA``
is a draft-07 subset document (same dialect as
:data:`repro.telemetry.schema.METRICS_SCHEMA`) and reuses that module's
pure-Python validator, so CI validates artifacts with no extra dependency::

    PYTHONPATH=src python -m repro.bench_schema BENCH_expr_core.json BENCH_solver.json
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

from repro.telemetry.schema import SchemaError, validate

__all__ = ["BENCH_SCHEMA", "validate_bench", "validate_bench_file"]

#: Scenario rows carry bench-specific scalar fields (seconds, speedups,
#: counts); the envelope only pins each row to an object — the scalar rule
#: is enforced in :func:`validate_bench`.
_SCENARIO = {
    "type": "object",
    "additionalProperties": {"type": "object"},
}

BENCH_SCHEMA: Dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro benchmark report",
    "type": "object",
    "required": ["bench", "scenarios"],
    "properties": {
        "bench": {"type": "string"},
        "smoke": {"type": "boolean"},
        "meta": {
            "type": "object",
            "required": ["git_sha", "python", "timestamp"],
            "properties": {
                "git_sha": {"type": ["string", "null"]},
                "python": {"type": "string"},
                "platform": {"type": "string"},
                "timestamp": {"type": "string"},
            },
        },
        "params": {
            "type": "object",
            "additionalProperties": {
                "type": ["number", "integer", "string", "boolean"]
            },
        },
        "scenarios": _SCENARIO,
        "cache_stats": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["hits", "misses"],
                "properties": {
                    "hits": {"type": "integer", "minimum": 0},
                    "misses": {"type": "integer", "minimum": 0},
                },
            },
        },
        #: Deterministic counters the regression watch compares exactly.
        "counters": {
            "type": "object",
            "additionalProperties": {"type": "integer"},
        },
        #: Merged solver query-profile document
        #: (:mod:`repro.telemetry.solver`), when the bench profiled.
        "solver": {
            "type": "object",
            "required": ["version", "classes", "phases", "top"],
            "properties": {
                "version": {"type": "integer", "minimum": 1},
                "classes": {"type": "object"},
                "phases": {"type": "object"},
                "top": {"type": "array", "items": {"type": "object"}},
            },
        },
    },
}


def validate_bench(doc: object) -> None:
    """Raises :class:`~repro.telemetry.schema.SchemaError` on mismatch."""
    validate(doc, BENCH_SCHEMA)
    # Scenario rows are heterogeneous across benches; the envelope schema
    # leaves them scalar-valued, which `_SCENARIO` enforces — but rows are
    # objects, so check the one level the subset validator cannot express.
    if isinstance(doc, dict):
        for name, row in (doc.get("scenarios") or {}).items():
            if not isinstance(row, dict):
                raise SchemaError(
                    f"$.scenarios.{name}: expected object, "
                    f"got {type(row).__name__}"
                )
            for key, value in row.items():
                if isinstance(value, (dict, list)):
                    raise SchemaError(
                        f"$.scenarios.{name}.{key}: scenario fields must "
                        f"be scalars, got {type(value).__name__}"
                    )


def validate_bench_file(path: str) -> Dict:
    """Load and validate one benchmark report; returns the document."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    validate_bench(doc)
    return doc


def main(argv: List[str]) -> int:
    if not argv:
        print(
            "usage: python -m repro.bench_schema BENCH_FILE.json [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        try:
            doc = validate_bench_file(path)
        except (OSError, json.JSONDecodeError, SchemaError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            failed = True
            continue
        print(
            f"{path}: valid ({doc.get('bench')}, "
            f"{len(doc.get('scenarios', {}))} scenario(s))"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
