"""Differential verdicts: on *which* configurations is the model sound?

One sweep runs the same experiment (model, template, budgets, seed) on
every grid point; the verdict layer compares the outcomes:

* :func:`config_verdict` distils one grid point's campaign result into a
  :class:`ConfigVerdict` — sound/unsound plus, for unsound points, the
  *first-divergence attribution*: the root-cause signature
  (:func:`~repro.triage.signature.compute_signature`) of the first
  counterexample, replayed on that point's exact hardware configuration.
* :func:`sweep_verdict` folds the per-config verdicts into the
  differential summary the paper-style claim reads off directly:
  "Mpart: sound on 5/6 configs, counterexample on plru+stride".

Verdicts are derived data — pure functions of the (deterministic)
campaign results — so they inherit the byte-stability of the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.matrix.expand import GridPoint
from repro.pipeline.config import CampaignConfig
from repro.pipeline.result import CampaignResult


@dataclass(frozen=True)
class ConfigVerdict:
    """The soundness verdict of one model on one grid point."""

    config_name: str
    axes: Dict[str, str]
    digest: str
    sound: bool
    counterexamples: int
    inconclusive: int
    experiments: int
    #: JSON form of the first counterexample's root-cause signature
    #: (``None`` for sound configs), plus its cluster key and describe().
    first_divergence: Optional[Dict] = None

    def to_json(self) -> Dict:
        return {
            "config": self.config_name,
            "axes": dict(self.axes),
            "digest": self.digest,
            "sound": self.sound,
            "counterexamples": self.counterexamples,
            "inconclusive": self.inconclusive,
            "experiments": self.experiments,
            "first_divergence": self.first_divergence,
        }


@dataclass(frozen=True)
class SweepVerdict:
    """The differential verdict of one model across the whole grid."""

    model: str
    experiment: str
    configs: List[ConfigVerdict] = field(default_factory=list)

    @property
    def sound_configs(self) -> List[str]:
        return [v.config_name for v in self.configs if v.sound]

    @property
    def unsound_configs(self) -> List[str]:
        return [v.config_name for v in self.configs if not v.sound]

    @property
    def differential(self) -> bool:
        """Whether the verdict differs between grid points."""
        return bool(self.sound_configs) and bool(self.unsound_configs)

    def describe(self) -> str:
        """E.g. ``Mpart: sound on 5/6 configs, counterexample on plru+stride``."""
        total = len(self.configs)
        sound = len(self.sound_configs)
        text = f"{self.model}: sound on {sound}/{total} configs"
        if self.unsound_configs:
            text += ", counterexample on " + ", ".join(self.unsound_configs)
        return text

    def to_json(self) -> Dict:
        return {
            "model": self.model,
            "experiment": self.experiment,
            "summary": self.describe(),
            "differential": self.differential,
            "sound_configs": self.sound_configs,
            "unsound_configs": self.unsound_configs,
            "configs": [v.to_json() for v in self.configs],
        }


def config_verdict(
    point: GridPoint,
    config: CampaignConfig,
    result: CampaignResult,
    attribute: bool = True,
) -> ConfigVerdict:
    """Distil one grid point's result; attribute the first counterexample.

    Attribution replays the first counterexample's state pair on this grid
    point's instrumented platform (``attribute=False`` skips the replay
    for callers that only need counts).
    """
    counterexamples = result.counterexamples()
    first_divergence: Optional[Dict] = None
    if counterexamples and attribute:
        from repro.triage.signature import compute_signature

        first = counterexamples[0]
        signature = compute_signature(
            first.test.program,
            first.test.state1,
            first.test.state2,
            first.test.train,
            config.platform,
        )
        first_divergence = signature.to_json()
        first_divergence["key"] = signature.key()
        first_divergence["description"] = signature.describe()
        first_divergence["program"] = first.program_name
        first_divergence["program_index"] = first.program_index
    stats = result.stats
    return ConfigVerdict(
        config_name=point.name,
        axes=point.axes_doc(),
        digest=point.digest,
        sound=not counterexamples,
        counterexamples=stats.counterexamples,
        inconclusive=stats.inconclusive,
        experiments=stats.experiments,
        first_divergence=first_divergence,
    )


def sweep_verdict(
    model: str, experiment: str, verdicts: List[ConfigVerdict]
) -> SweepVerdict:
    """Fold per-config verdicts into the differential summary."""
    return SweepVerdict(
        model=model, experiment=experiment, configs=list(verdicts)
    )
