"""The sweep runner: one experiment across every grid point.

Orchestration, never semantics: each grid point runs the *same* campaign
the equivalent one-shot ``repro-scamv validate --hw-profile <point>``
invocation would — built by the same preset factory, executed by the same
:class:`~repro.runner.ParallelRunner` under the sweep's single worker
budget, serialized by the same canonical document writer.  Grid points run
sequentially (they share the worker pool budget; shards within a point run
in parallel), each with ``[config i/n <name>]``-prefixed progress.

Checkpointing: every point journals into the *same* ``checkpoint.jsonl``.
Entries disambiguate by :func:`~repro.runner.checkpoint.campaign_key`,
which embeds the hardware digest — so a resumed sweep replays exactly the
grid points (and shards) it finished, and a journal recorded under
different hardware is skipped, never merged.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO, Tuple

from repro.errors import MatrixError
from repro.exps.registry import build_experiment
from repro.hw.profiles import resolve_profile
from repro.matrix.expand import GridPoint, expand_grid
from repro.matrix.verdict import (
    ConfigVerdict,
    SweepVerdict,
    config_verdict,
    sweep_verdict,
)
from repro.pipeline.config import CampaignConfig
from repro.pipeline.result import CampaignResult
from repro.runner import (
    EventSink,
    ParallelRunner,
    RunnerConfig,
    progress_printer,
)
from repro.telemetry import trace as ttrace
from repro.telemetry.trace import span as tspan


@dataclass(frozen=True)
class SweepConfig:
    """What to sweep: the experiment, the grid, and the budgets."""

    experiment: str
    #: Parsed axis spec (:func:`~repro.matrix.axes.parse_axis_spec`).
    axes: Dict[str, Tuple[object, ...]] = field(default_factory=dict)
    refined: bool = False
    #: Profile supplying every knob the axes do not sweep.
    base_profile: str = "cortex-a53"
    programs: int = 10
    tests: int = 16
    seed: int = 0
    monitor: bool = True
    triage: bool = False
    #: Scenario label stamped into per-point result documents; defaults to
    #: the experiment name (what a single-config run of the same scenario
    #: would carry).
    scenario: str = ""

    @property
    def scenario_name(self) -> str:
        return self.scenario or self.experiment


@dataclass
class SweepPointResult:
    """One grid point's campaign outcome within a sweep."""

    index: int
    point: GridPoint
    config: CampaignConfig
    result: CampaignResult
    verdict: ConfigVerdict
    #: Canonical ``result.json`` payload — byte-identical to the
    #: equivalent single-config run's document.
    document: bytes
    #: Wall-clock seconds this grid point took (orchestration-side; never
    #: part of the deterministic document).
    duration: float = 0.0


@dataclass
class SweepResult:
    """Everything one differential sweep produced."""

    sweep: SweepConfig
    points: List[SweepPointResult]
    verdict: SweepVerdict

    def report(self) -> Dict:
        """The differential report document (see :mod:`repro.matrix.report`)."""
        from repro.matrix.report import sweep_report_doc

        return sweep_report_doc(self)


def grid_for(sweep: SweepConfig) -> List[GridPoint]:
    """The sweep's deduplicated grid (base profile resolved)."""
    return expand_grid(
        sweep.axes, base=resolve_profile(sweep.base_profile)
    )


def build_point_campaign(
    sweep: SweepConfig, point: GridPoint
) -> CampaignConfig:
    """The campaign one grid point runs — the single-config equivalent."""
    config = build_experiment(
        sweep.experiment,
        refined=sweep.refined,
        num_programs=sweep.programs,
        tests_per_program=sweep.tests,
        seed=sweep.seed,
        core=point.core,
    )
    config.monitor = sweep.monitor
    config.triage = sweep.triage
    return config


def run_sweep(
    sweep: SweepConfig,
    runner_config: Optional[RunnerConfig] = None,
    out: Optional[TextIO] = None,
    events_factory: Optional[
        Callable[[int, int, GridPoint], EventSink]
    ] = None,
    attribute: bool = True,
) -> SweepResult:
    """Run the experiment on every grid point; compute differential verdicts.

    ``runner_config`` carries the worker budget, shard timeout, and the
    (shared) checkpoint journal; ``events_factory(index, total, point)``
    overrides the default prefixed progress printer per grid point.
    """
    runner_config = runner_config or RunnerConfig()
    out = out if out is not None else sys.stderr
    points = grid_for(sweep)
    if not points:
        raise MatrixError("axis spec expanded to an empty grid")
    from repro.service.orchestrator import campaign_document, document_bytes

    total = len(points)
    results: List[SweepPointResult] = []
    verdicts: List[ConfigVerdict] = []
    model_name = ""
    for index, point in enumerate(points, 1):
        config = build_point_campaign(sweep, point)
        model_name = config.model.name
        if events_factory is not None:
            events = events_factory(index, total, point)
        else:
            events = progress_printer(
                out, prefix=f"[config {index}/{total} {point.name}] "
            )
        runner = ParallelRunner(runner_config, events=events)
        started = time.monotonic()
        with tspan(
            "matrix.point",
            point=point.name,
            index=index,
            total=total,
            experiment=sweep.experiment,
        ) as span:
            result = runner.run(config)
            verdict = config_verdict(
                point, config, result, attribute=attribute
            )
            span.set_attr("sound", verdict.sound)
        duration = time.monotonic() - started
        if ttrace.enabled():
            # Keep the closed matrix.point span with its own point: the
            # next point's first shard_begin flushes the trace buffer, so
            # anything left here would be silently dropped.
            result.spans.extend(ttrace.drain())
        document = document_bytes(
            campaign_document(sweep.scenario_name, config, result)
        )
        verdicts.append(verdict)
        results.append(
            SweepPointResult(
                index=index,
                point=point,
                config=config,
                result=result,
                verdict=verdict,
                document=document,
                duration=duration,
            )
        )
    return SweepResult(
        sweep=sweep,
        points=results,
        verdict=sweep_verdict(model_name, sweep.experiment, verdicts),
    )
