"""Grid expansion: an axis spec × a base profile -> named ``CoreConfig``s.

Expansion is deterministic: axes sort by name, values keep their spec
order, and the cross product enumerates with the *last* sorted axis
fastest (``itertools.product`` order).  Each grid point gets

* a stable name — the axis-value slugs joined with ``+`` in sorted-axis
  order (``plru+stride+w8``), matching how verdicts cite configurations;
* the hardware digest of its resulting :class:`~repro.hw.core.CoreConfig`
  (:func:`~repro.hw.profiles.config_digest`), the same fingerprint the
  checkpoint journal keys shards under.

Two value combinations that produce structurally identical cores (e.g.
``spec_window=0`` combined with ``forwarding=on,off``) deduplicate to the
first occurrence, so no grid point ever runs twice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import MatrixError
from repro.hw.core import CoreConfig
from repro.hw.profiles import config_digest, resolve_profile


@dataclass(frozen=True)
class GridPoint:
    """One configuration of the sweep grid."""

    #: Slug-joined stable name, e.g. ``plru+stride+w8``.
    name: str
    #: ``(axis, rendered value)`` pairs in sorted-axis order.
    axes: Tuple[Tuple[str, str], ...]
    #: The fully-applied core configuration.
    core: CoreConfig
    #: :func:`~repro.hw.profiles.config_digest` of ``core``.
    digest: str

    def axes_doc(self) -> Dict[str, str]:
        """The axis assignment as a plain JSON-able mapping."""
        return dict(self.axes)


def expand_grid(
    spec: Dict[str, Tuple[object, ...]],
    base: CoreConfig = None,
    base_profile: str = "cortex-a53",
) -> List[GridPoint]:
    """Expand a parsed axis spec into a deduplicated, named grid.

    ``base`` (or the resolved ``base_profile``) supplies every knob the
    spec does not sweep.  Axis application itself revalidates through the
    hardware config constructors, so an invalid combination fails here
    with a :class:`~repro.errors.HardwareError` rather than mid-campaign.
    """
    if not spec:
        raise MatrixError("cannot expand an empty axis spec")
    from repro.matrix.axes import AXES

    unknown = sorted(set(spec) - set(AXES))
    if unknown:
        raise MatrixError(
            f"unknown axis(es) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(AXES))})"
        )
    if base is None:
        base = resolve_profile(base_profile)
    names = sorted(spec)
    axes = [AXES[name] for name in names]
    points: List[GridPoint] = []
    seen: Dict[str, str] = {}
    for combo in itertools.product(*(spec[name] for name in names)):
        core = base
        for axis, value in zip(axes, combo):
            core = axis.apply(core, value)
        digest = config_digest(core)
        point_name = "+".join(
            axis.slug(value) for axis, value in zip(axes, combo)
        )
        if digest in seen:
            # Structurally identical core: the earlier point covers it.
            continue
        seen[digest] = point_name
        points.append(
            GridPoint(
                name=point_name,
                axes=tuple(
                    (axis.name, axis.slug(value))
                    for axis, value in zip(axes, combo)
                ),
                core=core,
                digest=digest,
            )
        )
    return points
