"""The differential sweep report: document, schema validation, rendering.

One sweep produces one *report document*: the grid, the per-config
verdicts (with first-divergence attribution), and the differential
summary.  The document is canonical JSON — a pure function of the sweep's
deterministic results — and carries a ``report_version`` plus the sha256
of each grid point's ``result.json`` payload, so CI can assert both the
schema and the byte-identity contract.

``python -m repro.matrix.report FILE`` validates a report file against the
schema and prints its summary (exit 1 on violation) — the CI smoke job's
check.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List

from repro.errors import MatrixError

#: Report document version.
REPORT_VERSION = 1

_TOP_KEYS: Dict[str, type] = {
    "report_version": int,
    "scenario": str,
    "experiment": str,
    "model": str,
    "refined": bool,
    "base_profile": str,
    "seed": int,
    "programs": int,
    "tests": int,
    "axes": dict,
    "grid_size": int,
    "configs": list,
    "verdict": dict,
}

_CONFIG_KEYS: Dict[str, type] = {
    "index": int,
    "config": str,
    "axes": dict,
    "digest": str,
    "sound": bool,
    "counterexamples": int,
    "inconclusive": int,
    "experiments": int,
    "result_sha256": str,
    # "first_divergence" is dict-or-null, checked separately.
}

_VERDICT_KEYS: Dict[str, type] = {
    "model": str,
    "summary": str,
    "differential": bool,
    "sound_configs": list,
    "unsound_configs": list,
}


def sweep_report_doc(sweep_result) -> Dict:
    """Build the report document of one :class:`~repro.matrix.runner.SweepResult`."""
    sweep = sweep_result.sweep
    configs: List[Dict] = []
    for point_result in sweep_result.points:
        entry = point_result.verdict.to_json()
        entry["index"] = point_result.index
        entry["result_sha256"] = hashlib.sha256(
            point_result.document
        ).hexdigest()
        configs.append(entry)
    verdict = sweep_result.verdict.to_json()
    verdict.pop("configs", None)  # per-config rows live at the top level
    verdict.pop("experiment", None)
    return {
        "report_version": REPORT_VERSION,
        "scenario": sweep.scenario_name,
        "experiment": sweep.experiment,
        "model": sweep_result.verdict.model,
        "refined": sweep.refined,
        "base_profile": sweep.base_profile,
        "seed": sweep.seed,
        "programs": sweep.programs,
        "tests": sweep.tests,
        "axes": {
            name: [str(value) for value in values]
            for name, values in sorted(sweep.axes.items())
        },
        "grid_size": len(sweep_result.points),
        "configs": configs,
        "verdict": verdict,
    }


def report_bytes(doc: Dict) -> bytes:
    """Canonical serialization (sorted keys, stable separators)."""
    return (
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _require(doc: Dict, keys: Dict[str, type], where: str) -> None:
    for key, kind in keys.items():
        if key not in doc:
            raise MatrixError(f"{where}: missing key {key!r}")
        value = doc[key]
        if kind is int and isinstance(value, bool):
            raise MatrixError(f"{where}: key {key!r} must be int, got bool")
        if not isinstance(value, kind):
            raise MatrixError(
                f"{where}: key {key!r} must be {kind.__name__}, "
                f"got {type(value).__name__}"
            )


def validate_report(doc: Dict) -> None:
    """Validate a report document; raises :class:`MatrixError` on violation."""
    if not isinstance(doc, dict):
        raise MatrixError(
            f"report must be an object, got {type(doc).__name__}"
        )
    _require(doc, _TOP_KEYS, "report")
    if doc["report_version"] != REPORT_VERSION:
        raise MatrixError(
            f"report: unsupported report_version {doc['report_version']} "
            f"(this build reads version {REPORT_VERSION})"
        )
    if not doc["configs"]:
        raise MatrixError("report: 'configs' must be non-empty")
    if doc["grid_size"] != len(doc["configs"]):
        raise MatrixError(
            f"report: grid_size {doc['grid_size']} != "
            f"{len(doc['configs'])} config entries"
        )
    names: List[str] = []
    for position, entry in enumerate(doc["configs"]):
        where = f"report.configs[{position}]"
        if not isinstance(entry, dict):
            raise MatrixError(f"{where}: must be an object")
        _require(entry, _CONFIG_KEYS, where)
        divergence = entry.get("first_divergence")
        if divergence is not None and not isinstance(divergence, dict):
            raise MatrixError(
                f"{where}: 'first_divergence' must be an object or null"
            )
        if entry["sound"] and entry["counterexamples"]:
            raise MatrixError(
                f"{where}: sound config reports "
                f"{entry['counterexamples']} counterexample(s)"
            )
        if not entry["sound"] and divergence is None:
            raise MatrixError(
                f"{where}: unsound config lacks first-divergence attribution"
            )
        names.append(entry["config"])
    if len(set(names)) != len(names):
        raise MatrixError("report: duplicate config names")
    verdict = doc["verdict"]
    _require(verdict, _VERDICT_KEYS, "report.verdict")
    sound = {e["config"] for e in doc["configs"] if e["sound"]}
    unsound = {e["config"] for e in doc["configs"] if not e["sound"]}
    if set(verdict["sound_configs"]) != sound:
        raise MatrixError(
            "report.verdict: sound_configs disagree with config rows"
        )
    if set(verdict["unsound_configs"]) != unsound:
        raise MatrixError(
            "report.verdict: unsound_configs disagree with config rows"
        )


def render_report(doc: Dict) -> str:
    """A console table of the differential report."""
    axis_names = sorted(doc["axes"])
    headers = (
        ["config"]
        + axis_names
        + ["sound", "cexs", "incl", "first divergence"]
    )
    rows: List[List[str]] = []
    for entry in doc["configs"]:
        divergence = entry.get("first_divergence") or {}
        rows.append(
            [entry["config"]]
            + [str(entry["axes"].get(name, "-")) for name in axis_names]
            + [
                "yes" if entry["sound"] else "NO",
                str(entry["counterexamples"]),
                str(entry["inconclusive"]),
                divergence.get("key", "-"),
            ]
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    lines += [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    lines.append("")
    lines.append(doc["verdict"]["summary"])
    return "\n".join(lines)


def write_sweep_artifacts(
    sweep_result, directory: str, dashboard: bool = False
) -> Dict[str, str]:
    """Write per-config ``result.json`` files plus the report (and dashboard).

    Layout under ``directory``::

        config-01-<name>/result.json   (canonical, byte-identical payloads)
        sweep_report.json
        dashboard.html                 (with ``dashboard=True``)

    Returns ``{artifact: path}``.
    """
    os.makedirs(directory, exist_ok=True)
    artifacts: Dict[str, str] = {}
    for point_result in sweep_result.points:
        sub = os.path.join(
            directory,
            f"config-{point_result.index:02d}-{point_result.point.name}",
        )
        os.makedirs(sub, exist_ok=True)
        result_path = os.path.join(sub, "result.json")
        with open(result_path, "wb") as handle:
            handle.write(point_result.document)
        artifacts[f"result:{point_result.point.name}"] = result_path
    doc = sweep_report_doc(sweep_result)
    report_path = os.path.join(directory, "sweep_report.json")
    with open(report_path, "wb") as handle:
        handle.write(report_bytes(doc))
    artifacts["report"] = report_path
    if dashboard:
        from repro.monitor.dashboard import build_dashboard_html
        from repro.telemetry.export import stamp

        html = build_dashboard_html(
            doc["scenario"], sweep=doc, meta=stamp()
        )
        dashboard_path = os.path.join(directory, "dashboard.html")
        with open(dashboard_path, "w", encoding="utf-8") as handle:
            handle.write(html)
        artifacts["dashboard"] = dashboard_path
    return artifacts


def _main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.matrix.report REPORT.json")
        return 2
    path = argv[0]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"report {path} is unreadable: {exc}")
        return 1
    try:
        validate_report(doc)
    except MatrixError as exc:
        print(f"report {path} is invalid: {exc}")
        return 1
    print(f"report {path} is valid")
    print(doc["verdict"]["summary"])
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke
    import sys

    sys.exit(_main(sys.argv[1:]))
