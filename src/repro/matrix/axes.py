"""Sweepable microarchitecture axes and the declarative axis-spec grammar.

An *axis* is one hardware knob the differential sweep can vary: it knows
how to parse a value token, how to apply the value onto a
:class:`~repro.hw.core.CoreConfig`, and how to render the value as a short
slug for grid-point names (``plru+stride+w8``).  The registry below is the
single source of truth for what ``repro-scamv sweep --axes`` and the
``hw_matrix`` scenario key accept.

The spec grammar is deliberately tiny so it fits in one CLI argument and
in one flat TOML string value::

    replacement=[lru,plru], prefetcher=[stride,off], spec_window=[0,8,32]
    replacement=lru,plru prefetcher=stride,off

Brackets are optional; assignments are separated by whitespace, commas, or
semicolons; values within an assignment are comma-separated.  Axis values
validate against the same hardware registries the config constructors
enforce (:data:`~repro.hw.cache.REPLACEMENT_POLICIES`,
:data:`~repro.hw.prefetcher.PREFETCHER_KINDS`), so a bad token fails at
parse time with the known values, never mid-sweep.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

from repro.errors import MatrixError
from repro.hw.cache import REPLACEMENT_POLICIES, CacheConfig
from repro.hw.core import CoreConfig
from repro.hw.prefetcher import PREFETCHER_KINDS


@dataclass(frozen=True)
class Axis:
    """One sweepable hardware knob."""

    name: str
    description: str
    #: token -> value; raises :class:`MatrixError` on a bad token.
    parse: Callable[[str], object]
    #: (core, value) -> new core with the knob applied.
    apply: Callable[[CoreConfig, object], CoreConfig]
    #: value -> short name fragment for the grid point.
    slug: Callable[[object], str]


def _choice(axis: str, known: Tuple[str, ...]) -> Callable[[str], str]:
    def parse(token: str) -> str:
        if token not in known:
            raise MatrixError(
                f"axis {axis!r}: unknown value {token!r} "
                f"(known: {', '.join(known)})"
            )
        return token

    return parse


def _int(axis: str, minimum: int) -> Callable[[str], int]:
    def parse(token: str) -> int:
        try:
            value = int(token)
        except ValueError:
            raise MatrixError(
                f"axis {axis!r}: value {token!r} is not an integer"
            ) from None
        if value < minimum:
            raise MatrixError(
                f"axis {axis!r}: value {value} must be >= {minimum}"
            )
        return value

    return parse


def _pow2(axis: str) -> Callable[[str], int]:
    base = _int(axis, 1)

    def parse(token: str) -> int:
        value = base(token)
        if value & (value - 1):
            raise MatrixError(
                f"axis {axis!r}: value {value} must be a power of two"
            )
        return value

    return parse


def _bool(axis: str) -> Callable[[str], bool]:
    def parse(token: str) -> bool:
        if token in ("on", "true", "yes", "1"):
            return True
        if token in ("off", "false", "no", "0"):
            return False
        raise MatrixError(
            f"axis {axis!r}: value {token!r} is not a boolean "
            "(use on/off)"
        )

    return parse


def _apply_replacement(core: CoreConfig, value: str) -> CoreConfig:
    return replace(core, cache=replace(core.cache, replacement=value))


def _apply_prefetcher(core: CoreConfig, value: str) -> CoreConfig:
    return replace(core, prefetcher=replace(core.prefetcher, kind=value))


def _apply_spec_window(core: CoreConfig, value: int) -> CoreConfig:
    return replace(core, spec_window=value)


def _apply_pht_size(core: CoreConfig, value: int) -> CoreConfig:
    return replace(core, predictor=replace(core.predictor, entries=value))


def _apply_forwarding(core: CoreConfig, value: bool) -> CoreConfig:
    return replace(core, forward_speculative_results=value)


def _apply_l2(core: CoreConfig, value: bool) -> CoreConfig:
    # Geometry mirrors the cortex-a53-l2 profile: inclusive 512 KiB L2.
    l2 = CacheConfig(sets=512, ways=16, line_size=64) if value else None
    return replace(core, l2=l2)


#: The axis registry, keyed by spec-grammar name.
AXES: Dict[str, Axis] = {
    axis.name: axis
    for axis in (
        Axis(
            name="replacement",
            description="L1D victim selection: "
            + "/".join(REPLACEMENT_POLICIES),
            parse=_choice("replacement", REPLACEMENT_POLICIES),
            apply=_apply_replacement,
            slug=lambda v: str(v),
        ),
        Axis(
            name="prefetcher",
            description="L1D prefetcher kind: " + "/".join(PREFETCHER_KINDS),
            parse=_choice("prefetcher", PREFETCHER_KINDS),
            apply=_apply_prefetcher,
            slug=lambda v: str(v),
        ),
        Axis(
            name="spec_window",
            description="transient window depth (0 disables speculation)",
            parse=_int("spec_window", 0),
            apply=_apply_spec_window,
            slug=lambda v: f"w{v}",
        ),
        Axis(
            name="pht_size",
            description="branch predictor PHT entries (power of two)",
            parse=_pow2("pht_size"),
            apply=_apply_pht_size,
            slug=lambda v: f"pht{v}",
        ),
        Axis(
            name="forwarding",
            description="forward transient load results (on models an "
            "out-of-order core)",
            parse=_bool("forwarding"),
            apply=_apply_forwarding,
            slug=lambda v: "fwd" if v else "nofwd",
        ),
        Axis(
            name="l2",
            description="inclusive 512 KiB L2 behind the L1D (on/off)",
            parse=_bool("l2"),
            apply=_apply_l2,
            slug=lambda v: "l2" if v else "nol2",
        ),
    )
}


def axis_names() -> List[str]:
    """Registered axis names, sorted for stable enumeration."""
    return sorted(AXES)


_ASSIGNMENT = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(\[[^\]]*\]|[^\s;=\[\]]+)"
)
_SEPARATORS = " \t\r\n,;"


def parse_axis_spec(text: str) -> Dict[str, Tuple[object, ...]]:
    """Parse an axis spec into ``{axis name: (values...)}``.

    Values are parsed (and therefore validated) per axis; the mapping
    preserves nothing order-sensitive — grid expansion sorts axes by name.
    Raises :class:`MatrixError` on unknown axes, bad values, duplicate
    assignments, or stray text.
    """
    if not text or not text.strip():
        raise MatrixError(
            "empty axis spec (expected e.g. "
            "'replacement=lru,plru prefetcher=stride,off')"
        )
    spec: Dict[str, Tuple[object, ...]] = {}
    pos = 0
    for match in _ASSIGNMENT.finditer(text):
        gap = text[pos : match.start()].strip(_SEPARATORS)
        if gap:
            raise MatrixError(f"axis spec: unexpected text {gap!r}")
        pos = match.end()
        name, raw = match.group(1), match.group(2)
        if name not in AXES:
            raise MatrixError(
                f"unknown axis {name!r} (known: {', '.join(axis_names())})"
            )
        if name in spec:
            raise MatrixError(f"axis {name!r} assigned twice")
        if raw.startswith("["):
            raw = raw[1:-1]
        raw = raw.strip().strip(",")
        tokens = [token.strip() for token in raw.split(",")]
        if not raw or any(not token for token in tokens):
            raise MatrixError(f"axis {name!r}: empty value list")
        axis = AXES[name]
        values = tuple(axis.parse(token) for token in tokens)
        spec[name] = values
    trailing = text[pos:].strip(_SEPARATORS)
    if trailing:
        raise MatrixError(f"axis spec: unexpected text {trailing!r}")
    if not spec:
        raise MatrixError(
            "axis spec contains no assignments (expected e.g. "
            "'replacement=lru,plru prefetcher=stride,off')"
        )
    return spec


def format_axis_spec(spec: Dict[str, Tuple[object, ...]]) -> str:
    """Canonical one-line rendering of a parsed spec (sorted axes)."""
    return " ".join(
        f"{name}=" + ",".join(str(v) for v in spec[name])
        for name in sorted(spec)
    )
