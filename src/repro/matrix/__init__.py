"""Microarchitecture matrix: differential sweeps over hardware axes.

Turns the single simulated platform into a configurable family and asks
the richer question "on *which* cores is this model sound?":

* :mod:`repro.matrix.axes`    — sweepable hardware knobs + the spec grammar
* :mod:`repro.matrix.expand`  — axis spec × base profile -> named grid
* :mod:`repro.matrix.runner`  — the same experiment on every grid point
* :mod:`repro.matrix.verdict` — per-config and differential soundness
* :mod:`repro.matrix.report`  — report document, schema, rendering
"""

from repro.matrix.axes import (
    AXES,
    Axis,
    axis_names,
    format_axis_spec,
    parse_axis_spec,
)
from repro.matrix.expand import GridPoint, expand_grid
from repro.matrix.report import (
    REPORT_VERSION,
    render_report,
    report_bytes,
    sweep_report_doc,
    validate_report,
    write_sweep_artifacts,
)
from repro.matrix.runner import (
    SweepConfig,
    SweepPointResult,
    SweepResult,
    build_point_campaign,
    grid_for,
    run_sweep,
)
from repro.matrix.verdict import (
    ConfigVerdict,
    SweepVerdict,
    config_verdict,
    sweep_verdict,
)

__all__ = [
    "AXES",
    "Axis",
    "ConfigVerdict",
    "GridPoint",
    "REPORT_VERSION",
    "SweepConfig",
    "SweepPointResult",
    "SweepResult",
    "SweepVerdict",
    "axis_names",
    "build_point_campaign",
    "config_verdict",
    "expand_grid",
    "format_axis_spec",
    "grid_for",
    "parse_axis_spec",
    "render_report",
    "report_bytes",
    "run_sweep",
    "sweep_report_doc",
    "sweep_verdict",
    "validate_report",
    "write_sweep_artifacts",
]
