"""``python -m repro.matrix REPORT.json`` — validate a sweep report file."""

import sys

from repro.matrix.report import _main

if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
