"""Span-based pipeline tracing with a context-manager API.

A *span* is one timed region of the pipeline — ``template.generate``,
``smt.solve``, ``hw.experiment`` — with attributes and exact parent/child
nesting (the tracer keeps a per-process stack; a span opened inside another
span's ``with`` block records that span as its parent).  Usage::

    from repro.telemetry import trace

    with trace.span("smt.solve", program=i, attempt=k):
        ...

Kill-switch contract (the :mod:`repro.bir.intern` pattern): tracing is
**disabled by default** and :func:`span` then returns a shared no-op
context manager after a single module-global check — no allocation, no
clock read, no stack mutation — so instrumenting the hot path costs ~no
time unless a consumer opts in with :func:`set_enabled`.

Cross-process model: each process records spans into its process-local
buffer; the shard worker drains its buffer into the picklable
:class:`ShardResult` and the parent absorbs it (see
:mod:`repro.telemetry.collect`).  Timestamps are ``time.monotonic()``
(CLOCK_MONOTONIC: comparable across processes on the same machine), so
merged spans share one timeline.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "SpanRecord",
    "Tracer",
    "tracer",
    "span",
    "drain",
    "set_enabled",
    "enabled",
]


@dataclass
class SpanRecord:
    """One finished span, ready for pickling/export.

    ``span_id``/``parent_id`` are unique within the recording process only;
    exporters qualify them with ``pid``.  ``start`` is monotonic seconds,
    ``duration`` is seconds.
    """

    name: str
    start: float
    duration: float
    pid: int
    span_id: int
    parent_id: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)


class _NullSpan:
    """The shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attr(self, key: str, value: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span: context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "span_id", "parent_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.monotonic()
        tracer = self._tracer
        # Tolerate a disable() between enter and exit: unwind the stack but
        # only record while still enabled.
        stack = tracer._stack
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        tracer._finish(
            SpanRecord(
                name=self.name,
                start=self._start,
                duration=end - self._start,
                pid=tracer.pid,
                span_id=self.span_id,
                parent_id=self.parent_id,
                attrs=self.attrs,
            )
        )

    def set_attr(self, key: str, value: object) -> None:
        """Attach an attribute discovered mid-span (e.g. the result)."""
        self.attrs[key] = value


class Tracer:
    """A process-local span recorder.

    One module-level instance (:data:`tracer`) serves the whole pipeline;
    separate instances exist only for tests that need isolation.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._stack: List[_ActiveSpan] = []
        self._spans: List[SpanRecord] = []
        self._next_id = 0
        self._on_finish = None

    @property
    def pid(self) -> int:
        return os.getpid()

    def span(self, name: str, **attrs):
        """Open a span; a no-op (shared) context manager when disabled."""
        if not self._enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def _finish(self, record: SpanRecord) -> None:
        if not self._enabled:
            return
        self._spans.append(record)
        if self._on_finish is not None:
            self._on_finish(record)

    def on_finish(self, callback) -> None:
        """Install a hook called with every finished :class:`SpanRecord`.

        The metrics bridge uses this to feed per-span latency histograms;
        pass None to uninstall.
        """
        self._on_finish = callback

    def drain(self) -> List[SpanRecord]:
        """Remove and return every recorded span (open spans stay live)."""
        spans, self._spans = self._spans, []
        return spans

    def pending(self) -> int:
        """How many finished spans are buffered (tests/introspection)."""
        return len(self._spans)

    def set_enabled(self, value: bool) -> None:
        """Switch recording on/off; disabling drops buffered spans."""
        self._enabled = bool(value)
        if not self._enabled:
            self._spans = []
            self._stack = []

    def enabled(self) -> bool:
        return self._enabled


#: The process-wide tracer every instrumentation site talks to.
tracer = Tracer()

# Module-level conveniences bound to the shared tracer -----------------------


def span(name: str, **attrs):
    """``with trace.span("phase", key=value):`` on the shared tracer."""
    if not tracer._enabled:
        return _NULL_SPAN
    return _ActiveSpan(tracer, name, attrs)


def drain() -> List[SpanRecord]:
    return tracer.drain()


def set_enabled(value: bool) -> None:
    tracer.set_enabled(value)


def enabled() -> bool:
    return tracer._enabled
