"""Telemetry exporters: Chrome trace events, Prometheus text, JSON.

Trace format: the Chrome trace-event *JSON Array Format* in its streaming
spelling — an opening ``[`` followed by one complete-event object per line
(each line terminated by ``,``).  Both Chrome's legacy viewer and
Perfetto's JSON importer accept the missing ``]``/trailing comma, which is
exactly what makes the format appendable line-by-line; tooling that wants
strict JSONL can skip the first line and strip the trailing commas (see
:func:`read_trace`).  Timestamps/durations are microseconds; nesting is
implied by containment within one ``pid``/``tid`` track, matching the
tracer's exact parent/child stack (parent ids also ride along in
``args.span_id``/``args.parent_id``).

Metric snapshots export as Prometheus text exposition format
(:func:`write_metrics_prometheus`) and as a JSON document stamped with
provenance metadata (:func:`write_metrics_json`) that
:mod:`repro.telemetry.schema` validates.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from repro.telemetry.trace import SpanRecord

__all__ = [
    "stamp",
    "spans_to_events",
    "write_chrome_trace",
    "read_trace",
    "write_metrics_prometheus",
    "render_prometheus",
    "write_metrics_json",
]

#: args key that carries the metrics snapshot on the trace's metadata line.
METRICS_EVENT = "repro_metrics"
STAMP_EVENT = "repro_stamp"
#: metadata event carrying the merged solver-profile aggregate.
SOLVER_EVENT = "repro_solver"


def stamp(repo_root: Optional[str] = None) -> Dict[str, object]:
    """Provenance metadata for exported artifacts.

    Stamps the git sha (None outside a repository), the Python version,
    the platform, and a UTC timestamp — so a metrics snapshot or benchmark
    report can be tied back to the code revision that produced it.
    """
    return {
        "git_sha": _git_sha(repo_root),
        "python": _platform.python_version(),
        "platform": _platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _git_sha(repo_root: Optional[str] = None) -> Optional[str]:
    root = repo_root or os.path.dirname(
        os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
    )
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


# -- Chrome trace events -----------------------------------------------------


def spans_to_events(spans: Iterable[SpanRecord]) -> List[Dict[str, object]]:
    """Complete ('X') trace events, sorted by start time."""
    events = []
    for span in sorted(spans, key=lambda s: (s.pid, s.start)):
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": span.pid,
                "tid": 1,
                "args": args,
            }
        )
    return events


def write_chrome_trace(
    spans: Sequence[SpanRecord],
    path: str,
    metrics_snapshot: Optional[Dict] = None,
    meta: Optional[Dict[str, object]] = None,
    solver: Optional[Dict] = None,
) -> None:
    """Write a Perfetto/Chrome-loadable trace file.

    ``metrics_snapshot`` (when given) is embedded as a metadata event so
    ``repro report`` can print cache hit rates without a separate metrics
    file; ``solver`` (a :mod:`repro.telemetry.solver` aggregate) rides the
    same way so the report's solver section needs only the trace file;
    ``meta`` defaults to :func:`stamp`.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("[\n")
        _write_event(
            handle,
            {
                "name": STAMP_EVENT,
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": meta if meta is not None else stamp(),
            },
        )
        if metrics_snapshot is not None:
            _write_event(
                handle,
                {
                    "name": METRICS_EVENT,
                    "ph": "M",
                    "pid": 0,
                    "tid": 0,
                    "args": {"snapshot": metrics_snapshot},
                },
            )
        if solver is not None:
            _write_event(
                handle,
                {
                    "name": SOLVER_EVENT,
                    "ph": "M",
                    "pid": 0,
                    "tid": 0,
                    "args": {"solver": solver},
                },
            )
        for event in spans_to_events(spans):
            _write_event(handle, event)


def _write_event(handle: TextIO, event: Dict[str, object]) -> None:
    handle.write(json.dumps(event, sort_keys=True) + ",\n")


def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse a trace written by :func:`write_chrome_trace`.

    Tolerates all three spellings: the streaming ``[`` + line format, a
    strict JSON array, and plain JSONL; skips malformed lines (a trace cut
    off mid-write still reports).
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("[") and stripped.rstrip().endswith("]"):
        try:
            doc = json.loads(stripped)
            if isinstance(doc, list):
                return [e for e in doc if isinstance(e, dict)]
        except json.JSONDecodeError:
            pass
    events: List[Dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip().rstrip(",")
        if not line or line in ("[", "]"):
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


# -- metric snapshots --------------------------------------------------------


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def render_prometheus(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Prometheus text exposition format (0.0.4) for one snapshot."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        metric = _sanitize(name)
        if kind == "counter":
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total {entry['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {entry["count"]}')
            lines.append(f"{metric}_sum {_fmt(entry['sum'])}")
            lines.append(f"{metric}_count {entry['count']}")
    return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def write_metrics_prometheus(
    snapshot: Dict[str, Dict[str, object]], path: str
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(snapshot))


def write_metrics_json(
    snapshot: Dict[str, Dict[str, object]],
    path: str,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the stamped JSON snapshot document; returns the document.

    The layout is pinned by ``repro.telemetry.schema.METRICS_SCHEMA``
    (validated in CI).
    """
    doc = {
        "version": 1,
        "meta": meta if meta is not None else stamp(),
        "metrics": snapshot,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc
