"""Query-level solver profiling: where does ``smt.solve`` time go?

The tracer (:mod:`repro.telemetry.trace`) shows *that* the solver dominates
a campaign; this module shows *why*.  Every :meth:`ModelFinder.solve_prepared
<repro.smt.solver.ModelFinder.solve_prepared>` call records one query
profile — constraint count, term size, prepared-cache hit, restarts
consumed, warm vs cold success, repair iterations, outcome, wall time —
attributed to the **coverage class** and **pipeline phase** that issued it.
Call sites declare the attribution with :func:`query_context`::

    with solver_profile.query_context("testgen.generate", "pair:0-1",
                                      prepared_hit=True):
        model = finder.solve_prepared(prepared, extra=coverage)

Profiles are folded immediately into a bounded process-local aggregate
(per-class tallies, a restart-count histogram, the top-K slowest queries
with shape signatures) — memory stays O(classes + K) no matter how many
queries run.  The aggregate travels over the shard telemetry payload and
merges **order-invariantly** like the coverage ledger: tallies add, the
top list is the K largest under a total order, so 1-worker and N-worker
runs of the same campaign produce byte-identical canonical aggregates
(wall times are stored as integer microseconds precisely so summation is
exact and associative).

Kill-switch contract (the :mod:`repro.telemetry.trace` pattern): disabled
by default; :func:`query_context` then returns a shared no-op context
manager and :func:`record_query` returns after a single module-global
check — no allocation, no clock read.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

__all__ = [
    "SOLVER_DOC_VERSION",
    "TOP_K",
    "UNATTRIBUTED",
    "set_enabled",
    "enabled",
    "query_context",
    "current_context",
    "record_query",
    "drain",
    "snapshot",
    "empty_doc",
    "merge_docs",
    "merge_solver_docs",
    "doc_totals",
    "attribution",
    "deterministic_doc",
    "canonical",
]

SOLVER_DOC_VERSION = 1

#: How many slowest queries each aggregate keeps.
TOP_K = 10

#: Class/phase used for queries issued outside any :func:`query_context`.
UNATTRIBUTED = "(unattributed)"

#: Query outcomes: model found / contradiction before search / restart
#: budget spent without a model.
OUTCOMES = ("sat", "unsat", "exhausted")

_enabled = False

#: The active attribution, or None: (phase, coverage class, prepared_hit).
_context: Optional[tuple] = None

# Process-local accumulators (the pre-doc form of one aggregate).
_classes: Dict[str, Dict[str, object]] = {}
_phases: Dict[str, Dict[str, int]] = {}
_top: List[Dict[str, object]] = []

# The top list is allowed to overgrow to this many entries before it is
# re-sorted and truncated back to TOP_K (amortises the sort).
_TOP_SLACK = 4 * TOP_K


# -- switch ------------------------------------------------------------------


def set_enabled(value: bool) -> None:
    """Switch profiling on/off; disabling drops the buffered aggregate."""
    global _enabled
    _enabled = bool(value)
    if not _enabled:
        _reset()


def enabled() -> bool:
    return _enabled


def _reset() -> None:
    global _classes, _phases, _top, _context
    _classes = {}
    _phases = {}
    _top = []
    _context = None


# -- attribution context -----------------------------------------------------


class _NullContext:
    """Shared no-op context manager returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class _QueryContext:
    __slots__ = ("_value", "_saved")

    def __init__(self, value: tuple):
        self._value = value

    def __enter__(self) -> "_QueryContext":
        global _context
        self._saved = _context
        _context = self._value
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _context
        _context = self._saved


def query_context(
    phase: str, klass: str, prepared_hit: Optional[bool] = None
):
    """Attribute solver queries in this block to ``(phase, klass)``.

    ``klass`` is the coverage-class key the query serves (the ledger's
    naming, e.g. ``pair:0-1``); ``prepared_hit`` records whether the query
    ran against a prepared-cache hit.  Contexts nest: the innermost wins,
    and the previous attribution is restored on exit.
    """
    if not _enabled:
        return _NULL_CONTEXT
    return _QueryContext((phase, klass, prepared_hit))


def current_context() -> Optional[tuple]:
    """The active ``(phase, klass, prepared_hit)`` or None (tests)."""
    return _context


# -- recording ---------------------------------------------------------------

_CLASS_COUNTER_KEYS = (
    "queries",
    "sat",
    "unsat",
    "exhausted",
    "seconds_us",
    "restarts",
    "repairs",
    "warm_sat",
    "cold_sat",
    "prepared_hits",
    "prepared_misses",
)


def _empty_class() -> Dict[str, object]:
    stats: Dict[str, object] = {key: 0 for key in _CLASS_COUNTER_KEYS}
    stats["restart_hist"] = {}
    return stats


def record_query(
    *,
    seconds: float,
    outcome: str,
    restarts: int,
    repairs: int,
    warm_sat: bool,
    conjuncts: int,
    extras: int,
    term_size: int,
) -> None:
    """Fold one finished solver query into the process aggregate.

    A no-op (one flag check) while profiling is disabled.  ``seconds`` is
    wall time; it is stored as integer microseconds so later summation is
    exact — merge order can then never perturb the canonical aggregate.
    """
    if not _enabled:
        return
    ctx = _context
    if ctx is None:
        phase, klass, prepared_hit = UNATTRIBUTED, UNATTRIBUTED, None
    else:
        phase, klass, prepared_hit = ctx
    seconds_us = int(round(seconds * 1e6))

    stats = _classes.get(klass)
    if stats is None:
        stats = _classes[klass] = _empty_class()
    stats["queries"] += 1
    stats[outcome if outcome in OUTCOMES else "exhausted"] += 1
    stats["seconds_us"] += seconds_us
    stats["restarts"] += restarts
    stats["repairs"] += repairs
    if outcome == "sat":
        stats["warm_sat" if warm_sat else "cold_sat"] += 1
    if prepared_hit is not None:
        stats["prepared_hits" if prepared_hit else "prepared_misses"] += 1
    hist = stats["restart_hist"]
    bucket = str(restarts)
    hist[bucket] = hist.get(bucket, 0) + 1

    phase_stats = _phases.get(phase)
    if phase_stats is None:
        phase_stats = _phases[phase] = {"queries": 0, "seconds_us": 0}
    phase_stats["queries"] += 1
    phase_stats["seconds_us"] += seconds_us

    _top.append(
        {
            "class": klass,
            "phase": phase,
            "seconds_us": seconds_us,
            "outcome": outcome,
            "restarts": restarts,
            "repairs": repairs,
            "conjuncts": conjuncts,
            "extras": extras,
            "term_size": term_size,
            "signature": f"{klass}|{phase}|c{conjuncts}+e{extras}",
        }
    )
    if len(_top) >= _TOP_SLACK:
        _trim(_top)


def _entry_key(entry: Dict[str, object]):
    """A total order on top-list entries: slowest first, ties broken by
    every remaining field so top-K selection is deterministic and
    merge-order-invariant."""
    return (
        -int(entry["seconds_us"]),
        str(entry["class"]),
        str(entry["phase"]),
        str(entry["signature"]),
        str(entry["outcome"]),
        int(entry["restarts"]),
        int(entry["repairs"]),
        int(entry["term_size"]),
    )


def _trim(entries: List[Dict[str, object]], k: int = TOP_K) -> None:
    entries.sort(key=_entry_key)
    del entries[k:]


# -- aggregate documents -----------------------------------------------------


def empty_doc() -> Dict[str, object]:
    """The merge identity: an aggregate with nothing in it."""
    return {
        "version": SOLVER_DOC_VERSION,
        "classes": {},
        "phases": {},
        "top": [],
    }


def _doc() -> Dict[str, object]:
    top = list(_top)
    _trim(top)
    return {
        "version": SOLVER_DOC_VERSION,
        "classes": {k: _copy_class(v) for k, v in _classes.items()},
        "phases": {k: dict(v) for k, v in _phases.items()},
        "top": top,
    }


def _copy_class(stats: Dict[str, object]) -> Dict[str, object]:
    out = dict(stats)
    out["restart_hist"] = dict(stats["restart_hist"])
    return out


def snapshot() -> Optional[Dict[str, object]]:
    """The current process aggregate as a doc, or None when empty."""
    if not (_classes or _phases or _top):
        return None
    return _doc()


def drain() -> Optional[Dict[str, object]]:
    """Remove and return the process aggregate (None when empty).

    Like the tracer's span drain: the caller takes ownership, so inline
    and multi-process shards contribute exactly once each.
    """
    global _classes, _phases, _top
    doc = snapshot()
    _classes = {}
    _phases = {}
    _top = []
    return doc


def merge_docs(
    left: Dict[str, object], right: Dict[str, object]
) -> Dict[str, object]:
    """Merge two aggregates; commutative and associative with
    :func:`empty_doc` as identity (tallies add, histograms add, the top
    list keeps the K largest under a total order)."""
    out = empty_doc()
    for doc in (left, right):
        classes = out["classes"]
        for klass, stats in doc.get("classes", {}).items():
            acc = classes.get(klass)
            if acc is None:
                acc = classes[klass] = _empty_class()
            for key in _CLASS_COUNTER_KEYS:
                acc[key] += int(stats.get(key, 0))
            hist = acc["restart_hist"]
            for bucket, count in stats.get("restart_hist", {}).items():
                hist[bucket] = hist.get(bucket, 0) + int(count)
        phases = out["phases"]
        for phase, stats in doc.get("phases", {}).items():
            acc = phases.get(phase)
            if acc is None:
                acc = phases[phase] = {"queries": 0, "seconds_us": 0}
            acc["queries"] += int(stats.get("queries", 0))
            acc["seconds_us"] += int(stats.get("seconds_us", 0))
        out["top"].extend(dict(e) for e in doc.get("top", ()))
    _trim(out["top"])
    return out


def merge_solver_docs(
    docs: Sequence[Optional[Dict[str, object]]]
) -> Optional[Dict[str, object]]:
    """Fold any number of (possibly-None) aggregates; None when all empty."""
    merged: Optional[Dict[str, object]] = None
    for doc in docs:
        if not doc:
            continue
        merged = doc if merged is None else merge_docs(merged, doc)
    if merged is None:
        return None
    out = merge_docs(merged, empty_doc())  # normalise key sets / copy
    return out


def doc_totals(doc: Dict[str, object]) -> Dict[str, object]:
    """Campaign-wide totals derived from the per-class tallies."""
    totals = _empty_class()
    for stats in doc.get("classes", {}).values():
        for key in _CLASS_COUNTER_KEYS:
            totals[key] += int(stats.get(key, 0))
        hist = totals["restart_hist"]
        for bucket, count in stats.get("restart_hist", {}).items():
            hist[bucket] = hist.get(bucket, 0) + int(count)
    return totals


def attribution(doc: Dict[str, object]) -> float:
    """Fraction of profiled solver time attributed to a named class."""
    total = 0
    named = 0
    for klass, stats in doc.get("classes", {}).items():
        us = int(stats.get("seconds_us", 0))
        total += us
        if klass != UNATTRIBUTED:
            named += us
    if total == 0:
        return 1.0
    return named / total


def deterministic_doc(doc: Dict[str, object]) -> Dict[str, object]:
    """The timing-free projection of an aggregate.

    Query/outcome/restart/repair tallies are exact reproductions of the
    search's decisions (the RNG is deterministic), so identical campaigns
    reproduce this projection bit-for-bit at any worker count and on any
    machine.  Wall times — and the top-K list, whose membership is chosen
    *by* wall time — are measurements, not decisions, and are excluded.
    """
    out: Dict[str, object] = {
        "version": doc.get("version", SOLVER_DOC_VERSION),
        "classes": {},
        "phases": {},
    }
    for klass, stats in doc.get("classes", {}).items():
        copy = {
            key: int(stats.get(key, 0))
            for key in _CLASS_COUNTER_KEYS
            if key != "seconds_us"
        }
        copy["restart_hist"] = dict(stats.get("restart_hist", {}))
        out["classes"][klass] = copy
    for phase, stats in doc.get("phases", {}).items():
        out["phases"][phase] = {"queries": int(stats.get("queries", 0))}
    return out


def canonical(doc: Dict[str, object]) -> bytes:
    """Canonical JSON bytes: identical aggregates serialise identically."""
    return json.dumps(
        doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
