"""Phase-breakdown analysis of an exported pipeline trace.

Consumed by ``repro-scamv report TRACE``: aggregates the trace's spans per
phase name (total and *self* time — total minus the time spent in child
spans — call counts, p50/p95 latency), extracts cache hit rates from the
embedded metrics snapshot, and ranks the slowest programs.  Answers the
question the opaque ``CampaignStats`` aggregates cannot: *where* a slow
campaign spends its time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.export import (
    METRICS_EVENT,
    SOLVER_EVENT,
    STAMP_EVENT,
    read_trace,
)

__all__ = [
    "PhaseStats",
    "TraceReport",
    "analyze_events",
    "analyze_trace",
    "solver_section_lines",
]


@dataclass
class PhaseStats:
    """Aggregated timings of every span sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0  # seconds, inclusive of children
    self_time: float = 0.0  # seconds, children subtracted
    durations: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        if not self.durations:
            return 0.0
        ordered = sorted(self.durations)
        # Nearest-rank on the exact durations (the report has every span,
        # unlike the bucketed histograms).
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return ordered[rank]


@dataclass
class TraceReport:
    """Everything ``repro report`` prints."""

    phases: Dict[str, PhaseStats]
    wall_time: float
    #: cache name -> (hits, misses, hit rate)
    cache_rates: Dict[str, Tuple[int, int, float]]
    #: (program label, seconds) slowest-first
    slowest_programs: List[Tuple[str, float]]
    meta: Dict[str, object] = field(default_factory=dict)
    #: merged solver-profile aggregate (repro.telemetry.solver doc), from
    #: the trace's repro_solver metadata event; None when profiling was off
    solver: Optional[Dict[str, object]] = None

    def render(self, top: int = 5) -> str:
        lines: List[str] = []
        if self.meta:
            sha = self.meta.get("git_sha") or "unknown"
            lines.append(
                f"trace stamped {self.meta.get('timestamp', '?')} "
                f"(git {str(sha)[:12]}, python {self.meta.get('python', '?')})"
            )
        lines.append(f"wall time covered: {self.wall_time:.3f}s")
        lines.append("")
        header = [
            "Phase",
            "Calls",
            "Total (s)",
            "Self (s)",
            "Self %",
            "p50 (ms)",
            "p95 (ms)",
        ]
        total_self = sum(p.self_time for p in self.phases.values()) or 1.0
        rows = [header]
        for phase in sorted(
            self.phases.values(), key=lambda p: p.self_time, reverse=True
        ):
            rows.append(
                [
                    phase.name,
                    str(phase.count),
                    f"{phase.total:.4f}",
                    f"{phase.self_time:.4f}",
                    f"{100.0 * phase.self_time / total_self:.1f}",
                    f"{phase.percentile(0.50) * 1e3:.3f}",
                    f"{phase.percentile(0.95) * 1e3:.3f}",
                ]
            )
        lines.extend(_table(rows))
        if self.cache_rates:
            lines.append("")
            lines.append("Cache hit rates:")
            for name in sorted(self.cache_rates):
                hits, misses, rate = self.cache_rates[name]
                lines.append(
                    f"  {name}: {100.0 * rate:.1f}% "
                    f"({hits} hits / {misses} misses)"
                )
        if self.slowest_programs:
            lines.append("")
            lines.append(f"Slowest programs (top {top}):")
            for label, seconds in self.slowest_programs[:top]:
                lines.append(f"  {label}: {seconds:.4f}s")
        if self.solver:
            smt_phase = self.phases.get("smt.solve")
            lines.append("")
            lines.extend(
                solver_section_lines(
                    self.solver,
                    smt_total=smt_phase.total if smt_phase else None,
                )
            )
        return "\n".join(lines)


def _table(rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def solver_section_lines(
    doc: Dict[str, object],
    smt_total: Optional[float] = None,
    top: int = 10,
) -> List[str]:
    """The ``repro report`` solver-observatory section, as text lines.

    ``smt_total`` is the trace's inclusive ``smt.solve`` phase total; when
    given, the header states what fraction of that wall time the profiled,
    class-attributed queries account for.
    """
    from repro.telemetry import solver as SP

    if not doc or not doc.get("classes"):
        return []
    totals = SP.doc_totals(doc)
    profiled = totals["seconds_us"] / 1e6
    named = profiled * SP.attribution(doc)
    lines = ["Solver observatory:"]
    header = (
        f"  {totals['queries']} queries profiled, {profiled:.4f}s total"
    )
    if smt_total:
        header += (
            f"; {100.0 * min(1.0, named / smt_total):.1f}% of smt.solve "
            f"wall time ({smt_total:.4f}s) attributed to named classes"
        )
    elif profiled:
        header += (
            f"; {100.0 * SP.attribution(doc):.1f}% attributed to named "
            "classes"
        )
    lines.append(header)

    classes = doc.get("classes", {})
    if classes:
        lines.append("")
        lines.append("  Time by coverage class:")
        rows = [
            [
                "Class",
                "Queries",
                "Sat",
                "Time (s)",
                "Time %",
                "Restarts/q",
                "Repairs/q",
                "Prep hit %",
            ]
        ]
        total_us = totals["seconds_us"] or 1
        ordered = sorted(
            classes.items(),
            key=lambda item: (-int(item[1].get("seconds_us", 0)), item[0]),
        )
        for klass, stats in ordered:
            queries = int(stats.get("queries", 0)) or 1
            prep = int(stats.get("prepared_hits", 0)) + int(
                stats.get("prepared_misses", 0)
            )
            rows.append(
                [
                    klass,
                    str(stats.get("queries", 0)),
                    str(stats.get("sat", 0)),
                    f"{int(stats.get('seconds_us', 0)) / 1e6:.4f}",
                    f"{100.0 * int(stats.get('seconds_us', 0)) / total_us:.1f}",
                    f"{int(stats.get('restarts', 0)) / queries:.2f}",
                    f"{int(stats.get('repairs', 0)) / queries:.1f}",
                    f"{100.0 * int(stats.get('prepared_hits', 0)) / prep:.0f}"
                    if prep
                    else "-",
                ]
            )
        lines.extend("  " + line for line in _table(rows))

    hist = totals.get("restart_hist") or {}
    if hist:
        buckets = sorted(hist.items(), key=lambda item: int(item[0]))
        rendered = "  ".join(
            f"{bucket}x{count}" for bucket, count in buckets
        )
        lines.append("")
        lines.append(f"  Restart distribution (restarts x queries): {rendered}")
    warm = int(totals.get("warm_sat", 0))
    cold = int(totals.get("cold_sat", 0))
    if warm + cold:
        lines.append(
            f"  Warm-start efficacy: {warm}/{warm + cold} sat on a warm "
            f"restart ({100.0 * warm / (warm + cold):.1f}%)"
        )

    entries = list(doc.get("top", ()))[:top]
    if entries:
        lines.append("")
        lines.append(f"  Hardest queries (top {len(entries)}):")
        rows = [
            [
                "Class",
                "Phase",
                "ms",
                "Outcome",
                "Restarts",
                "Repairs",
                "Conjuncts",
                "Terms",
            ]
        ]
        for entry in entries:
            rows.append(
                [
                    str(entry.get("class", "?")),
                    str(entry.get("phase", "?")),
                    f"{int(entry.get('seconds_us', 0)) / 1e3:.2f}",
                    str(entry.get("outcome", "?")),
                    str(entry.get("restarts", 0)),
                    str(entry.get("repairs", 0)),
                    f"{entry.get('conjuncts', 0)}+{entry.get('extras', 0)}",
                    str(entry.get("term_size", 0)),
                ]
            )
        lines.extend("  " + line for line in _table(rows))
    return lines


def analyze_events(
    events: Sequence[Dict[str, object]],
    metrics_snapshot: Optional[Dict] = None,
) -> TraceReport:
    """Build a :class:`TraceReport` from parsed trace events.

    Self time uses the recorded parent ids (``args.parent_id``), which are
    unique per ``pid``; spans from different shard processes never
    parent each other.
    """
    meta: Dict[str, object] = {}
    snapshot: Dict = dict(metrics_snapshot or {})
    solver: Optional[Dict[str, object]] = None
    spans = []
    for event in events:
        name = event.get("name")
        if event.get("ph") == "M":
            if name == STAMP_EVENT:
                meta = dict(event.get("args") or {})
            elif name == METRICS_EVENT and not snapshot:
                snapshot = dict(
                    (event.get("args") or {}).get("snapshot") or {}
                )
            elif name == SOLVER_EVENT and solver is None:
                solver = (event.get("args") or {}).get("solver") or None
            continue
        if event.get("ph") != "X":
            continue
        try:
            spans.append(
                (
                    str(name),
                    float(event["ts"]) / 1e6,
                    float(event["dur"]) / 1e6,
                    int(event.get("pid", 0)),
                    (event.get("args") or {}),
                )
            )
        except (KeyError, TypeError, ValueError):
            continue

    phases: Dict[str, PhaseStats] = {}
    children_time: Dict[Tuple[int, int], float] = {}
    starts: List[float] = []
    ends: List[float] = []
    slow: List[Tuple[str, float]] = []
    for name, start, duration, pid, args in spans:
        parent = args.get("parent_id")
        if isinstance(parent, int):
            key = (pid, parent)
            children_time[key] = children_time.get(key, 0.0) + duration
        starts.append(start)
        ends.append(start + duration)
    for name, start, duration, pid, args in spans:
        phase = phases.get(name)
        if phase is None:
            phase = phases[name] = PhaseStats(name=name)
        phase.count += 1
        phase.total += duration
        span_id = args.get("span_id")
        child = (
            children_time.get((pid, span_id), 0.0)
            if isinstance(span_id, int)
            else 0.0
        )
        phase.self_time += max(0.0, duration - child)
        phase.durations.append(duration)
        if name == "program":
            label = str(
                args.get("name") or f"program {args.get('program', '?')}"
            )
            slow.append((label, duration))

    cache_rates: Dict[str, Tuple[int, int, float]] = {}
    gathered: Dict[str, Dict[str, int]] = {}
    for metric, entry in snapshot.items():
        if not metric.startswith("cache.") or entry.get("type") != "counter":
            continue
        try:
            _, cache, kind = metric.split(".", 2)
        except ValueError:
            continue
        if kind in ("hits", "misses"):
            gathered.setdefault(cache, {})[kind] = int(entry["value"])
    for cache, counts in gathered.items():
        hits = counts.get("hits", 0)
        misses = counts.get("misses", 0)
        total = hits + misses
        cache_rates[cache] = (hits, misses, hits / total if total else 0.0)

    slow.sort(key=lambda item: item[1], reverse=True)
    wall = (max(ends) - min(starts)) if spans else 0.0
    return TraceReport(
        phases=phases,
        wall_time=wall,
        cache_rates=cache_rates,
        slowest_programs=slow,
        meta=meta,
        solver=solver,
    )


def analyze_trace(
    path: str, metrics_snapshot: Optional[Dict] = None
) -> TraceReport:
    """Parse and analyze a trace file written by the exporters."""
    return analyze_events(read_trace(path), metrics_snapshot)
