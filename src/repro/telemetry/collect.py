"""Cross-process telemetry collection and the bridges between layers.

Workers record spans/metrics into their process-local tracer/registry;
:func:`shard_begin`/:func:`shard_end` carve out one shard's share (a span
drain plus a metrics snapshot delta), which travels to the parent inside
the picklable ``ShardResult`` — strictly out-of-band of the deterministic
campaign data, over the runner's existing result pipes.  The parent folds
every shard's share back together (:func:`absorb_shard_payload` via the
merge layer), so sequential, multi-worker, and resumed runs all produce
one combined trace/metrics view without perturbing
``deterministic_counters()``.

Bridges into the one metrics namespace:

* :func:`enable`/:func:`disable` — master switch for tracer + registry,
  plus the span→latency-histogram hook (``span.<name>.seconds``).
* :func:`event_bridge` — an :data:`repro.runner.events.EventSink` mapping
  runner events to ``runner.*`` counters/histograms (tee-able with the CLI
  progress printer).
* :func:`record_cache_counters` — :mod:`repro.bir.intern` hit/miss deltas
  as ``cache.<name>.hits``/``.misses`` counters.
* :func:`stats_metrics` — a ``CampaignStats`` rendered as
  ``campaign.*`` metrics (including per-cache hit-rate gauges).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.telemetry import metrics as M
from repro.telemetry import solver as SP
from repro.telemetry import trace as T
from repro.telemetry.trace import SpanRecord

__all__ = [
    "enable",
    "disable",
    "enabled",
    "shard_begin",
    "shard_end",
    "absorb_shard_payload",
    "event_bridge",
    "record_cache_counters",
    "stats_metrics",
]

#: What one shard contributes: (recording pid, spans, metrics delta,
#: solver-profile aggregate).  Older payloads were 3-tuples without the
#: solver slot; :func:`absorb_shard_payload` accepts both.
ShardTelemetry = Tuple[
    int,
    List[SpanRecord],
    Dict[str, Dict[str, object]],
    Optional[Dict[str, object]],
]


def _span_histogram_hook(record: SpanRecord) -> None:
    M.histogram(f"span.{record.name}.seconds").observe(record.duration)


def enable() -> None:
    """Switch the whole telemetry layer on (tracer, registry, solver
    profiler, span→histogram bridge)."""
    T.set_enabled(True)
    M.set_enabled(True)
    SP.set_enabled(True)
    T.tracer.on_finish(_span_histogram_hook)


def disable() -> None:
    """Switch everything off and drop buffered data (the default state)."""
    T.tracer.on_finish(None)
    T.set_enabled(False)
    M.set_enabled(False)
    SP.set_enabled(False)


def enabled() -> bool:
    return T.enabled() or M.enabled() or SP.enabled()


# -- worker side -------------------------------------------------------------


def shard_begin() -> Optional[Dict[str, Dict[str, object]]]:
    """Mark the start of a shard; returns the opaque marker for
    :func:`shard_end` (None while telemetry is disabled — the whole
    mechanism then costs two attribute reads per shard)."""
    if not enabled():
        return None
    # Flush spans (and any solver-profile residue) of a previous shard in
    # this process so the upcoming drain is exactly this shard's (the
    # parent absorbed those already).
    T.drain()
    SP.drain()
    return M.snapshot()


def shard_end(
    marker: Optional[Dict[str, Dict[str, object]]]
) -> Optional[ShardTelemetry]:
    """This shard's spans, metrics delta and solver aggregate, or None."""
    if marker is None and not enabled():
        return None
    spans = T.drain()
    delta = M.diff_snapshot(M.snapshot(), marker or {})
    return (os.getpid(), spans, delta, SP.drain())


# -- parent side -------------------------------------------------------------


def absorb_shard_payload(
    payload: Optional[ShardTelemetry],
    spans: List[SpanRecord],
    snapshot: Dict[str, Dict[str, object]],
    solver_docs: Optional[List[Dict[str, object]]] = None,
) -> None:
    """Fold one shard's telemetry into campaign-level accumulators.

    Spans were *drained* out of the recording tracer, so they are always
    taken; the solver aggregate is drained too and appended to
    ``solver_docs`` (for an order-invariant merge by the caller).  Metric
    deltas are *snapshots* of a still-live registry: a shard that ran in
    this very process (inline execution) already left its metrics in the
    process registry, so only deltas from other pids are merged —
    otherwise an inline run would count everything twice.
    """
    if not payload:
        return
    pid, shard_spans, delta = payload[:3]
    solver_doc = payload[3] if len(payload) > 3 else None
    spans.extend(shard_spans)
    if solver_doc and solver_docs is not None:
        solver_docs.append(solver_doc)
    if pid != os.getpid():
        M.merge_snapshot(snapshot, delta)


def event_bridge(chain=None):
    """An event sink feeding runner events into the metrics registry.

    Counts shard lifecycle events, observes executed (non-cached) shard
    durations into ``runner.shard.seconds``, and counts resumed shards
    separately — cached results did not run, so their recorded durations
    never reach the latency histogram (see the checkpoint-resume timing
    fix in :mod:`repro.runner.merge`).  ``chain`` (another sink, e.g. the
    CLI progress printer) is invoked afterwards with the same event.
    """
    # Imported here: repro.runner imports repro.telemetry-free modules
    # today, and keeping this one-way avoids an import cycle.
    from repro.runner import events as EV

    def sink(event) -> None:
        if isinstance(event, EV.ShardFinished):
            if event.cached:
                M.counter("runner.shards_resumed").inc()
            else:
                M.counter("runner.shards_finished").inc()
                M.histogram("runner.shard.seconds").observe(event.duration)
        elif isinstance(event, EV.ShardStarted):
            M.counter("runner.shards_started").inc()
        elif isinstance(event, EV.ShardRetried):
            M.counter("runner.shard_retries").inc()
        elif isinstance(event, EV.ShardFailed):
            M.counter("runner.shard_failures").inc()
        elif isinstance(event, EV.RunnerDegraded):
            M.counter("runner.degraded").inc()
        elif isinstance(event, EV.CounterexampleFound):
            M.counter("runner.counterexamples_found").inc()
        elif isinstance(event, EV.CampaignFinished):
            M.counter("runner.campaigns_finished").inc()
        elif isinstance(event, EV.HealthEvent):
            M.counter("health.events").inc()
            M.counter(f"health.{event.detector}").inc()
        if chain is not None:
            chain(event)

    return sink


def record_cache_counters(deltas: Dict[str, int]) -> None:
    """Record intern-cache hit/miss deltas (``<cache>_hits`` flat keys) as
    ``cache.<cache>.hits``/``.misses`` counters."""
    if not M.enabled():
        return
    for key, value in deltas.items():
        if key.endswith("_hits"):
            M.counter(f"cache.{key[:-5]}.hits").inc(value)
        elif key.endswith("_misses"):
            M.counter(f"cache.{key[:-7]}.misses").inc(value)


def stats_metrics(stats) -> Dict[str, Dict[str, object]]:
    """A ``CampaignStats`` as a metrics snapshot fragment.

    Prefixed per campaign so a ``table1`` run exports all columns side by
    side; includes the per-cache hit-rate gauges the raw hit/miss counters
    don't surface.
    """
    prefix = f"campaign.{stats.name}"
    out: Dict[str, Dict[str, object]] = {}

    def _counter(name: str, value: int) -> None:
        out[f"{prefix}.{name}"] = {"type": "counter", "value": value}

    def _gauge(name: str, value: float) -> None:
        out[f"{prefix}.{name}"] = {"type": "gauge", "value": value}

    for name, value in stats.deterministic_counters().items():
        _counter(name, value)
    _gauge("gen_time_total_seconds", stats.gen_time_total)
    _gauge("exe_time_total_seconds", stats.exe_time_total)
    _gauge("avg_gen_time_seconds", stats.avg_gen_time)
    _gauge("avg_exe_time_seconds", stats.avg_exe_time)
    if stats.time_to_counterexample is not None:
        _gauge(
            "time_to_counterexample_seconds", stats.time_to_counterexample
        )
    for cache, rate in stats.cache_hit_rates().items():
        _gauge(f"cache.{cache}.hit_rate", rate)
    return out
