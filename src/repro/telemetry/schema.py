"""JSON schema for exported metric snapshots, with a built-in validator.

``METRICS_SCHEMA`` is a standard JSON-Schema (draft-07 subset) document, so
external tooling can validate snapshots with any off-the-shelf validator;
:func:`validate` implements the subset used here in pure Python so CI needs
no extra dependency.  Run as a module to validate a file::

    python -m repro.telemetry.schema metrics.json
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

__all__ = ["METRICS_SCHEMA", "SchemaError", "validate", "validate_file"]

METRICS_SCHEMA: Dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro metrics snapshot",
    "type": "object",
    "required": ["version", "meta", "metrics"],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "meta": {
            "type": "object",
            "required": ["git_sha", "python", "timestamp"],
            "properties": {
                "git_sha": {"type": ["string", "null"]},
                "python": {"type": "string"},
                "platform": {"type": "string"},
                "timestamp": {"type": "string"},
            },
        },
        "metrics": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["type"],
                "properties": {
                    "type": {"enum": ["counter", "gauge", "histogram"]},
                    "value": {"type": "number"},
                    "buckets": {
                        "type": "array",
                        "items": {"type": "number"},
                    },
                    "counts": {
                        "type": "array",
                        "items": {"type": "integer", "minimum": 0},
                    },
                    "sum": {"type": "number"},
                    "count": {"type": "integer", "minimum": 0},
                    "min": {"type": ["number", "null"]},
                    "max": {"type": ["number", "null"]},
                },
            },
        },
    },
}


class SchemaError(ValueError):
    """A document does not conform to :data:`METRICS_SCHEMA`."""


def validate(doc: object, schema: Dict = METRICS_SCHEMA, path: str = "$") -> None:
    """Validate ``doc`` against the JSON-Schema subset used by this repo.

    Supports: ``type`` (incl. unions), ``enum``, ``required``,
    ``properties``, ``additionalProperties`` (schema form), ``items``,
    ``minimum``.  Raises :class:`SchemaError` naming the offending path.
    """
    expected = schema.get("type")
    if expected is not None:
        kinds = expected if isinstance(expected, list) else [expected]
        if not any(_is_type(doc, kind) for kind in kinds):
            raise SchemaError(
                f"{path}: expected {'/'.join(kinds)}, "
                f"got {type(doc).__name__}"
            )
    if "enum" in schema and doc not in schema["enum"]:
        raise SchemaError(f"{path}: {doc!r} not one of {schema['enum']}")
    if "minimum" in schema and isinstance(doc, (int, float)):
        if doc < schema["minimum"]:
            raise SchemaError(f"{path}: {doc} below minimum {schema['minimum']}")
    if isinstance(doc, dict):
        for key in schema.get("required", ()):
            if key not in doc:
                raise SchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, value in doc.items():
            if key in properties:
                validate(value, properties[key], f"{path}.{key}")
            elif isinstance(extra, dict):
                validate(value, extra, f"{path}.{key}")
    if isinstance(doc, list) and "items" in schema:
        for index, item in enumerate(doc):
            validate(item, schema["items"], f"{path}[{index}]")


def _is_type(value: object, kind: str) -> bool:
    if kind == "object":
        return isinstance(value, dict)
    if kind == "array":
        return isinstance(value, list)
    if kind == "string":
        return isinstance(value, str)
    if kind == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "number":
        return (
            isinstance(value, (int, float)) and not isinstance(value, bool)
        )
    if kind == "null":
        return value is None
    if kind == "boolean":
        return isinstance(value, bool)
    return False


def validate_file(path: str) -> Dict:
    """Load and validate a metrics snapshot file; returns the document."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    validate(doc)
    return doc


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.schema SNAPSHOT.json", file=sys.stderr)
        return 2
    try:
        doc = validate_file(argv[0])
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"{argv[0]}: INVALID — {exc}", file=sys.stderr)
        return 1
    print(f"{argv[0]}: valid ({len(doc.get('metrics', {}))} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
