"""End-to-end pipeline telemetry: tracing, metrics, exporters, reports.

The observability layer for the reproduction's headline numbers: a
span-based tracer instrumenting every pipeline phase (template generation,
observation augmentation, symbolic execution, relation synthesis, SMT
solving per restart, hardware execution, certification), a metrics
registry absorbing the previously ad-hoc sources (``CampaignStats``
timings, intern cache counters, runner events), and exporters for
Chrome-trace/Perfetto spans plus Prometheus/JSON metric snapshots.

Everything is **off by default** and costs ~nothing disabled (the
:mod:`repro.bir.intern` kill-switch pattern); campaign results are
bit-identical on ``deterministic_counters()`` with telemetry on or off, at
any worker count — collection is strictly out-of-band of the result data.

Layers:

* :mod:`repro.telemetry.trace`   — span tracer (``with trace.span(...)``)
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms
* :mod:`repro.telemetry.collect` — cross-process aggregation + bridges
* :mod:`repro.telemetry.export`  — Chrome trace, Prometheus text, JSON
* :mod:`repro.telemetry.schema`  — snapshot JSON schema + validator
* :mod:`repro.telemetry.report`  — phase-breakdown analysis (CLI report)
"""

from repro.telemetry import metrics, trace
from repro.telemetry.collect import (
    absorb_shard_payload,
    disable,
    enable,
    enabled,
    event_bridge,
    record_cache_counters,
    shard_begin,
    shard_end,
    stats_metrics,
)
from repro.telemetry.export import (
    read_trace,
    render_prometheus,
    stamp,
    write_chrome_trace,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshot,
    merge_snapshot,
)
from repro.telemetry.report import TraceReport, analyze_events, analyze_trace
from repro.telemetry.schema import METRICS_SCHEMA, SchemaError, validate
from repro.telemetry.trace import SpanRecord, Tracer, span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "SchemaError",
    "SpanRecord",
    "TraceReport",
    "Tracer",
    "absorb_shard_payload",
    "analyze_events",
    "analyze_trace",
    "diff_snapshot",
    "disable",
    "enable",
    "enabled",
    "event_bridge",
    "merge_snapshot",
    "metrics",
    "read_trace",
    "record_cache_counters",
    "render_prometheus",
    "shard_begin",
    "shard_end",
    "span",
    "stamp",
    "stats_metrics",
    "trace",
    "validate",
    "write_chrome_trace",
    "write_metrics_json",
    "write_metrics_prometheus",
]
