"""The metrics registry: counters, gauges, explicit-bucket histograms.

One flat namespace absorbs every ad-hoc metric source in the codebase —
``CampaignStats`` timing fields, the :mod:`repro.bir.intern` cache
counters, runner events (via :func:`repro.telemetry.collect.event_bridge`)
— so snapshots export through one pair of writers (Prometheus text and
JSON, :mod:`repro.telemetry.export`).

Naming convention: dotted lowercase paths (``campaign.experiments``,
``cache.simplify.hits``, ``span.smt.solve.seconds``); the Prometheus
exporter sanitises the dots.

Kill-switch contract: like :mod:`repro.telemetry.trace`, recording is
disabled by default and every mutator returns after one module-global
check.  Snapshots are plain dicts so they pickle across the runner's
worker pipes; :func:`merge_snapshot`/:func:`diff_snapshot` give the
parent additive cross-process aggregation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge_snapshot",
    "diff_snapshot",
    "set_enabled",
    "enabled",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Explicit latency buckets (seconds) sized for this pipeline: SMT repairs
#: land in the sub-millisecond range, hardware experiments and symbolic
#: execution in the milliseconds, whole shards in the seconds.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """An explicit-bucket latency histogram.

    ``buckets`` are upper bounds (non-cumulative storage; the Prometheus
    exporter cumulates).  Observations above the last bound land in the
    implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def percentile(self, q: float) -> float:
        """Estimate the q-quantile (0..1) by interpolating within buckets."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            in_bucket = self.counts[i]
            if seen + in_bucket >= rank:
                if in_bucket == 0:
                    return bound
                frac = (rank - seen) / in_bucket
                return lower + frac * (bound - lower)
            seen += in_bucket
            lower = bound
        # Overflow bucket: bounded above by the observed max.
        return self.max if self.max is not None else lower

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """A process-local named collection of metrics.

    Instruments are created on first use (``registry.counter("x").inc()``)
    and silently become inert no-op stand-ins while the registry is
    disabled, so instrumentation sites need no guards of their own.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._metrics: Dict[str, object] = {}
        self._null_counter = Counter("__null__")
        self._null_gauge = Gauge("__null__")
        self._null_histogram = Histogram("__null__", (1.0,))

    def counter(self, name: str) -> Counter:
        if not self._enabled:
            return self._null_counter
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        if not self._enabled:
            return self._null_gauge
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        if not self._enabled:
            return self._null_histogram
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, buckets)
        return metric

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Picklable/JSON-able view of every registered metric."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def absorb(self, delta: Dict[str, Dict[str, object]]) -> None:
        """Fold another process's snapshot (delta) into this registry."""
        if not self._enabled or not delta:
            return
        for name, entry in delta.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name).set(entry["value"])
            elif kind == "histogram":
                metric = self.histogram(name, entry["buckets"])
                if metric.buckets != tuple(entry["buckets"]):
                    continue  # incompatible layout; drop rather than corrupt
                for i, n in enumerate(entry["counts"]):
                    metric.counts[i] += n
                metric.sum += entry["sum"]
                metric.count += entry["count"]
                for extreme, pick in (("min", min), ("max", max)):
                    other = entry.get(extreme)
                    if other is None:
                        continue
                    current = getattr(metric, extreme)
                    setattr(
                        metric,
                        extreme,
                        other if current is None else pick(current, other),
                    )

    def set_enabled(self, value: bool) -> None:
        """Switch recording on/off; disabling drops all metrics."""
        self._enabled = bool(value)
        if not self._enabled:
            self._metrics = {}

    def enabled(self) -> bool:
        return self._enabled


def merge_snapshot(
    into: Dict[str, Dict[str, object]], delta: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Additive merge of two snapshots (parent-side shard aggregation)."""
    for name, entry in delta.items():
        mine = into.get(name)
        if mine is None:
            into[name] = _copy_entry(entry)
            continue
        if mine.get("type") != entry.get("type"):
            continue
        kind = entry.get("type")
        if kind == "counter":
            mine["value"] += entry["value"]
        elif kind == "gauge":
            mine["value"] = entry["value"]
        elif kind == "histogram":
            if mine["buckets"] != entry["buckets"]:
                continue
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], entry["counts"])
            ]
            mine["sum"] += entry["sum"]
            mine["count"] += entry["count"]
            for extreme, pick in (("min", min), ("max", max)):
                a, b = mine.get(extreme), entry.get(extreme)
                mine[extreme] = (
                    b if a is None else a if b is None else pick(a, b)
                )
    return into


def diff_snapshot(
    after: Dict[str, Dict[str, object]], before: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """``after - before``, for attributing one shard's share of a
    process-lifetime registry (one worker process runs many shards)."""
    out: Dict[str, Dict[str, object]] = {}
    for name, entry in after.items():
        base = before.get(name)
        kind = entry.get("type")
        if base is None or base.get("type") != kind:
            out[name] = _copy_entry(entry)
            continue
        if kind == "counter":
            value = entry["value"] - base["value"]
            if value:
                out[name] = {"type": "counter", "value": value}
        elif kind == "gauge":
            if entry["value"] != base["value"]:
                out[name] = _copy_entry(entry)
        elif kind == "histogram":
            if base["buckets"] != entry["buckets"]:
                out[name] = _copy_entry(entry)
                continue
            count = entry["count"] - base["count"]
            if count <= 0:
                continue
            out[name] = {
                "type": "histogram",
                "buckets": list(entry["buckets"]),
                "counts": [
                    a - b for a, b in zip(entry["counts"], base["counts"])
                ],
                "sum": entry["sum"] - base["sum"],
                "count": count,
                # Extremes are not subtractable; the lifetime values are the
                # best available bound for the delta window.
                "min": entry["min"],
                "max": entry["max"],
            }
    return out


def _copy_entry(entry: Dict[str, object]) -> Dict[str, object]:
    out = dict(entry)
    for key in ("buckets", "counts"):
        if isinstance(out.get(key), list):
            out[key] = list(out[key])
    return out


#: The process-wide registry every instrumentation site talks to.
registry = MetricsRegistry()

# Module-level conveniences bound to the shared registry ---------------------


def counter(name: str) -> Counter:
    return registry.counter(name)


def gauge(name: str) -> Gauge:
    return registry.gauge(name)


def histogram(
    name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
) -> Histogram:
    return registry.histogram(name, buckets)


def snapshot() -> Dict[str, Dict[str, object]]:
    return registry.snapshot()


def set_enabled(value: bool) -> None:
    registry.set_enabled(value)


def enabled() -> bool:
    return registry.enabled()
