"""A small two-pass assembler and disassembler for the mini ISA.

Accepted syntax (one instruction or label per line, ``//`` and ``;``
comments)::

    start:
        mov  x1, #0x40
        add  x2, x0, x1
        ldr  x3, [x2, x1]
        ldr  x4, [x2, #8]
        cmp  x3, x4
        b.ge skip
        ldr  x5, [x6, x3]
    skip:
        ret
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import IsaError
from repro.isa.instructions import (
    AluImm,
    AluOp,
    AluReg,
    B,
    BCond,
    CmpImm,
    CmpReg,
    Cond,
    Instruction,
    Ldr,
    MovImm,
    MovReg,
    Nop,
    Ret,
    Str,
    TstImm,
)
from repro.isa.program import AsmProgram
from repro.isa.registers import parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_MEM_RE = re.compile(r"^\[\s*([^,\]]+)\s*(?:,\s*([^\]]+)\s*)?\]$")

_ALU_MNEMONICS = {op.value: op for op in AluOp}


def _parse_imm(text: str) -> int:
    t = text.strip()
    if t.startswith("#"):
        t = t[1:]
    try:
        return int(t, 0)
    except ValueError:
        raise IsaError(f"bad immediate {text!r}") from None


def _split_operands(rest: str) -> List[str]:
    # Split on commas that are not inside brackets.
    parts, depth, current = [], 0, []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_mem_operand(text: str) -> Tuple:
    """Parse ``[rn]``, ``[rn, rm]`` or ``[rn, #imm]`` into (rn, rm, imm)."""
    m = _MEM_RE.match(text.strip())
    if not m:
        raise IsaError(f"bad memory operand {text!r}")
    rn = parse_register(m.group(1))
    offset = m.group(2)
    if offset is None:
        return rn, None, 0
    offset = offset.strip()
    if offset.startswith("#") or offset.lstrip("-").isdigit() or offset.startswith("0x"):
        return rn, None, _parse_imm(offset)
    return rn, parse_register(offset), 0


def _parse_instruction(mnemonic: str, operands: List[str]) -> Instruction:
    if mnemonic == "nop":
        _expect(operands, 0, mnemonic)
        return Nop()
    if mnemonic == "ret":
        _expect(operands, 0, mnemonic)
        return Ret()
    if mnemonic == "b":
        _expect(operands, 1, mnemonic)
        return B(operands[0])
    if mnemonic.startswith("b."):
        _expect(operands, 1, mnemonic)
        try:
            cond = Cond(mnemonic[2:])
        except ValueError:
            raise IsaError(f"unknown condition {mnemonic!r}") from None
        return BCond(cond, operands[0])
    if mnemonic == "mov":
        _expect(operands, 2, mnemonic)
        rd = parse_register(operands[0])
        if operands[1].startswith("#"):
            return MovImm(rd, _parse_imm(operands[1]))
        return MovReg(rd, parse_register(operands[1]))
    if mnemonic == "cmp":
        _expect(operands, 2, mnemonic)
        rn = parse_register(operands[0])
        if operands[1].startswith("#"):
            return CmpImm(rn, _parse_imm(operands[1]))
        return CmpReg(rn, parse_register(operands[1]))
    if mnemonic == "tst":
        _expect(operands, 2, mnemonic)
        return TstImm(parse_register(operands[0]), _parse_imm(operands[1]))
    if mnemonic in ("ldr", "str"):
        _expect(operands, 2, mnemonic)
        rt = parse_register(operands[0])
        rn, rm, imm = _parse_mem_operand(operands[1])
        cls = Ldr if mnemonic == "ldr" else Str
        return cls(rt, rn, rm, imm)
    if mnemonic in _ALU_MNEMONICS:
        _expect(operands, 3, mnemonic)
        op = _ALU_MNEMONICS[mnemonic]
        rd = parse_register(operands[0])
        rn = parse_register(operands[1])
        if operands[2].startswith("#"):
            return AluImm(op, rd, rn, _parse_imm(operands[2]))
        return AluReg(op, rd, rn, parse_register(operands[2]))
    raise IsaError(f"unknown mnemonic {mnemonic!r}")


def _expect(operands: List[str], count: int, mnemonic: str) -> None:
    if len(operands) != count:
        raise IsaError(
            f"{mnemonic} expects {count} operand(s), got {len(operands)}"
        )


def assemble(source: str, name: str = "asm") -> AsmProgram:
    """Assemble source text into an :class:`AsmProgram`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for raw_line in source.splitlines():
        line = raw_line.split("//")[0].split(";")[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in labels:
                raise IsaError(f"duplicate label {label!r}")
            labels[label] = len(instructions)
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        instructions.append(_parse_instruction(mnemonic, operands))
    return AsmProgram(instructions, labels, name=name)


def disassemble(program: AsmProgram) -> str:
    """Render an :class:`AsmProgram` back to assembly text."""
    by_index: Dict[int, List[str]] = {}
    for label, index in program.labels.items():
        by_index.setdefault(index, []).append(label)
    lines: List[str] = []
    for i, inst in enumerate(program.instructions):
        for label in sorted(by_index.get(i, [])):
            lines.append(f"{label}:")
        lines.append(f"    {format_instruction(inst)}")
    for label in sorted(by_index.get(len(program.instructions), [])):
        lines.append(f"{label}:")
    return "\n".join(lines)


def format_instruction(inst: Instruction) -> str:
    """One-line assembly rendering of an instruction."""
    if isinstance(inst, Nop):
        return "nop"
    if isinstance(inst, Ret):
        return "ret"
    if isinstance(inst, B):
        return f"b {inst.target}"
    if isinstance(inst, BCond):
        return f"b.{inst.cond.value} {inst.target}"
    if isinstance(inst, MovImm):
        return f"mov {inst.rd}, #{inst.imm:#x}"
    if isinstance(inst, MovReg):
        return f"mov {inst.rd}, {inst.rn}"
    if isinstance(inst, CmpReg):
        return f"cmp {inst.rn}, {inst.rm}"
    if isinstance(inst, CmpImm):
        return f"cmp {inst.rn}, #{inst.imm:#x}"
    if isinstance(inst, TstImm):
        return f"tst {inst.rn}, #{inst.imm:#x}"
    if isinstance(inst, AluReg):
        return f"{inst.op.value} {inst.rd}, {inst.rn}, {inst.rm}"
    if isinstance(inst, AluImm):
        return f"{inst.op.value} {inst.rd}, {inst.rn}, #{inst.imm:#x}"
    if isinstance(inst, (Ldr, Str)):
        mnemonic = "ldr" if isinstance(inst, Ldr) else "str"
        if inst.rm is not None:
            return f"{mnemonic} {inst.rt}, [{inst.rn}, {inst.rm}]"
        if inst.imm:
            return f"{mnemonic} {inst.rt}, [{inst.rn}, #{inst.imm:#x}]"
        return f"{mnemonic} {inst.rt}, [{inst.rn}]"
    raise IsaError(f"cannot format {inst!r}")
