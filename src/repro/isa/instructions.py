"""Instruction forms of the mini ISA.

Condition handling follows the CMP/B.cond idiom: ``CmpReg``/``CmpImm`` record
the comparison operands in the (architecturally hidden) comparison state, and
``BCond`` evaluates its condition against that state.  ``TstImm`` sets the
comparison state to ``(rn & imm, 0)`` so EQ/NE conditions test bit patterns —
the form the SiSCLoak "classification bit" counterexample uses (Fig. 6).
This is exact for the flags-from-subtraction conditions the templates use and
avoids carrying four NZCV bits through the whole toolchain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import IsaError
from repro.isa.registers import Reg


class AluOp(enum.Enum):
    """ALU operations shared by the register and immediate forms.

    MUL has data-dependent latency on the simulated core (early-termination
    multiplier), making it the variable-time-arithmetic channel of §2.3.
    """

    ADD = "add"
    SUB = "sub"
    AND = "and"
    ORR = "orr"
    EOR = "eor"
    LSL = "lsl"
    LSR = "lsr"
    MUL = "mul"


class Cond(enum.Enum):
    """Branch conditions (AArch64 mnemonics)."""

    EQ = "eq"  # equal
    NE = "ne"  # not equal
    LO = "lo"  # unsigned lower
    HS = "hs"  # unsigned higher or same
    LS = "ls"  # unsigned lower or same
    HI = "hi"  # unsigned higher
    LT = "lt"  # signed less than
    GE = "ge"  # signed greater or equal
    LE = "le"  # signed less or equal
    GT = "gt"  # signed greater than

    def negated(self) -> "Cond":
        """The complementary condition."""
        return _NEGATIONS[self]


_NEGATIONS = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LO: Cond.HS,
    Cond.HS: Cond.LO,
    Cond.LS: Cond.HI,
    Cond.HI: Cond.LS,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.LE: Cond.GT,
    Cond.GT: Cond.LE,
}


class Instruction:
    """Base class for instructions."""

    def reads(self) -> Tuple[Reg, ...]:
        """Registers whose values this instruction consumes."""
        return ()

    def writes(self) -> Tuple[Reg, ...]:
        """Registers this instruction overwrites."""
        return ()

    def is_load(self) -> bool:
        return False

    def is_branch(self) -> bool:
        return False


@dataclass(frozen=True)
class MovImm(Instruction):
    """``mov rd, #imm``"""

    rd: Reg
    imm: int

    def writes(self):
        return (self.rd,)


@dataclass(frozen=True)
class MovReg(Instruction):
    """``mov rd, rn``"""

    rd: Reg
    rn: Reg

    def reads(self):
        return (self.rn,)

    def writes(self):
        return (self.rd,)


@dataclass(frozen=True)
class AluReg(Instruction):
    """``op rd, rn, rm`` for ALU ops."""

    op: AluOp
    rd: Reg
    rn: Reg
    rm: Reg

    def reads(self):
        return (self.rn, self.rm)

    def writes(self):
        return (self.rd,)


@dataclass(frozen=True)
class AluImm(Instruction):
    """``op rd, rn, #imm`` for ALU ops."""

    op: AluOp
    rd: Reg
    rn: Reg
    imm: int

    def reads(self):
        return (self.rn,)

    def writes(self):
        return (self.rd,)


@dataclass(frozen=True)
class Ldr(Instruction):
    """``ldr rt, [rn, rm]`` or ``ldr rt, [rn, #imm]``.

    The effective address is ``rn + rm`` when ``rm`` is given, else
    ``rn + imm``.
    """

    rt: Reg
    rn: Reg
    rm: Optional[Reg] = None
    imm: int = 0

    def __post_init__(self):
        if self.rm is not None and self.imm:
            raise IsaError("ldr takes a register or an immediate offset, not both")

    def reads(self):
        if self.rm is not None:
            return (self.rn, self.rm)
        return (self.rn,)

    def writes(self):
        return (self.rt,)

    def is_load(self) -> bool:
        return True


@dataclass(frozen=True)
class Str(Instruction):
    """``str rt, [rn, rm]`` or ``str rt, [rn, #imm]``."""

    rt: Reg
    rn: Reg
    rm: Optional[Reg] = None
    imm: int = 0

    def __post_init__(self):
        if self.rm is not None and self.imm:
            raise IsaError("str takes a register or an immediate offset, not both")

    def reads(self):
        if self.rm is not None:
            return (self.rt, self.rn, self.rm)
        return (self.rt, self.rn)


@dataclass(frozen=True)
class CmpReg(Instruction):
    """``cmp rn, rm``: record comparison state ``(rn, rm)``."""

    rn: Reg
    rm: Reg

    def reads(self):
        return (self.rn, self.rm)


@dataclass(frozen=True)
class CmpImm(Instruction):
    """``cmp rn, #imm``: record comparison state ``(rn, imm)``."""

    rn: Reg
    imm: int

    def reads(self):
        return (self.rn,)


@dataclass(frozen=True)
class TstImm(Instruction):
    """``tst rn, #imm``: record comparison state ``(rn & imm, 0)``."""

    rn: Reg
    imm: int

    def reads(self):
        return (self.rn,)


@dataclass(frozen=True)
class BCond(Instruction):
    """``b.cond label``: conditional direct branch."""

    cond: Cond
    target: str

    def is_branch(self) -> bool:
        return True


@dataclass(frozen=True)
class B(Instruction):
    """``b label``: unconditional direct branch."""

    target: str

    def is_branch(self) -> bool:
        return True


@dataclass(frozen=True)
class Ret(Instruction):
    """``ret``: end of the experiment program."""

    def is_branch(self) -> bool:
        return True


@dataclass(frozen=True)
class Nop(Instruction):
    """``nop``"""
