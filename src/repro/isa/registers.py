"""General-purpose registers of the mini ISA: X0..X30, 64 bits each."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IsaError

NUM_REGISTERS = 31
REGISTER_WIDTH = 64


@dataclass(frozen=True, order=True)
class Reg:
    """A general-purpose register, identified by index."""

    index: int

    def __post_init__(self):
        if not 0 <= self.index < NUM_REGISTERS:
            raise IsaError(f"register index out of range: {self.index}")

    @property
    def name(self) -> str:
        return f"x{self.index}"

    def __repr__(self) -> str:
        return self.name


def x(index: int) -> Reg:
    """Shorthand constructor: ``x(3)`` is register x3."""
    return Reg(index)


REGISTER_NAMES = tuple(f"x{i}" for i in range(NUM_REGISTERS))


def parse_register(text: str) -> Reg:
    """Parse a register name like ``x12`` (case-insensitive)."""
    t = text.strip().lower()
    if not t.startswith("x"):
        raise IsaError(f"not a register name: {text!r}")
    try:
        return Reg(int(t[1:]))
    except ValueError:
        raise IsaError(f"not a register name: {text!r}") from None
