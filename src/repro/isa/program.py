"""Assembly programs: an instruction sequence plus a label table."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import IsaError
from repro.isa.instructions import B, BCond, Instruction, Ldr
from repro.isa.registers import Reg


class AsmProgram:
    """An immutable assembly program.

    ``labels`` maps a label name to the index of the instruction it precedes;
    a label may point one past the last instruction (an "end" label).  All
    experiment programs must terminate, so the last reachable instruction on
    every path should be :class:`~repro.isa.instructions.Ret`; falling off the
    end of the instruction list also terminates (treated as an implicit ret).
    """

    def __init__(
        self,
        instructions: Iterable[Instruction],
        labels: Optional[Dict[str, int]] = None,
        name: str = "asm",
    ):
        self.instructions: Tuple[Instruction, ...] = tuple(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.name = name
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise IsaError(
                    f"label {label!r} points outside the program ({index})"
                )
        self._validate_branch_targets()

    def _validate_branch_targets(self) -> None:
        for inst in self.instructions:
            target = getattr(inst, "target", None)
            if target is not None and target not in self.labels:
                raise IsaError(f"branch to undefined label {target!r}")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def target_index(self, label: str) -> int:
        """Instruction index for a label."""
        try:
            return self.labels[label]
        except KeyError:
            raise IsaError(f"undefined label {label!r}") from None

    def registers_used(self) -> Tuple[Reg, ...]:
        """All registers read or written anywhere in the program, sorted."""
        regs = set()
        for inst in self.instructions:
            regs.update(inst.reads())
            regs.update(inst.writes())
        return tuple(sorted(regs))

    def input_registers(self) -> Tuple[Reg, ...]:
        """Registers read before being written on a straight scan.

        A conservative (superset) notion of the program's inputs: a register
        counts as an input unless every textual occurrence of a read is
        preceded by a write.  For the template programs, which are almost
        straight-line, this matches the true live-in set.
        """
        written = set()
        inputs = set()
        for inst in self.instructions:
            for r in inst.reads():
                if r not in written:
                    inputs.add(r)
            written.update(inst.writes())
        return tuple(sorted(inputs))

    def loads(self) -> List[Tuple[int, Ldr]]:
        """All load instructions with their indices."""
        return [
            (i, inst)
            for i, inst in enumerate(self.instructions)
            if isinstance(inst, Ldr)
        ]

    def count_branches(self) -> int:
        return sum(
            1 for inst in self.instructions if isinstance(inst, (B, BCond))
        )
