"""A small AArch64-flavoured ISA.

Covers exactly the instruction forms the paper's templates (Figs. 5 and 7)
need: register/immediate moves and ALU ops, loads and stores with register or
immediate offsets, compare/test, conditional and unconditional branches, and
return.  Programs in this ISA are what the simulated Cortex-A53 executes and
what the lifter translates to BIR for analysis.
"""

from repro.isa.registers import REGISTER_NAMES, Reg, x
from repro.isa.instructions import (
    AluOp,
    AluImm,
    AluReg,
    B,
    BCond,
    CmpImm,
    CmpReg,
    Cond,
    Instruction,
    Ldr,
    MovImm,
    MovReg,
    Nop,
    Ret,
    Str,
    TstImm,
)
from repro.isa.program import AsmProgram
from repro.isa.assembler import assemble, disassemble
from repro.isa.lifter import lift
from repro.isa.riscv import assemble_riscv

__all__ = [
    "REGISTER_NAMES",
    "Reg",
    "x",
    "AluOp",
    "AluImm",
    "AluReg",
    "B",
    "BCond",
    "CmpImm",
    "CmpReg",
    "Cond",
    "Instruction",
    "Ldr",
    "MovImm",
    "MovReg",
    "Nop",
    "Ret",
    "Str",
    "TstImm",
    "AsmProgram",
    "assemble",
    "disassemble",
    "lift",
    "assemble_riscv",
]
