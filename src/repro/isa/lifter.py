"""Lift mini-ISA programs to BIR.

Each instruction becomes its own BIR block labelled ``i<n>`` (plus a final
``end`` block), which keeps a one-to-one mapping between program counters and
BIR blocks — the program-counter observation model (Mpc) observes the block's
instruction index.

The comparison state is lifted as two hidden BIR variables ``_cmp_lhs`` and
``_cmp_rhs``; conditional branches compare them with the operator matching
their condition code.  This is exact for the CMP/TST + B.cond idiom the
templates use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bir import expr as E
from repro.bir.program import Block, Program
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Statement, Store
from repro.errors import LiftError
from repro.isa.instructions import (
    AluImm,
    AluOp,
    AluReg,
    B,
    BCond,
    CmpImm,
    CmpReg,
    Cond,
    Instruction,
    Ldr,
    MovImm,
    MovReg,
    Nop,
    Ret,
    Str,
    TstImm,
)
from repro.isa.program import AsmProgram
from repro.isa.registers import REGISTER_WIDTH, Reg

MEMORY = E.MemVar("MEM")
CMP_LHS = E.Var("_cmp_lhs", REGISTER_WIDTH)
CMP_RHS = E.Var("_cmp_rhs", REGISTER_WIDTH)

END_LABEL = "end"

_ALU_TO_BINOP = {
    AluOp.ADD: E.BinOpKind.ADD,
    AluOp.SUB: E.BinOpKind.SUB,
    AluOp.AND: E.BinOpKind.AND,
    AluOp.ORR: E.BinOpKind.OR,
    AluOp.EOR: E.BinOpKind.XOR,
    AluOp.LSL: E.BinOpKind.SHL,
    AluOp.LSR: E.BinOpKind.LSHR,
    AluOp.MUL: E.BinOpKind.MUL,
}


def block_label(index: int) -> str:
    """BIR block label for the instruction at ``index``."""
    return f"i{index}"


def instruction_index(label: str) -> Optional[int]:
    """Inverse of :func:`block_label`; None for the ``end`` block."""
    if label == END_LABEL:
        return None
    if label.startswith("i") and label[1:].isdigit():
        return int(label[1:])
    return None


def reg_var(reg: Reg) -> E.Var:
    """The BIR variable holding a register's value."""
    return E.Var(reg.name, REGISTER_WIDTH)


def condition_expr(cond: Cond) -> E.Expr:
    """The one-bit BIR expression for a condition over the comparison state."""
    l, r = CMP_LHS, CMP_RHS
    if cond is Cond.EQ:
        return E.eq(l, r)
    if cond is Cond.NE:
        return E.ne(l, r)
    if cond is Cond.LO:
        return E.ult(l, r)
    if cond is Cond.HS:
        return E.bool_not(E.ult(l, r))
    if cond is Cond.LS:
        return E.ule(l, r)
    if cond is Cond.HI:
        return E.bool_not(E.ule(l, r))
    if cond is Cond.LT:
        return E.slt(l, r)
    if cond is Cond.GE:
        return E.bool_not(E.slt(l, r))
    if cond is Cond.LE:
        return E.sle(l, r)
    if cond is Cond.GT:
        return E.bool_not(E.sle(l, r))
    raise LiftError(f"unknown condition {cond!r}")


def effective_address(rn: Reg, rm: Optional[Reg], imm: int) -> E.Expr:
    """BIR expression for a load/store effective address."""
    base = reg_var(rn)
    if rm is not None:
        return E.add(base, reg_var(rm))
    if imm:
        return E.add(base, E.const(imm))
    return base


def _lift_body(inst: Instruction) -> List[Statement]:
    if isinstance(inst, Nop):
        return []
    if isinstance(inst, MovImm):
        return [Assign(reg_var(inst.rd), E.const(inst.imm))]
    if isinstance(inst, MovReg):
        return [Assign(reg_var(inst.rd), reg_var(inst.rn))]
    if isinstance(inst, AluReg):
        value = E.BinOp(_ALU_TO_BINOP[inst.op], reg_var(inst.rn), reg_var(inst.rm))
        return [Assign(reg_var(inst.rd), value)]
    if isinstance(inst, AluImm):
        value = E.BinOp(
            _ALU_TO_BINOP[inst.op], reg_var(inst.rn), E.const(inst.imm)
        )
        return [Assign(reg_var(inst.rd), value)]
    if isinstance(inst, Ldr):
        addr = effective_address(inst.rn, inst.rm, inst.imm)
        return [Assign(reg_var(inst.rt), E.Load(MEMORY, addr))]
    if isinstance(inst, Str):
        addr = effective_address(inst.rn, inst.rm, inst.imm)
        return [Store(MEMORY, addr, reg_var(inst.rt))]
    if isinstance(inst, CmpReg):
        return [Assign(CMP_LHS, reg_var(inst.rn)), Assign(CMP_RHS, reg_var(inst.rm))]
    if isinstance(inst, CmpImm):
        return [Assign(CMP_LHS, reg_var(inst.rn)), Assign(CMP_RHS, E.const(inst.imm))]
    if isinstance(inst, TstImm):
        masked = E.band(reg_var(inst.rn), E.const(inst.imm))
        return [Assign(CMP_LHS, masked), Assign(CMP_RHS, E.const(0))]
    if isinstance(inst, (B, BCond, Ret)):
        return []
    raise LiftError(f"cannot lift {inst!r}")


def _terminator(inst: Instruction, index: int, program: AsmProgram) -> Statement:
    fallthrough = _label_for_index(index + 1, program)
    if isinstance(inst, B):
        return Jmp(
            _label_for_index(program.target_index(inst.target), program),
            explicit=True,
        )
    if isinstance(inst, BCond):
        taken = _label_for_index(program.target_index(inst.target), program)
        return CJmp(condition_expr(inst.cond), taken, fallthrough)
    if isinstance(inst, Ret):
        return Halt(reason="ret")
    return Jmp(fallthrough)


def _label_for_index(index: int, program: AsmProgram) -> str:
    if index >= len(program):
        return END_LABEL
    return block_label(index)


def lift(program: AsmProgram) -> Program:
    """Lift an assembly program to BIR (one block per instruction)."""
    blocks = []
    for index, inst in enumerate(program.instructions):
        blocks.append(
            Block(
                label=block_label(index),
                body=tuple(_lift_body(inst)),
                terminator=_terminator(inst, index, program),
            )
        )
    blocks.append(Block(END_LABEL, (), Halt(reason="end")))
    return Program(blocks, name=program.name)
