"""RISC-V (RV64) assembly front-end.

Scam-V supports multiple architectures by translating binaries to its
intermediate language (§2.3: "Currently ARMv8, CortexM0, and RISC-V").
This module is the RISC-V front-end of this reproduction: it parses an
RV64 subset into the same :class:`~repro.isa.program.AsmProgram` the rest
of the toolchain consumes, so lifting, observation models, relation
synthesis, and the simulated core all work unchanged.

Supported subset::

    li   rd, imm            mv   rd, rs
    add/sub/and/or/xor/sll/srl/mul  rd, rs1, rs2
    addi/andi/ori/xori/slli/srli    rd, rs1, imm
    ld   rd, off(rs)         sd   rs2, off(rs1)
    beq/bne/blt/bge/bltu/bgeu rs1, rs2, label
    beqz/bnez rs, label      j label      ret      nop

Registers are ``x1..x30`` or ABI names (``ra``, ``sp``, ``a0``-``a7``,
``t0``-``t5``, ``s0``-``s11``).  The hardwired-zero register
(``x0``/``zero``) is handled syntactically: the idioms ``mv rd, zero``,
``add rd, rs, zero`` and ``beqz``/``bnez`` are rewritten to zero-free
mini-ISA forms; other uses are rejected.  ``x31``/``t6`` is not available
(the mini-ISA register file has 31 registers).

Compare-and-branch instructions expand to a ``cmp`` + ``b.cond`` pair, so
one RISC-V branch occupies two program-counter slots; this is a pure
front-end expansion and does not affect the analysis.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import IsaError
from repro.isa.instructions import (
    AluImm,
    AluOp,
    AluReg,
    B,
    BCond,
    CmpImm,
    CmpReg,
    Cond,
    Instruction,
    Ldr,
    MovImm,
    MovReg,
    Nop,
    Ret,
    Str,
)
from repro.isa.program import AsmProgram
from repro.isa.registers import Reg

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_MEM_RE = re.compile(r"^(-?(?:0x)?[0-9a-fA-F]*)\(\s*([A-Za-z0-9_]+)\s*\)$")

_ABI_NAMES: Dict[str, int] = {
    "ra": 1,
    "sp": 2,
    "gp": 3,
    "tp": 4,
    "t0": 5,
    "t1": 6,
    "t2": 7,
    "s0": 8,
    "fp": 8,
    "s1": 9,
    **{f"a{i}": 10 + i for i in range(8)},
    **{f"s{i}": 16 + i for i in range(2, 12)},
    "t3": 28,
    "t4": 29,
    "t5": 30,
}

_ZERO_NAMES = ("x0", "zero")

_ALU_REG = {
    "add": AluOp.ADD,
    "sub": AluOp.SUB,
    "and": AluOp.AND,
    "or": AluOp.ORR,
    "xor": AluOp.EOR,
    "sll": AluOp.LSL,
    "srl": AluOp.LSR,
    "mul": AluOp.MUL,
}

_ALU_IMM = {
    "addi": AluOp.ADD,
    "andi": AluOp.AND,
    "ori": AluOp.ORR,
    "xori": AluOp.EOR,
    "slli": AluOp.LSL,
    "srli": AluOp.LSR,
}

_BRANCHES = {
    "beq": Cond.EQ,
    "bne": Cond.NE,
    "blt": Cond.LT,
    "bge": Cond.GE,
    "bltu": Cond.LO,
    "bgeu": Cond.HS,
}


def _is_zero(name: str) -> bool:
    return name.lower() in _ZERO_NAMES


def _parse_reg(name: str) -> Reg:
    n = name.strip().lower()
    if _is_zero(n):
        raise IsaError(
            "the zero register is only supported in 'mv rd, zero', "
            "'add rd, rs, zero', 'beqz' and 'bnez' forms"
        )
    if n in _ABI_NAMES:
        return Reg(_ABI_NAMES[n])
    if n.startswith("x") and n[1:].isdigit():
        index = int(n[1:])
        if index == 31:
            raise IsaError("x31/t6 is not available on the 31-register file")
        if 1 <= index <= 30:
            return Reg(index)
    raise IsaError(f"not a RISC-V register: {name!r}")


def _parse_imm(text: str) -> int:
    try:
        return int(text.strip(), 0)
    except ValueError:
        raise IsaError(f"bad immediate {text!r}") from None


def _parse_mem(text: str) -> Tuple[Reg, int]:
    m = _MEM_RE.match(text.strip())
    if not m:
        raise IsaError(f"bad memory operand {text!r}")
    offset = _parse_imm(m.group(1)) if m.group(1) else 0
    return _parse_reg(m.group(2)), offset


def _expand(mnemonic: str, ops: List[str]) -> List[Instruction]:
    if mnemonic == "nop":
        return [Nop()]
    if mnemonic == "ret":
        return [Ret()]
    if mnemonic == "j":
        _expect(ops, 1, mnemonic)
        return [B(ops[0])]
    if mnemonic == "li":
        _expect(ops, 2, mnemonic)
        return [MovImm(_parse_reg(ops[0]), _parse_imm(ops[1]))]
    if mnemonic == "mv":
        _expect(ops, 2, mnemonic)
        rd = _parse_reg(ops[0])
        if _is_zero(ops[1]):
            return [MovImm(rd, 0)]
        return [MovReg(rd, _parse_reg(ops[1]))]
    if mnemonic in _ALU_REG:
        _expect(ops, 3, mnemonic)
        rd = _parse_reg(ops[0])
        if mnemonic == "add" and _is_zero(ops[2]):
            return [MovReg(rd, _parse_reg(ops[1]))]
        if mnemonic == "add" and _is_zero(ops[1]):
            return [MovReg(rd, _parse_reg(ops[2]))]
        return [
            AluReg(_ALU_REG[mnemonic], rd, _parse_reg(ops[1]), _parse_reg(ops[2]))
        ]
    if mnemonic in _ALU_IMM:
        _expect(ops, 3, mnemonic)
        return [
            AluImm(
                _ALU_IMM[mnemonic],
                _parse_reg(ops[0]),
                _parse_reg(ops[1]),
                _parse_imm(ops[2]),
            )
        ]
    if mnemonic == "ld":
        _expect(ops, 2, mnemonic)
        base, offset = _parse_mem(ops[1])
        return [Ldr(_parse_reg(ops[0]), base, None, offset)]
    if mnemonic == "sd":
        _expect(ops, 2, mnemonic)
        base, offset = _parse_mem(ops[1])
        return [Str(_parse_reg(ops[0]), base, None, offset)]
    if mnemonic in _BRANCHES:
        _expect(ops, 3, mnemonic)
        return [
            CmpReg(_parse_reg(ops[0]), _parse_reg(ops[1])),
            BCond(_BRANCHES[mnemonic], ops[2]),
        ]
    if mnemonic in ("beqz", "bnez"):
        _expect(ops, 2, mnemonic)
        cond = Cond.EQ if mnemonic == "beqz" else Cond.NE
        return [CmpImm(_parse_reg(ops[0]), 0), BCond(cond, ops[1])]
    raise IsaError(f"unknown RISC-V mnemonic {mnemonic!r}")


def _expect(ops: List[str], count: int, mnemonic: str) -> None:
    if len(ops) != count:
        raise IsaError(f"{mnemonic} expects {count} operand(s), got {len(ops)}")


def assemble_riscv(source: str, name: str = "riscv") -> AsmProgram:
    """Assemble RISC-V source into a mini-ISA :class:`AsmProgram`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for raw_line in source.splitlines():
        line = raw_line.split("#")[0].split("//")[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in labels:
                raise IsaError(f"duplicate label {label!r}")
            labels[label] = len(instructions)
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = (
            [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []
        )
        instructions.extend(_expand(mnemonic, operands))
    return AsmProgram(instructions, labels, name=name)
