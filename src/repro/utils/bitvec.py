"""Fixed-width bit-vector arithmetic on plain Python integers.

All values are kept as unsigned integers in ``[0, 2**width)``.  Every helper
takes and returns unsigned representations; signed interpretations are
explicit via :func:`to_signed` / :func:`to_unsigned`.
"""

from __future__ import annotations

_MASK_CACHE: dict = {}


def mask(width: int) -> int:
    """Return the all-ones mask for ``width`` bits."""
    cached = _MASK_CACHE.get(width)
    if cached is None:
        if width <= 0:
            raise ValueError(f"bit-vector width must be positive, got {width}")
        cached = (1 << width) - 1
        _MASK_CACHE[width] = cached
    return cached


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (unsigned result)."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit value as two's-complement."""
    value = truncate(value, width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Convert a possibly-negative integer to its unsigned ``width``-bit form."""
    return value & mask(width)


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend a ``from_width``-bit value to ``to_width`` bits."""
    if to_width < from_width:
        raise ValueError(f"cannot sign-extend {from_width} bits down to {to_width}")
    return to_unsigned(to_signed(value, from_width), to_width)


def zero_extend(value: int, from_width: int, to_width: int) -> int:
    """Zero-extend a ``from_width``-bit value to ``to_width`` bits."""
    if to_width < from_width:
        raise ValueError(f"cannot zero-extend {from_width} bits down to {to_width}")
    return truncate(value, from_width)


def bv_add(a: int, b: int, width: int) -> int:
    return (a + b) & mask(width)


def bv_sub(a: int, b: int, width: int) -> int:
    return (a - b) & mask(width)


def bv_mul(a: int, b: int, width: int) -> int:
    return (a * b) & mask(width)


def bv_and(a: int, b: int, width: int) -> int:
    return (a & b) & mask(width)


def bv_or(a: int, b: int, width: int) -> int:
    return (a | b) & mask(width)


def bv_xor(a: int, b: int, width: int) -> int:
    return (a ^ b) & mask(width)


def bv_not(a: int, width: int) -> int:
    return (~a) & mask(width)


def bv_shl(a: int, shift: int, width: int) -> int:
    """Logical shift left; shifts >= width yield zero (BIR semantics)."""
    if shift >= width:
        return 0
    return (a << shift) & mask(width)


def bv_lshr(a: int, shift: int, width: int) -> int:
    """Logical shift right; shifts >= width yield zero."""
    if shift >= width:
        return 0
    return (truncate(a, width)) >> shift


def bv_ashr(a: int, shift: int, width: int) -> int:
    """Arithmetic shift right on the two's-complement interpretation."""
    signed = to_signed(a, width)
    if shift >= width:
        shift = width - 1
    return to_unsigned(signed >> shift, width)


def bit_slice(value: int, high: int, low: int) -> int:
    """Extract bits ``high..low`` inclusive (ARM-style slice notation)."""
    if high < low:
        raise ValueError(f"invalid bit slice [{high}:{low}]")
    return (value >> low) & mask(high - low + 1)
