"""Deterministic, splittable randomness for generators and experiments.

Every stochastic component of the pipeline (program generators, the model
finder's stochastic repair, platform noise) draws from a
:class:`SplittableRandom` so a whole evaluation run is reproducible from a
single seed, and independent components do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


def _label_hash(label: str) -> int:
    """A stable 64-bit hash of a split label.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), which would make
    derived streams differ between runs and between worker processes; the
    parallel runner's checkpoint/resume and its bit-identical-at-any-worker-
    count guarantee both need label hashing that is stable across processes.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class SplittableRandom:
    """A seeded RNG that can be split into independent child streams.

    Splitting derives a child seed from the parent stream, so sibling
    components consume disjoint streams: inserting extra draws in one
    component does not shift the values another component sees.
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = random.Random(seed)

    def split(self, label: str = "") -> "SplittableRandom":
        """Derive an independent child stream, optionally labelled.

        The derivation is stable across processes: the same parent seed and
        label sequence yields the same child stream in a worker process as
        in the parent (see :func:`_label_hash`).
        """
        child_seed = self._rng.getrandbits(64) ^ _label_hash(label)
        return SplittableRandom(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def getrandbits(self, bits: int) -> int:
        return self._rng.getrandbits(bits) if bits > 0 else 0

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._rng.random() < probability
