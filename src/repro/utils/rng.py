"""Deterministic, splittable randomness for generators and experiments.

Every stochastic component of the pipeline (program generators, the model
finder's stochastic repair, platform noise) draws from a
:class:`SplittableRandom` so a whole evaluation run is reproducible from a
single seed, and independent components do not perturb each other's streams.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class SplittableRandom:
    """A seeded RNG that can be split into independent child streams.

    Splitting derives a child seed from the parent stream, so sibling
    components consume disjoint streams: inserting extra draws in one
    component does not shift the values another component sees.
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = random.Random(seed)

    def split(self, label: str = "") -> "SplittableRandom":
        """Derive an independent child stream, optionally labelled."""
        child_seed = self._rng.getrandbits(64) ^ hash(label)
        return SplittableRandom(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def getrandbits(self, bits: int) -> int:
        return self._rng.getrandbits(bits) if bits > 0 else 0

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._rng.random() < probability
