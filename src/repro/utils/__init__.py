"""Shared low-level helpers: bit-vector arithmetic, RNG, timing."""

from repro.utils.bitvec import (
    mask,
    truncate,
    to_signed,
    to_unsigned,
    sign_extend,
    zero_extend,
    bv_add,
    bv_sub,
    bv_mul,
    bv_and,
    bv_or,
    bv_xor,
    bv_not,
    bv_shl,
    bv_lshr,
    bv_ashr,
    bit_slice,
)
from repro.utils.rng import SplittableRandom
from repro.utils.timing import Stopwatch

__all__ = [
    "mask",
    "truncate",
    "to_signed",
    "to_unsigned",
    "sign_extend",
    "zero_extend",
    "bv_add",
    "bv_sub",
    "bv_mul",
    "bv_and",
    "bv_or",
    "bv_xor",
    "bv_not",
    "bv_shl",
    "bv_lshr",
    "bv_ashr",
    "bit_slice",
    "SplittableRandom",
    "Stopwatch",
]
