"""Wall-clock measurement helper used by the pipeline metrics."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch; measures monotonic wall-clock seconds.

    Usage::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.total)
    """

    def __init__(self):
        self.total = 0.0
        self.laps = 0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self._started_at = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.total += time.monotonic() - self._started_at
        self.laps += 1
        self._started_at = None

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 before the first lap)."""
        if self.laps == 0:
            return 0.0
        return self.total / self.laps
