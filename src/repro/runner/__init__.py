"""The parallel campaign runner: sharded, checkpointed, fault-tolerant.

Shards a :class:`~repro.pipeline.config.CampaignConfig` into per-program
work units, executes them across a process pool with per-shard timeout and
bounded retry, journals completed shards for ``--resume``, and merges the
results into a :class:`~repro.pipeline.result.CampaignResult` bit-identical
to the sequential driver's (same seed, any worker count).

Layers:

* :mod:`repro.runner.worker`     — the picklable shard task
* :mod:`repro.runner.scheduler`  — work-queue dispatch, stragglers, retries
* :mod:`repro.runner.checkpoint` — append-only JSONL resume journal
* :mod:`repro.runner.events`     — structured progress/telemetry stream
* :mod:`repro.runner.merge`      — ordered recombination + database writes
"""

from repro.runner.checkpoint import CheckpointJournal, campaign_key
from repro.runner.events import (
    CampaignFinished,
    CampaignScheduled,
    CounterexampleFound,
    EventLog,
    EventSink,
    HealthEvent,
    RunnerDegraded,
    RunnerEvent,
    ShardFailed,
    ShardFinished,
    ShardRetried,
    ShardStarted,
    event_from_json,
    event_to_json,
    jsonl_sink,
    progress_printer,
    read_events_jsonl,
    tee,
)
from repro.runner.merge import merge_shard_results, record_shard, record_shards
from repro.runner.scheduler import (
    ParallelRunner,
    RunnerConfig,
    RunnerError,
    ShardExhaustedError,
)
from repro.runner.worker import (
    ProgramRecord,
    ShardResult,
    ShardSpec,
    run_shard,
    shard_rng,
    shard_specs,
)

__all__ = [
    "CampaignFinished",
    "CampaignScheduled",
    "CheckpointJournal",
    "CounterexampleFound",
    "EventLog",
    "EventSink",
    "HealthEvent",
    "ParallelRunner",
    "ProgramRecord",
    "RunnerConfig",
    "RunnerDegraded",
    "RunnerError",
    "RunnerEvent",
    "ShardExhaustedError",
    "ShardFailed",
    "ShardFinished",
    "ShardResult",
    "ShardRetried",
    "ShardSpec",
    "ShardStarted",
    "campaign_key",
    "event_from_json",
    "event_to_json",
    "jsonl_sink",
    "merge_shard_results",
    "progress_printer",
    "read_events_jsonl",
    "record_shard",
    "record_shards",
    "run_shard",
    "shard_rng",
    "shard_specs",
    "tee",
]
