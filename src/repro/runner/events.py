"""Structured progress/telemetry events emitted by the campaign runner.

The scheduler narrates a campaign as a stream of typed events — shards
dispatched, finished, retried, counterexamples found — instead of writing
to stdout itself.  Consumers decide presentation: the CLI renders a
progress line per shard (:func:`progress_printer`), tests capture the
stream with :class:`EventLog`, and future telemetry backends can fan the
same stream out elsewhere.  All events are emitted from the parent process
only; workers communicate results, never output.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TextIO, Type, TypeVar


@dataclass(frozen=True)
class RunnerEvent:
    """Base class of every runner event."""


@dataclass(frozen=True)
class CampaignScheduled(RunnerEvent):
    """A campaign was sharded and queued for execution."""

    campaign: str
    shards: int
    resumed_shards: int = 0


@dataclass(frozen=True)
class ShardStarted(RunnerEvent):
    campaign: str
    shard_id: int
    attempt: int = 0


@dataclass(frozen=True)
class ShardFinished(RunnerEvent):
    campaign: str
    shard_id: int
    experiments: int = 0
    counterexamples: int = 0
    inconclusive: int = 0
    duration: float = 0.0
    #: True when the result came from the checkpoint journal, not a worker.
    cached: bool = False


@dataclass(frozen=True)
class ShardRetried(RunnerEvent):
    """A shard attempt crashed, hung, or its worker died; it was requeued."""

    campaign: str
    shard_id: int
    attempt: int
    reason: str


@dataclass(frozen=True)
class ShardFailed(RunnerEvent):
    """A shard exhausted its retry budget."""

    campaign: str
    shard_id: int
    attempts: int
    reason: str


@dataclass(frozen=True)
class CounterexampleFound(RunnerEvent):
    campaign: str
    shard_id: int
    program: str


@dataclass(frozen=True)
class CampaignFinished(RunnerEvent):
    campaign: str
    experiments: int = 0
    counterexamples: int = 0


@dataclass(frozen=True)
class RunnerDegraded(RunnerEvent):
    """Multiprocessing was unavailable; fell back to in-process execution."""

    reason: str


@dataclass(frozen=True)
class HealthEvent(RunnerEvent):
    """A health detector fired (see :mod:`repro.monitor.health`).

    Health events travel down the same sink chain as lifecycle events, so
    every consumer — the progress printer (``!!`` lines), the metrics
    bridge, the ``--events-out`` side file — sees them in stream order.
    """

    detector: str
    severity: str  # "info" | "warning" | "critical"
    message: str
    campaign: str = ""
    shard_id: Optional[int] = None


#: Anything that accepts runner events (the scheduler's ``events=`` hook).
EventSink = Callable[[RunnerEvent], None]

E = TypeVar("E", bound=RunnerEvent)


def tee(*sinks: Optional[EventSink]) -> EventSink:
    """Fan one event stream out to several sinks (Nones are skipped)."""
    live = [sink for sink in sinks if sink is not None]

    def fan(event: RunnerEvent) -> None:
        for sink in live:
            sink(event)

    return fan


#: Every serializable runner event type, by class name (the ``event`` key
#: of a JSONL line).  Kept explicit so renames fail loudly in tests.
EVENT_TYPES: Dict[str, Type[RunnerEvent]] = {}


def _register(cls: Type[RunnerEvent]) -> None:
    EVENT_TYPES[cls.__name__] = cls


for _cls in (
    CampaignScheduled,
    ShardStarted,
    ShardFinished,
    ShardRetried,
    ShardFailed,
    CounterexampleFound,
    CampaignFinished,
    RunnerDegraded,
    HealthEvent,
):
    _register(_cls)


def event_to_json(event: RunnerEvent, ts: Optional[float] = None) -> Dict:
    """One JSONL-able document for an event (``ts`` is UNIX time)."""
    doc = {"event": type(event).__name__, "ts": ts if ts is not None else time.time()}
    doc.update(dataclasses.asdict(event))
    return doc


def event_from_json(doc: Dict) -> Optional[RunnerEvent]:
    """Rebuild a typed event from a JSONL line; None for unknown/invalid."""
    cls = EVENT_TYPES.get(str(doc.get("event")))
    if cls is None:
        return None
    fields = {f.name for f in dataclasses.fields(cls)}
    try:
        return cls(**{k: v for k, v in doc.items() if k in fields})
    except (TypeError, ValueError):
        return None


def jsonl_sink(path: str) -> EventSink:
    """An event sink appending one JSON line per event to ``path``.

    The scheduler's opt-in ``--events-out`` side file: append-only and
    flushed per line so a separate ``repro-scamv monitor`` process can
    tail it while the campaign runs.  Strictly observational — the sink
    never feeds anything back into the run.
    """
    # Truncate up front: a monitor tailing the file must not mix this
    # run's events with a previous run's.
    with open(path, "w", encoding="utf-8"):
        pass

    def sink(event: RunnerEvent) -> None:
        line = json.dumps(event_to_json(event), sort_keys=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    return sink


def read_events_jsonl(path: str) -> List[Dict]:
    """Parse an ``--events-out`` file; malformed/partial lines are skipped."""
    out: List[Dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return out
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict):
            out.append(doc)
    return out


class EventLog:
    """An event sink that records the stream for inspection (tests, CLI)."""

    def __init__(self) -> None:
        self.events: List[RunnerEvent] = []

    def __call__(self, event: RunnerEvent) -> None:
        self.events.append(event)

    def of_type(self, kind: Type[E]) -> List[E]:
        return [e for e in self.events if isinstance(e, kind)]


def progress_printer(
    stream: Optional[TextIO] = None,
    prefix: str = "",
) -> EventSink:
    """An event sink rendering the CLI's per-shard progress lines.

    Keeps a cumulative counterexample/experiment count per campaign so the
    output reads like the sequential driver's progress messages even when
    shards finish out of order.

    ``prefix`` is prepended to every line.  The batch orchestrator labels
    each job's printer with the scenario name (``[name#id] ``) so merged
    output from interleaved campaigns stays attributable — including lines
    that carry no campaign of their own, like :class:`RunnerDegraded`.
    """
    import sys

    out = stream if stream is not None else sys.stderr
    finished: Dict[str, int] = {}
    totals: Dict[str, int] = {}
    cex: Dict[str, int] = {}
    experiments: Dict[str, int] = {}
    inconclusive: Dict[str, int] = {}
    resumed: Dict[str, int] = {}
    started_at: Dict[str, float] = {}

    def emit(text: str) -> None:
        # Flush per line: progress must reach the terminal while a long
        # campaign is still running, not when the buffer happens to fill.
        print(prefix + text, file=out, flush=True)

    def sink(event: RunnerEvent) -> None:
        if isinstance(event, CampaignScheduled):
            totals[event.campaign] = event.shards
            finished.setdefault(event.campaign, 0)
            cex.setdefault(event.campaign, 0)
            experiments.setdefault(event.campaign, 0)
            inconclusive.setdefault(event.campaign, 0)
            resumed.setdefault(event.campaign, 0)
            started_at.setdefault(event.campaign, time.monotonic())
        elif isinstance(event, ShardFinished):
            finished[event.campaign] = finished.get(event.campaign, 0) + 1
            cex[event.campaign] = (
                cex.get(event.campaign, 0) + event.counterexamples
            )
            experiments[event.campaign] = (
                experiments.get(event.campaign, 0) + event.experiments
            )
            inconclusive[event.campaign] = (
                inconclusive.get(event.campaign, 0) + event.inconclusive
            )
            if event.cached:
                resumed[event.campaign] = resumed.get(event.campaign, 0) + 1
            suffix = (
                f", {resumed[event.campaign]} resumed"
                if resumed.get(event.campaign)
                else ""
            )
            emit(
                f"[{event.campaign}] shard {finished[event.campaign]}/"
                f"{totals.get(event.campaign, '?')}: "
                f"{cex[event.campaign]} counterexamples in "
                f"{experiments[event.campaign]} experiments{suffix}"
            )
        elif isinstance(event, ShardRetried):
            emit(
                f"[{event.campaign}] shard {event.shard_id} retry "
                f"#{event.attempt}: {event.reason}"
            )
        elif isinstance(event, ShardFailed):
            emit(
                f"[{event.campaign}] shard {event.shard_id} FAILED after "
                f"{event.attempts} attempts: {event.reason}"
            )
        elif isinstance(event, RunnerDegraded):
            emit(
                f"parallel execution unavailable ({event.reason}); "
                "running sequentially"
            )
        elif isinstance(event, HealthEvent):
            where = f"[{event.campaign}] " if event.campaign else ""
            shard = (
                f" (shard {event.shard_id})"
                if event.shard_id is not None
                else ""
            )
            emit(
                f"!! {where}{event.detector} {event.severity}: "
                f"{event.message}{shard}"
            )
        elif isinstance(event, CampaignFinished):
            ran = experiments.get(event.campaign, 0) or event.experiments
            bad = inconclusive.get(event.campaign, 0)
            rate = 100.0 * bad / ran if ran else 0.0
            start = started_at.get(event.campaign)
            wall = (
                f", {time.monotonic() - start:.1f}s wall-clock"
                if start is not None
                else ""
            )
            emit(
                f"[{event.campaign}] finished: "
                f"{finished.get(event.campaign, 0)} shards, "
                f"{cex.get(event.campaign, 0) or event.counterexamples} "
                f"counterexamples, {rate:.1f}% inconclusive{wall}"
            )

    return sink
