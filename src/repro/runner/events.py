"""Structured progress/telemetry events emitted by the campaign runner.

The scheduler narrates a campaign as a stream of typed events — shards
dispatched, finished, retried, counterexamples found — instead of writing
to stdout itself.  Consumers decide presentation: the CLI renders a
progress line per shard (:func:`progress_printer`), tests capture the
stream with :class:`EventLog`, and future telemetry backends can fan the
same stream out elsewhere.  All events are emitted from the parent process
only; workers communicate results, never output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TextIO, Type, TypeVar


@dataclass(frozen=True)
class RunnerEvent:
    """Base class of every runner event."""


@dataclass(frozen=True)
class CampaignScheduled(RunnerEvent):
    """A campaign was sharded and queued for execution."""

    campaign: str
    shards: int
    resumed_shards: int = 0


@dataclass(frozen=True)
class ShardStarted(RunnerEvent):
    campaign: str
    shard_id: int
    attempt: int = 0


@dataclass(frozen=True)
class ShardFinished(RunnerEvent):
    campaign: str
    shard_id: int
    experiments: int = 0
    counterexamples: int = 0
    duration: float = 0.0
    #: True when the result came from the checkpoint journal, not a worker.
    cached: bool = False


@dataclass(frozen=True)
class ShardRetried(RunnerEvent):
    """A shard attempt crashed, hung, or its worker died; it was requeued."""

    campaign: str
    shard_id: int
    attempt: int
    reason: str


@dataclass(frozen=True)
class ShardFailed(RunnerEvent):
    """A shard exhausted its retry budget."""

    campaign: str
    shard_id: int
    attempts: int
    reason: str


@dataclass(frozen=True)
class CounterexampleFound(RunnerEvent):
    campaign: str
    shard_id: int
    program: str


@dataclass(frozen=True)
class CampaignFinished(RunnerEvent):
    campaign: str
    experiments: int = 0
    counterexamples: int = 0


@dataclass(frozen=True)
class RunnerDegraded(RunnerEvent):
    """Multiprocessing was unavailable; fell back to in-process execution."""

    reason: str


#: Anything that accepts runner events (the scheduler's ``events=`` hook).
EventSink = Callable[[RunnerEvent], None]

E = TypeVar("E", bound=RunnerEvent)


class EventLog:
    """An event sink that records the stream for inspection (tests, CLI)."""

    def __init__(self) -> None:
        self.events: List[RunnerEvent] = []

    def __call__(self, event: RunnerEvent) -> None:
        self.events.append(event)

    def of_type(self, kind: Type[E]) -> List[E]:
        return [e for e in self.events if isinstance(e, kind)]


def progress_printer(
    stream: Optional[TextIO] = None,
) -> EventSink:
    """An event sink rendering the CLI's per-shard progress lines.

    Keeps a cumulative counterexample/experiment count per campaign so the
    output reads like the sequential driver's progress messages even when
    shards finish out of order.
    """
    import sys

    out = stream if stream is not None else sys.stderr
    finished: Dict[str, int] = {}
    totals: Dict[str, int] = {}
    cex: Dict[str, int] = {}
    experiments: Dict[str, int] = {}
    resumed: Dict[str, int] = {}

    def emit(text: str) -> None:
        # Flush per line: progress must reach the terminal while a long
        # campaign is still running, not when the buffer happens to fill.
        print(text, file=out, flush=True)

    def sink(event: RunnerEvent) -> None:
        if isinstance(event, CampaignScheduled):
            totals[event.campaign] = event.shards
            finished.setdefault(event.campaign, 0)
            cex.setdefault(event.campaign, 0)
            experiments.setdefault(event.campaign, 0)
            resumed.setdefault(event.campaign, 0)
        elif isinstance(event, ShardFinished):
            finished[event.campaign] = finished.get(event.campaign, 0) + 1
            cex[event.campaign] = (
                cex.get(event.campaign, 0) + event.counterexamples
            )
            experiments[event.campaign] = (
                experiments.get(event.campaign, 0) + event.experiments
            )
            if event.cached:
                resumed[event.campaign] = resumed.get(event.campaign, 0) + 1
            suffix = (
                f", {resumed[event.campaign]} resumed"
                if resumed.get(event.campaign)
                else ""
            )
            emit(
                f"[{event.campaign}] shard {finished[event.campaign]}/"
                f"{totals.get(event.campaign, '?')}: "
                f"{cex[event.campaign]} counterexamples in "
                f"{experiments[event.campaign]} experiments{suffix}"
            )
        elif isinstance(event, ShardRetried):
            emit(
                f"[{event.campaign}] shard {event.shard_id} retry "
                f"#{event.attempt}: {event.reason}"
            )
        elif isinstance(event, ShardFailed):
            emit(
                f"[{event.campaign}] shard {event.shard_id} FAILED after "
                f"{event.attempts} attempts: {event.reason}"
            )
        elif isinstance(event, RunnerDegraded):
            emit(
                f"parallel execution unavailable ({event.reason}); "
                "running sequentially"
            )

    return sink
