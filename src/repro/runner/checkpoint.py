"""Append-only JSONL checkpoint journal for interrupted campaigns.

Every completed shard is appended as one self-contained JSON line; a
``--resume`` run replays the journal, skips the shards already recorded,
and executes only the remainder.  Because shard execution is a pure
function of ``(config, program index)`` (see :mod:`repro.runner.worker`),
a resumed campaign's merged result is bit-identical to an uninterrupted
run of the same seed.

Robustness: a partial trailing line (the process died mid-append) is
ignored; entries whose campaign key does not match the configuration being
resumed are ignored too, so one journal can host several campaigns (e.g. a
whole ``table1`` set) and a changed configuration never silently reuses
stale results.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.hw.platform import ExperimentOutcome, StateInputs
from repro.isa.assembler import assemble
from repro.core.testgen import TestCase
from repro.pipeline.config import CampaignConfig
from repro.pipeline.metrics import CampaignStats
from repro.pipeline.result import ExperimentRecord
from repro.runner.worker import ProgramRecord, ShardResult

_VERSION = 1

#: ``(campaign index, shard id)`` — the key a journal entry is stored under.
ShardKey = Tuple[int, int]


def campaign_key(config: CampaignConfig) -> str:
    """A fingerprint that must match for journal entries to be reused."""
    return (
        f"{config.name}|seed={config.seed}"
        f"|programs={config.num_programs}"
        f"|tests={config.tests_per_program}"
        f"|model={config.model.name}"
    )


def _dump_state(state: Optional[StateInputs]) -> Optional[Dict]:
    if state is None:
        return None
    return {
        "regs": dict(state.regs),
        "memory": {str(addr): value for addr, value in state.memory.items()},
    }


def _load_state(payload: Optional[Dict]) -> Optional[StateInputs]:
    if payload is None:
        return None
    return StateInputs(
        regs=dict(payload["regs"]),
        memory={int(addr): value for addr, value in payload["memory"].items()},
    )


def _dump_stats(stats: CampaignStats) -> Dict:
    return {
        "name": stats.name,
        "programs": stats.programs,
        "programs_with_counterexamples": stats.programs_with_counterexamples,
        "experiments": stats.experiments,
        "counterexamples": stats.counterexamples,
        "inconclusive": stats.inconclusive,
        "generation_failures": stats.generation_failures,
        "generation_attempts": stats.generation_attempts,
        "uncertified": stats.uncertified,
        "gen_time_total": stats.gen_time_total,
        "exe_time_total": stats.exe_time_total,
        "time_to_counterexample": stats.time_to_counterexample,
    }


def _dump_shard(shard: ShardResult) -> Dict:
    return {
        "shard_id": shard.shard_id,
        "program_indices": list(shard.program_indices),
        "attempt": shard.attempt,
        "duration": shard.duration,
        "stats": _dump_stats(shard.stats),
        "programs": [
            {
                "index": program.index,
                "name": program.name,
                "template": program.template,
                "asm": program.asm_text,
                "params": program.params,
            }
            for program in shard.programs
        ],
        "records": [
            {
                "program_index": record.program_index,
                "program_name": record.program_name,
                "template": record.template,
                "outcome": record.outcome.value,
                "gen_time": record.gen_time,
                "exe_time": record.exe_time,
                "pair": list(record.test.pair),
                "refined": record.test.refined,
                "state1": _dump_state(record.test.state1),
                "state2": _dump_state(record.test.state2),
                "train": _dump_state(record.test.train),
            }
            for record in shard.records
        ],
    }


def _load_shard(payload: Dict) -> ShardResult:
    programs = [
        ProgramRecord(
            index=entry["index"],
            name=entry["name"],
            template=entry["template"],
            asm_text=entry["asm"],
            params=entry["params"],
        )
        for entry in payload["programs"]
    ]
    # Reassemble each generated program once; records of the same program
    # share the instance, as they did in the original run.
    asm_by_index = {
        program.index: assemble(program.asm_text, name=program.name)
        for program in programs
    }
    records = []
    for entry in payload["records"]:
        test = TestCase(
            program=asm_by_index[entry["program_index"]],
            state1=_load_state(entry["state1"]),
            state2=_load_state(entry["state2"]),
            train=_load_state(entry["train"]),
            pair=tuple(entry["pair"]),
            refined=entry["refined"],
        )
        records.append(
            ExperimentRecord(
                program_name=entry["program_name"],
                template=entry["template"],
                outcome=ExperimentOutcome(entry["outcome"]),
                test=test,
                gen_time=entry["gen_time"],
                exe_time=entry["exe_time"],
                program_index=entry["program_index"],
            )
        )
    return ShardResult(
        shard_id=payload["shard_id"],
        program_indices=tuple(payload["program_indices"]),
        stats=CampaignStats(**payload["stats"]),
        records=records,
        programs=programs,
        attempt=payload["attempt"],
        duration=payload["duration"],
        # Replayed, not executed: the merge layer excludes this duration
        # from the resumed run's wall-clock aggregates.
        cached=True,
    )


class CheckpointJournal:
    """The append-only journal of completed shards for one runner invocation."""

    def __init__(self, path: str):
        self.path = path

    def append(
        self, campaign_index: int, key: str, shard: ShardResult
    ) -> None:
        entry = {
            "v": _VERSION,
            "campaign": campaign_index,
            "key": key,
            "shard": _dump_shard(shard),
        }
        line = json.dumps(entry, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(
        self, expected_keys: Dict[int, str]
    ) -> Dict[ShardKey, ShardResult]:
        """Completed shards whose campaign fingerprint still matches.

        ``expected_keys`` maps campaign index to :func:`campaign_key` of the
        configuration being (re-)run; mismatching and malformed entries are
        skipped rather than trusted.
        """
        completed: Dict[ShardKey, ShardResult] = {}
        if not os.path.exists(self.path):
            return completed
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Partial trailing line from an interrupted append.
                    continue
                if entry.get("v") != _VERSION:
                    continue
                campaign_index = entry.get("campaign")
                if expected_keys.get(campaign_index) != entry.get("key"):
                    continue
                try:
                    shard = _load_shard(entry["shard"])
                except (KeyError, TypeError, ValueError):
                    continue
                completed[(campaign_index, shard.shard_id)] = shard
        return completed
