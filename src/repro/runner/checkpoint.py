"""Append-only JSONL checkpoint journal for interrupted campaigns.

Every completed shard is appended as one self-contained JSON line; a
``--resume`` run replays the journal, skips the shards already recorded,
and executes only the remainder.  Because shard execution is a pure
function of ``(config, program index)`` (see :mod:`repro.runner.worker`),
a resumed campaign's merged result is bit-identical to an uninterrupted
run of the same seed.

Robustness: a partial trailing line (the process died mid-append) is
ignored; entries whose campaign key does not match the configuration being
resumed are ignored too, so one journal can host several campaigns (e.g. a
whole ``table1`` set) and a changed configuration never silently reuses
stale results.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Tuple

from repro.isa.assembler import assemble
from repro.pipeline.config import CampaignConfig
from repro.pipeline.metrics import CampaignStats
from repro.pipeline.result import ExperimentRecord
from repro.runner.worker import ProgramRecord, ShardResult

#: Version 2 journals experiment records through
#: :meth:`ExperimentRecord.to_json` and adds triage witnesses; version-1
#: entries are simply not replayed (the shard re-executes — correct,
#: just slower).
_VERSION = 2

#: ``(campaign index, shard id)`` — the key a journal entry is stored under.
ShardKey = Tuple[int, int]


def campaign_key(config: CampaignConfig) -> str:
    """A fingerprint that must match for journal entries to be reused."""
    from repro.hw.profiles import config_digest

    # The platform digest covers the whole hardware configuration (core
    # knobs, channel, attacker sets, noise): a ``--resume`` against a
    # journal recorded under a different ``--hw-profile`` (or matrix grid
    # point) skips those entries and re-executes instead of silently
    # merging measurements from a different machine.
    key = (
        f"{config.name}|seed={config.seed}"
        f"|programs={config.num_programs}"
        f"|tests={config.tests_per_program}"
        f"|model={config.model.name}"
        f"|hw={config_digest(config.platform)}"
    )
    if config.triage:
        # A triage-less journal entry has no witnesses to replay; don't
        # let a triage run silently reuse it (and vice versa).
        key += "|triage=1"
    return key


def _dump_stats(stats: CampaignStats) -> Dict:
    return {
        "name": stats.name,
        "programs": stats.programs,
        "programs_with_counterexamples": stats.programs_with_counterexamples,
        "experiments": stats.experiments,
        "counterexamples": stats.counterexamples,
        "inconclusive": stats.inconclusive,
        "generation_failures": stats.generation_failures,
        "generation_attempts": stats.generation_attempts,
        "uncertified": stats.uncertified,
        "gen_time_total": stats.gen_time_total,
        "exe_time_total": stats.exe_time_total,
        "time_to_counterexample": stats.time_to_counterexample,
    }


def _dump_shard(shard: ShardResult) -> Dict:
    return {
        "shard_id": shard.shard_id,
        "program_indices": list(shard.program_indices),
        "attempt": shard.attempt,
        "duration": shard.duration,
        "stats": _dump_stats(shard.stats),
        "programs": [
            {
                "index": program.index,
                "name": program.name,
                "template": program.template,
                "asm": program.asm_text,
                "params": program.params,
            }
            for program in shard.programs
        ],
        "records": [record.to_json() for record in shard.records],
        "witnesses": [witness.to_json() for witness in shard.witnesses],
        # Additive key (still version 2): pre-ledger entries replay with
        # ledger=None and the merge simply reports no coverage for them.
        "ledger": shard.ledger,
    }


def _load_shard(payload: Dict) -> ShardResult:
    # Late import: repro.triage pulls in hw/obs machinery the journal
    # loader doesn't otherwise need.
    from repro.triage.corpus import Witness

    programs = [
        ProgramRecord(
            index=entry["index"],
            name=entry["name"],
            template=entry["template"],
            asm_text=entry["asm"],
            params=entry["params"],
        )
        for entry in payload["programs"]
    ]
    # Reassemble each generated program once; records of the same program
    # share the instance, as they did in the original run.
    asm_by_index = {
        program.index: assemble(program.asm_text, name=program.name)
        for program in programs
    }
    records = [
        ExperimentRecord.from_json(
            entry, program=asm_by_index[entry["program_index"]]
        )
        for entry in payload["records"]
    ]
    witnesses = [
        Witness.from_json(doc) for doc in payload.get("witnesses", [])
    ]
    return ShardResult(
        shard_id=payload["shard_id"],
        program_indices=tuple(payload["program_indices"]),
        stats=CampaignStats(**payload["stats"]),
        records=records,
        programs=programs,
        witnesses=witnesses,
        attempt=payload["attempt"],
        duration=payload["duration"],
        # Replayed, not executed: the merge layer excludes this duration
        # from the resumed run's wall-clock aggregates.
        cached=True,
        ledger=payload.get("ledger"),
    )


class CheckpointJournal:
    """The append-only journal of completed shards for one runner invocation."""

    def __init__(self, path: str):
        self.path = path

    def append(
        self, campaign_index: int, key: str, shard: ShardResult
    ) -> None:
        entry = {
            "v": _VERSION,
            "campaign": campaign_index,
            "key": key,
            "shard": _dump_shard(shard),
        }
        line = json.dumps(entry, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(
        self, expected_keys: Dict[int, str]
    ) -> Dict[ShardKey, ShardResult]:
        """Completed shards whose campaign fingerprint still matches.

        ``expected_keys`` maps campaign index to :func:`campaign_key` of the
        configuration being (re-)run; mismatching and malformed entries are
        skipped rather than trusted.
        """
        completed: Dict[ShardKey, ShardResult] = {}
        if not os.path.exists(self.path):
            return completed
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Partial trailing line from an interrupted append.
                    continue
                if entry.get("v") != _VERSION:
                    continue
                campaign_index = entry.get("campaign")
                if expected_keys.get(campaign_index) != entry.get("key"):
                    continue
                try:
                    shard = _load_shard(entry["shard"])
                except (KeyError, TypeError, ValueError):
                    continue
                completed[(campaign_index, shard.shard_id)] = shard
        return completed
