"""The work-queue scheduler: shard dispatch across a process pool.

Design:

* One duplex pipe per worker process — the parent assigns exactly one
  shard at a time to each worker, so it always knows what every worker is
  doing and since when.  Results never share a queue, so terminating a
  stuck worker cannot corrupt another worker's channel.
* Straggler handling — a shard that exceeds ``shard_timeout`` gets its
  worker terminated and replaced, and the shard is requeued.
* Bounded retry with backoff — crashes, hangs, and silent worker deaths
  requeue the shard with a linearly growing delay, up to ``max_retries``
  extra attempts; exhaustion raises :class:`ShardExhaustedError` (partial
  results up to that point remain in the checkpoint journal).
* Graceful degradation — when multiprocessing is unavailable (no ``fork``/
  ``spawn`` support, sandboxed semaphores, ...) the same task list runs
  in-process with identical results, since shard execution is
  deterministic (see :mod:`repro.runner.worker`).

Because every shard derives its randomness from
``SplittableRandom(seed).split(f"prog{i}")``, retrying a shard — even on a
different worker after a crash — reproduces exactly the result the failed
attempt would have produced.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ReproError
from repro.pipeline.config import CampaignConfig
from repro.pipeline.database import ExperimentDatabase
from repro.pipeline.result import CampaignResult
from repro.runner.checkpoint import CheckpointJournal, ShardKey, campaign_key
from repro.runner.events import (
    CampaignFinished,
    CampaignScheduled,
    CounterexampleFound,
    EventSink,
    RunnerDegraded,
    RunnerEvent,
    ShardFailed,
    ShardFinished,
    ShardRetried,
    ShardStarted,
)
from repro.runner.merge import merge_shard_results, record_shards
from repro.telemetry import collect as telemetry
from repro.runner.worker import (
    FaultInjector,
    ShardResult,
    ShardSpec,
    run_shard,
    shard_specs,
)
from repro.hw.platform import ExperimentOutcome

if TYPE_CHECKING:
    from repro.monitor.health import HealthConfig


class RunnerError(ReproError):
    """The parallel runner could not complete a campaign."""


class ShardExhaustedError(RunnerError):
    """A shard kept failing after its full retry budget."""


@dataclass(frozen=True)
class RunnerConfig:
    """Execution-engine knobs, orthogonal to what the campaign computes."""

    #: Worker processes; ``<= 1`` executes shards in-process (still through
    #: the same shard/merge machinery, with identical results).
    workers: int = 1
    #: Seconds before an in-flight shard is declared stuck, its worker
    #: killed, and the shard requeued.  ``None`` disables the watchdog.
    shard_timeout: Optional[float] = None
    #: Extra attempts per shard after the first, before giving up.
    max_retries: int = 2
    #: Base requeue delay; attempt ``n`` waits ``n * retry_backoff``.
    retry_backoff: float = 0.25
    #: Consecutive program indices per shard (1 = paper-style per-program).
    programs_per_shard: int = 1
    #: JSONL journal path; completed shards are appended as they finish.
    checkpoint_path: Optional[str] = None
    #: Skip shards already present in the journal (same campaign key).
    resume: bool = False
    #: Multiprocessing start method (``fork``/``spawn``/``forkserver``);
    #: ``None`` uses the platform default.
    start_method: Optional[str] = None
    #: Test hook forwarded to every shard attempt (picklable).
    fault_injector: Optional[FaultInjector] = None
    #: Run health detectors (repro.monitor.health) over the event stream;
    #: derived :class:`~repro.runner.events.HealthEvent` events reach the
    #: same sink as the lifecycle events.
    health: bool = True
    #: Detector thresholds; ``None`` uses ``HealthConfig()`` defaults.
    health_config: Optional["HealthConfig"] = None


@dataclass
class _Task:
    """One schedulable shard attempt."""

    key: ShardKey
    config: CampaignConfig
    spec: ShardSpec
    attempt: int = 0


@dataclass
class _Worker:
    """Parent-side bookkeeping for one pool process."""

    uid: int
    process: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    task: Optional[_Task] = None
    started_at: float = 0.0


def _worker_main(conn) -> None:
    """Pool process body: serve shard tasks until the pipe closes."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        key, config, spec, attempt, fault, telemetry_on = item
        # The parent's telemetry switch does not survive a ``spawn`` start
        # method, so each task carries it; matching the parent keeps worker
        # shard results shipping (or not shipping) telemetry payloads.
        if telemetry_on != telemetry.enabled():
            telemetry.enable() if telemetry_on else telemetry.disable()
        try:
            result = run_shard(config, spec, attempt=attempt, fault=fault)
            payload = ("ok", key, attempt, result)
        except BaseException as exc:  # report crashes, keep serving
            payload = ("error", key, attempt, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break


class ParallelRunner:
    """Shards campaigns across a worker pool and merges the results."""

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        events: Optional[EventSink] = None,
    ):
        self.config = config or RunnerConfig()
        #: The live health monitor, when enabled — the scheduler routes all
        #: events through it so detectors see the stream in order, and the
        #: dashboard exporter reads its log afterwards.
        self.health = None
        if self.config.health:
            # Late import: repro.monitor imports repro.runner.events, and a
            # module-scope import here would cycle through the package
            # initializer.
            from repro.monitor.health import HealthMonitor

            self.health = HealthMonitor(
                config=self.config.health_config, chain=events
            )
            self._events: Optional[EventSink] = self.health
        else:
            self._events = events

    # -- public API ----------------------------------------------------------

    def run(
        self,
        campaign: CampaignConfig,
        database: Optional[ExperimentDatabase] = None,
    ) -> CampaignResult:
        """Run one campaign; shards execute across the pool."""
        return self.run_many([campaign], database=database)[0]

    def run_many(
        self,
        campaigns: Sequence[CampaignConfig],
        database: Optional[ExperimentDatabase] = None,
    ) -> List[CampaignResult]:
        """Run a set of campaigns concurrently over one shared pool.

        All shards of all campaigns feed a single work queue, so a
        ``table1``-style campaign set keeps every worker busy even while
        individual campaigns wind down.
        """
        specs_per_campaign = [
            shard_specs(cfg, self.config.programs_per_shard)
            for cfg in campaigns
        ]
        expected_keys = {
            index: campaign_key(cfg) for index, cfg in enumerate(campaigns)
        }
        journal = (
            CheckpointJournal(self.config.checkpoint_path)
            if self.config.checkpoint_path
            else None
        )
        completed: Dict[ShardKey, ShardResult] = {}
        if journal is not None and self.config.resume:
            completed = journal.load(expected_keys)
        tasks: List[_Task] = []
        for index, (cfg, specs) in enumerate(
            zip(campaigns, specs_per_campaign)
        ):
            resumed = sum(
                1 for spec in specs if (index, spec.shard_id) in completed
            )
            self._emit(
                CampaignScheduled(
                    campaign=cfg.name,
                    shards=len(specs),
                    resumed_shards=resumed,
                )
            )
            for spec in specs:
                key = (index, spec.shard_id)
                if key in completed:
                    shard = completed[key]
                    self._emit(
                        ShardFinished(
                            campaign=cfg.name,
                            shard_id=spec.shard_id,
                            experiments=shard.stats.experiments,
                            counterexamples=shard.stats.counterexamples,
                            inconclusive=shard.stats.inconclusive,
                            duration=shard.duration,
                            cached=True,
                        )
                    )
                else:
                    tasks.append(_Task(key=key, config=cfg, spec=spec))

        if tasks:
            if self.config.workers > 1:
                fresh = self._run_pool(campaigns, tasks, journal, expected_keys)
            else:
                fresh = self._run_inline(
                    campaigns, tasks, journal, expected_keys
                )
            completed.update(fresh)

        results: List[CampaignResult] = []
        for index, (cfg, specs) in enumerate(
            zip(campaigns, specs_per_campaign)
        ):
            shards = [completed[(index, spec.shard_id)] for spec in specs]
            result = merge_shard_results(cfg.name, shards)
            if database is not None:
                campaign_id = database.add_campaign(cfg.name, cfg.describe())
                record_shards(database, campaign_id, shards)
                if result.ledger is not None:
                    database.record_coverage(campaign_id, result.ledger)
            self._emit(
                CampaignFinished(
                    campaign=cfg.name,
                    experiments=result.stats.experiments,
                    counterexamples=result.stats.counterexamples,
                )
            )
            if cfg.dashboard:
                from repro.monitor.dashboard import write_dashboard

                write_dashboard(
                    cfg.dashboard,
                    cfg.name,
                    result,
                    health=self.health.log if self.health is not None else (),
                )
            results.append(result)
        return results

    # -- internals -----------------------------------------------------------

    def _emit(self, event: RunnerEvent) -> None:
        if self._events is not None:
            self._events(event)

    def _complete(
        self,
        task: _Task,
        shard: ShardResult,
        journal: Optional[CheckpointJournal],
        expected_keys: Dict[int, str],
        done: Dict[ShardKey, ShardResult],
    ) -> None:
        done[task.key] = shard
        if journal is not None:
            campaign_index = task.key[0]
            journal.append(
                campaign_index, expected_keys[campaign_index], shard
            )
        for record in shard.records:
            if record.outcome is ExperimentOutcome.COUNTEREXAMPLE:
                self._emit(
                    CounterexampleFound(
                        campaign=task.config.name,
                        shard_id=task.spec.shard_id,
                        program=record.program_name,
                    )
                )
        self._emit(
            ShardFinished(
                campaign=task.config.name,
                shard_id=task.spec.shard_id,
                experiments=shard.stats.experiments,
                counterexamples=shard.stats.counterexamples,
                inconclusive=shard.stats.inconclusive,
                duration=shard.duration,
            )
        )

    def _next_attempt(self, task: _Task, reason: str) -> _Task:
        """Account a failed attempt; raise when the budget is exhausted."""
        attempt = task.attempt + 1
        if attempt > self.config.max_retries:
            self._emit(
                ShardFailed(
                    campaign=task.config.name,
                    shard_id=task.spec.shard_id,
                    attempts=attempt,
                    reason=reason,
                )
            )
            raise ShardExhaustedError(
                f"shard {task.spec.shard_id} of campaign "
                f"{task.config.name!r} failed {attempt} times; last: {reason}"
            )
        self._emit(
            ShardRetried(
                campaign=task.config.name,
                shard_id=task.spec.shard_id,
                attempt=attempt,
                reason=reason,
            )
        )
        return _Task(
            key=task.key, config=task.config, spec=task.spec, attempt=attempt
        )

    # -- in-process execution (workers <= 1, or degraded mode) ---------------

    def _run_inline(
        self,
        campaigns: Sequence[CampaignConfig],
        tasks: List[_Task],
        journal: Optional[CheckpointJournal],
        expected_keys: Dict[int, str],
    ) -> Dict[ShardKey, ShardResult]:
        done: Dict[ShardKey, ShardResult] = {}
        for task in tasks:
            while True:
                self._emit(
                    ShardStarted(
                        campaign=task.config.name,
                        shard_id=task.spec.shard_id,
                        attempt=task.attempt,
                    )
                )
                try:
                    shard = run_shard(
                        task.config,
                        task.spec,
                        attempt=task.attempt,
                        fault=self.config.fault_injector,
                    )
                except Exception as exc:
                    task = self._next_attempt(
                        task, f"{type(exc).__name__}: {exc}"
                    )
                    time.sleep(self.config.retry_backoff * task.attempt)
                    continue
                self._complete(task, shard, journal, expected_keys, done)
                break
        return done

    # -- pool execution ------------------------------------------------------

    def _run_pool(
        self,
        campaigns: Sequence[CampaignConfig],
        tasks: List[_Task],
        journal: Optional[CheckpointJournal],
        expected_keys: Dict[int, str],
    ) -> Dict[ShardKey, ShardResult]:
        try:
            context = multiprocessing.get_context(self.config.start_method)
        except ValueError as exc:
            self._emit(RunnerDegraded(reason=str(exc)))
            return self._run_inline(campaigns, tasks, journal, expected_keys)

        pool: Dict[int, _Worker] = {}
        next_uid = 0

        def spawn() -> Optional[_Worker]:
            nonlocal next_uid
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            worker = _Worker(uid=next_uid, process=process, conn=parent_conn)
            next_uid += 1
            pool[worker.uid] = worker
            return worker

        def discard(worker: _Worker, kill: bool = False) -> None:
            pool.pop(worker.uid, None)
            try:
                worker.conn.close()
            except OSError:
                pass
            if kill and worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)

        total = len(tasks)
        ready: Deque[_Task] = deque(tasks)
        delayed: List[Tuple[float, _Task]] = []
        done: Dict[ShardKey, ShardResult] = {}
        try:
            try:
                for _ in range(min(self.config.workers, total)):
                    spawn()
            except (OSError, ImportError, AttributeError, ValueError) as exc:
                self._emit(RunnerDegraded(reason=f"{type(exc).__name__}: {exc}"))
                for worker in list(pool.values()):
                    discard(worker, kill=True)
                remaining = list(ready) + [task for _, task in delayed]
                inline = self._run_inline(
                    campaigns, remaining, journal, expected_keys
                )
                done.update(inline)
                return done

            while len(done) < total:
                now = time.monotonic()
                if delayed:
                    still_delayed = []
                    for ready_at, task in delayed:
                        if ready_at <= now:
                            ready.append(task)
                        else:
                            still_delayed.append((ready_at, task))
                    delayed = still_delayed
                # Dispatch to idle workers.
                for worker in pool.values():
                    if worker.task is None and ready:
                        task = ready.popleft()
                        if task.key in done:
                            continue  # a straggler's late result beat it
                        worker.task = task
                        worker.started_at = now
                        worker.conn.send(
                            (
                                task.key,
                                task.config,
                                task.spec,
                                task.attempt,
                                self.config.fault_injector,
                                telemetry.enabled(),
                            )
                        )
                        self._emit(
                            ShardStarted(
                                campaign=task.config.name,
                                shard_id=task.spec.shard_id,
                                attempt=task.attempt,
                            )
                        )
                busy = [w for w in pool.values() if w.task is not None]
                if not busy and not ready and not delayed and len(done) < total:
                    raise RunnerError(
                        "scheduler stalled with no busy workers and "
                        f"{total - len(done)} shards outstanding"
                    )
                conns = [worker.conn for worker in busy]
                ready_conns = (
                    multiprocessing.connection.wait(conns, timeout=0.05)
                    if conns
                    else []
                )
                for conn in ready_conns:
                    worker = next(
                        w for w in pool.values() if w.conn is conn
                    )
                    task = worker.task
                    try:
                        kind, key, attempt, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        # The worker died without reporting (hard crash).
                        discard(worker, kill=True)
                        spawn()
                        if task is not None and task.key not in done:
                            retried = self._next_attempt(
                                task, "worker died unexpectedly"
                            )
                            delayed.append(
                                (
                                    now
                                    + self.config.retry_backoff
                                    * retried.attempt,
                                    retried,
                                )
                            )
                        continue
                    worker.task = None
                    if task is None or task.key != key:
                        # Stale message (cannot normally happen: each pipe
                        # carries one task at a time).  Accept a usable
                        # result — shard execution is deterministic, so any
                        # attempt's result is THE result — and drop the rest.
                        if kind != "ok" or key in done:
                            continue
                        task = _Task(
                            key=key,
                            config=campaigns[key[0]],
                            spec=ShardSpec(
                                shard_id=key[1],
                                program_indices=payload.program_indices,
                            ),
                            attempt=attempt,
                        )
                    if key in done:
                        continue
                    if kind == "ok":
                        self._complete(
                            task, payload, journal, expected_keys, done
                        )
                    else:
                        retried = self._next_attempt(task, payload)
                        delayed.append(
                            (
                                now
                                + self.config.retry_backoff * retried.attempt,
                                retried,
                            )
                        )
                # Health detectors see the live in-flight set every poll
                # iteration, so a wedged shard is reported long before the
                # (much larger) hard shard_timeout kills it.
                if self.health is not None:
                    self.health.tick()
                # Straggler watchdog and silent-death detection.
                for worker in list(pool.values()):
                    task = worker.task
                    if task is None:
                        continue
                    timed_out = (
                        self.config.shard_timeout is not None
                        and time.monotonic() - worker.started_at
                        > self.config.shard_timeout
                    )
                    vanished = not worker.process.is_alive()
                    if not timed_out and not vanished:
                        continue
                    reason = (
                        f"timed out after {self.config.shard_timeout:.1f}s"
                        if timed_out
                        else "worker process died"
                    )
                    discard(worker, kill=True)
                    spawn()
                    if task.key not in done:
                        retried = self._next_attempt(task, reason)
                        delayed.append(
                            (
                                time.monotonic()
                                + self.config.retry_backoff * retried.attempt,
                                retried,
                            )
                        )
        finally:
            for worker in list(pool.values()):
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                discard(worker)
        return done
