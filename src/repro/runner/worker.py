"""Shard execution: the picklable unit of work the pool runs.

A *shard* is a slice of a campaign's program indices.  :func:`run_shard`
executes the full per-program pipeline — template generation, (cached)
symbolic execution and test-case generation, experiment execution,
optional certification — for every index in the shard and returns a
:class:`ShardResult` that the merge layer recombines.

Determinism contract: every random stream a shard consumes is derived from
``SplittableRandom(cfg.seed).split(f"prog{i}")`` with a fresh root per
program, never from state shared across programs.  A shard's result is
therefore a pure function of ``(config, program index)`` — independent of
which worker runs it, how programs are grouped into shards, or whether it
runs in-process or in a pool — which is what makes merged parallel results
bit-identical to the sequential driver's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.bir import intern
from repro.core.testgen import TestCaseGenerator
from repro.errors import ReproError
from repro.hw.platform import ExperimentOutcome, ExperimentPlatform
from repro.isa.assembler import disassemble
from repro.pipeline.config import CampaignConfig
from repro.pipeline.metrics import CampaignStats
from repro.pipeline.result import ExperimentRecord
from repro.symbolic.concrete import certify_equivalence
from repro.telemetry import collect as telemetry
from repro.telemetry import metrics as tmetrics
from repro.telemetry.trace import span as tspan
from repro.utils.rng import SplittableRandom


@dataclass(frozen=True)
class ShardSpec:
    """Which slice of a campaign a shard covers."""

    shard_id: int
    program_indices: tuple

    def describe(self) -> str:
        indices = self.program_indices
        if len(indices) == 1:
            return f"program {indices[0]}"
        return f"programs {indices[0]}..{indices[-1]}"


@dataclass
class ProgramRecord:
    """One generated program, as the database records it.

    Kept alongside the experiment records so the parent process can insert
    program rows (and re-associate experiments with them) without workers
    ever touching the single-writer SQLite handle.
    """

    index: int
    name: str
    template: str
    asm_text: str
    params: Dict = field(default_factory=dict)


@dataclass
class ShardResult:
    """Everything one shard produced, ready for merging."""

    shard_id: int
    program_indices: tuple
    stats: CampaignStats
    records: List[ExperimentRecord] = field(default_factory=list)
    programs: List[ProgramRecord] = field(default_factory=list)
    #: Triaged witnesses (repro.triage.corpus.Witness) for this shard's
    #: counterexamples; empty unless ``CampaignConfig.triage`` is on.
    #: Like the records, a pure function of (config, program indices).
    witnesses: List = field(default_factory=list)
    attempt: int = 0
    duration: float = 0.0
    #: True when the result was replayed from a checkpoint journal rather
    #: than executed; cached durations are excluded from wall-clock
    #: aggregates (see :mod:`repro.runner.merge`).
    cached: bool = False
    #: Out-of-band (spans, metrics delta) payload recorded while executing
    #: this shard; None unless telemetry is enabled.  Never journaled and
    #: never part of the deterministic result.
    telemetry: Optional[tuple] = None
    #: JSON form of this shard's :class:`repro.monitor.ledger.CoverageLedger`
    #: delta (which model partitions each test case exercised); None when
    #: ``CampaignConfig.monitor`` is off.  Journaled, and order-invariantly
    #: merged, but deliberately outside ``deterministic_counters()``.
    ledger: Optional[Dict] = None


#: Test hook: called with ``(spec, attempt)`` at the start of every shard
#: attempt.  Raising simulates a worker crash; sleeping simulates a hang.
FaultInjector = Callable[[ShardSpec, int], None]


def shard_specs(
    config: CampaignConfig, programs_per_shard: int = 1
) -> List[ShardSpec]:
    """Slice a campaign into shards of consecutive program indices."""
    if programs_per_shard < 1:
        raise ValueError("programs_per_shard must be >= 1")
    indices = range(config.num_programs)
    return [
        ShardSpec(
            shard_id=shard_id,
            program_indices=tuple(indices[lo : lo + programs_per_shard]),
        )
        for shard_id, lo in enumerate(
            range(0, config.num_programs, programs_per_shard)
        )
    ]


def shard_rng(config: CampaignConfig, program_index: int) -> SplittableRandom:
    """The root random stream of one program's shard work.

    Derived from a fresh ``SplittableRandom(cfg.seed)`` so the value depends
    only on the campaign seed and the program index — not on how many
    programs preceded this one in whatever process ran them.
    """
    return SplittableRandom(config.seed).split(f"prog{program_index}")


def run_shard(
    config: CampaignConfig,
    spec: ShardSpec,
    attempt: int = 0,
    fault: Optional[FaultInjector] = None,
) -> ShardResult:
    """Execute one shard: the Fig. 1 pipeline for each program index."""
    if fault is not None:
        fault(spec, attempt)
    started = time.monotonic()
    stats = CampaignStats(name=config.name)
    records: List[ExperimentRecord] = []
    programs: List[ProgramRecord] = []
    if config.monitor:
        # Late import: repro.monitor.health pulls in repro.runner.events,
        # and importing it at module scope would cycle through the
        # repro.runner package initializer.
        from repro.monitor.ledger import CoverageLedger

        ledger: Optional[CoverageLedger] = CoverageLedger(
            config.name, spaces=config.coverage.spaces()
        )
    else:
        ledger = None
    counters_before = intern.counter_totals()
    marker = telemetry.shard_begin()
    with tspan(
        "shard",
        campaign=config.name,
        shard=spec.shard_id,
        programs=len(spec.program_indices),
        attempt=attempt,
    ):
        for program_index in spec.program_indices:
            _run_program(
                config, program_index, started, stats, records, programs,
                ledger,
            )
        if config.triage:
            # Late import: repro.triage imports this module's siblings.
            from repro.triage import triage_records

            witnesses = triage_records(config, records)
        else:
            witnesses = []
    # Attribute this shard's share of the process-wide cache activity:
    # the delta over the shard keeps merged totals additive even when one
    # worker process runs many shards back to back.
    for key, total in intern.counter_totals().items():
        delta = total - counters_before.get(key, 0)
        if delta:
            stats.cache_counters[key] = delta
    telemetry.record_cache_counters(stats.cache_counters)
    return ShardResult(
        shard_id=spec.shard_id,
        program_indices=spec.program_indices,
        stats=stats,
        records=records,
        programs=programs,
        witnesses=witnesses,
        attempt=attempt,
        duration=time.monotonic() - started,
        telemetry=telemetry.shard_end(marker),
        ledger=ledger.to_json() if ledger is not None else None,
    )


def _run_program(
    config: CampaignConfig,
    program_index: int,
    shard_started: float,
    stats: CampaignStats,
    records: List[ExperimentRecord],
    programs: List[ProgramRecord],
    ledger=None,
) -> None:
    rng = shard_rng(config, program_index)
    program_span = tspan("program", program=program_index)
    with program_span:
        _run_program_spanned(
            config,
            program_index,
            shard_started,
            stats,
            records,
            programs,
            rng,
            program_span,
            ledger,
        )


def _run_program_spanned(
    config: CampaignConfig,
    program_index: int,
    shard_started: float,
    stats: CampaignStats,
    records: List[ExperimentRecord],
    programs: List[ProgramRecord],
    rng: SplittableRandom,
    program_span,
    ledger=None,
) -> None:
    with tspan("template.generate", program=program_index) as s:
        generated = config.template.generate(rng.split("template"))
        s.set_attr("template", generated.template)
    program_span.set_attr("name", generated.asm.name)
    program_span.set_attr("template", generated.template)
    stats.programs += 1
    programs.append(
        ProgramRecord(
            index=program_index,
            name=generated.asm.name,
            template=generated.template,
            asm_text=disassemble(generated.asm),
            params=generated.params,
        )
    )
    platform = ExperimentPlatform(config.platform, rng=rng.split("platform"))
    try:
        generator = TestCaseGenerator(
            generated.asm,
            config.model,
            config=config.testgen,
            rng=rng.split("gen"),
            coverage=config.coverage,
        )
    except ReproError:
        # A template instance the toolchain cannot analyse (e.g. path
        # explosion) is skipped, like a failed pipeline run in Scam-V.
        stats.generation_failures += config.tests_per_program
        return
    program_hit = False
    for test_index in range(config.tests_per_program):
        gen_started = time.monotonic()
        with tspan(
            "testgen.generate", program=program_index, test=test_index
        ) as s:
            test = generator.generate()
            s.set_attr("succeeded", test is not None)
        gen_time = time.monotonic() - gen_started
        stats.generation_attempts += 1
        stats.gen_time_total += gen_time
        tmetrics.histogram("pipeline.generation.seconds").observe(gen_time)
        if test is None:
            stats.generation_failures += 1
            tmetrics.counter("pipeline.generation_failures").inc()
            continue
        exe_started = time.monotonic()
        with tspan(
            "hw.experiment", program=program_index, test=test_index
        ) as s:
            result = platform.run_experiment(
                generated.asm, test.state1, test.state2, test.train
            )
            s.set_attr("outcome", result.outcome.value)
        exe_time = time.monotonic() - exe_started
        stats.experiments += 1
        stats.exe_time_total += exe_time
        tmetrics.counter("pipeline.experiments").inc()
        tmetrics.histogram("pipeline.execution.seconds").observe(exe_time)
        if result.outcome is ExperimentOutcome.COUNTEREXAMPLE:
            certified = True
            if config.certify:
                with tspan("certify", program=program_index) as s:
                    certified = certify_equivalence(
                        generator.augmented, test.state1, test.state2
                    )
                    s.set_attr("certified", certified)
            if not certified:
                # Distinguishable but not model-equivalent on the concrete
                # states: a solver artefact, not a counterexample to
                # soundness.
                stats.uncertified += 1
                tmetrics.counter("pipeline.uncertified").inc()
            else:
                stats.counterexamples += 1
                tmetrics.counter("pipeline.counterexamples").inc()
                program_hit = True
                if stats.time_to_counterexample is None:
                    # Shard-local offset; the merge layer rebases it onto
                    # the campaign's cumulative timeline.
                    stats.time_to_counterexample = (
                        time.monotonic() - shard_started
                    )
        elif result.outcome is ExperimentOutcome.INCONCLUSIVE:
            stats.inconclusive += 1
        records.append(
            ExperimentRecord(
                program_name=generated.asm.name,
                template=generated.template,
                outcome=result.outcome,
                test=test,
                gen_time=gen_time,
                exe_time=exe_time,
                program_index=program_index,
            )
        )
        if ledger is not None:
            ledger.record(
                config.coverage.classify(test),
                result.outcome.value,
                program_index,
                test_index,
            )
    if program_hit:
        stats.programs_with_counterexamples += 1
