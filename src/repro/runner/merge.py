"""Merging shard results back into a sequential-equivalent campaign result.

Shards complete in whatever order the pool schedules them; this layer
reorders by shard id and concatenates, so the merged
:class:`~repro.pipeline.result.CampaignResult` has records in exactly the
order the sequential driver would have produced, and the merged
:class:`~repro.pipeline.metrics.CampaignStats` counters are bit-identical
to a sequential run of the same seed.

Time-to-counterexample is rebased onto the as-if-sequential timeline:
the sum of the durations of all shards ordered before the first
counterexample-bearing shard, plus that shard's local offset.
Checkpoint-resumed shards (``cached=True``) were replayed, not executed,
so their recorded durations are excluded from the wall-clock timeline —
a resumed run reports only the time it actually spent (the deterministic
counters are unaffected either way).

Database writes also live here: workers never touch the experiment
database (SQLite stays single-writer); the parent records each completed
shard's programs and experiments via :func:`record_shard`.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from repro.pipeline.database import ExperimentDatabase
from repro.pipeline.metrics import CampaignStats
from repro.pipeline.result import CampaignResult
from repro.runner.worker import ShardResult
from repro.telemetry import collect as telemetry


def merge_shard_results(
    name: str, shards: Iterable[ShardResult]
) -> CampaignResult:
    """Recombine shard results into one campaign result, in shard order."""
    ordered = sorted(shards, key=lambda shard: shard.shard_id)
    stats = CampaignStats(name=name)
    result = CampaignResult(stats=stats)
    elapsed = 0.0
    ttc: Optional[float] = None
    solver_docs: List[dict] = []
    for shard in ordered:
        stats = stats.merge(shard.stats)
        if ttc is None and shard.stats.time_to_counterexample is not None:
            ttc = elapsed + shard.stats.time_to_counterexample
        if not shard.cached:
            # Cached shards were replayed from the journal: counting their
            # recorded durations would bill a resumed run for time it never
            # spent this time around.
            elapsed += shard.duration
        result.records.extend(shard.records)
        result.witnesses.extend(shard.witnesses)
        telemetry.absorb_shard_payload(
            shard.telemetry, result.spans, result.metrics, solver_docs
        )
    stats.name = name
    stats.time_to_counterexample = ttc
    result.stats = stats
    ledger_docs = [s.ledger for s in ordered if s.ledger is not None]
    if ledger_docs:
        # Late import: repro.monitor.health imports repro.runner.events.
        from repro.monitor.ledger import merge_ledger_docs

        # The merge is associative and commutative, so the merged ledger
        # is byte-identical however the shards were grouped or ordered.
        result.ledger = merge_ledger_docs(ledger_docs)
    if solver_docs:
        # Same algebra as the ledger: the solver-profile aggregate merge
        # is a commutative monoid, so worker count and completion order
        # cannot perturb the merged document.
        from repro.telemetry.solver import merge_solver_docs

        result.solver = merge_solver_docs(solver_docs)
    return result


def record_shard(
    database: ExperimentDatabase, campaign_id: int, shard: ShardResult
) -> None:
    """Insert one shard's programs and experiments (parent process only)."""
    for program in shard.programs:
        program_id = database.add_program(
            campaign_id,
            program.name,
            program.template,
            program.asm_text,
            program.params,
        )
        for record in shard.records:
            if record.program_index != program.index:
                continue
            database.add_experiment(
                program_id,
                record.outcome.value,
                record.test.state1,
                record.test.state2,
                record.test.train,
                record.gen_time,
                record.exe_time,
            )
    for witness in shard.witnesses:
        database.add_witness(
            campaign_id,
            witness.name,
            witness.signature.key(),
            json.dumps(witness.to_json(), sort_keys=True),
        )


def record_shards(
    database: ExperimentDatabase,
    campaign_id: int,
    shards: Iterable[ShardResult],
) -> None:
    """Record completed shards in shard order (deterministic row order)."""
    for shard in sorted(shards, key=lambda shard: shard.shard_id):
        record_shard(database, campaign_id, shard)
