"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BirError(ReproError):
    """Malformed BIR program, expression, or statement."""


class BirTypeError(BirError):
    """A BIR expression was built from operands of incompatible widths."""


class IsaError(ReproError):
    """Malformed ISA instruction or assembly input."""


class LiftError(ReproError):
    """An ISA instruction could not be lifted to BIR."""


class SymbolicExecutionError(ReproError):
    """The symbolic executor hit an unsupported construct or a bound."""


class PathExplosionError(SymbolicExecutionError):
    """Path enumeration exceeded the configured limit."""


class SolverError(ReproError):
    """The model finder failed in an unexpected way."""


class UnsatError(SolverError):
    """The constraint set is unsatisfiable (proved, not timed out)."""


class SolverTimeoutError(SolverError):
    """The model finder exhausted its budget without a verdict."""


class ObservationModelError(ReproError):
    """An observation model was misconfigured or misapplied."""


class RefinementError(ReproError):
    """Refinement setup violated the more-restrictive-model assumption."""


class GeneratorError(ReproError):
    """A program generator was given unsatisfiable constraints."""


class HardwareError(ReproError):
    """The microarchitecture simulator was driven into an invalid state."""


class PlatformError(HardwareError):
    """The experiment platform (TrustZone-like runner) failed."""


class PipelineError(ReproError):
    """Scam-V pipeline orchestration failure."""


class ExperimentError(PipelineError):
    """A single experiment could not be generated or executed."""


class TriageError(ReproError):
    """Counterexample triage failure: malformed witness or corpus."""


class MatrixError(ReproError):
    """Microarchitecture-matrix failure: bad axis spec or sweep setup."""


class ServiceError(ReproError):
    """Campaign-service failure: queue, orchestrator, daemon, or client."""


class SpecError(ServiceError):
    """A scenario specification failed schema validation or parsing."""
