"""Observation-model base classes and augmentation helpers.

An observation model is an *augmentation pass*: it inserts
:class:`~repro.bir.stmt.Observe` statements into a BIR program.  Models that
support refinement produce a single combined program in which observations of
the model under validation carry tag ``BASE`` and the extra observations of
the refined model carry tag ``REFINED`` — the projection optimisation of
§5.1 (running the pipeline once on M2 and projecting M1 out by tag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.bir import expr as E
from repro.bir.program import Block, Program
from repro.bir.stmt import Assign, Statement, Store
from repro.bir.tags import ObsTag
from repro.errors import ObservationModelError


@dataclass(frozen=True)
class AttackerRegion:
    """The attacker-accessible cache region for cache-partitioning models.

    ``AR(addr)`` holds when the cache set index of ``addr`` lies in
    ``[lo_set, hi_set]``.  §6.2 uses ``61 <= line(v) <= 127`` (unaligned) and
    ``64 <= line(v) <= 127`` (page aligned) on a 128-set cache with 64-byte
    lines.
    """

    lo_set: int
    hi_set: int
    line_shift: int = 6  # log2(line size in bytes)
    set_count: int = 128

    def __post_init__(self):
        if not 0 <= self.lo_set <= self.hi_set < self.set_count:
            raise ObservationModelError(
                f"invalid attacker region [{self.lo_set}, {self.hi_set}] "
                f"for {self.set_count} sets"
            )

    def line_expr(self, addr: E.Expr) -> E.Expr:
        """The cache set index of an address, as a BIR expression."""
        shifted = E.lshr(addr, E.const(self.line_shift, addr.width))
        return E.band(shifted, E.const(self.set_count - 1, addr.width))

    def contains_expr(self, addr: E.Expr) -> E.Expr:
        """The predicate ``AR(addr)`` as a one-bit BIR expression."""
        line = self.line_expr(addr)
        lo = E.const(self.lo_set, addr.width)
        hi = E.const(self.hi_set, addr.width)
        return E.bool_and(E.ule(lo, line), E.ule(line, hi))

    def contains_set(self, set_index: int) -> bool:
        """Concrete membership check on a cache set index."""
        return self.lo_set <= set_index <= self.hi_set


class ObservationModel:
    """Base class: a named observation-augmentation pass.

    ``has_refinement`` is True when :meth:`augment` emits ``REFINED``-tagged
    observations in addition to the ``BASE`` ones, i.e. when the model object
    encodes a (model under validation, refined model) pair.
    """

    name: str = "model"
    has_refinement: bool = False

    def augment(self, program: Program) -> Program:
        """Return a copy of ``program`` with observation statements added."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass(frozen=True)
class RefinedPair:
    """Names the (M1, M2) pair a combined augmentation encodes."""

    base_name: str
    refined_name: str

    def __str__(self) -> str:
        return f"{self.base_name} refined by {self.refined_name}"


def load_address(stmt: Statement) -> Optional[E.Expr]:
    """The address expression if ``stmt`` is a load assignment, else None."""
    if isinstance(stmt, Assign) and isinstance(stmt.value, E.Load):
        return stmt.value.addr
    return None


def store_address(stmt: Statement) -> Optional[E.Expr]:
    """The address expression if ``stmt`` is a store, else None."""
    if isinstance(stmt, Store):
        return stmt.addr
    return None


def is_transient(stmt: Statement) -> bool:
    """True for shadow statements inserted by speculative instrumentation."""
    return bool(getattr(stmt, "transient", False))


def map_block_bodies(
    program: Program,
    rewrite: Callable[[Block], Iterable[Statement]],
) -> Program:
    """Apply a body-rewriting function to every block of a program."""
    return program.map_blocks(lambda b: b.with_body(tuple(rewrite(b))))
