"""Observation tags and kinds (re-exported from the IL layer).

See :mod:`repro.bir.tags` for the definitions; they live at the IL layer
because ``Observe`` statements carry them, but conceptually they belong to
the observation-model API, hence this alias module.
"""

from repro.bir.tags import ObsKind, ObsTag

__all__ = ["ObsKind", "ObsTag"]
