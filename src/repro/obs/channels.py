"""Observation models for additional side channels (§2.3).

The paper states that analysing a new channel — TLB state, variable-time
arithmetic, DRAM timing, power — only requires (1) a new observation-
augmentation module and (2) a channel measurement in the test executor.
The executor side lives in :class:`repro.hw.platform.Channel`; this module
is the augmentation side, with two worked channels:

**TLB** — :class:`MpageRefinedModel` validates a *set-index-only* model
(the attacker resolves cache sets but not full addresses, i.e. Mline used
as the model under validation) against the TLB channel.  The refined
observations are the page numbers of all accesses: requiring them to
differ drives generation toward same-set/different-page pairs, which the
TLB distinguishes.

**Variable-time arithmetic** — :class:`MtimeRefinedModel` validates the
program-counter security model (Mpc: execution time depends only on
control flow [Molnar et al.]) against the cycle-count channel on a core
with an early-termination multiplier.  The refined observations are the
multiplier operands — the §3 running example's refinement, "observe the
highest bits ... for checking if time needed depends on the size of the
arguments".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bir import expr as E
from repro.bir.program import Block, Program
from repro.bir.stmt import Assign, Observe
from repro.bir.tags import ObsKind, ObsTag
from repro.obs.base import (
    AttackerRegion,
    ObservationModel,
    is_transient,
    load_address,
    map_block_bodies,
    store_address,
)
from repro.obs.models import MlineModel, _pc_observation


@dataclass
class MpageRefinedModel(ObservationModel):
    """Set-index-only model refined by page observations (TLB channel).

    BASE observations: the cache set index of every architectural access
    (the model under validation claims set indexes are all an attacker can
    resolve).  REFINED observations: the page number of every access —
    distinct pages with equal set indexes are exactly what the TLB channel
    distinguishes and the base model misses.
    """

    region: AttackerRegion
    page_shift: int = 12
    name: str = field(default="Mline+Mpage", init=False)
    has_refinement = True

    def page_expr(self, addr: E.Expr) -> E.Expr:
        return E.lshr(addr, E.const(self.page_shift, addr.width))

    def augment(self, program: Program) -> Program:
        base = MlineModel(self.region).augment(program)

        def rewrite(block: Block):
            for stmt in block.body:
                yield stmt
                if is_transient(stmt):
                    continue
                addr = load_address(stmt) or store_address(stmt)
                if addr is not None:
                    yield Observe(
                        tag=ObsTag.REFINED,
                        kind=ObsKind.PAGE,
                        exprs=(self.page_expr(addr),),
                        label="page",
                    )

        return map_block_bodies(base, rewrite)


@dataclass
class MtimeRefinedModel(ObservationModel):
    """The pc-security model refined by multiplier-operand observations.

    BASE observations: the program counter of every instruction (execution
    time depends only on control flow).  REFINED observations: the second
    operand of every multiply — its magnitude decides the early-termination
    multiplier's latency, so forcing these to differ surfaces the
    variable-time arithmetic channel.
    """

    name: str = field(default="Mpc+Mtime", init=False)
    has_refinement = True

    def augment(self, program: Program) -> Program:
        def rewrite(block: Block):
            pc = _pc_observation(block)
            if pc is not None:
                yield pc
            for stmt in block.body:
                operand = multiplier_operand(stmt)
                if operand is not None and not is_transient(stmt):
                    yield Observe(
                        tag=ObsTag.REFINED,
                        kind=ObsKind.OPERAND,
                        exprs=(operand,),
                        label="mul-operand",
                    )
                yield stmt

        return map_block_bodies(program, rewrite)


def multiplier_operand(stmt) -> E.Expr:
    """The latency-determining operand of a lifted multiply, or None."""
    if (
        isinstance(stmt, Assign)
        and isinstance(stmt.value, E.BinOp)
        and stmt.value.op is E.BinOpKind.MUL
    ):
        return stmt.value.rhs
    return None
