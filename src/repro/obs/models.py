"""The observational models of the paper (§4) as augmentation passes.

Models under validation
-----------------------
* :class:`MpartModel` — cache partitioning (§4.2.1): observes the address of
  every memory access **inside the attacker-accessible region**.
* :class:`MctModel` — constant-time (§4.2.2): observes the program counter of
  every instruction and every accessed address.
* :class:`MspecOneLoadModel` — Mspec1 (§6.5): Mct plus the *first* load of
  each transient branch.

Refinements (combined augmentations, tag ``REFINED`` for the extra
observations, per the §5.1 projection optimisation)
----------------------------------------------------
* :class:`MpartRefinedModel` — Mpart' (§4.2.1): additionally observes
  addresses outside the attacker region.
* :class:`MspecModel` — Mspec (§4.2.2): additionally observes every load of
  the transient (shadow) branch.
* :class:`MspecStraightLineModel` — Mspec' (§6.5): Mspec after rewriting
  unconditional direct branches into tautological conditionals.

Supporting models for coverage (§4.1)
-------------------------------------
* :class:`MpcModel` — observes the program counter (path enumeration).
* :class:`MlineModel` — observes the cache set index of accessed addresses
  (cache line enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bir import expr as E
from repro.bir.program import Block, Program
from repro.bir.stmt import Observe
from repro.bir.tags import ObsKind, ObsTag
from repro.isa.lifter import instruction_index
from repro.obs.base import (
    AttackerRegion,
    ObservationModel,
    is_transient,
    load_address,
    map_block_bodies,
    store_address,
)
from repro.symbolic.speculative import (
    SpeculationBounds,
    instrument_speculation,
    unconditional_to_conditional,
)


def _pc_observation(block: Block) -> Optional[Observe]:
    """A BASE program-counter observation for an instruction block."""
    index = instruction_index(block.label)
    if index is None:
        return None
    return Observe(
        tag=ObsTag.BASE,
        kind=ObsKind.PC,
        exprs=(E.const(index),),
        label=f"pc:{index}",
    )


class MpcModel(ObservationModel):
    """Supporting model: observe the program counter of every instruction.

    Its equivalence classes are pairs of execution paths (§4.1.1); the
    pipeline's per-path-pair relation split (§5.4) enumerates exactly these
    classes, so Mpc doubles as the default coverage model.
    """

    name = "Mpc"

    def augment(self, program: Program) -> Program:
        def rewrite(block: Block):
            pc = _pc_observation(block)
            if pc is not None:
                yield pc
            yield from block.body

        return map_block_bodies(program, rewrite)


@dataclass
class MlineModel(ObservationModel):
    """Supporting model: observe the cache set index of every access (§4.1.2).

    ``region`` supplies the line geometry (shift and set count); the attacker
    bounds are ignored here.
    """

    region: AttackerRegion
    name: str = field(default="Mline", init=False)

    def augment(self, program: Program) -> Program:
        region = self.region

        def rewrite(block: Block):
            for stmt in block.body:
                addr = load_address(stmt) or store_address(stmt)
                if addr is not None and not is_transient(stmt):
                    yield Observe(
                        tag=ObsTag.BASE,
                        kind=ObsKind.CACHE_LINE,
                        exprs=(region.line_expr(addr),),
                        label="line",
                    )
                yield stmt

        return map_block_bodies(program, rewrite)


@dataclass
class MpartModel(ObservationModel):
    """Cache-partitioning model Mpart (§4.2.1).

    Observes ``if AR(addr) then addr`` for every memory access: the address
    of accesses inside the attacker region, nothing for accesses outside it.
    """

    region: AttackerRegion
    name: str = field(default="Mpart", init=False)

    def augment(self, program: Program) -> Program:
        return _augment_part(program, self.region, refined=False)


@dataclass
class MpartRefinedModel(ObservationModel):
    """Mpart refined by Mpart' (§4.2.1): one combined augmentation.

    BASE observations are Mpart's; REFINED observations record the address of
    accesses *outside* the attacker region (guard ``not AR(addr)``), so
    requiring refined observations to differ forces the two states to touch
    different non-attacker cache sets — the guidance that surfaces the
    prefetcher.
    """

    region: AttackerRegion
    name: str = field(default="Mpart+Mpart'", init=False)
    has_refinement = True

    def augment(self, program: Program) -> Program:
        return _augment_part(program, self.region, refined=True)


def _augment_part(program: Program, region: AttackerRegion, refined: bool) -> Program:
    def rewrite(block: Block):
        for stmt in block.body:
            addr = load_address(stmt)
            kind = ObsKind.LOAD_ADDR
            if addr is None:
                addr = store_address(stmt)
                kind = ObsKind.STORE_ADDR
            if addr is not None and not is_transient(stmt):
                inside = region.contains_expr(addr)
                yield Observe(
                    tag=ObsTag.BASE,
                    kind=kind,
                    exprs=(addr,),
                    guard=inside,
                    label="ar-addr",
                )
                if refined:
                    yield Observe(
                        tag=ObsTag.REFINED,
                        kind=kind,
                        exprs=(addr,),
                        guard=E.bool_not(inside),
                        label="non-ar-addr",
                    )
            yield stmt

    return map_block_bodies(program, rewrite)


class MctModel(ObservationModel):
    """Constant-time model Mct (§4.2.2).

    Observes the program counter of every instruction and the address of
    every (architectural) memory access.
    """

    name = "Mct"

    def augment(self, program: Program) -> Program:
        return _augment_ct(program, spec_first_load_tag=None)


@dataclass
class MspecModel(ObservationModel):
    """Mct refined by Mspec (§4.2.2): one combined augmentation.

    The program is first instrumented with shadow (transient) statements for
    every conditional branch; Mct's observations (BASE) cover architectural
    behaviour, and every transient load's address is observed with tag
    REFINED.
    """

    bounds: SpeculationBounds = field(default_factory=SpeculationBounds)
    name: str = field(default="Mct+Mspec", init=False)
    has_refinement = True

    def augment(self, program: Program) -> Program:
        instrumented = instrument_speculation(program, self.bounds)
        return _augment_ct(instrumented, spec_first_load_tag=ObsTag.REFINED)


@dataclass
class MspecOneLoadModel(ObservationModel):
    """Mspec1 refined by Mspec (§6.5): one combined augmentation.

    Mspec1 — the model under validation — consists of Mct plus the *first*
    load of each transient branch, so that first transient load is tagged
    BASE; the remaining transient loads are REFINED (they are Mspec-only).
    """

    bounds: SpeculationBounds = field(default_factory=SpeculationBounds)
    name: str = field(default="Mspec1+Mspec", init=False)
    has_refinement = True

    def augment(self, program: Program) -> Program:
        instrumented = instrument_speculation(program, self.bounds)
        return _augment_ct(instrumented, spec_first_load_tag=ObsTag.BASE)


@dataclass
class MspecStraightLineModel(ObservationModel):
    """Mct refined by Mspec' (§6.5).

    Unconditional direct branches are rewritten into tautologically-true
    conditional branches, so the speculative instrumentation also shadows the
    straight-line successors of ``b label`` — modelling straight-line
    speculation.
    """

    bounds: SpeculationBounds = field(default_factory=SpeculationBounds)
    name: str = field(default="Mct+Mspec'", init=False)
    has_refinement = True

    def augment(self, program: Program) -> Program:
        converted = unconditional_to_conditional(program)
        instrumented = instrument_speculation(converted, self.bounds)
        return _augment_ct(instrumented, spec_first_load_tag=ObsTag.REFINED)


def _augment_ct(program: Program, spec_first_load_tag: Optional[ObsTag]) -> Program:
    """Insert Mct observations, plus transient-load observations when the
    program carries shadow statements.

    ``spec_first_load_tag`` is the tag for the first transient load of each
    shadow block (BASE for Mspec1, REFINED for Mspec); subsequent transient
    loads are always REFINED.  ``None`` means transient statements are not
    observed at all (plain Mct on an uninstrumented program).
    """

    def rewrite(block: Block):
        pc = _pc_observation(block)
        if pc is not None:
            yield pc
        transient_loads_seen = 0
        for stmt in block.body:
            if is_transient(stmt):
                addr = load_address(stmt)
                if addr is not None and spec_first_load_tag is not None:
                    tag = (
                        spec_first_load_tag
                        if transient_loads_seen == 0
                        else ObsTag.REFINED
                    )
                    transient_loads_seen += 1
                    yield Observe(
                        tag=tag,
                        kind=ObsKind.SPEC_LOAD_ADDR,
                        exprs=(addr,),
                        label="spec-load",
                    )
                yield stmt
                continue
            addr = load_address(stmt)
            if addr is not None:
                yield Observe(
                    tag=ObsTag.BASE,
                    kind=ObsKind.LOAD_ADDR,
                    exprs=(addr,),
                    label="load",
                )
            addr = store_address(stmt)
            if addr is not None:
                yield Observe(
                    tag=ObsTag.BASE,
                    kind=ObsKind.STORE_ADDR,
                    exprs=(addr,),
                    label="store",
                )
            yield stmt

    return map_block_bodies(program, rewrite)
