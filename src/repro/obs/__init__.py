"""Observational models (§2.2, §4) and the tags used for refinement (§5.1).

An :class:`~repro.obs.base.ObservationModel` is an augmentation pass that
inserts :class:`~repro.bir.stmt.Observe` statements into a BIR program.  For
refinement, a single augmented program carries observations for both the
model under validation (tag ``BASE``) and the refined model (tag
``REFINED``); the projection function of §5.1 simply filters by tag.
"""

from repro.obs.tags import ObsKind, ObsTag
from repro.obs.base import ObservationModel, RefinedPair
from repro.obs.channels import MpageRefinedModel, MtimeRefinedModel
from repro.obs.models import (
    MctModel,
    MlineModel,
    MpartModel,
    MpartRefinedModel,
    MpcModel,
    MspecModel,
    MspecOneLoadModel,
    MspecStraightLineModel,
)

__all__ = [
    "ObsKind",
    "ObsTag",
    "ObservationModel",
    "RefinedPair",
    "MctModel",
    "MlineModel",
    "MpartModel",
    "MpartRefinedModel",
    "MpcModel",
    "MspecModel",
    "MspecOneLoadModel",
    "MspecStraightLineModel",
    "MpageRefinedModel",
    "MtimeRefinedModel",
]
