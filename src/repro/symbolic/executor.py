"""Path-enumerating symbolic executor for loop-free BIR programs."""

from __future__ import annotations

from typing import List

from repro.bir import expr as E
from repro.bir.cfg import ControlFlowGraph
from repro.bir.program import Program
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Store
from repro.errors import PathExplosionError, SymbolicExecutionError
from repro.symbolic.path import (
    SymbolicExecutionResult,
    SymbolicObservation,
    SymbolicPath,
)
from repro.symbolic.state import SymbolicState
from repro.telemetry.trace import span as tspan

DEFAULT_MAX_PATHS = 256


class SymbolicExecutor:
    """Executes a program symbolically, exploring every feasible path.

    Feasibility here is *syntactic*: a branch is pruned only when its
    condition simplifies to a constant.  Semantically infeasible paths are
    eliminated later by the model finder (an unsatisfiable path pair simply
    yields no test case), exactly as in Scam-V where Z3 plays that role.
    """

    def __init__(self, max_paths: int = DEFAULT_MAX_PATHS):
        self.max_paths = max_paths

    def run(self, program: Program) -> SymbolicExecutionResult:
        with tspan("symbolic.execute", program=program.name) as span:
            result = self._run(program)
            span.set_attr("paths", len(result))
            return result

    def _run(self, program: Program) -> SymbolicExecutionResult:
        cfg = ControlFlowGraph(program)
        if not cfg.is_acyclic():
            raise SymbolicExecutionError(
                f"program {program.name!r} has loops; the executor only "
                "supports loop-free programs (the templates are loop-free)"
            )
        paths: List[SymbolicPath] = []
        # Depth-first exploration; each work item is (label, state).
        stack = [(program.entry, SymbolicState())]
        while stack:
            label, state = stack.pop()
            state.block_trace.append(label)
            block = program.block(label)
            for stmt in block.body:
                self._step(stmt, state)
            term = block.terminator
            if isinstance(term, Halt):
                if len(paths) >= self.max_paths:
                    # Raise *at* the limit: a max_paths-path program is
                    # fine, the (max_paths + 1)-th completed path is not.
                    raise PathExplosionError(
                        f"program {program.name!r} exceeded "
                        f"{self.max_paths} paths"
                    )
                paths.append(self._finish(state))
                continue
            if isinstance(term, Jmp):
                stack.append((term.target, state))
                continue
            if isinstance(term, CJmp):
                cond = state.eval(term.cond)
                if cond == E.TRUE:
                    stack.append((term.target_true, state))
                elif cond == E.FALSE:
                    stack.append((term.target_false, state))
                else:
                    false_state = state.clone()
                    false_state.assume(E.bool_not(cond))
                    stack.append((term.target_false, false_state))
                    state.assume(cond)
                    stack.append((term.target_true, state))
                    # Every pending work item yields at least one path, so
                    # this fork already guarantees an explosion: fail now
                    # instead of executing the doomed subtrees (the pending
                    # stack stays bounded by max_paths + 1).
                    if len(paths) + len(stack) > self.max_paths:
                        raise PathExplosionError(
                            f"program {program.name!r} exceeded "
                            f"{self.max_paths} paths"
                        )
                continue
            raise SymbolicExecutionError(f"unknown terminator {term!r}")
        # DFS visits the false arm first at each fork (it is pushed first);
        # reverse to report paths in true-first order, which keeps path
        # indices stable and readable in reports.
        paths.reverse()
        return SymbolicExecutionResult(program.name, paths)

    def _step(self, stmt, state: SymbolicState) -> None:
        if isinstance(stmt, Assign):
            state.assign(stmt.target.name, state.eval(stmt.value))
            return
        if isinstance(stmt, Store):
            state.store(stmt.mem.name, state.eval(stmt.addr), state.eval(stmt.value))
            return
        if isinstance(stmt, Observe):
            guard = state.eval(stmt.guard)
            if guard == E.FALSE:
                return
            state.observe(
                SymbolicObservation(
                    tag=stmt.tag,
                    kind=stmt.kind,
                    exprs=tuple(state.eval(e) for e in stmt.exprs),
                    guard=guard,
                    label=stmt.label,
                )
            )
            return
        raise SymbolicExecutionError(f"unknown statement {stmt!r}")

    def _finish(self, state: SymbolicState) -> SymbolicPath:
        return SymbolicPath(
            path_condition=tuple(state.path_condition),
            observations=tuple(state.observations),
            block_trace=tuple(state.block_trace),
            final_env=dict(state.env),
        )


def execute(program: Program, max_paths: int = DEFAULT_MAX_PATHS) -> SymbolicExecutionResult:
    """Convenience wrapper around :class:`SymbolicExecutor`."""
    return SymbolicExecutor(max_paths=max_paths).run(program)
