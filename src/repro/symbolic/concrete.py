"""Concrete execution of BIR programs with observation traces.

Runs an (augmented) BIR program on concrete register/memory values and
records the observations it emits — the concrete counterpart of symbolic
execution.  Two uses:

* **Counterexample certification**: a hardware-distinguishable test pair is
  a genuine counterexample only if the two states produce *identical* BASE
  observation traces (they are observationally equivalent in the model
  under validation).  :func:`certify_equivalence` re-checks that on the
  concrete states, independently of the solver.
* **Debugging models**: inspect exactly what a model observes on a given
  input (``trace.describe()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bir import expr as E
from repro.bir.program import Program
from repro.bir.stmt import Assign, CJmp, Halt, Jmp, Observe, Store
from repro.bir.tags import ObsKind, ObsTag
from repro.errors import SymbolicExecutionError
from repro.hw.platform import StateInputs

MAX_STEPS = 100_000


@dataclass(frozen=True)
class ConcreteObservation:
    """One observation emitted during a concrete run."""

    tag: ObsTag
    kind: ObsKind
    values: Tuple[int, ...]
    label: str = ""

    def describe(self) -> str:
        values = ", ".join(hex(v) for v in self.values)
        return f"{self.kind.value}<{self.tag.value}>[{values}]"


@dataclass
class ConcreteTrace:
    """The result of a concrete BIR run."""

    observations: Tuple[ConcreteObservation, ...]
    block_trace: Tuple[str, ...]
    final_regs: Dict[str, int]

    def with_tag(self, tag: ObsTag) -> Tuple[ConcreteObservation, ...]:
        return tuple(o for o in self.observations if o.tag is tag)

    def base_observations(self) -> Tuple[ConcreteObservation, ...]:
        return self.with_tag(ObsTag.BASE)

    def describe(self) -> str:
        lines = [f"trace {' -> '.join(self.block_trace)}"]
        lines.extend(f"  {o.describe()}" for o in self.observations)
        return "\n".join(lines)


def run_concrete(program: Program, inputs: StateInputs) -> ConcreteTrace:
    """Execute a BIR program concretely, collecting observations.

    Transient (shadow) statements execute like any other statement: their
    shadow variables are disjoint from the architectural ones, so they
    cannot perturb the architectural result — exactly as in the symbolic
    semantics.
    """
    # Like the hardware platform, registers default to zero.
    regs = {f"x{i}": 0 for i in range(31)}
    regs.update(inputs.regs)
    valuation = E.Valuation(regs=regs, mems={"MEM": dict(inputs.memory)})
    observations: List[ConcreteObservation] = []
    block_trace: List[str] = []
    label: Optional[str] = program.entry
    steps = 0
    while label is not None:
        steps += 1
        if steps > MAX_STEPS:
            raise SymbolicExecutionError(
                f"concrete run of {program.name!r} exceeded {MAX_STEPS} blocks"
            )
        block_trace.append(label)
        block = program.block(label)
        for stmt in block.body:
            _step(stmt, valuation, observations)
        label = _next_label(block.terminator, valuation)
    return ConcreteTrace(
        observations=tuple(observations),
        block_trace=tuple(block_trace),
        final_regs=dict(valuation.regs),
    )


def _step(stmt, valuation: E.Valuation, observations) -> None:
    if isinstance(stmt, Assign):
        valuation.regs[stmt.target.name] = E.evaluate(stmt.value, valuation)
        return
    if isinstance(stmt, Store):
        addr = E.evaluate(stmt.addr, valuation)
        value = E.evaluate(stmt.value, valuation)
        valuation.mems.setdefault(stmt.mem.name, {})[addr] = value
        return
    if isinstance(stmt, Observe):
        if E.evaluate(stmt.guard, valuation):
            observations.append(
                ConcreteObservation(
                    tag=stmt.tag,
                    kind=stmt.kind,
                    values=tuple(
                        E.evaluate(e, valuation) for e in stmt.exprs
                    ),
                    label=stmt.label,
                )
            )
        return
    raise SymbolicExecutionError(f"cannot execute {stmt!r}")


def _next_label(terminator, valuation: E.Valuation) -> Optional[str]:
    if isinstance(terminator, Halt):
        return None
    if isinstance(terminator, Jmp):
        return terminator.target
    if isinstance(terminator, CJmp):
        if E.evaluate(terminator.cond, valuation):
            return terminator.target_true
        return terminator.target_false
    raise SymbolicExecutionError(f"unknown terminator {terminator!r}")


def certify_equivalence(
    program: Program, state1: StateInputs, state2: StateInputs
) -> bool:
    """Re-check that two states are observationally equivalent (BASE tags).

    Runs the augmented program concretely from both states and compares the
    BASE observation traces — Definition 1, evaluated on concrete inputs.
    A counterexample is only meaningful when this holds, so the pipeline
    can use it to certify solver output independently.
    """
    trace1 = run_concrete(program, state1)
    trace2 = run_concrete(program, state2)
    return trace1.base_observations() == trace2.base_observations()


def refined_difference_holds(
    program: Program, state1: StateInputs, state2: StateInputs
) -> bool:
    """Check the refinement requirement on concrete states: the REFINED
    observation traces differ (``s1 !~M2 s2``, §3 step 4)."""
    trace1 = run_concrete(program, state1)
    trace2 = run_concrete(program, state2)
    return trace1.with_tag(ObsTag.REFINED) != trace2.with_tag(ObsTag.REFINED)
