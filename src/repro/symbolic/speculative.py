"""Speculative (shadow-state) program instrumentation — §4.2.2 and Fig. 4.

For every conditional branch with arms A and B, the pass creates a fresh
*edge block* per arm and fills it with shadow copies of the **other** arm's
statements.  Shadow statements operate on starred variables (``x3`` becomes
``x3_spec``), which are initialised from the real state at the branch — the
transient CPU state at misprediction time.  Shadow loads read the real
memory, which at that point equals the memory the mispredicted execution
would see.

The pass marks shadow statements ``transient=True`` so the observation
models can attach refined observations to them (all transient loads for
Mspec, only the first for Mspec1).

``unconditional_to_conditional`` implements the Mspec' trick of §6.5:
explicit unconditional jumps become tautologically-true conditional jumps so
the same instrumentation covers straight-line speculation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.bir import expr as E
from repro.bir.cfg import ControlFlowGraph
from repro.bir.program import Block, Program
from repro.bir.stmt import Assign, CJmp, Jmp, Observe, Statement, Store
from repro.errors import RefinementError

SHADOW_SUFFIX = "_spec"


@dataclass(frozen=True)
class SpeculationBounds:
    """Limits on how much of a mispredicted arm is modelled as transient.

    ``max_instructions`` bounds the number of shadow statements per arm;
    ``max_loads`` bounds the number of shadow loads.  ``None`` means
    unbounded.  Mspec uses unbounded; Mspec1's augmentation restricts
    *observations* rather than these bounds, but the bounds are exposed so a
    user can model shallower pipelines (§5.1: "bound the number and type of
    instructions that can be speculated").
    """

    max_instructions: Optional[int] = None
    max_loads: Optional[int] = None


def shadow_name(name: str) -> str:
    """The starred (shadow) counterpart of a variable name."""
    return name + SHADOW_SUFFIX


def is_shadow_name(name: str) -> bool:
    return name.endswith(SHADOW_SUFFIX)


def _shadow_expr(expr: E.Expr) -> E.Expr:
    """Rename every variable in ``expr`` to its shadow counterpart."""
    mapping = {v: E.Var(shadow_name(v.name), v.width) for v in expr.variables()}
    return E.substitute(expr, mapping)


def collect_arm_statements(
    cfg: ControlFlowGraph,
    arm_entry: str,
    stop_labels: Set[str],
    bounds: SpeculationBounds,
) -> List[Statement]:
    """Statements along the straight-line chain starting at ``arm_entry``.

    Stops at any label in ``stop_labels`` (the join with the other arm), at a
    nested conditional branch, at a halt, or when the bounds are exhausted.
    """
    statements: List[Statement] = []
    loads = 0
    label = arm_entry
    while label not in stop_labels:
        block = cfg.program.block(label)
        for stmt in block.body:
            if isinstance(stmt, (Assign, Store)) and getattr(stmt, "transient", False):
                # Already-instrumented programs must not be instrumented again.
                raise RefinementError(
                    "speculative instrumentation applied twice "
                    f"(transient statement found in block {label!r})"
                )
            if bounds.max_instructions is not None and len(statements) >= bounds.max_instructions:
                return statements
            if isinstance(stmt, Assign) and isinstance(stmt.value, E.Load):
                if bounds.max_loads is not None and loads >= bounds.max_loads:
                    return statements
                loads += 1
            statements.append(stmt)
        term = block.terminator
        if isinstance(term, Jmp):
            label = term.target
            continue
        # Nested branch or halt: transient modelling stops here.
        break
    return statements


def _shadow_statements(statements: List[Statement]) -> List[Statement]:
    """Shadow copies of ``statements``: starred targets, starred reads,
    prefixed with copies of the live-in registers from the real state."""
    shadow: List[Statement] = []
    written: Set[str] = set()
    live_in: List[str] = []
    live_seen: Set[str] = set()

    def note_reads(expr: E.Expr) -> None:
        for v in expr.variables():
            if v.name not in written and v.name not in live_seen:
                live_seen.add(v.name)
                live_in.append(v.name)

    body: List[Statement] = []
    for stmt in statements:
        if isinstance(stmt, Assign):
            note_reads(stmt.value)
            written.add(stmt.target.name)
            body.append(
                Assign(
                    E.Var(shadow_name(stmt.target.name), stmt.target.width),
                    _shadow_expr(stmt.value),
                    transient=True,
                )
            )
        elif isinstance(stmt, Store):
            raise RefinementError(
                "store in a speculated arm: Cortex-A53 does not speculatively "
                "retire stores, and shadow stores are not modelled"
            )
        elif isinstance(stmt, Observe):
            # Observations from earlier augmentation passes do not belong in
            # the transient copy; models add their own transient observations.
            continue
        else:
            raise RefinementError(f"cannot shadow statement {stmt!r}")

    # Initialise the shadow (transient) state as a copy of the real state at
    # the branch: one copy per live-in register of the shadow code.
    for name in live_in:
        shadow.append(
            Assign(
                E.Var(shadow_name(name), E.WORD_WIDTH),
                E.Var(name, E.WORD_WIDTH),
                transient=True,
            )
        )
    shadow.extend(body)
    return shadow


def instrument_speculation(
    program: Program,
    bounds: SpeculationBounds = SpeculationBounds(),
) -> Program:
    """Insert shadow edge-blocks for every conditional branch.

    Returns a new program where each ``CJmp(c, T, F)`` is rewritten to
    ``CJmp(c, T', F')`` with ``T'`` containing the shadow copy of the F-arm's
    statements (what a misprediction toward F would transiently execute when
    the real outcome is T) followed by ``Jmp T`` — and symmetrically for
    ``F'``.
    """
    cfg = ControlFlowGraph(program)
    new_blocks: List[Block] = []
    extra_blocks: List[Block] = []
    for block in program:
        term = block.terminator
        if not isinstance(term, CJmp):
            new_blocks.append(block)
            continue
        reach_true = cfg.blocks_on_path_from(term.target_true)
        reach_false = cfg.blocks_on_path_from(term.target_false)
        joins = reach_true & reach_false
        arm_true = collect_arm_statements(cfg, term.target_true, joins, bounds)
        arm_false = collect_arm_statements(cfg, term.target_false, joins, bounds)
        label_true = f"{block.label}_spec_t"
        label_false = f"{block.label}_spec_f"
        extra_blocks.append(
            Block(
                label_true,
                tuple(_shadow_statements(arm_false)),
                Jmp(term.target_true),
            )
        )
        extra_blocks.append(
            Block(
                label_false,
                tuple(_shadow_statements(arm_true)),
                Jmp(term.target_false),
            )
        )
        new_blocks.append(
            Block(block.label, block.body, CJmp(term.cond, label_true, label_false))
        )
    return Program(new_blocks + extra_blocks, name=program.name)


def unconditional_to_conditional(program: Program) -> Program:
    """Rewrite explicit unconditional jumps into tautological conditionals.

    This is the Mspec' transformation of §6.5: after it, the speculative
    instrumentation treats the straight-line successor of a ``b label`` as a
    mispredictable arm, so transient observations cover straight-line
    speculation.  The condition is the constant TRUE: the symbolic executor
    then follows only the (real) taken edge — which, after instrumentation,
    carries the shadow copy of the straight-line code — and never explores
    the architecturally unreachable fall-through path.
    """
    labels = list(program.labels)
    new_blocks: List[Block] = []
    for position, block in enumerate(program):
        term = block.terminator
        if isinstance(term, Jmp) and term.explicit:
            if position + 1 < len(labels):
                fallthrough = labels[position + 1]
                new_blocks.append(
                    Block(
                        block.label,
                        block.body,
                        CJmp(E.TRUE, term.target, fallthrough),
                    )
                )
                continue
        new_blocks.append(block)
    return Program(new_blocks, name=program.name)
