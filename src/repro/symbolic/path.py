"""Result structures of symbolic execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.bir import expr as E
from repro.bir.printer import format_expr
from repro.bir.tags import ObsKind, ObsTag


@dataclass(frozen=True)
class SymbolicObservation:
    """One observation produced along a path.

    ``guard`` is a one-bit expression over the *initial* state: the
    observation is emitted only on executions where it holds (used by Mpart's
    attacker-region-conditional observations).  ``exprs`` are the observed
    values, also over the initial state.
    """

    tag: ObsTag
    kind: ObsKind
    exprs: Tuple[E.Expr, ...]
    guard: E.Expr = E.TRUE
    label: str = ""

    def is_base(self) -> bool:
        return self.tag is ObsTag.BASE

    def describe(self) -> str:
        guard = "" if self.guard == E.TRUE else f" when {format_expr(self.guard)}"
        exprs = ", ".join(format_expr(e) for e in self.exprs)
        return f"{self.kind.value}<{self.tag.value}>[{exprs}]{guard}"


@dataclass(frozen=True)
class SymbolicPath:
    """One terminating path: condition, observations, trace, final state."""

    path_condition: Tuple[E.Expr, ...]
    observations: Tuple[SymbolicObservation, ...]
    block_trace: Tuple[str, ...]
    final_env: Dict[str, E.Expr] = field(default_factory=dict, compare=False, hash=False)

    def condition_expr(self) -> E.Expr:
        """The path condition as a single conjunction."""
        return E.bool_and(*self.path_condition)

    def observations_with_tag(self, tag: ObsTag) -> Tuple[SymbolicObservation, ...]:
        return tuple(o for o in self.observations if o.tag is tag)

    def base_observations(self) -> Tuple[SymbolicObservation, ...]:
        """The projection pi of §5.1: drop refined observations."""
        return self.observations_with_tag(ObsTag.BASE)

    def refined_only_observations(self) -> Tuple[SymbolicObservation, ...]:
        return self.observations_with_tag(ObsTag.REFINED)

    def describe(self) -> str:
        cond = format_expr(self.condition_expr())
        obs = "; ".join(o.describe() for o in self.observations)
        return f"path {' -> '.join(self.block_trace)}\n  cond: {cond}\n  obs:  [{obs}]"


class SymbolicExecutionResult:
    """All terminating paths of a program, in exploration order."""

    def __init__(self, program_name: str, paths: List[SymbolicPath]):
        self.program_name = program_name
        self.paths: Tuple[SymbolicPath, ...] = tuple(paths)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[SymbolicPath]:
        return iter(self.paths)

    def __getitem__(self, index: int) -> SymbolicPath:
        return self.paths[index]

    def input_variables(self) -> FrozenSet[E.Var]:
        """All initial-state variables mentioned anywhere in the result."""
        out = set()
        for path in self.paths:
            for cond in path.path_condition:
                out.update(cond.variables())
            for obs in path.observations:
                out.update(obs.guard.variables())
                for e in obs.exprs:
                    out.update(e.variables())
        return frozenset(out)

    def describe(self) -> str:
        lines = [f"symbolic execution of {self.program_name}: {len(self)} path(s)"]
        lines.extend(p.describe() for p in self.paths)
        return "\n".join(lines)
