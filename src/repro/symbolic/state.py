"""Symbolic machine state: register environment + memory store chains."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bir import expr as E
from repro.bir.simp import simplify
from repro.errors import SymbolicExecutionError
from repro.symbolic.path import SymbolicObservation


class SymbolicState:
    """Mutable state threaded through one path of symbolic execution.

    * ``env`` maps variable names to expressions over the initial state;
      an unbound variable denotes its own initial (symbolic) value.
    * ``mems`` maps base-memory names to memory expressions (store chains
      over the initial memory of that name).
    * ``path_condition`` and ``observations`` accumulate along the path.
    """

    def __init__(
        self,
        env: Optional[Dict[str, E.Expr]] = None,
        mems: Optional[Dict[str, E.MemExpr]] = None,
        path_condition: Optional[List[E.Expr]] = None,
        observations: Optional[List[SymbolicObservation]] = None,
        block_trace: Optional[List[str]] = None,
    ):
        self.env: Dict[str, E.Expr] = dict(env or {})
        self.mems: Dict[str, E.MemExpr] = dict(mems or {})
        self.path_condition: List[E.Expr] = list(path_condition or [])
        self.observations: List[SymbolicObservation] = list(observations or [])
        self.block_trace: List[str] = list(block_trace or [])

    def clone(self) -> "SymbolicState":
        return SymbolicState(
            env=self.env,
            mems=self.mems,
            path_condition=self.path_condition,
            observations=self.observations,
            block_trace=self.block_trace,
        )

    def memory(self, name: str) -> E.MemExpr:
        """Current memory expression for a base memory (lazily initial)."""
        return self.mems.get(name, E.MemVar(name))

    def eval(self, expr: E.Expr) -> E.Expr:
        """Rewrite ``expr`` into an expression over the *initial* state.

        Variables are replaced by their current symbolic values and loads are
        rebound to the current memory expression, then the result is
        simplified.  Shared subterms of the (hash-consed) input are rewritten
        once per call; unchanged subtrees are returned as-is.
        """
        return simplify(self._eval(expr, {}, {}))

    def _eval(self, expr: E.Expr, memo: dict, mem_memo: dict) -> E.Expr:
        out = memo.get(id(expr))
        if out is not None:
            return out
        if isinstance(expr, E.Const):
            out = expr
        elif isinstance(expr, E.Var):
            out = self.env.get(expr.name, expr)
        elif isinstance(expr, E.UnOp):
            operand = self._eval(expr.operand, memo, mem_memo)
            out = expr if operand is expr.operand else E.UnOp(expr.op, operand)
        elif isinstance(expr, E.BinOp):
            lhs = self._eval(expr.lhs, memo, mem_memo)
            rhs = self._eval(expr.rhs, memo, mem_memo)
            unchanged = lhs is expr.lhs and rhs is expr.rhs
            out = expr if unchanged else E.BinOp(expr.op, lhs, rhs)
        elif isinstance(expr, E.Cmp):
            lhs = self._eval(expr.lhs, memo, mem_memo)
            rhs = self._eval(expr.rhs, memo, mem_memo)
            unchanged = lhs is expr.lhs and rhs is expr.rhs
            out = expr if unchanged else E.Cmp(expr.op, lhs, rhs)
        elif isinstance(expr, E.Ite):
            cond = self._eval(expr.cond, memo, mem_memo)
            then = self._eval(expr.then, memo, mem_memo)
            orelse = self._eval(expr.orelse, memo, mem_memo)
            unchanged = (
                cond is expr.cond and then is expr.then and orelse is expr.orelse
            )
            out = expr if unchanged else E.Ite(cond, then, orelse)
        elif isinstance(expr, E.Load):
            mem = self._eval_mem(expr.mem, memo, mem_memo)
            addr = self._eval(expr.addr, memo, mem_memo)
            unchanged = mem is expr.mem and addr is expr.addr
            out = expr if unchanged else E.Load(mem, addr, expr.width)
        else:
            raise SymbolicExecutionError(f"cannot evaluate {expr!r}")
        memo[id(expr)] = out
        return out

    def _eval_mem(self, mem: E.MemExpr, memo: dict, mem_memo: dict) -> E.MemExpr:
        out = mem_memo.get(id(mem))
        if out is not None:
            return out
        if isinstance(mem, E.MemVar):
            out = self.memory(mem.name)
        elif isinstance(mem, E.MemStore):
            inner = self._eval_mem(mem.mem, memo, mem_memo)
            addr = self._eval(mem.addr, memo, mem_memo)
            value = self._eval(mem.value, memo, mem_memo)
            unchanged = inner is mem.mem and addr is mem.addr and value is mem.value
            out = mem if unchanged else E.MemStore(inner, addr, value)
        else:
            raise SymbolicExecutionError(f"cannot evaluate memory {mem!r}")
        mem_memo[id(mem)] = out
        return out

    def assign(self, name: str, value: E.Expr) -> None:
        """Bind a variable to an already-evaluated expression."""
        self.env[name] = value

    def store(self, mem_name: str, addr: E.Expr, value: E.Expr) -> None:
        """Extend a memory's store chain (operands already evaluated)."""
        self.mems[mem_name] = E.MemStore(self.memory(mem_name), addr, value)

    def assume(self, cond: E.Expr) -> None:
        """Add an (already-evaluated) conjunct to the path condition."""
        if cond != E.TRUE:
            self.path_condition.append(cond)

    def observe(self, obs: SymbolicObservation) -> None:
        self.observations.append(obs)
