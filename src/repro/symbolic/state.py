"""Symbolic machine state: register environment + memory store chains."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bir import expr as E
from repro.bir.simp import simplify
from repro.errors import SymbolicExecutionError
from repro.symbolic.path import SymbolicObservation


class SymbolicState:
    """Mutable state threaded through one path of symbolic execution.

    * ``env`` maps variable names to expressions over the initial state;
      an unbound variable denotes its own initial (symbolic) value.
    * ``mems`` maps base-memory names to memory expressions (store chains
      over the initial memory of that name).
    * ``path_condition`` and ``observations`` accumulate along the path.
    """

    def __init__(
        self,
        env: Optional[Dict[str, E.Expr]] = None,
        mems: Optional[Dict[str, E.MemExpr]] = None,
        path_condition: Optional[List[E.Expr]] = None,
        observations: Optional[List[SymbolicObservation]] = None,
        block_trace: Optional[List[str]] = None,
    ):
        self.env: Dict[str, E.Expr] = dict(env or {})
        self.mems: Dict[str, E.MemExpr] = dict(mems or {})
        self.path_condition: List[E.Expr] = list(path_condition or [])
        self.observations: List[SymbolicObservation] = list(observations or [])
        self.block_trace: List[str] = list(block_trace or [])

    def clone(self) -> "SymbolicState":
        return SymbolicState(
            env=self.env,
            mems=self.mems,
            path_condition=self.path_condition,
            observations=self.observations,
            block_trace=self.block_trace,
        )

    def memory(self, name: str) -> E.MemExpr:
        """Current memory expression for a base memory (lazily initial)."""
        return self.mems.get(name, E.MemVar(name))

    def eval(self, expr: E.Expr) -> E.Expr:
        """Rewrite ``expr`` into an expression over the *initial* state.

        Variables are replaced by their current symbolic values and loads are
        rebound to the current memory expression, then the result is
        simplified.
        """
        return simplify(self._eval(expr))

    def _eval(self, expr: E.Expr) -> E.Expr:
        if isinstance(expr, E.Const):
            return expr
        if isinstance(expr, E.Var):
            return self.env.get(expr.name, expr)
        if isinstance(expr, E.UnOp):
            return E.UnOp(expr.op, self._eval(expr.operand))
        if isinstance(expr, E.BinOp):
            return E.BinOp(expr.op, self._eval(expr.lhs), self._eval(expr.rhs))
        if isinstance(expr, E.Cmp):
            return E.Cmp(expr.op, self._eval(expr.lhs), self._eval(expr.rhs))
        if isinstance(expr, E.Ite):
            return E.Ite(
                self._eval(expr.cond),
                self._eval(expr.then),
                self._eval(expr.orelse),
            )
        if isinstance(expr, E.Load):
            return E.Load(self._eval_mem(expr.mem), self._eval(expr.addr), expr.width)
        raise SymbolicExecutionError(f"cannot evaluate {expr!r}")

    def _eval_mem(self, mem: E.MemExpr) -> E.MemExpr:
        if isinstance(mem, E.MemVar):
            return self.memory(mem.name)
        if isinstance(mem, E.MemStore):
            return E.MemStore(
                self._eval_mem(mem.mem), self._eval(mem.addr), self._eval(mem.value)
            )
        raise SymbolicExecutionError(f"cannot evaluate memory {mem!r}")

    def assign(self, name: str, value: E.Expr) -> None:
        """Bind a variable to an already-evaluated expression."""
        self.env[name] = value

    def store(self, mem_name: str, addr: E.Expr, value: E.Expr) -> None:
        """Extend a memory's store chain (operands already evaluated)."""
        self.mems[mem_name] = E.MemStore(self.memory(mem_name), addr, value)

    def assume(self, cond: E.Expr) -> None:
        """Add an (already-evaluated) conjunct to the path condition."""
        if cond != E.TRUE:
            self.path_condition.append(cond)

    def observe(self, obs: SymbolicObservation) -> None:
        self.observations.append(obs)
