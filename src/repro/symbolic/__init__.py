"""Symbolic execution of BIR programs with observation collection.

The executor enumerates all paths of a loop-free program, tracking a symbolic
register environment, a symbolic memory (store chain over the initial
memory), the path condition, and the list of symbolic observations produced
by ``Observe`` statements — the data relation synthesis (§2.3) consumes.
"""

from repro.symbolic.path import SymbolicObservation, SymbolicPath, SymbolicExecutionResult
from repro.symbolic.state import SymbolicState
from repro.symbolic.executor import SymbolicExecutor, execute
from repro.symbolic.concrete import (
    ConcreteObservation,
    ConcreteTrace,
    certify_equivalence,
    refined_difference_holds,
    run_concrete,
)
from repro.symbolic.speculative import (
    SpeculationBounds,
    instrument_speculation,
    unconditional_to_conditional,
)

__all__ = [
    "SymbolicObservation",
    "SymbolicPath",
    "SymbolicExecutionResult",
    "SymbolicState",
    "SymbolicExecutor",
    "execute",
    "ConcreteObservation",
    "ConcreteTrace",
    "certify_equivalence",
    "refined_difference_holds",
    "run_concrete",
    "SpeculationBounds",
    "instrument_speculation",
    "unconditional_to_conditional",
]
