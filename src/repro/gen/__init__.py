"""Grammar-driven random program generation (§5.4).

Mirrors Scam-V's QuickCheck-style monadic generators: small composable
:class:`~repro.gen.combinators.Gen` values build instruction sequences, and
:mod:`repro.gen.templates` instantiates the paper's templates (Fig. 5 and
Fig. 7): the Stride template for Mpart, and Templates A-D for the
speculation experiments.
"""

from repro.gen.combinators import Gen, choice, constant, frequency, integer, lists
from repro.gen.templates import (
    GeneratedProgram,
    MulTemplate,
    StrideTemplate,
    TemplateA,
    TemplateB,
    TemplateC,
    TemplateD,
    TemplateGenerator,
)

__all__ = [
    "Gen",
    "choice",
    "constant",
    "frequency",
    "integer",
    "lists",
    "GeneratedProgram",
    "MulTemplate",
    "StrideTemplate",
    "TemplateA",
    "TemplateB",
    "TemplateC",
    "TemplateD",
    "TemplateGenerator",
]
