"""The paper's program templates (Fig. 5 and Fig. 7).

* :class:`StrideTemplate` — three to five loads at a constant distance from
  a base register; may trigger the stride prefetcher (Mpart experiments,
  §6.2).
* :class:`TemplateA` — attacker-controlled load, comparison, branch, and a
  dependent load in the branch body (Mct experiments, §6.3).
* :class:`TemplateB` — the generalisation: zero to two loads before the
  branch, one or two loads in the body, a random comparison predicate, and
  *no* register-allocation constraints (§6.3).
* :class:`TemplateC` — two causally dependent loads in the body, optionally
  interleaved with an arithmetic instruction — the Spectre-PHT shape (§6.5).
* :class:`TemplateD` — loads placed after an unconditional direct branch,
  for the straight-line-speculation experiments (§6.5).

Each generator instantiates register placeholders randomly under the
template's side constraints, like Scam-V's SML generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import GeneratorError
from repro.gen.combinators import distinct_registers
from repro.isa.assembler import assemble
from repro.isa.instructions import Cond
from repro.isa.program import AsmProgram
from repro.utils.rng import SplittableRandom

_CONDS = (
    Cond.EQ,
    Cond.NE,
    Cond.LO,
    Cond.HS,
    Cond.LS,
    Cond.HI,
    Cond.LT,
    Cond.GE,
    Cond.LE,
    Cond.GT,
)


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated program plus the template parameters that produced it."""

    asm: AsmProgram
    template: str
    params: Dict[str, object] = field(default_factory=dict)


class TemplateGenerator:
    """Base class: a named source of random programs."""

    name: str = "template"

    def generate(self, rng: SplittableRandom) -> GeneratedProgram:
        raise NotImplementedError


@dataclass
class StrideTemplate(TemplateGenerator):
    """Fig. 5 stride template: ``k`` loads at distance ``v`` from ``r0``.

    The distance is a multiple of the cache line size so consecutive loads
    hit different cache sets (§6.2), and the base register differs from all
    destination registers.
    """

    line_size: int = 64
    min_loads: int = 3
    max_loads: int = 5
    max_stride_lines: int = 3
    name: str = field(default="stride", init=False)

    def generate(self, rng: SplittableRandom) -> GeneratedProgram:
        loads = rng.randint(self.min_loads, self.max_loads)
        stride_lines = rng.randint(1, self.max_stride_lines)
        distance = stride_lines * self.line_size
        regs = distinct_registers(rng, loads + 1)
        base = regs[0]
        dests = regs[1:]
        lines = []
        for i, dest in enumerate(dests):
            offset = i * distance
            if offset:
                lines.append(f"ldr x{dest}, [x{base}, #{offset:#x}]")
            else:
                lines.append(f"ldr x{dest}, [x{base}]")
        lines.append("ret")
        asm = assemble("\n".join(lines), name=f"stride_{loads}x{stride_lines}")
        return GeneratedProgram(
            asm,
            self.name,
            {"loads": loads, "stride_lines": stride_lines, "base": f"x{base}"},
        )


@dataclass
class TemplateA(TemplateGenerator):
    """Fig. 5 Template A.

    ::

        ldr r2, [r0, r1]     ; attacker-indexed load
        cmp r1, r4
        b.ge end             ; body runs when r1 < r4
        ldr r6, [r5, r2]     ; uses the loaded value
        end: ret

    Side constraints (§6.3): ``r2 != r1`` and ``r4 not in {r1, r2}``; the
    body's base register ``r5`` may alias ``r0``/``r1`` (the subclass
    unguided testing occasionally catches).
    """

    name: str = field(default="A", init=False)

    def generate(self, rng: SplittableRandom) -> GeneratedProgram:
        r0, r1, r2, r4 = distinct_registers(rng, 4)
        # r5/r6 unconstrained among themselves but must not clobber inputs
        # the template reads after the branch.
        pool = [i for i in range(28) if i not in (r1, r2, r4)]
        r5 = rng.choice(pool)
        r6 = rng.choice([i for i in range(28) if i not in (r0, r1, r2, r4, r5)])
        src = f"""
            ldr x{r2}, [x{r0}, x{r1}]
            cmp x{r1}, x{r4}
            b.ge end
            ldr x{r6}, [x{r5}, x{r2}]
        end:
            ret
        """
        asm = assemble(src, name=f"templateA_{r0}_{r1}_{r2}")
        return GeneratedProgram(
            asm, self.name, {"r0": r0, "r1": r1, "r2": r2, "r4": r4, "r5": r5}
        )


@dataclass
class TemplateB(TemplateGenerator):
    """Fig. 5 Template B: the general shape with free register allocation.

    Zero to two loads, a comparison with a random predicate, a conditional
    branch, and one or two loads in the body.  Register placeholders may
    collide — some instantiations alias the same machine register, as in the
    paper.
    """

    max_prefix_loads: int = 2
    max_body_loads: int = 2
    pool_size: int = 12
    name: str = field(default="B", init=False)

    def generate(self, rng: SplittableRandom) -> GeneratedProgram:
        def reg() -> int:
            return rng.randint(0, self.pool_size - 1)

        lines: List[str] = []
        prefix_loads = rng.randint(0, self.max_prefix_loads)
        for _ in range(prefix_loads):
            lines.append(f"ldr x{reg()}, [x{reg()}, x{reg()}]")
        cond = rng.choice(_CONDS)
        lines.append(f"cmp x{reg()}, x{reg()}")
        lines.append(f"b.{cond.negated().value} end")
        body_loads = rng.randint(1, self.max_body_loads)
        for _ in range(body_loads):
            lines.append(f"ldr x{reg()}, [x{reg()}, x{reg()}]")
        lines.append("end:")
        lines.append("ret")
        asm = assemble(
            "\n".join(lines), name=f"templateB_p{prefix_loads}_b{body_loads}"
        )
        return GeneratedProgram(
            asm,
            self.name,
            {
                "prefix_loads": prefix_loads,
                "body_loads": body_loads,
                "cond": cond.value,
            },
        )


@dataclass
class TemplateC(TemplateGenerator):
    """Fig. 7 Template C: two causally dependent loads in the branch body,
    optionally interleaved with an arithmetic instruction — the
    Spectre-PHT shape.

    ::

        cmp r1, r2
        b.<neg p> end
        ldr r6, [r5, r3]
        add r6, r6, #c       ; optional
        ldr r8, [r7, r6]     ; address depends on the first load
        end: ret
    """

    name: str = field(default="C", init=False)

    def generate(self, rng: SplittableRandom) -> GeneratedProgram:
        r1, r2, r3, r5, r6, r7, r8 = distinct_registers(rng, 7)
        cond = rng.choice(_CONDS)
        interleave = rng.chance(0.5)
        lines = [
            f"cmp x{r1}, x{r2}",
            f"b.{cond.negated().value} end",
            f"ldr x{r6}, [x{r5}, x{r3}]",
        ]
        if interleave:
            lines.append(f"add x{r6}, x{r6}, #{rng.randint(0, 7) * 8:#x}")
        lines.append(f"ldr x{r8}, [x{r7}, x{r6}]")
        lines.append("end:")
        lines.append("ret")
        asm = assemble("\n".join(lines), name=f"templateC_{cond.value}")
        return GeneratedProgram(
            asm,
            self.name,
            {"cond": cond.value, "interleave": interleave},
        )


@dataclass
class MulTemplate(TemplateGenerator):
    """Straight-line programs around a multiply (the §3 example channel).

    ::

        [ldr rA, [rB]]        ; optional
        mul rC, rD, rE
        [add rF, rC, rG]      ; optional dependent use
        ret

    Under the pc-security model all inputs are equivalent; the
    early-termination multiplier's latency depends on rE's magnitude.
    """

    name: str = field(default="mul", init=False)

    def generate(self, rng: SplittableRandom) -> GeneratedProgram:
        rA, rB, rC, rD, rE, rF, rG = distinct_registers(rng, 7)
        lines: List[str] = []
        with_load = rng.chance(0.5)
        if with_load:
            lines.append(f"ldr x{rA}, [x{rB}]")
        lines.append(f"mul x{rC}, x{rD}, x{rE}")
        if rng.chance(0.5):
            lines.append(f"add x{rF}, x{rC}, x{rG}")
        lines.append("ret")
        asm = assemble("\n".join(lines), name=f"mul_{rD}_{rE}")
        return GeneratedProgram(asm, self.name, {"with_load": with_load})


@dataclass
class TemplateD(TemplateGenerator):
    """Fig. 7 Template D: loads behind an unconditional direct branch.

    The code after ``b end`` is architecturally dead; it leaks only if the
    processor performs straight-line speculation past direct branches.
    """

    max_dead_loads: int = 2
    name: str = field(default="D", init=False)

    def generate(self, rng: SplittableRandom) -> GeneratedProgram:
        dead_loads = rng.randint(1, self.max_dead_loads)
        regs = distinct_registers(rng, 3 + 3 * dead_loads)
        live_dst, live_base, live_off = regs[0:3]
        lines = [f"ldr x{live_dst}, [x{live_base}, x{live_off}]", "b end"]
        for i in range(dead_loads):
            dst, base, off = regs[3 + 3 * i : 6 + 3 * i]
            lines.append(f"ldr x{dst}, [x{base}, x{off}]")
        lines.append("end:")
        lines.append("ret")
        asm = assemble("\n".join(lines), name=f"templateD_{dead_loads}")
        return GeneratedProgram(asm, self.name, {"dead_loads": dead_loads})
