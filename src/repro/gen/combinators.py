"""QuickCheck-style generator combinators.

A :class:`Gen` wraps a function from an RNG to a value and composes with
``map``/``bind``; the helpers below cover the shapes the templates need.
The style follows the SML generators of Scam-V (§5.4), which follow
QuickCheck [Claessen & Hughes 2000].
"""

from __future__ import annotations

from typing import Callable, Generic, List, Sequence, Tuple, TypeVar

from repro.errors import GeneratorError
from repro.utils.rng import SplittableRandom

A = TypeVar("A")
B = TypeVar("B")


class Gen(Generic[A]):
    """A random generator of ``A`` values."""

    def __init__(self, run: Callable[[SplittableRandom], A]):
        self._run = run

    def sample(self, rng: SplittableRandom) -> A:
        return self._run(rng)

    def map(self, fn: Callable[[A], B]) -> "Gen[B]":
        return Gen(lambda rng: fn(self._run(rng)))

    def bind(self, fn: Callable[[A], "Gen[B]"]) -> "Gen[B]":
        return Gen(lambda rng: fn(self._run(rng)).sample(rng))

    def such_that(self, predicate: Callable[[A], bool], retries: int = 100) -> "Gen[A]":
        """Retry until the predicate holds (bounded)."""

        def run(rng: SplittableRandom) -> A:
            for _ in range(retries):
                value = self._run(rng)
                if predicate(value):
                    return value
            raise GeneratorError("such_that: predicate never satisfied")

        return Gen(run)


def constant(value: A) -> Gen[A]:
    return Gen(lambda rng: value)


def integer(low: int, high: int) -> Gen[int]:
    """Uniform integer in ``[low, high]``."""
    return Gen(lambda rng: rng.randint(low, high))


def choice(values: Sequence[A]) -> Gen[A]:
    """Uniform choice from a non-empty sequence."""
    if not values:
        raise GeneratorError("choice from an empty sequence")
    return Gen(lambda rng: rng.choice(values))


def frequency(weighted: Sequence[Tuple[int, Gen[A]]]) -> Gen[A]:
    """Weighted choice among generators (QuickCheck's ``frequency``)."""
    total = sum(w for w, _ in weighted)
    if total <= 0:
        raise GeneratorError("frequency: weights must sum to a positive value")

    def run(rng: SplittableRandom) -> A:
        pick = rng.randint(1, total)
        acc = 0
        for weight, gen in weighted:
            acc += weight
            if pick <= acc:
                return gen.sample(rng)
        raise GeneratorError("frequency: unreachable")

    return Gen(run)


def lists(element: Gen[A], min_len: int, max_len: int) -> Gen[List[A]]:
    """A list of ``element`` samples with random length in the range."""

    def run(rng: SplittableRandom) -> List[A]:
        length = rng.randint(min_len, max_len)
        return [element.sample(rng) for _ in range(length)]

    return Gen(run)


def distinct_registers(
    rng: SplittableRandom,
    count: int,
    pool_size: int = 28,
    exclude: Sequence[int] = (),
) -> List[int]:
    """``count`` distinct register indices from ``x0..x<pool_size-1>``."""
    candidates = [i for i in range(pool_size) if i not in set(exclude)]
    if count > len(candidates):
        raise GeneratorError(
            f"cannot pick {count} distinct registers from {len(candidates)}"
        )
    return rng.sample(candidates, count)
