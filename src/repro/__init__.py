"""repro — a Python reproduction of "Validation of Side-Channel Models via
Observation Refinement" (MICRO 2021).

The library rebuilds the Scam-V pipeline end to end: a mini-AArch64 ISA and
assembler (:mod:`repro.isa`), a BIR-style intermediate language
(:mod:`repro.bir`), a symbolic executor with observation collection
(:mod:`repro.symbolic`), the observational models of the paper
(:mod:`repro.obs`), relation synthesis with observation refinement
(:mod:`repro.core`), a model finder standing in for Z3 (:mod:`repro.smt`),
QuickCheck-style template generators (:mod:`repro.gen`), a simulated
Cortex-A53 evaluation platform (:mod:`repro.hw`), attack proofs of concept
(:mod:`repro.attacks`), and the campaign driver with metrics and an
experiment database (:mod:`repro.pipeline`, :mod:`repro.exps`).

Quickstart::

    from repro.isa import assemble
    from repro.obs import MspecModel
    from repro.core import TestCaseGenerator
    from repro.hw import ExperimentPlatform

    asm = assemble(...)
    generator = TestCaseGenerator(asm, MspecModel())
    test = generator.generate()
    result = ExperimentPlatform().run_experiment(
        asm, test.state1, test.state2, test.train
    )
    print(result.outcome)
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
