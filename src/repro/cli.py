"""Command-line interface: run validation campaigns from a shell.

Mirrors the paper artifact's scripted workflow (A.5): premade
configurations for every experiment in the evaluation, an experiment
database, and console result tables.

Examples::

    repro-scamv validate --experiment mct-a --refined --programs 20
    repro-scamv validate --experiment mct-a --refined --workers 4
    repro-scamv table1 --programs 12 --tests 16 --workers 4 --db t1.sqlite
    repro-scamv table1 --workers 4 --checkpoint t1.jsonl --resume
    repro-scamv fig7 --programs 8
    repro-scamv attack v1
    repro-scamv repair --experiment mct-a

Campaigns run through the parallel execution engine (:mod:`repro.runner`):
``--workers N`` shards each campaign into per-program work units across N
processes, ``--shard-timeout`` bounds any single shard, and
``--checkpoint``/``--resume`` journal completed shards so an interrupted
run picks up where it left off.  Results are bit-identical for the same
seed at any worker count.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.core.repair import ModelRepairer
from repro.exps import (
    mct_campaign,
    mpart_campaign,
    mspec1_campaign,
    straightline_campaign,
    timing_campaign,
    tlb_campaign,
)
from repro.pipeline import ExperimentDatabase, format_table
from repro.runner import ParallelRunner, RunnerConfig, progress_printer

_EXPERIMENTS: Dict[str, Callable] = {
    "mpart": lambda refined, **kw: mpart_campaign(refined=refined, **kw),
    "mpart-aligned": lambda refined, **kw: mpart_campaign(
        refined=refined, page_aligned=True, **kw
    ),
    "mct-a": lambda refined, **kw: mct_campaign("A", refined=refined, **kw),
    "mct-b": lambda refined, **kw: mct_campaign("B", refined=refined, **kw),
    "mct-c": lambda refined, **kw: mct_campaign("C", refined=refined, **kw),
    "mspec1-b": lambda refined, **kw: mspec1_campaign("B", **kw),
    "mspec1-c": lambda refined, **kw: mspec1_campaign("C", **kw),
    "straightline": lambda refined, **kw: straightline_campaign(**kw),
    "tlb": lambda refined, **kw: tlb_campaign(refined=refined, **kw),
    "timing": lambda refined, **kw: timing_campaign(refined=refined, **kw),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scamv",
        description=(
            "Scam-V with observation refinement (MICRO'21 reproduction): "
            "validate side-channel models on a simulated Cortex-A53."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="run one validation campaign"
    )
    validate.add_argument(
        "--experiment",
        required=True,
        choices=sorted(_EXPERIMENTS),
        help="which evaluation setting to run",
    )
    validate.add_argument(
        "--refined",
        action="store_true",
        help="enable observation refinement (where the setting supports both)",
    )
    _add_scale_args(validate)
    validate.add_argument(
        "--db", default=None, help="sqlite file for experiment records"
    )

    table1 = sub.add_parser(
        "table1", help="regenerate every Table 1 column (scaled down)"
    )
    _add_scale_args(table1)
    table1.add_argument(
        "--db", default=None, help="sqlite file for experiment records"
    )

    fig7 = sub.add_parser(
        "fig7", help="regenerate the Fig. 7 table (scaled down)"
    )
    _add_scale_args(fig7)
    fig7.add_argument(
        "--db", default=None, help="sqlite file for experiment records"
    )

    attack = sub.add_parser("attack", help="run a SiSCLoak attack PoC")
    attack.add_argument(
        "variant", choices=["v1", "classify"], help="which Fig. 6 victim"
    )

    repair = sub.add_parser(
        "repair", help="auto-repair an unsound model (§8 future work)"
    )
    repair.add_argument(
        "--experiment",
        required=True,
        choices=sorted(_EXPERIMENTS),
    )
    _add_scale_args(repair)
    return parser


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--programs", type=int, default=10)
    parser.add_argument("--tests", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 runs in-process (results are identical)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any shard running longer than this",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="JSONL journal of completed shards (appended as shards finish)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip shards already recorded in the --checkpoint journal",
    )


def _runner(args) -> ParallelRunner:
    config = RunnerConfig(
        workers=args.workers,
        shard_timeout=args.shard_timeout,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
    )
    return ParallelRunner(config, events=progress_printer(sys.stderr))


def _campaign(args, name: str, refined: bool):
    return _EXPERIMENTS[name](
        refined,
        num_programs=args.programs,
        tests_per_program=args.tests,
        seed=args.seed,
    )


def _cmd_validate(args) -> int:
    config = _campaign(args, args.experiment, args.refined)
    database = ExperimentDatabase(args.db) if args.db else None
    print(config.describe())
    result = _runner(args).run(config, database=database)
    print()
    print(format_table([result.stats]))
    if database is not None:
        database.close()
        print(f"\nexperiment records written to {args.db}")
    return 0


#: The campaign set of each table command (name, refined).
TABLE1_COLUMNS = [
    ("mpart", False),
    ("mpart", True),
    ("mpart-aligned", False),
    ("mpart-aligned", True),
    ("mct-a", False),
    ("mct-a", True),
    ("mct-b", False),
    ("mct-b", True),
]

FIG7_COLUMNS = [
    ("mct-c", False),
    ("mct-c", True),
    ("mspec1-c", True),
    ("mspec1-b", True),
    ("straightline", True),
]


def _run_table(args, columns, title: str) -> int:
    """Run a whole campaign set concurrently over one shared worker pool."""
    configs = [_campaign(args, name, refined) for name, refined in columns]
    database = ExperimentDatabase(args.db) if args.db else None
    results = _runner(args).run_many(configs, database=database)
    print(format_table([r.stats for r in results], title=title))
    if database is not None:
        database.close()
        print(f"\nexperiment records written to {args.db}")
    return 0


def _cmd_table1(args) -> int:
    return _run_table(args, TABLE1_COLUMNS, "Table 1 (scaled reproduction)")


def _cmd_fig7(args) -> int:
    return _run_table(
        args, FIG7_COLUMNS, "Fig. 7 table (scaled reproduction)"
    )


def _cmd_attack(args) -> int:
    from repro.attacks.siscloak import (
        A_BASE,
        LINE,
        SECRET_FLAG,
        SiSCloakAttack,
        siscloak_classification_program,
        siscloak_v1_program,
    )

    if args.variant == "v1":
        size = 4 * 8
        secret = 37 * LINE
        memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
        memory[A_BASE + size] = secret
        attack = SiSCloakAttack(siscloak_v1_program(), memory)
        outcome = attack.recover(
            benign_regs={"x0": 8, "x1": size},
            malicious_regs={"x0": size, "x1": size},
            secret=secret,
        )
    else:
        secret = SECRET_FLAG | (29 * LINE)
        memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
        memory[A_BASE + 4 * 8] = secret
        attack = SiSCloakAttack(
            siscloak_classification_program(),
            memory,
            candidate_offsets=[SECRET_FLAG | (i * LINE) for i in range(64)],
        )
        outcome = attack.recover(
            benign_regs={"x0": 8},
            malicious_regs={"x0": 4 * 8},
            secret=secret,
        )
    recovered = (
        hex(outcome.recovered) if outcome.recovered is not None else "nothing"
    )
    print(
        f"SiSCLoak {args.variant}: recovered {recovered} "
        f"(expected {hex(outcome.secret)}) -> "
        f"{'SUCCESS' if outcome.success else 'FAILED'}"
    )
    return 0 if outcome.success else 1


def _cmd_repair(args) -> int:
    config = _campaign(args, args.experiment, refined=True)
    if not config.model.has_refinement:
        print(
            f"experiment {args.experiment!r} has no refinement to promote",
            file=sys.stderr,
        )
        return 2
    report = ModelRepairer(config).repair()
    print(report.describe())
    return 0 if report.succeeded else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "validate": _cmd_validate,
        "table1": _cmd_table1,
        "fig7": _cmd_fig7,
        "attack": _cmd_attack,
        "repair": _cmd_repair,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
