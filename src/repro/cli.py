"""Command-line interface: run validation campaigns from a shell.

Mirrors the paper artifact's scripted workflow (A.5): premade
configurations for every experiment in the evaluation, an experiment
database, and console result tables.

Examples::

    repro-scamv validate --experiment mct-a --refined --programs 20
    repro-scamv validate --experiment mct-a --refined --workers 4
    repro-scamv table1 --programs 12 --tests 16 --workers 4 --db t1.sqlite
    repro-scamv table1 --workers 4 --checkpoint t1.jsonl --resume
    repro-scamv table1 --workers 4 --trace t.jsonl --metrics-out m.json
    repro-scamv report t.jsonl
    repro-scamv fig7 --programs 8
    repro-scamv attack v1
    repro-scamv repair --experiment mct-a
    repro-scamv triage --experiment mpart --refined --corpus witnesses/
    repro-scamv replay witnesses/ --workers 4
    repro-scamv validate --experiment mpart --hw-profile cortex-a53-no-prefetch
    repro-scamv run-all scenarios/ --workers 4
    repro-scamv serve --queue scamv-queue.sqlite --workers 4
    repro-scamv submit scenarios/mpart-baseline.toml --wait
    repro-scamv status
    repro-scamv results 1
    repro-scamv cancel 2

Campaigns run through the parallel execution engine (:mod:`repro.runner`):
``--workers N`` shards each campaign into per-program work units across N
processes, ``--shard-timeout`` bounds any single shard, and
``--checkpoint``/``--resume`` journal completed shards so an interrupted
run picks up where it left off.  Results are bit-identical for the same
seed at any worker count.

Observability (:mod:`repro.telemetry`): ``--trace PATH`` records every
pipeline phase as a span and writes a Perfetto/Chrome-loadable trace;
``--metrics-out PATH`` writes a stamped metrics snapshot (JSON, or
Prometheus text for ``.prom``/``.txt`` paths); ``report TRACE`` prints a
per-phase cost breakdown of a recorded trace.  Telemetry is strictly
out-of-band: enabling it does not change campaign results.

Service (:mod:`repro.service`): campaigns can also be described as
declarative scenario specs (TOML/JSON; see ``scenarios/``) and executed
in batch — ``run-all DIR`` drains a whole corpus through one worker pool,
and ``serve`` runs a long-lived daemon with a persistent job queue and a
local JSON API driven by ``submit``/``status``/``results``/``cancel``.
Either path produces result documents byte-identical to the equivalent
one-shot ``validate`` invocation.

Triage (:mod:`repro.triage`): ``triage`` runs a campaign with
counterexample triage on — every distinct violation is minimized to a
canonical witness, witnesses are clustered by root-cause signature, and
cluster representatives are written to a ``--corpus`` directory;
``replay`` re-certifies every stored witness against the current
simulator and models.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.repair import ModelRepairer
from repro.errors import HardwareError
from repro.exps import build_experiment, experiment_names
from repro.hw.profiles import profile_summaries, resolve_profile
from repro.pipeline import ExperimentDatabase, format_table
from repro.runner import (
    ParallelRunner,
    RunnerConfig,
    jsonl_sink,
    progress_printer,
    tee,
)
from repro.telemetry import collect as telemetry
from repro.telemetry import export as texport
from repro.telemetry import metrics as tmetrics
from repro.telemetry import trace as ttrace
from repro.telemetry.report import analyze_trace


class _ListProfilesAction(argparse.Action):
    """``--list-hw-profiles``: print the registry and exit (like --help),
    so it works without the subcommand's otherwise-required arguments."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        summaries = profile_summaries()
        width = max(len(name) for name, _ in summaries)
        for name, summary in summaries:
            print(f"{name:<{width}}  {summary}" if summary else name)
        parser.exit(0)


class _ListAxesAction(argparse.Action):
    """``--list-axes``: print the sweepable axes and exit."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.matrix import AXES, axis_names

        width = max(len(name) for name in axis_names())
        for name in axis_names():
            print(f"{name:<{width}}  {AXES[name].description}")
        parser.exit(0)


def _add_hw_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--hw-profile",
        default=None,
        metavar="NAME",
        help=(
            "run on a named hardware configuration (same registry the "
            "scenario spec format uses; see --list-hw-profiles)"
        ),
    )
    parser.add_argument(
        "--list-hw-profiles",
        action=_ListProfilesAction,
        help="print the known hardware profile names and exit",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scamv",
        description=(
            "Scam-V with observation refinement (MICRO'21 reproduction): "
            "validate side-channel models on a simulated Cortex-A53."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="run one validation campaign"
    )
    validate.add_argument(
        "--experiment",
        required=True,
        choices=experiment_names(),
        help="which evaluation setting to run",
    )
    validate.add_argument(
        "--refined",
        action="store_true",
        help="enable observation refinement (where the setting supports both)",
    )
    _add_scale_args(validate)
    _add_hw_args(validate)
    validate.add_argument(
        "--db", default=None, help="sqlite file for experiment records"
    )

    sweep = sub.add_parser(
        "sweep",
        help=(
            "differential sweep: run one experiment across a grid of "
            "hardware configurations and compare the verdicts"
        ),
    )
    sweep.add_argument(
        "--experiment",
        required=True,
        choices=experiment_names(),
        help="which evaluation setting to sweep",
    )
    sweep.add_argument(
        "--refined",
        action="store_true",
        help="enable observation refinement (where the setting supports both)",
    )
    sweep.add_argument(
        "--axes",
        required=True,
        metavar="SPEC",
        help=(
            "axis spec, e.g. 'replacement=lru,plru prefetcher=stride,off "
            "spec_window=0,8' (see --list-axes)"
        ),
    )
    sweep.add_argument(
        "--list-axes",
        action=_ListAxesAction,
        help="print the sweepable hardware axes and exit",
    )
    _add_scale_args(sweep)
    _add_hw_args(sweep)
    sweep.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help=(
            "write per-config result.json files and sweep_report.json "
            "under this directory"
        ),
    )
    sweep.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the differential report document (JSON) here",
    )

    table1 = sub.add_parser(
        "table1", help="regenerate every Table 1 column (scaled down)"
    )
    _add_scale_args(table1)
    _add_hw_args(table1)
    table1.add_argument(
        "--db", default=None, help="sqlite file for experiment records"
    )

    fig7 = sub.add_parser(
        "fig7", help="regenerate the Fig. 7 table (scaled down)"
    )
    _add_scale_args(fig7)
    _add_hw_args(fig7)
    fig7.add_argument(
        "--db", default=None, help="sqlite file for experiment records"
    )

    report = sub.add_parser(
        "report", help="per-phase cost breakdown of a recorded trace"
    )
    report.add_argument("trace", help="trace file written by --trace")
    report.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help=(
            "JSON metrics snapshot for cache hit rates (defaults to the "
            "snapshot embedded in the trace)"
        ),
    )
    report.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many slowest programs to list",
    )
    report.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help=(
            "also write a self-contained HTML dashboard (combine with "
            "--ledger/--events for coverage and health sections)"
        ),
    )
    report.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="--ledger-out file to embed coverage/convergence from",
    )
    report.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="--events-out file to embed the health timeline from",
    )

    monitor = sub.add_parser(
        "monitor",
        help=(
            "in-terminal dashboard of a running (or finished) campaign, "
            "from its checkpoint journal"
        ),
    )
    monitor.add_argument(
        "checkpoint", help="checkpoint journal path (--checkpoint of the run)"
    )
    monitor.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help=(
            "events side file (--events-out of the run) for in-flight "
            "shards, health warnings, and ETA"
        ),
    )
    monitor.add_argument(
        "--follow",
        action="store_true",
        help="refresh until every campaign finishes (default: render once)",
    )
    monitor.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit (the default)",
    )
    monitor.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period with --follow",
    )

    triage = sub.add_parser(
        "triage",
        help="run a campaign with counterexample triage (minimize + cluster)",
    )
    triage.add_argument(
        "--experiment",
        required=True,
        choices=experiment_names(),
        help="which evaluation setting to run",
    )
    triage.add_argument(
        "--refined",
        action="store_true",
        help="enable observation refinement (where the setting supports both)",
    )
    _add_scale_args(triage)
    triage.add_argument(
        "--db", default=None, help="sqlite file for experiment records"
    )
    triage.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="directory to write witness JSON files into",
    )
    triage.add_argument(
        "--save-all",
        action="store_true",
        help=(
            "write every minimized witness to --corpus, not just one "
            "representative per cluster"
        ),
    )

    replay = sub.add_parser(
        "replay", help="re-certify every witness in a corpus directory"
    )
    replay.add_argument(
        "corpus", help="directory of witness JSON files (see 'triage')"
    )
    replay.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 replays in-process (results are identical)",
    )
    replay.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record replay spans to a Perfetto/Chrome-loadable trace",
    )
    replay.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write a stamped metrics snapshot (JSON; Prometheus text for "
            ".prom/.txt paths)"
        ),
    )

    attack = sub.add_parser("attack", help="run a SiSCLoak attack PoC")
    attack.add_argument(
        "variant", choices=["v1", "classify"], help="which Fig. 6 victim"
    )

    repair = sub.add_parser(
        "repair", help="auto-repair an unsound model (§8 future work)"
    )
    repair.add_argument(
        "--experiment",
        required=True,
        choices=experiment_names(),
    )
    _add_scale_args(repair)

    run_all_cmd = sub.add_parser(
        "run-all",
        help=(
            "daemonless batch execution: run every scenario spec in a "
            "directory through one worker pool"
        ),
    )
    run_all_cmd.add_argument(
        "directory", help="directory of scenario specs (.toml/.json)"
    )
    _add_service_exec_args(run_all_cmd)

    serve = sub.add_parser(
        "serve",
        help=(
            "long-lived campaign service: persistent job queue + local "
            "JSON API (submit/status/results/cancel)"
        ),
    )
    serve.add_argument(
        "--queue",
        default="scamv-queue.sqlite",
        metavar="PATH",
        help="sqlite job-queue file (created if missing)",
    )
    serve.add_argument("--host", default=None, help="bind address")
    serve.add_argument(
        "--port", type=int, default=None, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--log-requests",
        action="store_true",
        help="log every HTTP request to stderr",
    )
    _add_service_exec_args(serve)

    submit = sub.add_parser(
        "submit", help="submit a scenario spec to a running service"
    )
    submit.add_argument("spec", help="scenario spec file (.toml/.json)")
    submit.add_argument(
        "--priority",
        type=int,
        default=None,
        help="override the spec's queue priority (higher runs first)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and report its final state",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="give up waiting after this long (with --wait)",
    )
    _add_url_arg(submit)

    status = sub.add_parser(
        "status", help="show the service queue, or one job"
    )
    status.add_argument(
        "job", nargs="?", type=int, default=None, help="job id (default: all)"
    )
    status.add_argument(
        "--metrics",
        action="store_true",
        help="print the service's Prometheus text exposition instead",
    )
    _add_url_arg(status)

    results = sub.add_parser(
        "results", help="fetch a finished job's result document"
    )
    results.add_argument("job", type=int, help="job id")
    results.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the canonical result document here (default: stdout)",
    )
    _add_url_arg(results)

    cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job", type=int, help="job id")
    _add_url_arg(cancel)

    history = sub.add_parser(
        "history",
        help="list or compare run summaries recorded with --history",
    )
    history.add_argument("db", help="history sqlite file")
    history.add_argument(
        "--limit", type=int, default=20, help="how many runs to list"
    )
    history.add_argument(
        "--label", default=None, help="only runs with this label"
    )
    history.add_argument(
        "--kind", default=None, help="only runs of this kind"
    )
    history.add_argument(
        "--compare",
        nargs=2,
        type=int,
        metavar=("BASE", "CURRENT"),
        help="print a trend report between two run ids",
    )

    trends = sub.add_parser(
        "trends",
        help=(
            "gate a recorded run against its baseline: exit 1 when any "
            "metric regressed beyond tolerance"
        ),
    )
    trends.add_argument("db", help="history sqlite file")
    trends.add_argument(
        "--run",
        type=int,
        default=None,
        help="run id to gate (default: the latest run)",
    )
    trends.add_argument(
        "--baseline",
        type=int,
        default=None,
        help=(
            "baseline run id (default: latest earlier run with the same "
            "label/digest)"
        ),
    )
    trends.add_argument(
        "--label", default=None, help="pick the latest run with this label"
    )
    trends.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative slowdown allowed on time metrics (default: 0.25)",
    )
    trends.add_argument(
        "--floor",
        type=float,
        default=None,
        help=(
            "absolute seconds a time metric must additionally exceed to "
            "gate (default: 0.05)"
        ),
    )
    return parser


def _add_service_exec_args(parser: argparse.ArgumentParser) -> None:
    """Execution knobs shared by the orchestrator entry points."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per job (results are identical at any count)",
    )
    parser.add_argument(
        "--artifact-root",
        default="scamv-artifacts",
        metavar="DIR",
        help="root directory for per-job artifact directories",
    )
    parser.add_argument(
        "--dashboards",
        action="store_true",
        help="write a self-contained HTML dashboard per job",
    )


def _add_url_arg(parser: argparse.ArgumentParser) -> None:
    from repro.service.client import DEFAULT_URL

    parser.add_argument(
        "--url",
        default=DEFAULT_URL,
        help=f"service base URL (default: {DEFAULT_URL})",
    )


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--programs", type=int, default=10)
    parser.add_argument("--tests", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 runs in-process (results are identical)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any shard running longer than this",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="JSONL journal of completed shards (appended as shards finish)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip shards already recorded in the --checkpoint journal",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record pipeline spans to a Perfetto/Chrome-loadable trace",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write a stamped metrics snapshot (JSON; Prometheus text for "
            ".prom/.txt paths)"
        ),
    )
    parser.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help=(
            "append every runner event as a JSON line (tail it live with "
            "'repro-scamv monitor --events')"
        ),
    )
    parser.add_argument(
        "--dashboard",
        default=None,
        metavar="PATH",
        help=(
            "write a self-contained HTML dashboard per campaign when it "
            "finishes (campaign sets derive PATH-<name>.html per member)"
        ),
    )
    parser.add_argument(
        "--ledger-out",
        default=None,
        metavar="PATH",
        help="write the merged coverage ledger(s) as schema-validated JSON",
    )
    parser.add_argument(
        "--no-monitor",
        action="store_true",
        help="disable the coverage ledger and health detectors",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help=(
            "record a stamped performance summary of this run into a "
            "sqlite history store (query with 'history'/'trends'); "
            "implies telemetry collection for the solver/phase breakdown"
        ),
    )


#: record_history default: "use the session-wide spans/solver payload".
_SESSION = object()


class _TelemetrySession:
    """CLI-side lifecycle of the telemetry layer for one command.

    Enables the tracer/registry/solver-profiler when ``--trace``,
    ``--metrics-out`` or ``--history`` were given, tees runner events into
    the metrics bridge, accumulates every campaign's out-of-band payload,
    and writes the requested artifacts on :meth:`finish`.  A session with
    none of the flags is inert end to end.
    """

    def __init__(self, args):
        self.trace_path = getattr(args, "trace", None)
        self.metrics_path = getattr(args, "metrics_out", None)
        self.history_path = getattr(args, "history", None)
        self.active = bool(
            self.trace_path or self.metrics_path or self.history_path
        )
        self.spans = []
        self.metrics: dict = {}
        self.solver: Optional[dict] = None
        if self.active:
            telemetry.enable()

    def events(self, sink):
        """Wrap the progress-printer sink with the metrics event bridge."""
        if not self.active:
            return sink
        return telemetry.event_bridge(chain=sink)

    def absorb(self, result) -> None:
        """Collect one campaign result's telemetry payloads."""
        if not self.active:
            return
        self.spans.extend(result.spans)
        # Spans finished in this process (e.g. the sequential driver's
        # campaign span) after the last shard drain; collected per
        # campaign so a later campaign's shards cannot discard them.
        self.spans.extend(ttrace.drain())
        tmetrics.merge_snapshot(self.metrics, result.metrics)
        tmetrics.merge_snapshot(
            self.metrics, telemetry.stats_metrics(result.stats)
        )
        if result.solver is not None:
            self._merge_solver(result.solver)

    def _merge_solver(self, doc: dict) -> None:
        from repro.telemetry.solver import merge_solver_docs

        self.solver = merge_solver_docs([self.solver, doc])

    def record_history(
        self,
        kind: str,
        label: str,
        digest,
        wall_seconds: float,
        stats,
        solver=_SESSION,
        spans=_SESSION,
    ) -> None:
        """Append one run summary to the ``--history`` store (if any).

        Call after :meth:`finish` — the session's spans/solver aggregate
        are complete by then and survive the telemetry switch-off.  Pass
        ``solver``/``spans`` explicitly to attribute a narrower payload
        (e.g. one sweep point) instead of the whole session's.
        """
        if not self.history_path:
            return
        from repro.history import HistoryStore, run_summary, scenario_digest

        store = HistoryStore(self.history_path)
        try:
            run_id = store.record(
                run_summary(
                    kind,
                    label,
                    wall_seconds=wall_seconds,
                    digest=scenario_digest(digest),
                    stats=stats,
                    spans=self.spans if spans is _SESSION else spans,
                    solver=self.solver if solver is _SESSION else solver,
                )
            )
        finally:
            store.close()
        print(
            f"history recorded to {self.history_path} (run {run_id})",
            file=sys.stderr,
        )

    def finish(self, out=None) -> None:
        if not self.active:
            return
        out = out if out is not None else sys.stderr
        self.spans.extend(ttrace.drain())
        # This process's live registry: runner.* event counters plus
        # everything inline shards recorded (worker-process shards arrive
        # via result.metrics instead; see CampaignResult.metrics).
        tmetrics.merge_snapshot(self.metrics, tmetrics.snapshot())
        # Solver queries issued outside any shard (e.g. repair tooling)
        # are still sitting in the process-local profiler.
        from repro.telemetry import solver as tsolver

        leftover = tsolver.drain()
        if leftover:
            self._merge_solver(leftover)
        meta = texport.stamp()
        if self.trace_path:
            texport.write_chrome_trace(
                self.spans,
                self.trace_path,
                metrics_snapshot=self.metrics,
                meta=meta,
                solver=self.solver,
            )
            print(f"trace written to {self.trace_path}", file=out)
        if self.metrics_path:
            if self.metrics_path.endswith((".prom", ".txt")):
                texport.write_metrics_prometheus(
                    self.metrics, self.metrics_path
                )
            else:
                texport.write_metrics_json(
                    self.metrics, self.metrics_path, meta=meta
                )
            print(f"metrics written to {self.metrics_path}", file=out)
        telemetry.disable()


def _runner(args, session: Optional[_TelemetrySession] = None) -> ParallelRunner:
    config = RunnerConfig(
        workers=args.workers,
        shard_timeout=args.shard_timeout,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        health=not getattr(args, "no_monitor", False),
    )
    events = progress_printer(sys.stderr)
    if getattr(args, "events_out", None):
        events = tee(events, jsonl_sink(args.events_out))
    if session is not None:
        events = session.events(events)
    return ParallelRunner(config, events=events)


def _resolve_profile_or_exit(profile: str):
    """Resolve a ``--hw-profile`` name; unknown names exit 2 with the
    known profiles in one line (no traceback)."""
    try:
        return resolve_profile(profile)
    except HardwareError as exc:
        print(str(exc), file=sys.stderr)
        raise SystemExit(2)


def _campaign(args, name: str, refined: bool):
    profile = getattr(args, "hw_profile", None)
    return build_experiment(
        name,
        refined=refined,
        num_programs=args.programs,
        tests_per_program=args.tests,
        seed=args.seed,
        core=_resolve_profile_or_exit(profile) if profile else None,
    )


def _apply_monitor_args(args, configs) -> None:
    """Apply --no-monitor/--dashboard onto the campaign configurations."""
    from repro.monitor.dashboard import dashboard_path_for

    multi = len(configs) > 1
    for config in configs:
        if getattr(args, "no_monitor", False):
            config.monitor = False
        if getattr(args, "dashboard", None):
            # A single campaign gets the requested path verbatim; a set
            # derives one file per member so nothing overwrites.
            config.dashboard = (
                dashboard_path_for(args.dashboard, config.name)
                if multi
                else args.dashboard
            )
            print(
                f"dashboard will be written to {config.dashboard}",
                file=sys.stderr,
            )


def _write_ledger_out(args, results) -> None:
    path = getattr(args, "ledger_out", None)
    if not path:
        return
    from repro.monitor.ledger import write_ledger_file

    write_ledger_file(
        path, {result.stats.name: result.ledger for result in results}
    )
    print(f"coverage ledger written to {path}", file=sys.stderr)


def _cmd_validate(args) -> int:
    import time

    config = _campaign(args, args.experiment, args.refined)
    _apply_monitor_args(args, [config])
    database = ExperimentDatabase(args.db) if args.db else None
    print(config.describe())
    session = _TelemetrySession(args)
    started = time.monotonic()
    result = _runner(args, session).run(config, database=database)
    wall = time.monotonic() - started
    session.absorb(result)
    print()
    print(format_table([result.stats]))
    _write_ledger_out(args, [result])
    session.finish()
    session.record_history(
        "validate", config.name, config.describe(), wall, result.stats
    )
    if database is not None:
        database.close()
        print(f"\nexperiment records written to {args.db}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.errors import MatrixError
    from repro.matrix import (
        SweepConfig,
        grid_for,
        parse_axis_spec,
        render_report,
        report_bytes,
        run_sweep,
        sweep_report_doc,
        write_sweep_artifacts,
    )

    try:
        axes = parse_axis_spec(args.axes)
    except MatrixError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.hw_profile:
        _resolve_profile_or_exit(args.hw_profile)
    sweep = SweepConfig(
        experiment=args.experiment,
        axes=axes,
        refined=args.refined,
        base_profile=args.hw_profile or "cortex-a53",
        programs=args.programs,
        tests=args.tests,
        seed=args.seed,
        monitor=not args.no_monitor,
    )
    points = grid_for(sweep)
    print(
        f"sweep: {args.experiment} on {len(points)} config(s): "
        + ", ".join(point.name for point in points),
        file=sys.stderr,
    )
    session = _TelemetrySession(args)
    runner_config = RunnerConfig(
        workers=args.workers,
        shard_timeout=args.shard_timeout,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        health=not args.no_monitor,
    )
    events_factory = None
    if args.events_out or session.active:
        sink = jsonl_sink(args.events_out) if args.events_out else None

        def events_factory(index, total, point):
            events = progress_printer(
                sys.stderr, prefix=f"[config {index}/{total} {point.name}] "
            )
            if sink is not None:
                events = tee(events, sink)
            return session.events(events)

    result = run_sweep(
        sweep, runner_config, out=sys.stderr, events_factory=events_factory
    )
    for point_result in result.points:
        session.absorb(point_result.result)
    doc = sweep_report_doc(result)
    print()
    print(render_report(doc))
    if args.artifacts:
        artifacts = write_sweep_artifacts(result, args.artifacts)
        print(
            f"sweep artifacts written under {args.artifacts} "
            f"({len(artifacts)} file(s))",
            file=sys.stderr,
        )
    if args.report:
        with open(args.report, "wb") as handle:
            handle.write(report_bytes(doc))
        print(f"sweep report written to {args.report}", file=sys.stderr)
    if args.dashboard:
        from repro.monitor.dashboard import build_dashboard_html
        from repro.telemetry.export import stamp

        with open(args.dashboard, "w", encoding="utf-8") as handle:
            handle.write(
                build_dashboard_html(
                    sweep.scenario_name, sweep=doc, meta=stamp()
                )
            )
        print(f"dashboard written to {args.dashboard}", file=sys.stderr)
    if getattr(args, "ledger_out", None):
        from repro.monitor.ledger import write_ledger_file

        write_ledger_file(
            args.ledger_out,
            {
                point_result.point.name: point_result.result.ledger
                for point_result in result.points
            },
        )
        print(
            f"coverage ledger written to {args.ledger_out}", file=sys.stderr
        )
    session.finish()
    for point_result in result.points:
        session.record_history(
            "sweep",
            f"{sweep.scenario_name}/{point_result.point.name}",
            point_result.config.describe(),
            point_result.duration,
            point_result.result.stats,
            solver=point_result.result.solver,
            spans=None,
        )
    return 0


#: The campaign set of each table command (name, refined).
TABLE1_COLUMNS = [
    ("mpart", False),
    ("mpart", True),
    ("mpart-aligned", False),
    ("mpart-aligned", True),
    ("mct-a", False),
    ("mct-a", True),
    ("mct-b", False),
    ("mct-b", True),
]

FIG7_COLUMNS = [
    ("mct-c", False),
    ("mct-c", True),
    ("mspec1-c", True),
    ("mspec1-b", True),
    ("straightline", True),
]


def _run_table(args, columns, title: str) -> int:
    """Run a whole campaign set concurrently over one shared worker pool."""
    configs = [_campaign(args, name, refined) for name, refined in columns]
    _apply_monitor_args(args, configs)
    database = ExperimentDatabase(args.db) if args.db else None
    session = _TelemetrySession(args)
    results = _runner(args, session).run_many(configs, database=database)
    for result in results:
        session.absorb(result)
    print(format_table([r.stats for r in results], title=title))
    _write_ledger_out(args, results)
    session.finish()
    for config, result in zip(configs, results):
        # Campaigns in a set share the pool, so wall clock is not
        # per-campaign attributable; the measured phase totals are the
        # honest per-campaign time proxy.
        session.record_history(
            title.split()[0].lower(),
            config.name,
            config.describe(),
            result.stats.gen_time_total + result.stats.exe_time_total,
            result.stats,
            solver=result.solver,
            spans=None,
        )
    if database is not None:
        database.close()
        print(f"\nexperiment records written to {args.db}")
    return 0


def _cmd_table1(args) -> int:
    return _run_table(args, TABLE1_COLUMNS, "Table 1 (scaled reproduction)")


def _cmd_fig7(args) -> int:
    return _run_table(
        args, FIG7_COLUMNS, "Fig. 7 table (scaled reproduction)"
    )


def _cmd_report(args) -> int:
    import json
    import os

    if not os.path.exists(args.trace):
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    snapshot = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            print(
                f"metrics file {args.metrics} is unreadable: {exc}",
                file=sys.stderr,
            )
            return 1
        snapshot = doc.get("metrics", doc) if isinstance(doc, dict) else None
    try:
        report = analyze_trace(args.trace, metrics_snapshot=snapshot)
    except (OSError, UnicodeDecodeError, ValueError) as exc:
        # Empty, truncated, or binary-garbage traces must yield a one-line
        # diagnostic and exit 1, never a traceback.
        print(f"trace {args.trace} is unreadable: {exc}", file=sys.stderr)
        return 1
    if not report.phases:
        print(f"trace {args.trace} contains no spans", file=sys.stderr)
        return 1
    print(report.render(top=args.top))
    if args.html:
        return _write_report_html(args, report)
    return 0


def _write_report_html(args, report) -> int:
    """The ``report --html`` path: dashboard from trace + optional files."""
    import json
    import os

    from repro.monitor.dashboard import build_dashboard_html
    from repro.monitor.ledger import merge_ledger_docs
    from repro.runner.events import read_events_jsonl

    name = os.path.basename(args.trace)
    ledger = None
    if args.ledger:
        try:
            with open(args.ledger, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            print(
                f"ledger file {args.ledger} is unreadable: {exc}",
                file=sys.stderr,
            )
            return 1
        campaigns = doc.get("campaigns") if isinstance(doc, dict) else None
        if campaigns:
            ledger = merge_ledger_docs(campaigns.values())
            if len(campaigns) == 1:
                name = next(iter(campaigns))
    health = []
    if args.events:
        health = [
            doc
            for doc in read_events_jsonl(args.events)
            if doc.get("event") == "HealthEvent"
        ]
    text = build_dashboard_html(
        name,
        ledger=ledger,
        report=report,
        health=health,
        solver=report.solver,
        meta=report.meta,
    )
    with open(args.html, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"dashboard written to {args.html}", file=sys.stderr)
    return 0


def _cmd_monitor(args) -> int:
    from repro.monitor.live import monitor

    return monitor(
        args.checkpoint,
        events_path=args.events,
        follow=args.follow and not args.once,
        interval=args.interval,
    )


def _cmd_triage(args) -> int:
    from dataclasses import replace

    from repro.triage import (
        WitnessCorpus,
        cluster_witnesses,
        reduction_ratio,
    )

    config = replace(
        _campaign(args, args.experiment, args.refined), triage=True
    )
    _apply_monitor_args(args, [config])
    database = ExperimentDatabase(args.db) if args.db else None
    print(config.describe())
    session = _TelemetrySession(args)
    result = _runner(args, session).run(config, database=database)
    raw = len(result.counterexamples())
    clusters = cluster_witnesses(result.witnesses)
    ratio = reduction_ratio(raw, clusters)
    tmetrics.gauge("triage.clusters").set(len(clusters))
    if ratio is not None:
        tmetrics.gauge("triage.reduction_ratio").set(ratio)
    session.absorb(result)
    print()
    print(format_table([result.stats]))
    print()
    summary = (
        f"triage: {raw} counterexample(s) -> "
        f"{len(result.witnesses)} minimized witness(es) -> "
        f"{len(clusters)} distinct violation(s)"
    )
    if ratio is not None:
        summary += f" (reduction ratio {ratio:.2f})"
    print(summary)
    for cluster in clusters:
        print(f"  {cluster.describe()}")
    if args.corpus:
        corpus = WitnessCorpus(args.corpus)
        saved = (
            list(result.witnesses)
            if args.save_all
            else [cluster.representative for cluster in clusters]
        )
        for witness in saved:
            corpus.save(witness)
        print(f"{len(saved)} witness(es) written to {args.corpus}")
    _write_ledger_out(args, [result])
    session.finish()
    if database is not None:
        database.close()
        print(f"\nexperiment records written to {args.db}")
    return 0


def _cmd_replay(args) -> int:
    import os

    from repro.errors import TriageError
    from repro.triage import WitnessCorpus, replay_corpus

    if not os.path.isdir(args.corpus):
        print(f"no such corpus directory: {args.corpus}", file=sys.stderr)
        return 2
    corpus = WitnessCorpus(args.corpus)
    try:
        witnesses = corpus.load_all()
    except TriageError as exc:
        print(f"corpus {args.corpus} is unreadable: {exc}", file=sys.stderr)
        return 2
    if not witnesses:
        print(f"corpus {args.corpus} holds no witnesses", file=sys.stderr)
        return 2
    session = _TelemetrySession(args)
    report = replay_corpus(witnesses, workers=args.workers)
    session.finish()
    print(report.describe())
    return 0 if report.all_reproduced else 1


def _cmd_attack(args) -> int:
    from repro.attacks.siscloak import (
        A_BASE,
        LINE,
        SECRET_FLAG,
        SiSCloakAttack,
        siscloak_classification_program,
        siscloak_v1_program,
    )

    if args.variant == "v1":
        size = 4 * 8
        secret = 37 * LINE
        memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
        memory[A_BASE + size] = secret
        attack = SiSCloakAttack(siscloak_v1_program(), memory)
        outcome = attack.recover(
            benign_regs={"x0": 8, "x1": size},
            malicious_regs={"x0": size, "x1": size},
            secret=secret,
        )
    else:
        secret = SECRET_FLAG | (29 * LINE)
        memory = {A_BASE + i * 8: (i % 4) * LINE for i in range(4)}
        memory[A_BASE + 4 * 8] = secret
        attack = SiSCloakAttack(
            siscloak_classification_program(),
            memory,
            candidate_offsets=[SECRET_FLAG | (i * LINE) for i in range(64)],
        )
        outcome = attack.recover(
            benign_regs={"x0": 8},
            malicious_regs={"x0": 4 * 8},
            secret=secret,
        )
    recovered = (
        hex(outcome.recovered) if outcome.recovered is not None else "nothing"
    )
    print(
        f"SiSCLoak {args.variant}: recovered {recovered} "
        f"(expected {hex(outcome.secret)}) -> "
        f"{'SUCCESS' if outcome.success else 'FAILED'}"
    )
    return 0 if outcome.success else 1


def _cmd_repair(args) -> int:
    config = _campaign(args, args.experiment, refined=True)
    if not config.model.has_refinement:
        print(
            f"experiment {args.experiment!r} has no refinement to promote",
            file=sys.stderr,
        )
        return 2
    report = ModelRepairer(config).repair()
    print(report.describe())
    return 0 if report.succeeded else 1


def _orchestrator_config(args):
    from repro.service import OrchestratorConfig

    return OrchestratorConfig(
        workers=args.workers,
        artifact_root=args.artifact_root,
        dashboards=args.dashboards,
    )


def _cmd_run_all(args) -> int:
    import os

    from repro.errors import ServiceError
    from repro.service import load_corpus, run_all

    if not os.path.isdir(args.directory):
        print(f"no such scenario directory: {args.directory}", file=sys.stderr)
        return 2
    try:
        specs = load_corpus(args.directory)
    except ServiceError as exc:
        print(f"corpus {args.directory} is invalid: {exc}", file=sys.stderr)
        return 2
    print(
        f"running {len(specs)} scenario(s) from {args.directory} "
        f"({args.workers} worker(s), artifacts under {args.artifact_root})",
        file=sys.stderr,
    )
    outcomes = run_all(
        specs, _orchestrator_config(args), handle_signals=True
    )
    if not outcomes:
        print("interrupted before any scenario finished", file=sys.stderr)
        return 1
    # Sweep jobs carry their verdict in the job record rather than a
    # single CampaignResult, so the stats table and the done count are
    # computed separately.
    stats = [r.stats for _, r in outcomes if r is not None]
    if stats:
        print()
        print(format_table(stats, title=f"run-all: {args.directory}"))
    failed = [job for job, r in outcomes if job.state != "done"]
    for job in failed:
        print(
            f"scenario {job.name!r} (job {job.id}) {job.state}: "
            f"{job.error or 'no error recorded'}",
            file=sys.stderr,
        )
    print(
        f"\n{len(outcomes) - len(failed)}/{len(outcomes)} scenario(s) done; "
        f"artifacts under {args.artifact_root}",
        file=sys.stderr,
    )
    return 0 if not failed else 1


def _cmd_serve(args) -> int:
    from repro.service import DEFAULT_HOST, DEFAULT_PORT, ServiceDaemon

    daemon = ServiceDaemon(
        args.queue,
        _orchestrator_config(args),
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
        log_requests=args.log_requests,
    )
    return daemon.serve()


def _service_call(args, call) -> int:
    """Run one client call; service errors become one-line diagnostics."""
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    try:
        return call(ServiceClient(args.url))
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _print_job_line(doc) -> None:
    print(
        f"job {doc['id']}: {doc['name']} [{doc['state']}] "
        f"priority {doc['priority']} attempts {doc['attempts']}"
        + (f" error: {doc['error']}" if doc.get("error") else "")
    )


def _cmd_submit(args) -> int:
    from repro.errors import ServiceError
    from repro.service import load_spec

    try:
        spec = load_spec(args.spec)
    except ServiceError as exc:
        print(f"spec {args.spec} is invalid: {exc}", file=sys.stderr)
        return 2

    def call(client) -> int:
        job = client.submit(spec.to_doc(), priority=args.priority)
        _print_job_line(job)
        if not args.wait:
            return 0
        final = client.wait(job["id"], timeout=args.timeout)
        _print_job_line(final)
        return 0 if final["state"] == "done" else 1

    return _service_call(args, call)


def _cmd_status(args) -> int:
    def call(client) -> int:
        if getattr(args, "metrics", False):
            sys.stdout.write(client.metrics())
            return 0
        if args.job is not None:
            _print_job_line(client.status(args.job))
            return 0
        doc = client.status()
        for job in doc["jobs"]:
            _print_job_line(job)
        counts = doc["counts"]
        print(
            "queue: "
            + ", ".join(f"{counts[s]} {s}" for s in sorted(counts))
        )
        return 0

    return _service_call(args, call)


def _cmd_results(args) -> int:
    import json

    def call(client) -> int:
        doc = client.results(args.job)
        summary = doc.get("summary") or {}
        counters = summary.get("counters") or {}
        print(
            f"job {args.job}: {summary.get('scenario')} "
            f"({summary.get('campaign')}) "
            f"{counters.get('counterexamples', '?')} counterexample(s), "
            f"sha256 {summary.get('result_sha256', '?')[:16]}...",
            file=sys.stderr,
        )
        payload = json.dumps(doc.get("document"), sort_keys=True, indent=2)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"result document written to {args.output}", file=sys.stderr)
        else:
            print(payload)
        return 0

    return _service_call(args, call)


def _cmd_cancel(args) -> int:
    def call(client) -> int:
        _print_job_line(client.cancel(args.job))
        return 0

    return _service_call(args, call)


def _open_history_or_exit(path: str):
    import os

    from repro.history import HistoryStore

    if path != ":memory:" and not os.path.exists(path):
        print(f"no such history store: {path}", file=sys.stderr)
        raise SystemExit(2)
    return HistoryStore(path)


def _run_label(row) -> str:
    return f"run {row['id']} ({row['kind']}:{row['label']})"


def _cmd_history(args) -> int:
    from repro.history import compare_summaries

    store = _open_history_or_exit(args.db)
    try:
        if args.compare:
            rows = []
            for run_id in args.compare:
                row = store.get(run_id)
                if row is None:
                    print(f"no run {run_id} in {args.db}", file=sys.stderr)
                    return 2
                rows.append(row)
            base, current = rows
            print(
                compare_summaries(
                    base["summary"],
                    current["summary"],
                    base_label=_run_label(base),
                    current_label=_run_label(current),
                ).render()
            )
            return 0
        rows = store.runs(limit=args.limit, label=args.label, kind=args.kind)
        if not rows:
            print("no runs recorded")
            return 0
        for row in rows:
            summary = row["summary"]
            sha = (row["git_sha"] or "-")[:10]
            line = (
                f"{row['id']:>4}  {row['recorded_at']}  "
                f"{row['kind']:<12} {row['label']:<24} sha={sha:<10} "
                f"wall={summary.get('wall_seconds', 0.0):.3f}s"
            )
            solver_seconds = summary.get("solver_seconds")
            if solver_seconds is not None:
                line += (
                    f" solver={solver_seconds:.3f}s"
                    f"/{summary.get('solver_queries', 0)}q"
                )
            print(line)
        return 0
    finally:
        store.close()


def _cmd_trends(args) -> int:
    from repro.history import (
        DEFAULT_FLOOR_SECONDS,
        DEFAULT_TOLERANCE,
        compare_summaries,
    )

    store = _open_history_or_exit(args.db)
    try:
        if args.run is not None:
            current = store.get(args.run)
            if current is None:
                print(f"no run {args.run} in {args.db}", file=sys.stderr)
                return 2
        else:
            current = store.latest(label=args.label)
            if current is None:
                print("no runs recorded", file=sys.stderr)
                return 2
        if args.baseline is not None:
            base = store.get(args.baseline)
            if base is None:
                print(f"no run {args.baseline} in {args.db}", file=sys.stderr)
                return 2
        else:
            base = store.baseline_for(current)
            if base is None:
                print(
                    f"{_run_label(current)} has no earlier baseline; "
                    "nothing to gate",
                    file=sys.stderr,
                )
                return 0
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        floor = args.floor if args.floor is not None else DEFAULT_FLOOR_SECONDS
        report = compare_summaries(
            base["summary"],
            current["summary"],
            tolerance=tolerance,
            floor=floor,
            base_label=_run_label(base),
            current_label=_run_label(current),
        )
        print(report.render())
        return 0 if report.ok else 1
    finally:
        store.close()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "validate": _cmd_validate,
        "sweep": _cmd_sweep,
        "table1": _cmd_table1,
        "fig7": _cmd_fig7,
        "report": _cmd_report,
        "monitor": _cmd_monitor,
        "triage": _cmd_triage,
        "replay": _cmd_replay,
        "attack": _cmd_attack,
        "repair": _cmd_repair,
        "run-all": _cmd_run_all,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "results": _cmd_results,
        "cancel": _cmd_cancel,
        "history": _cmd_history,
        "trends": _cmd_trends,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
