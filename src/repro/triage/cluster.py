"""Dedup/clustering of witnesses by root-cause signature.

A campaign that finds 400 counterexamples has usually found a handful of
*distinct* model violations many times over.  Grouping witnesses by their
signature key (channel / feature / first divergence / region alignment)
turns the raw set into "N distinct violations", each represented by its
smallest minimized witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.triage.corpus import Witness


def _witness_size(witness: Witness) -> Tuple[int, int, str]:
    reduction = witness.reduction
    return (
        reduction.get("instructions_after", 1 << 30),
        reduction.get("cells_after", 1 << 30),
        witness.name,
    )


@dataclass
class WitnessCluster:
    """All witnesses sharing one root-cause signature."""

    key: str
    witnesses: List[Witness]

    @property
    def size(self) -> int:
        return len(self.witnesses)

    @property
    def representative(self) -> Witness:
        """The smallest minimized witness (instructions, then cells)."""
        return self.witnesses[0]

    def describe(self) -> str:
        rep = self.representative
        reduction = rep.reduction
        return (
            f"{self.key}  x{self.size}  rep={rep.name} "
            f"({reduction.get('instructions_after', '?')} instr, "
            f"{reduction.get('cells_after', '?')} cells)"
        )


def cluster_witnesses(witnesses: Sequence[Witness]) -> List[WitnessCluster]:
    """Group witnesses by signature key, deterministically ordered.

    Clusters come out largest first (ties broken by key); within a
    cluster, witnesses are ordered smallest first, so ``representative``
    is the canonical exemplar of the violation.
    """
    grouped: Dict[str, List[Witness]] = {}
    for witness in witnesses:
        grouped.setdefault(witness.signature.key(), []).append(witness)
    clusters = [
        WitnessCluster(key=key, witnesses=sorted(members, key=_witness_size))
        for key, members in grouped.items()
    ]
    clusters.sort(key=lambda cluster: (-cluster.size, cluster.key))
    return clusters


def reduction_ratio(
    raw_counterexamples: int, clusters: Sequence[WitnessCluster]
) -> Optional[float]:
    """Clusters per raw counterexample; None when there were none."""
    if raw_counterexamples <= 0:
        return None
    return len(clusters) / raw_counterexamples
