"""Root-cause signatures: *why* two states are hardware-distinguishable.

Replays both states of a counterexample on instrumented cores (keeping the
full :class:`~repro.hw.core.ExecutionTrace`, the channel snapshot, and the
PMC deltas instead of just the platform's pass/fail verdict) and distils
the divergence into a :class:`RootCauseSignature`: which channel leaked,
which microarchitectural feature was active, the first event stream where
the two executions diverged, the attacker-visible cache sets that ended up
different, and whether the attacker region was page-aligned.  Signatures
are the clustering key of :mod:`repro.triage.cluster` — counterexamples
with equal keys are duplicates of the same model violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hw.cache import CacheSnapshot
from repro.hw.core import Core, ExecutionTrace
from repro.hw.platform import Channel, PlatformConfig, StateInputs
from repro.hw.pmc import PerformanceCounters, PmcReading
from repro.hw.tlb import TlbSnapshot
from repro.isa.program import AsmProgram


@dataclass(frozen=True)
class RootCauseSignature:
    """The clustering identity of one counterexample.

    ``feature`` names the microarchitectural mechanism that produced the
    divergence (``prefetcher``, ``speculative-load``, ``demand-access``,
    ``replacement``, ``tlb-page``, ``variable-time``); ``first_divergence``
    names the earliest event stream in which the two executions differ.
    ``divergent_sets`` (attacker-visible cache sets whose final contents
    differ) and ``detail`` describe the concrete instance and are *not*
    part of the cluster key — individual witnesses of one root cause vary
    in which exact sets they touch.
    """

    channel: str
    feature: str
    first_divergence: str
    divergent_sets: Tuple[int, ...] = ()
    page_aligned: bool = False
    detail: str = ""

    def key(self) -> str:
        """The cluster key: coarse enough to merge duplicates."""
        alignment = "aligned" if self.page_aligned else "unaligned"
        return (
            f"{self.channel}/{self.feature}/"
            f"{self.first_divergence}/{alignment}"
        )

    def describe(self) -> str:
        text = self.key()
        if self.divergent_sets:
            sets = ",".join(str(s) for s in self.divergent_sets)
            text += f" sets={{{sets}}}"
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_json(self) -> Dict:
        return {
            "channel": self.channel,
            "feature": self.feature,
            "first_divergence": self.first_divergence,
            "divergent_sets": list(self.divergent_sets),
            "page_aligned": self.page_aligned,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "RootCauseSignature":
        return cls(
            channel=doc["channel"],
            feature=doc["feature"],
            first_divergence=doc["first_divergence"],
            divergent_sets=tuple(doc.get("divergent_sets", ())),
            page_aligned=doc["page_aligned"],
            detail=doc.get("detail", ""),
        )


@dataclass
class _Measurement:
    """One instrumented run: trace, channel snapshots, and PMC deltas."""

    trace: ExecutionTrace
    cache: CacheSnapshot
    tlb: TlbSnapshot
    cycles: int
    pmc: PmcReading


def _measure(
    program: AsmProgram,
    inputs: StateInputs,
    train: Optional[StateInputs],
    config: PlatformConfig,
) -> _Measurement:
    """The platform's measurement protocol, instrumented.

    Mirrors ``ExperimentPlatform._measured_run`` — fresh core, training
    runs, flush, one measured execution — but keeps the execution trace,
    both channel snapshots, and the PMC delta of the measured run.
    """
    core = Core(config.core)
    if train is not None:
        for _ in range(config.training_runs):
            core.execute(program, train.to_machine_state())
    core.flush_all()
    pmc = PerformanceCounters(core)
    before = pmc.read()
    cycles_before = core.cycles
    trace = core.execute(program, inputs.to_machine_state())
    cache = core.cache.snapshot()
    if config.attacker_sets is not None:
        cache = cache.restrict(config.attacker_sets)
    return _Measurement(
        trace=trace,
        cache=cache,
        tlb=core.tlb.snapshot(),
        cycles=core.cycles - cycles_before,
        pmc=pmc.read().delta(before),
    )


def _visible_lines(
    addresses: List[int], config: PlatformConfig
) -> List[int]:
    """An address stream as the attacker sees it: line-granular, and
    restricted to the attacker-visible cache sets when the platform
    confines the attacker to a region.

    Raw addresses of two *model-equivalent* states differ routinely (the
    pair is equivalent in observations, not in values), so comparing raw
    streams would report a divergence on nearly every counterexample.
    Only line-granular effects inside the attacker's sets are leakage.
    """
    cache = config.core.cache
    sets = config.attacker_sets
    return [
        addr // cache.line_size
        for addr in addresses
        if sets is None or cache.set_index(addr) in sets
    ]


def _first_divergence(
    m1: _Measurement, m2: _Measurement, config: PlatformConfig
) -> Tuple[str, str]:
    """The earliest diverging attacker-visible event stream."""
    line_size = config.core.cache.line_size
    streams = [
        ("demand-load", m1.trace.load_addresses, m2.trace.load_addresses),
        ("demand-store", m1.trace.store_addresses, m2.trace.store_addresses),
        ("speculative-load", m1.trace.transient_loads, m2.trace.transient_loads),
        ("prefetch", m1.trace.prefetches, m2.trace.prefetches),
    ]
    for label, raw_a, raw_b in streams:
        a = _visible_lines(raw_a, config)
        b = _visible_lines(raw_b, config)
        if a == b:
            continue
        for index, (va, vb) in enumerate(zip(a, b)):
            if va != vb:
                return label, (
                    f"{label}[{index}]: line {hex(va * line_size)}"
                    f" vs {hex(vb * line_size)}"
                )
        return label, f"{label} count: {len(a)} vs {len(b)}"
    if m1.trace.mispredictions != m2.trace.mispredictions:
        return (
            "misprediction",
            f"mispredictions: {m1.trace.mispredictions} "
            f"vs {m2.trace.mispredictions}",
        )
    if m1.cycles != m2.cycles:
        return "timing", f"cycles: {m1.cycles} vs {m2.cycles}"
    differing = sorted(
        name
        for name, value in m1.pmc.counts.items()
        if m2.pmc.counts.get(name) != value
    )
    if differing:
        return "pmc", "pmc counters differ: " + ", ".join(differing)
    return "none", ""


def _divergent_sets(m1: _Measurement, m2: _Measurement) -> Tuple[int, ...]:
    return tuple(
        index
        for index, (tags1, tags2) in enumerate(
            zip(m1.cache.tags_per_set, m2.cache.tags_per_set)
        )
        if tags1 != tags2
    )


def _classify_feature(
    channel: Channel,
    m1: _Measurement,
    m2: _Measurement,
    divergent_sets: Tuple[int, ...],
    config: PlatformConfig,
) -> str:
    if channel is Channel.TIME:
        return "variable-time"
    if channel is Channel.TLB:
        return "tlb-page"
    if m1.trace.prefetches != m2.trace.prefetches:
        # The prefetcher is the cause only if its fills reach the
        # attacker-visible divergence (or the divergence is empty and the
        # prefetch streams are all we have to go on).
        set_index = config.core.cache.set_index
        prefetch_sets = {
            set_index(addr)
            for addr in m1.trace.prefetches + m2.trace.prefetches
        }
        if not divergent_sets or prefetch_sets.intersection(divergent_sets):
            return "prefetcher"
    if m1.trace.transient_loads != m2.trace.transient_loads:
        return "speculative-load"
    if _visible_lines(
        m1.trace.load_addresses, config
    ) != _visible_lines(m2.trace.load_addresses, config) or _visible_lines(
        m1.trace.store_addresses, config
    ) != _visible_lines(m2.trace.store_addresses, config):
        return "demand-access"
    return "replacement"


def region_page_aligned(config: PlatformConfig) -> bool:
    """Whether the attacker region starts on a page boundary (§6.2).

    An unrestricted platform (``attacker_sets is None``) is trivially
    aligned: the region is the whole cache, which starts at set 0.
    """
    sets = config.attacker_sets
    if not sets:
        return True
    page = config.core.prefetcher.page_size or config.core.tlb.page_size
    if not page:
        return True
    return (min(sets) * config.core.cache.line_size) % page == 0


def compute_signature(
    program: AsmProgram,
    state1: StateInputs,
    state2: StateInputs,
    train: Optional[StateInputs],
    config: PlatformConfig,
) -> RootCauseSignature:
    """Replay both states instrumented and distil the root cause."""
    m1 = _measure(program, state1, train, config)
    m2 = _measure(program, state2, train, config)
    divergent = _divergent_sets(m1, m2)
    first, detail = _first_divergence(m1, m2, config)
    if config.channel is Channel.TLB and m1.tlb != m2.tlb:
        pages1 = sorted(m1.tlb.pages - m2.tlb.pages)
        pages2 = sorted(m2.tlb.pages - m1.tlb.pages)
        detail = (
            f"tlb pages only-in-s1={pages1} only-in-s2={pages2}; " + detail
        )
    return RootCauseSignature(
        channel=config.channel.value,
        feature=_classify_feature(config.channel, m1, m2, divergent, config),
        first_divergence=first,
        divergent_sets=divergent,
        page_aligned=region_page_aligned(config),
        detail=detail,
    )
