"""Counterexample triage: minimize, explain, dedup, persist, replay.

The pipeline's raw output is counterexamples — state pairs that are
related under the model under validation yet distinguishable on the
simulated hardware.  This subsystem turns them into durable insights:

* :mod:`repro.triage.minimize` — deterministic delta debugging of the
  program and bit-level shrinking of the state pair, against an oracle
  that re-certifies ``s1 ~M1 s2 ∧ distinguishable-on-hw`` per candidate.
* :mod:`repro.triage.signature` — a root-cause signature from an
  instrumented hardware replay (divergent cache sets, first divergence
  event, active feature, region alignment).
* :mod:`repro.triage.cluster` — dedup by signature so a campaign reports
  distinct violations, not hundreds of duplicates.
* :mod:`repro.triage.corpus` / :mod:`repro.triage.replay` — a versioned,
  schema-validated on-disk witness format, and replay that re-certifies a
  stored corpus against the current simulator and models.

:func:`triage_records` is the campaign-side entry point the shard workers
call (kill-switch: ``CampaignConfig.triage``, off by default).  It is a
pure function of ``(config, records)``: duplicates are detected per
program, never across shard boundaries, so its output is independent of
sharding and worker count, and parallel runs merge triage results exactly
like experiment records.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from repro.hw.platform import ExperimentOutcome
from repro.pipeline.result import ExperimentRecord
from repro.isa.assembler import disassemble
from repro.telemetry import metrics as tmetrics
from repro.telemetry.trace import span as tspan
from repro.triage.cluster import (
    WitnessCluster,
    cluster_witnesses,
    reduction_ratio,
)
from repro.triage.corpus import (
    WITNESS_SCHEMA,
    WITNESS_VERSION,
    Witness,
    WitnessCorpus,
    model_from_json,
    model_to_json,
    platform_from_json,
    platform_to_json,
)
from repro.triage.minimize import (
    MinimizeConfig,
    MinimizedWitness,
    WitnessOracle,
    ddmin,
    minimize_witness,
    subprogram,
)
from repro.triage.replay import (
    ReplayOutcome,
    ReplayReport,
    replay_corpus,
    replay_witness,
)
from repro.triage.signature import (
    RootCauseSignature,
    compute_signature,
    region_page_aligned,
)

__all__ = [
    "WITNESS_SCHEMA",
    "WITNESS_VERSION",
    "MinimizeConfig",
    "MinimizedWitness",
    "ReplayOutcome",
    "ReplayReport",
    "RootCauseSignature",
    "Witness",
    "WitnessCluster",
    "WitnessCorpus",
    "WitnessOracle",
    "cluster_witnesses",
    "compute_signature",
    "ddmin",
    "minimize_witness",
    "model_from_json",
    "model_to_json",
    "platform_from_json",
    "platform_to_json",
    "reduction_ratio",
    "region_page_aligned",
    "replay_corpus",
    "replay_witness",
    "subprogram",
    "triage_records",
    "witness_name",
]


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-") or "campaign"


def witness_name(campaign: str, program_index: int, ordinal: int) -> str:
    """Deterministic witness name: campaign slug, program, violation index."""
    return f"{_slug(campaign)}-p{program_index:04d}-c{ordinal:02d}"


def triage_records(
    config, records: List[ExperimentRecord]
) -> List[Witness]:
    """Triage the counterexamples of a record stream into witnesses.

    For each counterexample record: compute the raw root-cause signature
    (two instrumented replays — cheap), skip it if this program already
    produced a witness with the same signature (per-program dedup keeps
    the result independent of sharding), otherwise minimize it and package
    the result as a :class:`Witness` carrying the signature of the
    *minimized* pair.  Counterexamples that no longer reproduce noise-free
    are counted (``triage.unreproduced``) and dropped.
    """
    witnesses: List[Witness] = []
    seen: Set[Tuple[int, str]] = set()
    ordinals: Dict[int, int] = {}
    for record in records:
        if record.outcome is not ExperimentOutcome.COUNTEREXAMPLE:
            continue
        test = record.test
        with tspan(
            "triage.minimize",
            program=record.program_index,
            program_name=record.program_name,
        ) as s:
            raw_signature = compute_signature(
                test.program,
                test.state1,
                test.state2,
                test.train,
                config.platform,
            )
            key = (record.program_index, raw_signature.key())
            if key in seen:
                tmetrics.counter("triage.duplicates").inc()
                s.set_attr("duplicate", True)
                continue
            seen.add(key)
            minimized = minimize_witness(
                test.program,
                test.state1,
                test.state2,
                test.train,
                config.model,
                config.platform,
            )
            if minimized is None:
                tmetrics.counter("triage.unreproduced").inc()
                s.set_attr("reproduced", False)
                continue
            signature = compute_signature(
                minimized.program,
                minimized.state1,
                minimized.state2,
                minimized.train,
                config.platform,
            )
            ordinal = ordinals.get(record.program_index, 0)
            ordinals[record.program_index] = ordinal + 1
            witness = Witness(
                name=witness_name(
                    config.name, record.program_index, ordinal
                ),
                campaign=config.name,
                template=record.template,
                program=record.program_name,
                asm=disassemble(minimized.program),
                model=model_to_json(config.model),
                platform=platform_to_json(config.platform),
                state1=minimized.state1,
                state2=minimized.state2,
                train=minimized.train,
                signature=signature,
                reduction=minimized.reduction(),
            )
            witnesses.append(witness)
            tmetrics.counter("triage.minimized").inc()
            if minimized.instructions_before:
                tmetrics.histogram(
                    "triage.instruction_reduction"
                ).observe(
                    minimized.instructions_after
                    / minimized.instructions_before
                )
            s.set_attr("instructions_before", minimized.instructions_before)
            s.set_attr("instructions_after", minimized.instructions_after)
            s.set_attr("signature", signature.key())
    return witnesses
