"""Replay: re-certify stored witnesses against the current simulator.

A corpus of witnesses is only trustworthy if each one still reproduces —
the simulator, the models, and the toolchain all move underneath it.
:func:`replay_witness` re-runs the full certification chain on one stored
witness: rebuild the program/model/platform from the document, check the
pair is still related under the model under validation (identical BASE
traces), still distinguishable in hardware, and still diverges for the
*same root cause* (the stored signature key).  :func:`replay_corpus` maps
that over a corpus, optionally across worker processes; results are
ordered by witness name, so the report is bit-identical at any worker
count.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ReproError
from repro.hw.platform import ExperimentOutcome
from repro.symbolic.concrete import certify_equivalence
from repro.telemetry import metrics as tmetrics
from repro.telemetry.trace import span as tspan
from repro.triage.corpus import Witness
from repro.triage.minimize import WitnessOracle
from repro.triage.signature import compute_signature


@dataclass(frozen=True)
class ReplayOutcome:
    """Verdict for one witness; ``reason`` is empty when it reproduced."""

    name: str
    reproduced: bool
    reason: str = ""


@dataclass
class ReplayReport:
    """Aggregate verdict over a corpus."""

    outcomes: List[ReplayOutcome]

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def reproduced(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.reproduced)

    @property
    def failures(self) -> List[ReplayOutcome]:
        return [o for o in self.outcomes if not o.reproduced]

    @property
    def all_reproduced(self) -> bool:
        return self.reproduced == self.total

    def describe(self) -> str:
        lines = [
            f"replayed {self.total} witness(es): "
            f"{self.reproduced} reproduced, {len(self.failures)} failed"
        ]
        lines.extend(
            f"  FAIL {outcome.name}: {outcome.reason}"
            for outcome in self.failures
        )
        return "\n".join(lines)


def replay_witness(witness: Witness) -> ReplayOutcome:
    """Re-certify one witness end to end (pure, deterministic)."""
    name = witness.name
    with tspan("triage.replay", witness=name) as s:
        try:
            program = witness.asm_program()
            model = witness.build_model()
            platform = witness.build_platform()
        except ReproError as exc:
            s.set_attr("reproduced", False)
            return ReplayOutcome(name, False, f"cannot rebuild: {exc}")
        oracle = WitnessOracle(model, platform)
        try:
            equivalent = certify_equivalence(
                oracle.augmented(program), witness.state1, witness.state2
            )
        except ReproError as exc:
            s.set_attr("reproduced", False)
            return ReplayOutcome(name, False, f"model run failed: {exc}")
        if not equivalent:
            s.set_attr("reproduced", False)
            return ReplayOutcome(
                name,
                False,
                "states are no longer model-equivalent "
                "(BASE observation traces differ)",
            )
        try:
            result = oracle.platform.run_experiment(
                program, witness.state1, witness.state2, witness.train
            )
        except ReproError as exc:
            s.set_attr("reproduced", False)
            return ReplayOutcome(name, False, f"hardware run failed: {exc}")
        if result.outcome is not ExperimentOutcome.COUNTEREXAMPLE:
            s.set_attr("reproduced", False)
            return ReplayOutcome(
                name,
                False,
                f"hardware outcome {result.outcome.value!r}, "
                "expected a counterexample",
            )
        signature = compute_signature(
            program,
            witness.state1,
            witness.state2,
            witness.train,
            platform,
        )
        if signature.key() != witness.signature.key():
            s.set_attr("reproduced", False)
            return ReplayOutcome(
                name,
                False,
                "root cause drifted: "
                f"{witness.signature.key()} -> {signature.key()}",
            )
        s.set_attr("reproduced", True)
    tmetrics.counter("triage.replayed").inc()
    return ReplayOutcome(name, True)


def _replay_doc(doc: Dict) -> ReplayOutcome:
    """Worker-process entry point: documents are picklable everywhere."""
    return replay_witness(Witness.from_json(doc))


def replay_corpus(
    witnesses: Sequence[Witness], workers: int = 1
) -> ReplayReport:
    """Replay every witness; deterministic at any worker count.

    Witnesses are processed in name order and each replay is a pure
    function of its document, so the report does not depend on scheduling.
    A pool that cannot be created (restricted environments) degrades to
    the inline path.
    """
    ordered = sorted(witnesses, key=lambda witness: witness.name)
    outcomes: List[ReplayOutcome]
    if workers > 1 and len(ordered) > 1:
        try:
            with multiprocessing.Pool(processes=workers) as pool:
                outcomes = pool.map(
                    _replay_doc, [w.to_json() for w in ordered]
                )
        except OSError:
            outcomes = [replay_witness(w) for w in ordered]
    else:
        outcomes = [replay_witness(w) for w in ordered]
    outcomes.sort(key=lambda outcome: outcome.name)
    return ReplayReport(outcomes=outcomes)
