"""The versioned on-disk witness format and the corpus directory.

A *witness* is one triaged counterexample: the minimized program, the
minimized state pair (plus optional training state), a self-contained
description of the observation model and platform it violates, and the
root-cause signature the triage layer computed.  Witnesses serialize to
JSON documents validated against :data:`WITNESS_SCHEMA` (the same
pure-Python draft-07 subset the telemetry snapshots use), so a corpus
checked into a repository is machine-checkable without extra
dependencies, and :mod:`repro.triage.replay` can re-certify it against
the current simulator and models at any later commit.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import TriageError
from repro.hw.cache import CacheConfig
from repro.hw.core import CoreConfig
from repro.hw.platform import Channel, PlatformConfig, StateInputs
from repro.hw.predictor import PredictorConfig
from repro.hw.prefetcher import PrefetcherConfig
from repro.hw.tlb import TlbConfig
from repro.isa.assembler import assemble
from repro.isa.program import AsmProgram
from repro.obs.base import AttackerRegion, ObservationModel
from repro.obs.channels import MpageRefinedModel, MtimeRefinedModel
from repro.obs.models import (
    MctModel,
    MlineModel,
    MpartModel,
    MpartRefinedModel,
    MpcModel,
    MspecModel,
    MspecOneLoadModel,
    MspecStraightLineModel,
)
from repro.pipeline.result import state_from_json, state_to_json
from repro.symbolic.speculative import SpeculationBounds
from repro.telemetry.schema import SchemaError, validate
from repro.triage.signature import RootCauseSignature

#: Version of the on-disk witness document format.
WITNESS_VERSION = 1

_STATE_SCHEMA: Dict = {
    "type": "object",
    "required": ["regs", "memory"],
    "properties": {
        "regs": {
            "type": "object",
            "additionalProperties": {"type": "integer"},
        },
        "memory": {
            "type": "object",
            "additionalProperties": {"type": "integer"},
        },
    },
}

WITNESS_SCHEMA: Dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro triage witness",
    "type": "object",
    "required": [
        "version",
        "name",
        "campaign",
        "template",
        "program",
        "asm",
        "model",
        "platform",
        "state1",
        "state2",
        "signature",
        "reduction",
    ],
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "name": {"type": "string"},
        "campaign": {"type": "string"},
        "template": {"type": "string"},
        "program": {"type": "string"},
        "asm": {"type": "string"},
        "model": {
            "type": "object",
            "required": ["kind"],
            "properties": {
                "kind": {"type": "string"},
                "region": {
                    "type": "object",
                    "required": ["lo_set", "hi_set"],
                },
                "bounds": {"type": "object"},
            },
        },
        "platform": {
            "type": "object",
            "required": ["channel", "core"],
            "properties": {
                "channel": {"enum": ["dcache", "tlb", "time"]},
                "attacker_sets": {
                    "type": ["array", "null"],
                    "items": {"type": "integer", "minimum": 0},
                },
                "training_runs": {"type": "integer", "minimum": 0},
                "core": {"type": "object"},
            },
        },
        "state1": _STATE_SCHEMA,
        "state2": _STATE_SCHEMA,
        "train": {"type": ["object", "null"]},
        "signature": {
            "type": "object",
            "required": [
                "channel",
                "feature",
                "first_divergence",
                "divergent_sets",
                "page_aligned",
            ],
        },
        "reduction": {
            "type": "object",
            "required": [
                "instructions_before",
                "instructions_after",
                "cells_before",
                "cells_after",
                "oracle_checks",
            ],
            "additionalProperties": {"type": "integer", "minimum": 0},
        },
    },
}


# -- model serialization ------------------------------------------------------

_MODEL_CLASSES = {
    "mpart": MpartModel,
    "mpart-refined": MpartRefinedModel,
    "mline": MlineModel,
    "mpage-refined": MpageRefinedModel,
    "mct": MctModel,
    "mpc": MpcModel,
    "mspec": MspecModel,
    "mspec1": MspecOneLoadModel,
    "mspec-straightline": MspecStraightLineModel,
    "mtime-refined": MtimeRefinedModel,
}
_KIND_BY_CLASS = {cls: kind for kind, cls in _MODEL_CLASSES.items()}


def model_to_json(model: ObservationModel) -> Dict:
    """A self-contained JSON description of an observation model."""
    kind = _KIND_BY_CLASS.get(type(model))
    if kind is None:
        raise TriageError(
            f"cannot serialize observation model {type(model).__name__}"
        )
    doc: Dict = {"kind": kind}
    region = getattr(model, "region", None)
    if region is not None:
        doc["region"] = {
            "lo_set": region.lo_set,
            "hi_set": region.hi_set,
            "line_shift": region.line_shift,
            "set_count": region.set_count,
        }
    bounds = getattr(model, "bounds", None)
    if bounds is not None:
        doc["bounds"] = {
            "max_instructions": bounds.max_instructions,
            "max_loads": bounds.max_loads,
        }
    return doc


def model_from_json(doc: Dict) -> ObservationModel:
    """Rebuild the observation model a witness was found under."""
    try:
        cls = _MODEL_CLASSES[doc["kind"]]
    except KeyError:
        raise TriageError(
            f"unknown observation-model kind {doc.get('kind')!r}"
        ) from None
    kwargs: Dict = {}
    if "region" in doc:
        kwargs["region"] = AttackerRegion(**doc["region"])
    if "bounds" in doc:
        kwargs["bounds"] = SpeculationBounds(**doc["bounds"])
    return cls(**kwargs)


# -- platform serialization ---------------------------------------------------

_CORE_SCALARS = (
    "spec_window",
    "forward_speculative_results",
    "straight_line_speculation",
    "prefetch_on_transient",
    "base_cycles",
    "hit_latency",
    "l2_hit_latency",
    "miss_latency",
    "tlb_miss_latency",
    "mispredict_penalty",
    "variable_time_multiply",
    "max_steps",
)


def platform_to_json(config: PlatformConfig) -> Dict:
    """A self-contained JSON description of the measured platform.

    ``noise_rate`` and ``repetitions`` are deliberately dropped: a stored
    witness is always replayed noise-free, where one repetition suffices.
    """
    return {
        "channel": config.channel.value,
        "attacker_sets": (
            list(config.attacker_sets)
            if config.attacker_sets is not None
            else None
        ),
        "training_runs": config.training_runs,
        "core": asdict(config.core),
    }


def platform_from_json(doc: Dict) -> PlatformConfig:
    """Rebuild the (noise-free) platform a witness is replayed on."""
    core_doc = dict(doc["core"])
    core = CoreConfig(
        cache=CacheConfig(**core_doc["cache"]),
        l2=CacheConfig(**core_doc["l2"]) if core_doc.get("l2") else None,
        prefetcher=PrefetcherConfig(**core_doc["prefetcher"]),
        predictor=PredictorConfig(**core_doc["predictor"]),
        tlb=TlbConfig(**core_doc["tlb"]),
        **{key: core_doc[key] for key in _CORE_SCALARS},
    )
    attacker_sets = doc.get("attacker_sets")
    return PlatformConfig(
        core=core,
        repetitions=1,
        training_runs=doc.get("training_runs", 0),
        noise_rate=0.0,
        attacker_sets=(
            tuple(attacker_sets) if attacker_sets is not None else None
        ),
        channel=Channel(doc["channel"]),
    )


# -- the witness --------------------------------------------------------------


@dataclass(frozen=True)
class Witness:
    """One triaged counterexample, self-contained and replayable."""

    name: str
    campaign: str
    template: str
    program: str
    #: Disassembled text of the minimized program.
    asm: str
    #: ``model_to_json`` document of the model under validation.
    model: Dict
    #: ``platform_to_json`` document of the measured platform.
    platform: Dict
    state1: StateInputs
    state2: StateInputs
    train: Optional[StateInputs]
    signature: RootCauseSignature
    #: Minimization accounting: instructions/state cells before and after,
    #: and how many oracle checks the reduction spent.
    reduction: Dict[str, int] = field(default_factory=dict)
    version: int = WITNESS_VERSION

    def asm_program(self) -> AsmProgram:
        return assemble(self.asm, name=self.program)

    def build_model(self) -> ObservationModel:
        return model_from_json(self.model)

    def build_platform(self) -> PlatformConfig:
        return platform_from_json(self.platform)

    def to_json(self) -> Dict:
        return {
            "version": self.version,
            "name": self.name,
            "campaign": self.campaign,
            "template": self.template,
            "program": self.program,
            "asm": self.asm,
            "model": self.model,
            "platform": self.platform,
            "state1": state_to_json(self.state1),
            "state2": state_to_json(self.state2),
            "train": state_to_json(self.train),
            "signature": self.signature.to_json(),
            "reduction": dict(self.reduction),
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "Witness":
        try:
            validate(doc, WITNESS_SCHEMA)
        except SchemaError as exc:
            raise TriageError(f"malformed witness document: {exc}") from exc
        if doc["version"] != WITNESS_VERSION:
            raise TriageError(
                f"witness {doc['name']!r} has version {doc['version']}, "
                f"this build reads version {WITNESS_VERSION}"
            )
        return cls(
            name=doc["name"],
            campaign=doc["campaign"],
            template=doc["template"],
            program=doc["program"],
            asm=doc["asm"],
            model=doc["model"],
            platform=doc["platform"],
            state1=state_from_json(doc["state1"]),
            state2=state_from_json(doc["state2"]),
            train=state_from_json(doc.get("train")),
            signature=RootCauseSignature.from_json(doc["signature"]),
            reduction=dict(doc["reduction"]),
            version=doc["version"],
        )


class WitnessCorpus:
    """A directory of ``<name>.json`` witness documents."""

    def __init__(self, root: str):
        self.root = root

    def path_for(self, name: str) -> str:
        return os.path.join(self.root, f"{name}.json")

    def save(self, witness: Witness) -> str:
        """Write one witness; returns the file path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(witness.name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(witness.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def names(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry[: -len(".json")]
            for entry in os.listdir(self.root)
            if entry.endswith(".json")
        )

    def load(self, name: str) -> Witness:
        try:
            with open(self.path_for(name), "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise TriageError(f"cannot read witness {name!r}: {exc}") from exc
        return Witness.from_json(doc)

    def load_all(self) -> List[Witness]:
        """Every witness in the corpus, ordered by name."""
        return [self.load(name) for name in self.names()]
