"""Deterministic counterexample minimization (ddmin + state shrinking).

Reduces a counterexample along both of its axes toward a canonical minimal
witness:

* **Instructions** — classic delta debugging (ddmin) over the program's
  instruction indices: drop complement chunks, re-lift and re-augment the
  candidate subprogram, and keep the reduction only if the *oracle* still
  holds.  Labels are remapped, never dropped, so branch targets stay valid
  in every candidate.
* **State pair** — drop the training state, delete register/memory cells,
  align values of the second state onto the first, and shrink the
  remaining values bit by bit (zero first, then clearing set bits from the
  most significant down).

The oracle is Definition 1 evaluated end to end: the candidate pair must
still be related under the model under validation (identical BASE
observation traces on a concrete run of the re-augmented program) *and*
distinguishable on the simulated hardware (a noise-free platform
experiment returns ``COUNTEREXAMPLE``).  Every step is a pure function of
its inputs — no randomness, fixed iteration order — so minimizing the same
witness twice yields bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.hw.platform import (
    ExperimentOutcome,
    ExperimentPlatform,
    PlatformConfig,
    StateInputs,
)
from repro.isa.assembler import disassemble
from repro.isa.lifter import lift
from repro.isa.program import AsmProgram
from repro.isa.registers import REGISTER_WIDTH
from repro.obs.base import ObservationModel
from repro.symbolic.concrete import certify_equivalence
from repro.telemetry import metrics as tmetrics


@dataclass(frozen=True)
class MinimizeConfig:
    """Budget and feature switches for one minimization."""

    #: Hard ceiling on oracle checks; when exhausted every further
    #: candidate is rejected, so minimization stops where it stands (the
    #: intermediate result is still a valid witness — every accepted
    #: reduction passed the oracle).
    max_checks: int = 4000
    #: Bit-level shrinking of surviving values (the slow tail; deletion
    #: and alignment alone already canonicalize most witnesses).
    shrink_bits: bool = True


class WitnessOracle:
    """The keep-this-reduction test: still related under M1, still
    distinguishable in hardware.

    Runs noise-free regardless of the campaign's platform settings
    (``noise_rate=0`` forces one deterministic repetition), and re-lifts /
    re-augments each candidate program, memoizing the augmentation by
    program text so repeated state-shrinking checks on the same program
    pay it once.
    """

    def __init__(self, model: ObservationModel, config: PlatformConfig):
        self.model = model
        self.config = replace(config, noise_rate=0.0, repetitions=1)
        self.platform = ExperimentPlatform(self.config)
        self.checks = 0
        self._augmented: Dict[str, object] = {}

    def augmented(self, program: AsmProgram):
        """The model-augmented BIR of a candidate (memoized by text)."""
        key = disassemble(program)
        cached = self._augmented.get(key)
        if cached is None:
            cached = self.model.augment(lift(program))
            self._augmented[key] = cached
        return cached

    def holds(
        self,
        program: AsmProgram,
        state1: StateInputs,
        state2: StateInputs,
        train: Optional[StateInputs],
    ) -> bool:
        """True iff the pair is still a certified counterexample."""
        self.checks += 1
        try:
            if not certify_equivalence(
                self.augmented(program), state1, state2
            ):
                return False
            result = self.platform.run_experiment(
                program, state1, state2, train
            )
        except ReproError:
            # A candidate the toolchain cannot lift or execute is simply
            # not a valid reduction.
            return False
        return result.outcome is ExperimentOutcome.COUNTEREXAMPLE


@dataclass
class MinimizedWitness:
    """The canonical reduced counterexample and its accounting."""

    program: AsmProgram
    state1: StateInputs
    state2: StateInputs
    train: Optional[StateInputs]
    oracle_checks: int
    instructions_before: int
    instructions_after: int
    cells_before: int
    cells_after: int

    def reduction(self) -> Dict[str, int]:
        return {
            "instructions_before": self.instructions_before,
            "instructions_after": self.instructions_after,
            "cells_before": self.cells_before,
            "cells_after": self.cells_after,
            "oracle_checks": self.oracle_checks,
        }


def ddmin(items: Sequence, test: Callable[[List], bool]) -> List:
    """Delta debugging (complement variant): a 1-minimal failing subset.

    ``test(subset)`` must return True when the subset still exhibits the
    property being preserved.  Deterministic: chunks are tried first to
    last, and granularity doubles only when no complement succeeds.
    """
    items = list(items)
    n = 2
    while len(items) >= 2:
        chunk = (len(items) + n - 1) // n
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk :]
            if complement and test(complement):
                items = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    return items


def subprogram(program: AsmProgram, keep: Sequence[int]) -> AsmProgram:
    """The program restricted to the kept instruction indices.

    Every label survives, remapped to the count of kept instructions
    before its original position, so branch targets remain defined (a
    label may legally point one past the end).
    """
    kept = sorted(keep)
    labels = {
        label: sum(1 for k in kept if k < index)
        for label, index in program.labels.items()
    }
    return AsmProgram(
        [program.instructions[i] for i in kept],
        labels=labels,
        name=program.name,
    )


def _cells(state1: StateInputs, state2: StateInputs) -> int:
    return (
        len(state1.regs)
        + len(state1.memory)
        + len(state2.regs)
        + len(state2.memory)
    )


def minimize_witness(
    program: AsmProgram,
    state1: StateInputs,
    state2: StateInputs,
    train: Optional[StateInputs],
    model: ObservationModel,
    platform: PlatformConfig,
    config: Optional[MinimizeConfig] = None,
) -> Optional[MinimizedWitness]:
    """Minimize one counterexample; None if it does not reproduce.

    A pair that fails the oracle on entry — noise-found, or no longer
    distinguishable on the current simulator — is not a witness at all and
    is reported as unreproduced rather than "minimized" to garbage.
    """
    config = config or MinimizeConfig()
    oracle = WitnessOracle(model, platform)
    if not oracle.holds(program, state1, state2, train):
        return None
    instructions_before = len(program)
    cells_before = _cells(state1, state2)

    def in_budget() -> bool:
        return oracle.checks < config.max_checks

    # Axis 1: instructions, via ddmin over kept indices.
    kept = ddmin(
        range(len(program)),
        lambda keep: in_budget()
        and oracle.holds(subprogram(program, keep), state1, state2, train),
    )
    program = subprogram(program, kept)

    # Axis 2a: the training state, if the divergence survives without it.
    if train is not None and in_budget():
        if oracle.holds(program, state1, state2, None):
            train = None

    # Axis 2b: the state pair.
    state1, state2 = _shrink_states(
        oracle, program, state1, state2, train, config
    )

    tmetrics.histogram("triage.minimize.checks").observe(oracle.checks)
    return MinimizedWitness(
        program=program,
        state1=state1,
        state2=state2,
        train=train,
        oracle_checks=oracle.checks,
        instructions_before=instructions_before,
        instructions_after=len(program),
        cells_before=cells_before,
        cells_after=_cells(state1, state2),
    )


def _shrink_states(
    oracle: WitnessOracle,
    program: AsmProgram,
    state1: StateInputs,
    state2: StateInputs,
    train: Optional[StateInputs],
    config: MinimizeConfig,
) -> Tuple[StateInputs, StateInputs]:
    """Canonicalize the state pair: delete, align, then shrink values."""
    regs1, mem1 = dict(state1.regs), dict(state1.memory)
    regs2, mem2 = dict(state2.regs), dict(state2.memory)

    def attempt() -> bool:
        if oracle.checks >= config.max_checks:
            return False
        return oracle.holds(
            program,
            StateInputs(regs=dict(regs1), memory=dict(mem1)),
            StateInputs(regs=dict(regs2), memory=dict(mem2)),
            train,
        )

    def delete_pass() -> None:
        # Registers default to zero and unwritten memory reads as zero, so
        # deleting a cell from both states is the canonical way to drop it.
        for key in sorted(set(regs1) | set(regs2)):
            saved = (regs1.pop(key, None), regs2.pop(key, None))
            if not attempt():
                if saved[0] is not None:
                    regs1[key] = saved[0]
                if saved[1] is not None:
                    regs2[key] = saved[1]
        for addr in sorted(set(mem1) | set(mem2)):
            saved = (mem1.pop(addr, None), mem2.pop(addr, None))
            if not attempt():
                if saved[0] is not None:
                    mem1[addr] = saved[0]
                if saved[1] is not None:
                    mem2[addr] = saved[1]

    def align_pass() -> None:
        # Make state2 agree with state1 wherever the difference is not
        # load-bearing: the minimal witness diverges in as few cells as
        # possible.
        for key in sorted(set(regs1) | set(regs2)):
            v1, v2 = regs1.get(key, 0), regs2.get(key, 0)
            if v1 == v2:
                continue
            saved = regs2.get(key)
            regs2[key] = v1
            if not attempt():
                if saved is None:
                    regs2.pop(key, None)
                else:
                    regs2[key] = saved
        for addr in sorted(set(mem1) | set(mem2)):
            v1, v2 = mem1.get(addr, 0), mem2.get(addr, 0)
            if v1 == v2:
                continue
            saved = mem2.get(addr)
            mem2[addr] = v1
            if not attempt():
                if saved is None:
                    mem2.pop(addr, None)
                else:
                    mem2[addr] = saved

    def shrink_value(store: Dict, key) -> None:
        value = store[key]
        if value == 0:
            return
        saved = value
        store[key] = 0
        if attempt():
            return
        store[key] = saved
        # Clear set bits from the most significant down; each accepted
        # clear re-baselines, so the result is the canonical minimum the
        # oracle admits along this greedy descent.
        for bit in reversed(range(REGISTER_WIDTH)):
            if not store[key] >> bit & 1:
                continue
            saved = store[key]
            store[key] = saved & ~(1 << bit)
            if not attempt():
                store[key] = saved

    delete_pass()
    align_pass()
    if config.shrink_bits:
        for store in (regs1, mem1, regs2, mem2):
            for key in sorted(store):
                shrink_value(store, key)
        # Shrinking may have zeroed cells whose presence is now redundant.
        delete_pass()
    return (
        StateInputs(regs=regs1, memory=mem1),
        StateInputs(regs=regs2, memory=mem2),
    )
