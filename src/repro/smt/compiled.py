"""Compilation of BIR expressions to Python closures.

The stochastic search evaluates every conjunct hundreds of times; walking
the expression tree each time dominates solving.  ``compile_expr`` turns an
expression into a Python lambda over ``(R, M)`` — the register mapping and
the memory-read function of a valuation — giving a ~two-order-of-magnitude
speedup with identical semantics (the test suite cross-checks compiled
results against :func:`repro.bir.expr.evaluate`).

Compilation is pure, so closures are memoized by (interned) node in a
bounded campaign-scoped cache: the model finder re-preparing a conjunct it
has seen before — the common case when a program's path pairs share
well-formedness and antecedent constraints — costs one dict lookup instead
of a codegen + ``eval``.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.bir import expr as E
from repro.bir import intern
from repro.errors import SolverError
from repro.utils import bitvec

_UNIQUE = 0

_CompiledFn = Callable[[Dict[str, int], Callable[[str, int], int]], int]

_CACHE: Dict[E.Expr, _CompiledFn] = {}
_CACHE_CAP = 1 << 16

_STATS = intern.register_cache("compile", _CACHE.clear, lambda: len(_CACHE))


def _signed(value: int, width: int) -> int:
    return bitvec.to_signed(value, width)


def _shl(a: int, b: int, w: int) -> int:
    return bitvec.bv_shl(a, min(b, w), w)


def _lshr(a: int, b: int, w: int) -> int:
    return bitvec.bv_lshr(a, min(b, w), w)


def _ashr(a: int, b: int, w: int) -> int:
    return bitvec.bv_ashr(a, min(b, w), w)


_GLOBALS = {
    "_s": _signed,
    "_shl": _shl,
    "_lshr": _lshr,
    "_ashr": _ashr,
    "__builtins__": {},
}


def compile_expr(expr: E.Expr) -> _CompiledFn:
    """Compile to ``fn(R, M) -> int`` where ``R`` maps register names to
    values and ``M(mem_name, addr)`` reads a memory cell.

    Results are memoized per node; repeated compilation of a shared term
    returns the same closure.
    """
    fn = _CACHE.get(expr)
    if fn is not None:
        _STATS.hits += 1
        return fn
    _STATS.misses += 1
    code = _gen(expr)
    fn = eval(f"lambda R, M: {code}", dict(_GLOBALS))
    if intern.enabled():
        if len(_CACHE) >= _CACHE_CAP:
            _CACHE.clear()
        _CACHE[expr] = fn
    return fn


def _gen(expr: E.Expr) -> str:
    w = expr.width
    m = bitvec.mask(w)
    if isinstance(expr, E.Const):
        return str(expr.value)
    if isinstance(expr, E.Var):
        return f"R[{expr.name!r}]"
    if isinstance(expr, E.UnOp):
        o = _gen(expr.operand)
        if expr.op is E.UnOpKind.NOT:
            return f"(({o}) ^ {m})"
        if expr.op is E.UnOpKind.NEG:
            return f"((-({o})) & {m})"
        raise SolverError(f"cannot compile {expr.op!r}")
    if isinstance(expr, E.BinOp):
        l, r = _gen(expr.lhs), _gen(expr.rhs)
        op = expr.op
        if op is E.BinOpKind.ADD:
            return f"((({l}) + ({r})) & {m})"
        if op is E.BinOpKind.SUB:
            return f"((({l}) - ({r})) & {m})"
        if op is E.BinOpKind.MUL:
            return f"((({l}) * ({r})) & {m})"
        if op is E.BinOpKind.AND:
            return f"(({l}) & ({r}))"
        if op is E.BinOpKind.OR:
            return f"(({l}) | ({r}))"
        if op is E.BinOpKind.XOR:
            return f"(({l}) ^ ({r}))"
        if op is E.BinOpKind.SHL:
            return f"_shl(({l}), ({r}), {w})"
        if op is E.BinOpKind.LSHR:
            return f"_lshr(({l}), ({r}), {w})"
        if op is E.BinOpKind.ASHR:
            return f"_ashr(({l}), ({r}), {w})"
        raise SolverError(f"cannot compile {op!r}")
    if isinstance(expr, E.Cmp):
        l, r = _gen(expr.lhs), _gen(expr.rhs)
        ow = expr.lhs.width
        op = expr.op
        if op is E.CmpKind.EQ:
            return f"(({l}) == ({r}))*1"
        if op is E.CmpKind.NE:
            return f"(({l}) != ({r}))*1"
        if op is E.CmpKind.ULT:
            return f"(({l}) < ({r}))*1"
        if op is E.CmpKind.ULE:
            return f"(({l}) <= ({r}))*1"
        if op is E.CmpKind.SLT:
            return f"(_s(({l}), {ow}) < _s(({r}), {ow}))*1"
        if op is E.CmpKind.SLE:
            return f"(_s(({l}), {ow}) <= _s(({r}), {ow}))*1"
        raise SolverError(f"cannot compile {op!r}")
    if isinstance(expr, E.Ite):
        return (
            f"(({_gen(expr.then)}) if ({_gen(expr.cond)}) "
            f"else ({_gen(expr.orelse)}))"
        )
    if isinstance(expr, E.Load):
        return _gen_load(expr)
    raise SolverError(f"cannot compile {expr!r}")


def _gen_load(expr: E.Load) -> str:
    addr_code = _gen(expr.addr)
    mem = expr.mem
    if isinstance(mem, E.MemVar):
        return f"M({mem.name!r}, ({addr_code}))"
    # Store chain: bind the address once, then nested conditionals.
    body = "_A"
    chain = []
    while isinstance(mem, E.MemStore):
        chain.append((mem.addr, mem.value))
        mem = mem.mem
    assert isinstance(mem, E.MemVar)
    inner = f"M({mem.name!r}, _A)"
    for store_addr, store_value in reversed(chain):
        inner = (
            f"(({_gen(store_value)}) if (({_gen(store_addr)}) == _A) "
            f"else ({inner}))"
        )
    return f"(lambda _A: {inner})({addr_code})"
