"""Lazily-sampled valuations with a paired completion policy.

The model finder evaluates candidate assignments with a
:class:`LazyValuation`: any register or memory cell read that is not yet
materialised is sampled on demand by a :class:`SamplingPolicy` and then
cached, so the search only ever touches values the constraints mention.

The policy pairs the two state copies of a relational formula (``x0#1`` /
``x0#2``): by default both copies of a name — and both copies of a memory
cell at the same address — receive the *same* sampled value.  With
probability ``divergence`` a copy gets an independent draw.  See
:mod:`repro.smt` for why this bias is the realistic substitute for an SMT
solver's don't-care behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.bir.expr import Valuation
from repro.smt.naming import base_name, rename_for_state, split
from repro.utils import bitvec
from repro.utils.rng import SplittableRandom

WORD_WIDTH = 64


@dataclass
class SamplingPolicy:
    """How fresh values are drawn and how state copies are paired.

    ``region_base``/``region_size`` describe the experiment memory region of
    the evaluation platform; sampled values are addresses into that region
    with probability ``region_bias`` (aligned to ``alignment``), otherwise
    small integers.  Registers double as addresses and comparison operands in
    the templates, so this mixture keeps most raw samples *plausible* inputs,
    with constraint repair doing the precise placement.
    """

    rng: SplittableRandom
    divergence: float = 0.08
    region_base: int = 0x80000
    region_size: int = 0x40000
    region_bias: float = 0.5
    alignment: int = 8
    small_max: int = 255

    def fresh_value(self) -> int:
        """An unconstrained sample: region address or small integer."""
        if self.rng.chance(self.region_bias):
            slots = self.region_size // self.alignment
            offset = self.rng.randint(0, slots - 1) * self.alignment
            return self.region_base + offset
        return self.rng.randint(0, self.small_max)

    def diverges(self) -> bool:
        """Whether a paired draw should be replaced by an independent one."""
        return self.rng.chance(self.divergence)


class LazyValuation(Valuation):
    """A concrete valuation that samples unknown values on first read.

    ``pins`` fixes names to constant values (from equality propagation);
    ``resolve`` maps a variable name to its equivalence-class key (from
    union-find over top-level equalities) — class members share one value.
    """

    def __init__(
        self,
        policy: SamplingPolicy,
        pins: Optional[Dict[str, int]] = None,
        resolve: Optional[Callable[[str], str]] = None,
    ):
        super().__init__()
        self.policy = policy
        self.pins = dict(pins or {})
        self.resolve = resolve or (lambda name: name)
        # Shared draws per pairing key (base name / (mem, addr)).
        self._paired_regs: Dict[str, int] = {}
        self._paired_cells: Dict[Tuple[str, int], int] = {}
        # Names mutated by repair since the last drain (register class keys
        # and memory names); the solver uses this for incremental
        # re-evaluation of dependent constraints.
        self.mutation_log: list = []
        # Repair side-preference for this restart.  Deterministic within a
        # restart (both states repair isomorphic constraints identically)
        # but flipped across restarts so deterministic repair cycles can be
        # escaped.
        self.orientation = False
        # Exploration phase: when deterministic repair stalls, the solver
        # switches to randomized repair choices to crack constraint cycles
        # (twin preference still keeps reparable symmetry where possible).
        self.explore = False
        self.regs = _SamplingRegs(self)

    # -- registers ---------------------------------------------------------

    def _sample_register(self, key: str) -> int:
        if key in self.pins:
            return self.pins[key]
        pair_key = base_name(key)
        shared = self._paired_regs.get(pair_key)
        if shared is None:
            shared = self.policy.fresh_value()
            self._paired_regs[pair_key] = shared
        if self.policy.diverges():
            return self.policy.fresh_value()
        return shared

    def set_register(self, name: str, value: int) -> bool:
        """Assign a register (repair); refuses pinned names."""
        regs = self.regs
        key = regs._keys.get(name)
        if key is None:
            key = self.resolve(name)
            regs._keys[name] = key
        if key in self.pins:
            return self.pins[key] == bitvec.truncate(value, WORD_WIDTH)
        dict.__setitem__(regs, key, bitvec.truncate(value, WORD_WIDTH))
        self.mutation_log.append(key)
        return True

    def register(self, name: str) -> int:
        """Read (and materialise) a register value."""
        return self.regs[name]

    def twin_register(self, name: str) -> Optional[int]:
        """The other state's value of this variable, or None.

        Repair prefers the twin's value whenever it satisfies the predicate
        being fixed: an SMT solver given the isomorphic sub-problems of the
        two state copies assigns them identical witnesses, and this is what
        keeps unguided test pairs "too similar" (§1).
        """
        base, state = split(name)
        if state not in (1, 2):
            return None
        return self.regs[rename_for_state(base, 3 - state)]

    # -- memory ------------------------------------------------------------

    def read_mem(self, mem_name: str, addr: int) -> int:
        cells = self.mems.setdefault(mem_name, {})
        if addr not in cells:
            cells[addr] = self._sample_cell(mem_name, addr)
        return cells[addr]

    def _sample_cell(self, mem_name: str, addr: int) -> int:
        pair_key = (base_name(mem_name), addr)
        shared = self._paired_cells.get(pair_key)
        if shared is None:
            shared = self.policy.fresh_value()
            self._paired_cells[pair_key] = shared
        if self.policy.diverges():
            return self.policy.fresh_value()
        return shared

    def set_cell(self, mem_name: str, addr: int, value: int) -> bool:
        """Assign a memory cell (repair)."""
        self.mems.setdefault(mem_name, {})[addr] = bitvec.truncate(
            value, WORD_WIDTH
        )
        self.mutation_log.append(mem_name)
        return True

    # -- snapshot ----------------------------------------------------------

    def materialised(self) -> Tuple[Dict[str, int], Dict[str, Dict[int, int]]]:
        """Copies of everything sampled or assigned so far."""
        regs = dict(self.regs)
        mems = {name: dict(cells) for name, cells in self.mems.items()}
        return regs, mems

    def seed_from(
        self, regs: Dict[str, int], mems: Dict[str, Dict[int, int]]
    ) -> None:
        """Pre-materialise values from another valuation's snapshot.

        Used by the solver's warm restarts: the seeded entries replace the
        lazy samples that first reads would otherwise draw, so the search
        resumes near the best assignment seen so far.  Pinned class keys
        are skipped (their value is forced anyway); keys must already be
        class representatives, as produced by :meth:`materialised`.
        """
        for key, value in regs.items():
            if key in self.pins:
                continue
            dict.__setitem__(self.regs, key, value)
        for name, cells in mems.items():
            self.mems.setdefault(name, {}).update(cells)


_MISSING = object()


class _SamplingRegs(dict):
    """Register store that resolves names to class representatives and
    samples missing entries through the owning valuation.

    Reads are the single hottest operation of the repair search (every
    compiled-constraint evaluation goes through here), so name-to-class
    resolution is memoized locally and the value lookup uses one
    sentinel-probed ``dict.get`` instead of a contains/getitem pair.
    """

    __slots__ = ("_owner", "_keys")

    def __init__(self, owner: LazyValuation):
        super().__init__()
        self._owner = owner
        self._keys: Dict[str, str] = {}

    def __getitem__(self, name: str) -> int:
        key = self._keys.get(name)
        if key is None:
            key = self._owner.resolve(name)
            self._keys[name] = key
        value = dict.get(self, key, _MISSING)
        if value is _MISSING:
            value = self._owner._sample_register(key)
            dict.__setitem__(self, key, value)
        return value
