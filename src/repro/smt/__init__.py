"""A purpose-built model finder for relation constraints (the Z3 substitute).

The relations synthesized by this library — after the per-path-pair split of
§5.4 — are conjunctions of comparisons, (dis)equalities and guarded
implications over 64-bit registers and memory selects.  The
:class:`~repro.smt.solver.ModelFinder` solves this fragment with

* top-level propagation (variable-variable and variable-constant equalities),
* structure-aware inversion of terms (address arithmetic, bit-field
  extraction like cache set indexes), and
* stochastic sampling with targeted repair and restarts.

Its *completion policy* is deliberately biased: unconstrained values for the
two states of a test pair are drawn from a shared stream, so two generated
states agree everywhere the constraints do not force them apart.  This
mirrors how an SMT solver's default model assigns don't-cares identically
for both states — the very behaviour that makes unguided relational testing
ineffective and refinement valuable (§1, §6).  A small divergence
probability keeps unguided search from being *completely* blind, matching
the paper's observation that it still finds a handful of counterexamples.
"""

from repro.smt.naming import STATE_SEP, base_name, rename_for_state, state_of
from repro.smt.valuation import LazyValuation, SamplingPolicy
from repro.smt.solver import (
    Model,
    ModelFinder,
    PreparedConstraints,
    SolverConfig,
)

__all__ = [
    "STATE_SEP",
    "base_name",
    "rename_for_state",
    "state_of",
    "LazyValuation",
    "SamplingPolicy",
    "Model",
    "ModelFinder",
    "PreparedConstraints",
    "SolverConfig",
]
