"""Structure-aware repair: force an expression to a target value.

``try_set(expr, target, valuation, rng)`` mutates the valuation so that
``expr`` evaluates to ``target``, by inverting the term structure down to an
assignable atom (a register or a memory cell at a concrete address).  The
supported shapes cover everything the templates generate: address arithmetic
(``+``/``-``/``^``), bit-field extraction (``(x >> s) & m`` — cache set
indexes), shifts, boolean structure, and comparisons.

Returns True when the mutation succeeded, False when the shape is not
invertible (the caller then falls back to redrawing variables).
"""

from __future__ import annotations

from typing import Optional

from repro.bir import expr as E
from repro.bir import intern
from repro.bir.expr import evaluate
from repro.smt.compiled import compile_expr
from repro.smt.valuation import LazyValuation
from repro.utils import bitvec
from repro.utils.rng import SplittableRandom

WORD = 64


def _eval(expr: E.Expr, val: LazyValuation) -> int:
    """Evaluate a subterm during repair.

    Repair re-evaluates the same (hash-consed) subterms on every visit, so
    the memoized compiled closures beat the tree-walking interpreter by an
    order of magnitude; both read registers and memory cells in the same
    order, so the lazily-sampled valuation materialises identically either
    way.  Without interning the closure cache is disabled and per-call
    codegen would dominate, so fall back to the interpreter.
    """
    if intern.enabled():
        return compile_expr(expr)(val.regs, val.read_mem)
    return evaluate(expr, val)


def try_set(
    expr: E.Expr,
    target: int,
    val: LazyValuation,
    rng: SplittableRandom,
    depth: int = 0,
) -> bool:
    """Mutate ``val`` so that ``expr`` evaluates to ``target``."""
    if depth > 32:
        return False
    target = bitvec.truncate(target, expr.width)
    if isinstance(expr, E.Const):
        return expr.value == target
    if isinstance(expr, E.Var):
        return val.set_register(expr.name, target)
    if isinstance(expr, E.Load):
        return _set_load(expr, target, val, rng, depth)
    if isinstance(expr, E.UnOp):
        return _set_unop(expr, target, val, rng, depth)
    if isinstance(expr, E.BinOp):
        return _set_binop(expr, target, val, rng, depth)
    if isinstance(expr, E.Cmp):
        return _set_cmp(expr, bool(target), val, rng, depth)
    if isinstance(expr, E.Ite):
        return _set_ite(expr, target, val, rng, depth)
    return False


def _set_load(
    expr: E.Load, target: int, val: LazyValuation, rng, depth: int
) -> bool:
    if not isinstance(expr.mem, E.MemVar):
        # A select over a store chain: check whether the read resolves to the
        # base memory under the current assignment; if a store shadows it,
        # invert the stored value instead.
        addr = _eval(expr.addr, val)
        mem = expr.mem
        while isinstance(mem, E.MemStore):
            if _eval(mem.addr, val) == addr:
                return try_set(mem.value, target, val, rng, depth + 1)
            mem = mem.mem
        return val.set_cell(mem.name, addr, target)
    addr = _eval(expr.addr, val)
    return val.set_cell(expr.mem.name, addr, target)


def _set_unop(expr: E.UnOp, target: int, val, rng, depth: int) -> bool:
    if expr.op is E.UnOpKind.NOT:
        return try_set(expr.operand, bitvec.bv_not(target, expr.width), val, rng, depth + 1)
    if expr.op is E.UnOpKind.NEG:
        return try_set(expr.operand, bitvec.bv_sub(0, target, expr.width), val, rng, depth + 1)
    return False


def _set_binop(expr: E.BinOp, target: int, val, rng, depth: int) -> bool:
    width = expr.width
    op = expr.op
    if width == 1 and op in (E.BinOpKind.AND, E.BinOpKind.OR):
        return _set_bool_connective(expr, bool(target), val, rng, depth)
    lhs, rhs = expr.lhs, expr.rhs
    if lhs == rhs:
        return _set_binop_aliased(op, lhs, target, val, rng, depth)
    lv = _eval(lhs, val)
    rv = _eval(rhs, val)

    def attempts():
        if op is E.BinOpKind.ADD:
            yield lhs, bitvec.bv_sub(target, rv, width)
            yield rhs, bitvec.bv_sub(target, lv, width)
        elif op is E.BinOpKind.SUB:
            yield lhs, bitvec.bv_add(target, rv, width)
            yield rhs, bitvec.bv_sub(lv, target, width)
        elif op is E.BinOpKind.XOR:
            yield lhs, bitvec.bv_xor(target, rv, width)
            yield rhs, bitvec.bv_xor(target, lv, width)
        elif op is E.BinOpKind.AND:
            # x & m == target requires target within m; keep x's other bits.
            # Keeping them is what lets a masked variable also satisfy its
            # arithmetic siblings, but it is also a repair-cycle trap: when
            # a sum constraint keeps re-dirtying the masked bits, the kept
            # bits never change and the cycle is inescapable.  Exploration
            # mode therefore also offers a redraw of the kept bits (the
            # "random value move" of propagation-based local search).
            if target & bitvec.bv_not(rv, width) == 0:
                keep = lv
                if val.explore:
                    keep = bitvec.truncate(val.policy.fresh_value(), width)
                yield lhs, (keep & bitvec.bv_not(rv, width)) | target
            if target & bitvec.bv_not(lv, width) == 0:
                keep = rv
                if val.explore:
                    keep = bitvec.truncate(val.policy.fresh_value(), width)
                yield rhs, (keep & bitvec.bv_not(lv, width)) | target
        elif op is E.BinOpKind.OR:
            # x | m == target requires m within target.
            if rv & bitvec.bv_not(target, width) == 0:
                yield lhs, target
            if lv & bitvec.bv_not(target, width) == 0:
                yield rhs, target
        elif op is E.BinOpKind.SHL:
            if isinstance(rhs, E.Const) and rhs.value < width:
                s = rhs.value
                if s == 0 or bitvec.truncate(target, s) == 0:
                    keep = (lv & ~bitvec.mask(width - s)) if s else 0
                    yield lhs, (target >> s) | keep
        elif op is E.BinOpKind.LSHR:
            if isinstance(rhs, E.Const) and rhs.value < width:
                s = rhs.value
                if target < (1 << (width - s)):
                    low = lv & bitvec.mask(s) if s else 0
                    yield lhs, (target << s) | low
        # MUL/ASHR: not needed by the templates; fall through to failure.

    # Deterministic order per restart: both states of a relational formula
    # repair their isomorphic constraints identically, so the pair stays
    # aligned wherever the constraints do not force it apart.  The
    # valuation's orientation bit reverses the preference across restarts;
    # exploration mode randomizes it to crack repair cycles.
    order = list(attempts())
    if val.explore:
        rng.shuffle(order)
    elif val.orientation:
        order.reverse()
    for side, value in order:
        if try_set(side, value, val, rng, depth + 1):
            return True
    return False


def _set_binop_aliased(
    op: E.BinOpKind, operand: E.Expr, target: int, val, rng, depth: int
) -> bool:
    """Solve ``x <op> x == target`` for a single shared operand term.

    Inverting one side against the other's *current* value oscillates when
    both sides are the same term, so these need dedicated algebra.
    """
    width = operand.width
    if op is E.BinOpKind.ADD:
        # x + x == target: solvable iff target is even; two roots.
        if target & 1:
            return False
        half = target >> 1
        top = 1 << (width - 1)
        return try_set(operand, half, val, rng, depth + 1) or try_set(
            operand, half | top, val, rng, depth + 1
        )
    if op in (E.BinOpKind.SUB, E.BinOpKind.XOR):
        # x - x == 0 and x ^ x == 0 for every x.
        return target == 0
    if op in (E.BinOpKind.AND, E.BinOpKind.OR):
        return try_set(operand, target, val, rng, depth + 1)
    return False


def _set_bool_connective(expr: E.BinOp, target: bool, val, rng, depth: int) -> bool:
    is_and = expr.op is E.BinOpKind.AND
    sides = [expr.lhs, expr.rhs]
    if (is_and and target) or (not is_and and not target):
        # Both sides must equal `target`.
        ok = True
        for side in sides:
            if _eval(side, val) != int(target):
                ok = try_set(side, int(target), val, rng, depth + 1) and ok
        return ok
    # One side suffices.
    for side in sides:
        if try_set(side, int(target), val, rng, depth + 1):
            return True
    return False


def _set_cmp(expr: E.Cmp, target: bool, val, rng, depth: int) -> bool:
    op = expr.op
    if (op is E.CmpKind.EQ and not target) or (op is E.CmpKind.NE and target):
        return _set_unequal(expr.lhs, expr.rhs, val, rng, depth)
    if (op is E.CmpKind.EQ and target) or (op is E.CmpKind.NE and not target):
        return _set_equal(expr.lhs, expr.rhs, val, rng, depth)
    # Order comparisons: reduce everything to "lhs <= rhs" with strictness
    # and signedness flags, honouring negation via `target`.
    strict = op in (E.CmpKind.ULT, E.CmpKind.SLT)
    signed = op in (E.CmpKind.SLT, E.CmpKind.SLE)
    if target:
        return _set_ordered(expr.lhs, expr.rhs, strict, signed, val, rng, depth)
    # not (a < b)  <=>  b <= a ; not (a <= b)  <=>  b < a
    return _set_ordered(expr.rhs, expr.lhs, not strict, signed, val, rng, depth)


def _set_equal(lhs: E.Expr, rhs: E.Expr, val, rng, depth: int) -> bool:
    lv = _eval(lhs, val)
    rv = _eval(rhs, val)
    if lv == rv:
        return True
    # Deterministic per restart: copy one side into the other, the side
    # chosen by the restart's orientation (random in exploration mode).
    flip = rng.chance(0.5) if val.explore else val.orientation
    if flip:
        return try_set(rhs, lv, val, rng, depth + 1) or try_set(
            lhs, rv, val, rng, depth + 1
        )
    return try_set(lhs, rv, val, rng, depth + 1) or try_set(
        rhs, lv, val, rng, depth + 1
    )


def _set_unequal(lhs: E.Expr, rhs: E.Expr, val, rng, depth: int) -> bool:
    width = lhs.width
    lv = _eval(lhs, val)
    rv = _eval(rhs, val)
    if lv != rv:
        return True
    # Forced difference is the one place randomness belongs: refinement
    # demands the states diverge here, so a fresh draw goes into one side.
    fresh = bitvec.truncate(val.policy.fresh_value(), width)
    if fresh == rv:
        fresh = bitvec.bv_add(rv, 1, width)
    bumped = bitvec.bv_add(rv, max(1, val.policy.alignment) if width > 3 else 1, width)
    if rng.chance(0.5):
        return try_set(lhs, fresh, val, rng, depth + 1) or try_set(
            rhs, bumped, val, rng, depth + 1
        )
    return try_set(rhs, fresh, val, rng, depth + 1) or try_set(
        lhs, bumped, val, rng, depth + 1
    )


def _set_ordered(
    lo: E.Expr, hi: E.Expr, strict: bool, signed: bool, val, rng, depth: int
) -> bool:
    """Make ``lo < hi`` (strict) or ``lo <= hi`` hold."""
    width = lo.width
    lo_v = _eval(lo, val)
    hi_v = _eval(hi, val)

    def as_key(v: int) -> int:
        return bitvec.to_signed(v, width) if signed else v

    def holds(a: int, b: int) -> bool:
        return as_key(a) < as_key(b) or (not strict and as_key(a) == as_key(b))

    if holds(lo_v, hi_v):
        return True
    # Prefer the twin state's witness: when the other state already repaired
    # the isomorphic predicate, landing on the same values keeps the pair
    # aligned, as an SMT solver would (see LazyValuation.twin_register).
    # Exploration mode skips the shortcut: it is deterministic, so a repair
    # cycle through the twin value (ule pulls a variable onto its twin, a
    # sibling constraint pushes it off again) would defeat the randomized
    # choices exploration exists to make.
    twin_sides = () if val.explore else ((lo, hi_v, True), (hi, lo_v, False))
    for side, other_value, check in twin_sides:
        twin = _twin_target(side, val)
        if twin is None:
            continue
        satisfied = holds(twin, other_value) if check else holds(other_value, twin)
        if satisfied and try_set(side, twin, val, rng, depth + 1):
            return True
    min_key = -(1 << (width - 1)) if signed else 0
    max_key = (1 << (width - 1)) - 1 if signed else bitvec.mask(width)
    offset = 1 if strict else 0
    # Deterministic minimal-change targets (boundary witnesses, the way an
    # SMT solver's arithmetic decisions land): lower `lo` to just below hi,
    # else raise `hi` to just above lo.  Exploration mode samples random
    # in-range targets and a random side order instead.
    choices = []
    if as_key(hi_v) - offset >= min_key:
        lo_target = (
            rng.randint(min_key, as_key(hi_v) - offset)
            if val.explore
            else as_key(hi_v) - offset
        )
        choices.append((lo, bitvec.to_unsigned(lo_target, width)))
    if as_key(lo_v) + offset <= max_key:
        hi_target = (
            rng.randint(as_key(lo_v) + offset, max_key)
            if val.explore
            else as_key(lo_v) + offset
        )
        choices.append((hi, bitvec.to_unsigned(hi_target, width)))
    if val.explore:
        rng.shuffle(choices)
    elif val.orientation:
        choices.reverse()
    for side, value in choices:
        if try_set(side, value, val, rng, depth + 1):
            return True
    return False


def _twin_target(expr: E.Expr, val: LazyValuation) -> Optional[int]:
    """The other state's value for a plain variable operand, if any."""
    if isinstance(expr, E.Var):
        return val.twin_register(expr.name)
    return None


def _set_ite(expr: E.Ite, target: int, val, rng, depth: int) -> bool:
    if _eval(expr.cond, val):
        arm = expr.then
    else:
        arm = expr.orelse
    if try_set(arm, target, val, rng, depth + 1):
        return True
    # Steer the condition to the other arm if that arm already matches.
    other = expr.orelse if arm is expr.then else expr.then
    if _eval(other, val) == bitvec.truncate(target, expr.width):
        flip = 0 if _eval(expr.cond, val) else 1
        return try_set(expr.cond, flip, val, rng, depth + 1)
    return False
