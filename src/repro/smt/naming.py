"""Naming convention for two-state (relational) constraints.

A relational formula talks about two copies of the program state.  Copy
``i`` of variable ``x0`` is named ``x0#i``; copy ``i`` of memory ``MEM`` is
``MEM#i``.  The model finder's completion policy uses :func:`base_name` to
pair the copies so unconstrained values agree across the pair.
"""

from __future__ import annotations

from typing import Optional, Tuple

STATE_SEP = "#"


def rename_for_state(name: str, state_index: int) -> str:
    """Name of copy ``state_index`` (1 or 2) of ``name``."""
    return f"{name}{STATE_SEP}{state_index}"


def base_name(name: str) -> str:
    """Strip the state suffix: ``x0#2`` -> ``x0``; plain names pass through."""
    sep = name.rfind(STATE_SEP)
    if sep == -1:
        return name
    return name[:sep]


def state_of(name: str) -> Optional[int]:
    """The state index of a renamed name, or None for plain names."""
    sep = name.rfind(STATE_SEP)
    if sep == -1:
        return None
    suffix = name[sep + 1 :]
    return int(suffix) if suffix.isdigit() else None


def split(name: str) -> Tuple[str, Optional[int]]:
    """``(base, state_index)`` of a possibly-renamed name."""
    return base_name(name), state_of(name)
