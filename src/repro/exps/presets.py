"""Campaign presets reproducing the paper's experiment settings (§6).

Each function returns a :class:`~repro.pipeline.config.CampaignConfig` for
one column of Table 1 or the Fig. 7 table, scaled by ``num_programs`` /
``tests_per_program`` (the paper uses hundreds of programs and ~40 tests
per program; the benchmarks run a scaled-down version with the same
structure).

Calibrated modelling knobs (documented in DESIGN.md):

* ``divergence`` — the completion-policy probability that an unconstrained
  value differs between the two states.  Mpart campaigns use a higher value
  (Scam-V's word generators randomise the stride base per test); Mct
  campaigns use a small value (don't-cares from the SMT solver are almost
  always identical across the pair).
* ``noise_rate`` — per-measured-run probability of a perturbed cache
  snapshot, reproducing the paper's inconclusive rates (~26% for the
  prefetcher-heavy Mpart runs, ~2% for the speculation runs).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.coverage import MagnitudeCoverage, MlineCoverage, NoCoverage
from repro.core.testgen import TestGenConfig
from repro.gen.templates import (
    MulTemplate,
    StrideTemplate,
    TemplateA,
    TemplateB,
    TemplateC,
    TemplateD,
    TemplateGenerator,
)
from repro.hw.core import CoreConfig
from repro.hw.platform import Channel, PlatformConfig
from repro.obs.base import AttackerRegion
from repro.obs.channels import MpageRefinedModel, MtimeRefinedModel
from repro.obs.models import (
    MctModel,
    MlineModel,
    MpartModel,
    MpartRefinedModel,
    MpcModel,
    MspecModel,
    MspecOneLoadModel,
    MspecStraightLineModel,
)
from repro.pipeline.config import CampaignConfig
from repro.smt.solver import SolverConfig

# §6.2: the data cache has 128 sets; the unaligned attacker region covers
# the highest 67 set indexes, the page-aligned one the highest 64.
REGION_UNALIGNED = AttackerRegion(61, 127)
REGION_PAGE_ALIGNED = AttackerRegion(64, 127)
ATTACKER_SETS_UNALIGNED: Tuple[int, ...] = tuple(range(61, 128))
ATTACKER_SETS_PAGE_ALIGNED: Tuple[int, ...] = tuple(range(64, 128))

MPART_DIVERGENCE = 0.02
MCT_DIVERGENCE = 0.004
MPART_NOISE = 0.015
MCT_NOISE = 0.001


def _testgen(divergence: float) -> TestGenConfig:
    return TestGenConfig(solver=SolverConfig(divergence=divergence))


def mpart_campaign(
    refined: bool,
    page_aligned: bool = False,
    num_programs: int = 30,
    tests_per_program: int = 40,
    seed: int = 0,
    noise_rate: float = MPART_NOISE,
    core: Optional[CoreConfig] = None,
) -> CampaignConfig:
    """Table 1, Mpart columns: cache partitioning vs. prefetching (§6.2)."""
    region = REGION_PAGE_ALIGNED if page_aligned else REGION_UNALIGNED
    attacker = (
        ATTACKER_SETS_PAGE_ALIGNED if page_aligned else ATTACKER_SETS_UNALIGNED
    )
    model = MpartRefinedModel(region) if refined else MpartModel(region)
    coverage = MlineCoverage(region) if refined else NoCoverage()
    suffix = " page-aligned" if page_aligned else ""
    name = f"Mpart{suffix} / {'Mpart-ref' if refined else 'no-ref'}"
    return CampaignConfig(
        name=name,
        template=StrideTemplate(),
        model=model,
        coverage=coverage,
        num_programs=num_programs,
        tests_per_program=tests_per_program,
        testgen=_testgen(MPART_DIVERGENCE),
        platform=PlatformConfig(
            core=core or CoreConfig(),
            attacker_sets=attacker,
            noise_rate=noise_rate,
        ),
        seed=seed,
    )


def _template(kind: str) -> TemplateGenerator:
    return {
        "A": TemplateA(),
        "B": TemplateB(),
        "C": TemplateC(),
        "D": TemplateD(),
    }[kind]


def mct_campaign(
    template: str,
    refined: bool,
    num_programs: int = 30,
    tests_per_program: int = 40,
    seed: int = 0,
    noise_rate: float = MCT_NOISE,
    core: Optional[CoreConfig] = None,
) -> CampaignConfig:
    """Table 1 Mct columns (Templates A/B) and Fig. 7 Mct/Template C."""
    model = MspecModel() if refined else MctModel()
    name = f"Mct T{template} / {'Mspec' if refined else 'no-ref'}"
    return CampaignConfig(
        name=name,
        template=_template(template),
        model=model,
        num_programs=num_programs,
        tests_per_program=tests_per_program,
        testgen=_testgen(MCT_DIVERGENCE),
        platform=PlatformConfig(
            core=core or CoreConfig(), noise_rate=noise_rate
        ),
        seed=seed,
    )


def mspec1_campaign(
    template: str,
    num_programs: int = 30,
    tests_per_program: int = 40,
    seed: int = 0,
    noise_rate: float = MCT_NOISE,
    core: Optional[CoreConfig] = None,
) -> CampaignConfig:
    """Fig. 7 Mspec1 columns: validate Mspec1 with Mspec refinement (§6.5)."""
    return CampaignConfig(
        name=f"Mspec1 T{template} / Mspec",
        template=_template(template),
        model=MspecOneLoadModel(),
        num_programs=num_programs,
        tests_per_program=tests_per_program,
        testgen=_testgen(MCT_DIVERGENCE),
        platform=PlatformConfig(
            core=core or CoreConfig(), noise_rate=noise_rate
        ),
        seed=seed,
    )


def straightline_campaign(
    num_programs: int = 30,
    tests_per_program: int = 40,
    seed: int = 0,
    core: Optional[CoreConfig] = None,
) -> CampaignConfig:
    """Fig. 7 last column: Mct with Mspec' on Template D (§6.5)."""
    return CampaignConfig(
        name="Mct TD / Mspec'",
        template=TemplateD(),
        model=MspecStraightLineModel(),
        num_programs=num_programs,
        tests_per_program=tests_per_program,
        testgen=_testgen(MCT_DIVERGENCE),
        platform=PlatformConfig(core=core or CoreConfig(), noise_rate=0.0),
        seed=seed,
    )


def tlb_campaign(
    refined: bool,
    num_programs: int = 20,
    tests_per_program: int = 20,
    seed: int = 0,
    core: Optional[CoreConfig] = None,
) -> CampaignConfig:
    """New-channel extension (§2.3): a set-index-only model vs. the TLB.

    Validates Mline — "the attacker resolves cache set indexes" — against
    the TLB channel.  The model is unsound: two states touching the same
    sets in different pages leave different TLB states.  The refinement
    observes page numbers (:class:`~repro.obs.channels.MpageRefinedModel`).
    """
    region = REGION_UNALIGNED
    model = MpageRefinedModel(region) if refined else MlineModel(region)
    name = f"Mline/TLB / {'Mpage' if refined else 'no-ref'}"
    return CampaignConfig(
        name=name,
        template=StrideTemplate(),
        model=model,
        num_programs=num_programs,
        tests_per_program=tests_per_program,
        testgen=_testgen(MCT_DIVERGENCE),
        platform=PlatformConfig(
            core=core or CoreConfig(), channel=Channel.TLB
        ),
        seed=seed,
    )


def timing_campaign(
    refined: bool,
    num_programs: int = 20,
    tests_per_program: int = 20,
    seed: int = 0,
    core: Optional[CoreConfig] = None,
) -> CampaignConfig:
    """New-channel extension (§2.3, §3 example): pc-security model vs. the
    cycle-count channel on a core with an early-termination multiplier.

    Validates Mpc — "execution time depends only on control flow" — against
    the TIME channel.  The refinement observes multiplier operands
    (:class:`~repro.obs.channels.MtimeRefinedModel`) with the §3
    magnitude-class coverage.
    """
    model = MtimeRefinedModel() if refined else MpcModel()
    coverage = MagnitudeCoverage() if refined else NoCoverage()
    name = f"Mpc/time / {'Mtime' if refined else 'no-ref'}"
    return CampaignConfig(
        name=name,
        template=MulTemplate(),
        model=model,
        coverage=coverage,
        num_programs=num_programs,
        tests_per_program=tests_per_program,
        testgen=_testgen(MCT_DIVERGENCE),
        platform=PlatformConfig(
            core=core or CoreConfig(), channel=Channel.TIME
        ),
        seed=seed,
    )
