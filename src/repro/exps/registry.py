"""The experiment registry: names -> campaign preset factories.

One shared mapping backs every way of naming an experiment — the CLI's
``--experiment`` choices, the scenario spec format's ``experiment`` key
(:mod:`repro.service.spec`), and the table commands' column lists — so a
name means exactly the same campaign everywhere.  Each factory takes the
``refined`` flag plus the preset keyword arguments (``num_programs``,
``tests_per_program``, ``seed``, ``core``); presets without a refinement
variant ignore ``refined``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exps.presets import (
    mct_campaign,
    mpart_campaign,
    mspec1_campaign,
    straightline_campaign,
    timing_campaign,
    tlb_campaign,
)
from repro.pipeline.config import CampaignConfig

#: ``name -> factory(refined, **kwargs) -> CampaignConfig``.
EXPERIMENTS: Dict[str, Callable[..., CampaignConfig]] = {
    "mpart": lambda refined, **kw: mpart_campaign(refined=refined, **kw),
    "mpart-aligned": lambda refined, **kw: mpart_campaign(
        refined=refined, page_aligned=True, **kw
    ),
    "mct-a": lambda refined, **kw: mct_campaign("A", refined=refined, **kw),
    "mct-b": lambda refined, **kw: mct_campaign("B", refined=refined, **kw),
    "mct-c": lambda refined, **kw: mct_campaign("C", refined=refined, **kw),
    "mspec1-b": lambda refined, **kw: mspec1_campaign("B", **kw),
    "mspec1-c": lambda refined, **kw: mspec1_campaign("C", **kw),
    "straightline": lambda refined, **kw: straightline_campaign(**kw),
    "tlb": lambda refined, **kw: tlb_campaign(refined=refined, **kw),
    "timing": lambda refined, **kw: timing_campaign(refined=refined, **kw),
}


def experiment_names() -> List[str]:
    """Registered experiment names, sorted for stable enumeration."""
    return sorted(EXPERIMENTS)


def build_experiment(
    name: str,
    refined: bool = False,
    **kwargs,
) -> CampaignConfig:
    """Instantiate a named experiment's :class:`CampaignConfig`.

    Raises :class:`ValueError` naming the known experiments for an unknown
    ``name`` (the CLI layer converts argparse choices earlier; the spec
    loader relies on this diagnostic).
    """
    try:
        factory = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(experiment_names())
        raise ValueError(
            f"unknown experiment {name!r} (known: {known})"
        ) from None
    return factory(refined, **kwargs)
