"""Preset campaign configurations for every table column in the paper,
plus the new-channel extension campaigns (TLB, timing)."""

from repro.exps.presets import (
    ATTACKER_SETS_PAGE_ALIGNED,
    ATTACKER_SETS_UNALIGNED,
    REGION_PAGE_ALIGNED,
    REGION_UNALIGNED,
    mct_campaign,
    mpart_campaign,
    mspec1_campaign,
    straightline_campaign,
    timing_campaign,
    tlb_campaign,
)
from repro.exps.registry import (
    EXPERIMENTS,
    build_experiment,
    experiment_names,
)

__all__ = [
    "ATTACKER_SETS_PAGE_ALIGNED",
    "ATTACKER_SETS_UNALIGNED",
    "EXPERIMENTS",
    "REGION_PAGE_ALIGNED",
    "REGION_UNALIGNED",
    "build_experiment",
    "experiment_names",
    "mct_campaign",
    "mpart_campaign",
    "mspec1_campaign",
    "straightline_campaign",
    "timing_campaign",
    "tlb_campaign",
]
