"""The Scam-V campaign driver (Fig. 1 / Fig. 8).

A *campaign* runs the full pipeline for a number of generated programs and a
number of test cases per program: template generation, observation
augmentation, (cached) symbolic execution, relation synthesis, test-case
instantiation, and experiment execution on the simulated platform — with
the metrics the paper's tables report (counterexamples, inconclusive
experiments, generation/execution times, time-to-first-counterexample).
"""

from repro.pipeline.config import CampaignConfig
from repro.pipeline.metrics import CampaignStats, format_table
from repro.pipeline.database import ExperimentDatabase
from repro.pipeline.result import CampaignResult, ExperimentRecord
from repro.pipeline.driver import ScamV
from repro.pipeline.analysis import (
    CertificationReport,
    CounterexampleAnalysis,
    certify_campaign,
    diff_states,
)

__all__ = [
    "CampaignConfig",
    "CampaignStats",
    "format_table",
    "ExperimentDatabase",
    "CampaignResult",
    "ExperimentRecord",
    "ScamV",
    "CertificationReport",
    "CounterexampleAnalysis",
    "certify_campaign",
    "diff_states",
]
