"""Post-campaign analysis: certification and counterexample breakdowns.

The paper analyses its counterexamples by hand to understand *why* a model
failed (§6.3-§6.4: which register-allocation subclass leaked, what the
transient accesses were).  This module automates the first steps:

* :func:`certify_campaign` — re-checks every counterexample against the
  model semantics (Definition 1 on concrete states): a *certified*
  counterexample is genuinely observationally equivalent under the model
  under validation, so the distinguishability really falsifies soundness
  and is not a solver artefact.
* :class:`CounterexampleAnalysis` — aggregates counterexamples by program
  and template parameters and diffs the two states, reporting which
  registers and memory cells differ (the paper's "these 6 counterexamples
  cover only a specific subclass" style of observation).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.probes import add_address_probes
from repro.hw.platform import StateInputs
from repro.isa.lifter import lift
from repro.isa.program import AsmProgram
from repro.hw.platform import ExperimentOutcome
from repro.obs.base import ObservationModel
from repro.pipeline.result import CampaignResult
from repro.symbolic.concrete import certify_equivalence


@dataclass
class CertificationReport:
    """How many counterexamples survive independent re-checking."""

    total: int = 0
    certified: int = 0
    uncertified: List[str] = field(default_factory=list)

    @property
    def all_certified(self) -> bool:
        return self.total == self.certified

    def describe(self) -> str:
        if self.total == 0:
            return "no counterexamples to certify"
        status = "all certified" if self.all_certified else (
            f"{len(self.uncertified)} NOT certified: "
            + ", ".join(sorted(set(self.uncertified))[:5])
        )
        return f"{self.certified}/{self.total} counterexamples certified ({status})"


def certify_campaign(
    result: CampaignResult, model: ObservationModel
) -> CertificationReport:
    """Re-check every counterexample of a campaign against the model.

    Re-runs the model's augmentation and a concrete execution per state;
    the two BASE observation traces must agree (the states are equivalent
    in the model under validation, Definition 1).
    """
    report = CertificationReport()
    augmented_cache: Dict[str, object] = {}
    for record in result.counterexamples():
        report.total += 1
        program = record.test.program
        augmented = augmented_cache.get(program.name)
        if augmented is None:
            augmented = add_address_probes(model.augment(lift(program)))
            augmented_cache[program.name] = augmented
        if certify_equivalence(augmented, record.test.state1, record.test.state2):
            report.certified += 1
        else:
            report.uncertified.append(record.program_name)
    return report


@dataclass(frozen=True)
class StateDiff:
    """What differs between the two states of one counterexample."""

    registers: Tuple[str, ...]
    memory_cells: Tuple[int, ...]


def diff_states(state1: StateInputs, state2: StateInputs) -> StateDiff:
    """Registers and memory cells on which the two states disagree."""
    reg_names = set(state1.regs) | set(state2.regs)
    regs = tuple(
        sorted(
            name
            for name in reg_names
            if state1.regs.get(name, 0) != state2.regs.get(name, 0)
        )
    )
    addresses = set(state1.memory) | set(state2.memory)
    cells = tuple(
        sorted(
            addr
            for addr in addresses
            if state1.memory.get(addr, 0) != state2.memory.get(addr, 0)
        )
    )
    return StateDiff(registers=regs, memory_cells=cells)


@dataclass
class CounterexampleAnalysis:
    """Aggregate view over a campaign's counterexamples."""

    by_program: Counter = field(default_factory=Counter)
    by_template: Counter = field(default_factory=Counter)
    differing_registers: Counter = field(default_factory=Counter)
    memory_only: int = 0
    total: int = 0
    inconclusive: int = 0

    @classmethod
    def of(cls, result: CampaignResult) -> "CounterexampleAnalysis":
        analysis = cls()
        analysis.inconclusive = len(result.inconclusive())
        grouped = result.by_template(ExperimentOutcome.COUNTEREXAMPLE)
        for template, records in grouped.items():
            analysis.by_template[template] = len(records)
        for record in result.counterexamples():
            analysis.total += 1
            analysis.by_program[record.program_name] += 1
            diff = diff_states(record.test.state1, record.test.state2)
            for name in diff.registers:
                analysis.differing_registers[name] += 1
            if not diff.registers and diff.memory_cells:
                analysis.memory_only += 1
        return analysis

    def describe(self) -> str:
        if self.total == 0:
            return "no counterexamples"
        lines = [f"{self.total} counterexamples"]
        lines.append(
            "  programs: "
            + ", ".join(
                f"{name} x{count}"
                for name, count in self.by_program.most_common(5)
            )
        )
        top_regs = self.differing_registers.most_common(5)
        if top_regs:
            lines.append(
                "  most-often-differing registers: "
                + ", ".join(f"{name} ({count})" for name, count in top_regs)
            )
        if self.memory_only:
            lines.append(
                f"  {self.memory_only} differ only in memory contents "
                "(the SiSCLoak mem[x0] pattern, §6.3)"
            )
        if self.inconclusive:
            lines.append(
                f"  {self.inconclusive} experiments were inconclusive "
                "(excluded from analysis)"
            )
        return "\n".join(lines)
