"""Campaign results: per-experiment records and their aggregate.

Lives apart from the driver so both execution paths — the sequential
:class:`~repro.pipeline.driver.ScamV` loop and the parallel runner's shard
workers (:mod:`repro.runner.worker`) — can build the same record types
without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.testgen import TestCase
from repro.hw.platform import ExperimentOutcome
from repro.pipeline.metrics import CampaignStats


@dataclass
class ExperimentRecord:
    """One executed experiment, for post-hoc analysis."""

    program_name: str
    template: str
    outcome: ExperimentOutcome
    test: TestCase
    gen_time: float
    exe_time: float
    # Index of the generated program within its campaign (program names are
    # template-derived and may repeat; the index is the unique key the
    # parallel runner uses to re-associate records with program rows).
    program_index: int = -1


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    stats: CampaignStats
    records: List[ExperimentRecord] = field(default_factory=list)
    # Out-of-band telemetry merged from the shards that produced this
    # result (see repro.telemetry.collect): finished span records, and an
    # additive metrics snapshot holding only what *other* processes
    # recorded (inline shards leave their metrics in this process's live
    # registry — combine with ``repro.telemetry.metrics.snapshot()`` for
    # the full picture, as the CLI does).  Both stay empty unless
    # telemetry was enabled; neither participates in deterministic
    # counters.
    spans: List = field(default_factory=list)
    metrics: Dict[str, Dict] = field(default_factory=dict)

    def counterexamples(self) -> List[ExperimentRecord]:
        return [
            r
            for r in self.records
            if r.outcome is ExperimentOutcome.COUNTEREXAMPLE
        ]

    def inconclusive(self) -> List[ExperimentRecord]:
        return [
            r
            for r in self.records
            if r.outcome is ExperimentOutcome.INCONCLUSIVE
        ]

    def by_template(
        self, outcome: Optional[ExperimentOutcome] = None
    ) -> Dict[str, List[ExperimentRecord]]:
        """Records grouped by template name, optionally outcome-filtered."""
        grouped: Dict[str, List[ExperimentRecord]] = {}
        for record in self.records:
            if outcome is not None and record.outcome is not outcome:
                continue
            grouped.setdefault(record.template, []).append(record)
        return grouped
