"""Campaign results: per-experiment records and their aggregate.

Lives apart from the driver so both execution paths — the sequential
:class:`~repro.pipeline.driver.ScamV` loop and the parallel runner's shard
workers (:mod:`repro.runner.worker`) — can build the same record types
without an import cycle.

:class:`ExperimentRecord` round-trips losslessly through JSON
(:meth:`ExperimentRecord.to_json` / :meth:`ExperimentRecord.from_json`):
the triage witness corpus and the checkpoint journal both rely on that
to persist experiments as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.testgen import TestCase
from repro.hw.platform import ExperimentOutcome, StateInputs
from repro.isa.assembler import assemble, disassemble
from repro.isa.program import AsmProgram
from repro.pipeline.metrics import CampaignStats


def state_to_json(state: Optional[StateInputs]) -> Optional[Dict]:
    """A JSON-safe dump of one input state (None passes through)."""
    if state is None:
        return None
    return {
        "regs": dict(state.regs),
        "memory": {str(addr): value for addr, value in state.memory.items()},
    }


def state_from_json(payload: Optional[Dict]) -> Optional[StateInputs]:
    """Inverse of :func:`state_to_json`."""
    if payload is None:
        return None
    return StateInputs(
        regs=dict(payload["regs"]),
        memory={int(addr): value for addr, value in payload["memory"].items()},
    )


@dataclass
class ExperimentRecord:
    """One executed experiment, for post-hoc analysis."""

    program_name: str
    template: str
    outcome: ExperimentOutcome
    test: TestCase
    gen_time: float
    exe_time: float
    # Index of the generated program within its campaign (program names are
    # template-derived and may repeat; the index is the unique key the
    # parallel runner uses to re-associate records with program rows).
    program_index: int = -1

    def to_json(self) -> Dict:
        """A lossless JSON document for this record.

        The program is stored as disassembled text (the assembler
        round-trips it), the states via :func:`state_to_json`.
        """
        test = self.test
        return {
            "program_name": self.program_name,
            "template": self.template,
            "outcome": self.outcome.value,
            "gen_time": self.gen_time,
            "exe_time": self.exe_time,
            "program_index": self.program_index,
            "test": {
                "program": disassemble(test.program),
                "pair": list(test.pair),
                "refined": test.refined,
                "state1": state_to_json(test.state1),
                "state2": state_to_json(test.state2),
                "train": state_to_json(test.train),
            },
        }

    @classmethod
    def from_json(
        cls, doc: Dict, program: Optional[AsmProgram] = None
    ) -> "ExperimentRecord":
        """Rebuild a record from :meth:`to_json` output.

        ``program`` short-circuits reassembly when the caller already
        holds the program instance (the checkpoint journal shares one per
        generated program across its records).
        """
        test_doc = doc["test"]
        if program is None:
            program = assemble(
                test_doc["program"], name=doc["program_name"]
            )
        test = TestCase(
            program=program,
            state1=state_from_json(test_doc["state1"]),
            state2=state_from_json(test_doc["state2"]),
            train=state_from_json(test_doc["train"]),
            pair=tuple(test_doc["pair"]),
            refined=test_doc["refined"],
        )
        return cls(
            program_name=doc["program_name"],
            template=doc["template"],
            outcome=ExperimentOutcome(doc["outcome"]),
            test=test,
            gen_time=doc["gen_time"],
            exe_time=doc["exe_time"],
            program_index=doc["program_index"],
        )


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    stats: CampaignStats
    records: List[ExperimentRecord] = field(default_factory=list)
    # Out-of-band telemetry merged from the shards that produced this
    # result (see repro.telemetry.collect): finished span records, and an
    # additive metrics snapshot holding only what *other* processes
    # recorded (inline shards leave their metrics in this process's live
    # registry — combine with ``repro.telemetry.metrics.snapshot()`` for
    # the full picture, as the CLI does).  Both stay empty unless
    # telemetry was enabled; neither participates in deterministic
    # counters.
    spans: List = field(default_factory=list)
    metrics: Dict[str, Dict] = field(default_factory=dict)
    # Triaged witnesses (repro.triage.corpus.Witness), in shard order.
    # Empty unless the campaign ran with ``CampaignConfig.triage``.
    witnesses: List = field(default_factory=list)
    # JSON form of the merged coverage ledger
    # (repro.monitor.ledger.CoverageLedger.to_json): which supporting-model
    # partitions the campaign exercised, with enough sample-order data to
    # run the convergence estimator.  None when ``CampaignConfig.monitor``
    # is off; never part of deterministic counters.
    ledger: Optional[Dict] = None
    # Merged solver-profile aggregate (repro.telemetry.solver doc): per
    # coverage class query tallies, restart histograms and the top-K
    # slowest queries.  None unless the telemetry layer was enabled for
    # the run; never part of deterministic counters.
    solver: Optional[Dict] = None

    def coverage(self) -> Optional[Dict[str, "object"]]:
        """Per-model coverage analyses of the merged ledger, or None.

        Returns ``{model: repro.monitor.ledger.ModelCoverage}`` — the same
        summaries the monitor and the HTML dashboard render.
        """
        if self.ledger is None:
            return None
        from repro.monitor.ledger import CoverageLedger

        return CoverageLedger.from_json(self.ledger).convergence()

    def counterexamples(self) -> List[ExperimentRecord]:
        """Counterexample records, ordered by program index.

        The sort is stable, so records of one program keep their
        generation order; the overall ordering is deterministic however
        shards were merged.
        """
        return sorted(
            (
                r
                for r in self.records
                if r.outcome is ExperimentOutcome.COUNTEREXAMPLE
            ),
            key=lambda r: r.program_index,
        )

    def inconclusive(self) -> List[ExperimentRecord]:
        return [
            r
            for r in self.records
            if r.outcome is ExperimentOutcome.INCONCLUSIVE
        ]

    def by_template(
        self, outcome: Optional[ExperimentOutcome] = None
    ) -> Dict[str, List[ExperimentRecord]]:
        """Records grouped by template name, optionally outcome-filtered."""
        grouped: Dict[str, List[ExperimentRecord]] = {}
        for record in self.records:
            if outcome is not None and record.outcome is not outcome:
                continue
            grouped.setdefault(record.template, []).append(record)
        return grouped
