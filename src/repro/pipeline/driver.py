"""The campaign driver: run the Fig. 1 pipeline at scale."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.testgen import TestCase, TestCaseGenerator
from repro.errors import ReproError
from repro.symbolic.concrete import certify_equivalence
from repro.hw.platform import ExperimentOutcome, ExperimentPlatform
from repro.isa.assembler import disassemble
from repro.pipeline.config import CampaignConfig
from repro.pipeline.database import ExperimentDatabase
from repro.pipeline.metrics import CampaignStats
from repro.utils.rng import SplittableRandom


@dataclass
class ExperimentRecord:
    """One executed experiment, for post-hoc analysis."""

    program_name: str
    template: str
    outcome: ExperimentOutcome
    test: TestCase
    gen_time: float
    exe_time: float


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    stats: CampaignStats
    records: List[ExperimentRecord] = field(default_factory=list)

    def counterexamples(self) -> List[ExperimentRecord]:
        return [
            r
            for r in self.records
            if r.outcome is ExperimentOutcome.COUNTEREXAMPLE
        ]


class ScamV:
    """Runs one campaign: N programs x M test cases, on the platform.

    The symbolic execution of each program runs once and its result is
    cached inside the program's :class:`TestCaseGenerator` (§5); only test
    instantiation and experiment execution repeat per test case.
    """

    def __init__(
        self,
        config: CampaignConfig,
        database: Optional[ExperimentDatabase] = None,
    ):
        self.config = config
        self.database = database

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
    ) -> CampaignResult:
        cfg = self.config
        rng = SplittableRandom(cfg.seed)
        platform = ExperimentPlatform(cfg.platform, rng=rng.split("platform"))
        stats = CampaignStats(name=cfg.name)
        records: List[ExperimentRecord] = []
        campaign_id = None
        if self.database is not None:
            campaign_id = self.database.add_campaign(cfg.name, cfg.describe())
        started = time.monotonic()

        for program_index in range(cfg.num_programs):
            generated = cfg.template.generate(rng.split(f"prog{program_index}"))
            stats.programs += 1
            program_id = None
            if self.database is not None:
                program_id = self.database.add_program(
                    campaign_id,
                    generated.asm.name,
                    generated.template,
                    disassemble(generated.asm),
                    generated.params,
                )
            try:
                generator = TestCaseGenerator(
                    generated.asm,
                    cfg.model,
                    config=cfg.testgen,
                    rng=rng.split(f"gen{program_index}"),
                    coverage=cfg.coverage,
                )
            except ReproError:
                # A template instance the toolchain cannot analyse (e.g. path
                # explosion) is skipped, like a failed pipeline run in Scam-V.
                stats.generation_failures += cfg.tests_per_program
                continue
            program_hit = False
            for _ in range(cfg.tests_per_program):
                gen_started = time.monotonic()
                test = generator.generate()
                gen_time = time.monotonic() - gen_started
                if test is None:
                    stats.generation_failures += 1
                    stats.gen_time_total += gen_time
                    continue
                exe_started = time.monotonic()
                result = platform.run_experiment(
                    generated.asm, test.state1, test.state2, test.train
                )
                exe_time = time.monotonic() - exe_started
                stats.experiments += 1
                stats.gen_time_total += gen_time
                stats.exe_time_total += exe_time
                if result.outcome is ExperimentOutcome.COUNTEREXAMPLE:
                    if cfg.certify and not certify_equivalence(
                        generator.augmented, test.state1, test.state2
                    ):
                        # Distinguishable but not model-equivalent on the
                        # concrete states: a solver artefact, not a
                        # counterexample to soundness.
                        stats.uncertified += 1
                    else:
                        stats.counterexamples += 1
                        program_hit = True
                        if stats.time_to_counterexample is None:
                            stats.time_to_counterexample = (
                                time.monotonic() - started
                            )
                elif result.outcome is ExperimentOutcome.INCONCLUSIVE:
                    stats.inconclusive += 1
                records.append(
                    ExperimentRecord(
                        program_name=generated.asm.name,
                        template=generated.template,
                        outcome=result.outcome,
                        test=test,
                        gen_time=gen_time,
                        exe_time=exe_time,
                    )
                )
                if self.database is not None:
                    self.database.add_experiment(
                        program_id,
                        result.outcome.value,
                        test.state1,
                        test.state2,
                        test.train,
                        gen_time,
                        exe_time,
                    )
            if program_hit:
                stats.programs_with_counterexamples += 1
            if progress is not None:
                progress(
                    f"[{cfg.name}] program {program_index + 1}/"
                    f"{cfg.num_programs}: {stats.counterexamples} "
                    f"counterexamples in {stats.experiments} experiments"
                )
        return CampaignResult(stats=stats, records=records)
