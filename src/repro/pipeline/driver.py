"""The campaign driver: run the Fig. 1 pipeline at scale.

Since the parallel runner landed, the sequential driver is a thin loop
over the same per-program shard execution the worker pool uses
(:mod:`repro.runner.worker`): each program's random streams derive from a
fresh ``SplittableRandom(cfg.seed).split(f"prog{i}")``, so ``ScamV.run()``
and ``ParallelRunner`` at any worker count produce bit-identical results
for the same seed.  That includes triage: with ``cfg.triage`` on, each
shard minimizes its own counterexamples (per-program dedup), so the
merged witness list is the same whichever path ran the shard.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.pipeline.config import CampaignConfig
from repro.pipeline.database import ExperimentDatabase
from repro.pipeline.metrics import CampaignStats
from repro.pipeline.result import CampaignResult, ExperimentRecord
from repro.runner.merge import merge_shard_results, record_shard
from repro.runner.worker import run_shard, shard_specs
from repro.telemetry.trace import span as tspan

__all__ = ["CampaignResult", "ExperimentRecord", "ScamV"]


class ScamV:
    """Runs one campaign: N programs x M test cases, on the platform.

    The symbolic execution of each program runs once and its result is
    cached inside the program's :class:`TestCaseGenerator` (§5); only test
    instantiation and experiment execution repeat per test case.
    """

    def __init__(
        self,
        config: CampaignConfig,
        database: Optional[ExperimentDatabase] = None,
    ):
        self.config = config
        self.database = database

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
    ) -> CampaignResult:
        cfg = self.config
        campaign_id = None
        if self.database is not None:
            campaign_id = self.database.add_campaign(cfg.name, cfg.describe())
        shards = []
        counterexamples = 0
        experiments = 0
        witnesses = 0
        with tspan(
            "campaign", campaign=cfg.name, programs=cfg.num_programs
        ) as s:
            for spec in shard_specs(cfg):
                shard = run_shard(cfg, spec)
                shards.append(shard)
                if self.database is not None:
                    record_shard(self.database, campaign_id, shard)
                counterexamples += shard.stats.counterexamples
                experiments += shard.stats.experiments
                witnesses += len(shard.witnesses)
                if progress is not None:
                    line = (
                        f"[{cfg.name}] program "
                        f"{spec.program_indices[-1] + 1}/{cfg.num_programs}: "
                        f"{counterexamples} counterexamples in "
                        f"{experiments} experiments"
                    )
                    if cfg.triage:
                        line += f", {witnesses} witnesses"
                    progress(line)
            s.set_attr("counterexamples", counterexamples)
        result = merge_shard_results(cfg.name, shards)
        if self.database is not None and result.ledger is not None:
            self.database.record_coverage(campaign_id, result.ledger)
        if cfg.dashboard:
            from repro.monitor.dashboard import write_dashboard

            write_dashboard(cfg.dashboard, cfg.name, result)
        return result
