"""Campaign statistics: the rows of Table 1 and the Fig. 7 table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class CampaignStats:
    """Counters and timings for one campaign (one table column)."""

    name: str
    programs: int = 0
    programs_with_counterexamples: int = 0
    experiments: int = 0
    counterexamples: int = 0
    inconclusive: int = 0
    generation_failures: int = 0
    # Every call into the test-case generator, successful or not.  The
    # divisor of ``avg_gen_time``: ``gen_time_total`` accumulates time for
    # failed generations too, so dividing by ``experiments`` (successes
    # only) would inflate the reported average.
    generation_attempts: int = 0
    # Distinguishable pairs that failed the concrete equivalence re-check
    # (only populated when the campaign runs with certify=True).
    uncertified: int = 0
    gen_time_total: float = 0.0
    exe_time_total: float = 0.0
    time_to_counterexample: Optional[float] = None
    # Expression/solver cache hit and miss totals sampled from
    # ``repro.bir.intern.counter_totals`` (``<cache>_hits``/``<cache>_misses``
    # keys).  Diagnostic only: hit/miss splits depend on how programs are
    # grouped into shards (a shared subterm is a miss in the first shard
    # that builds it and a hit afterwards *within the same process*), so
    # these are deliberately excluded from ``deterministic_counters``.
    cache_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def avg_gen_time(self) -> float:
        """Mean seconds per test-case generation attempt."""
        if self.generation_attempts == 0:
            return 0.0
        return self.gen_time_total / self.generation_attempts

    @property
    def avg_exe_time(self) -> float:
        """Mean seconds to execute one experiment."""
        if self.experiments == 0:
            return 0.0
        return self.exe_time_total / self.experiments

    @property
    def counterexample_rate(self) -> float:
        if self.experiments == 0:
            return 0.0
        return self.counterexamples / self.experiments

    def merge(self, other: "CampaignStats") -> "CampaignStats":
        """Combine two partial results of the same campaign (shard merge).

        Counters and accumulated times add; ``time_to_counterexample`` takes
        the earlier of the two shard-local values.  The parallel runner's
        merge layer recomputes the campaign-relative T.T.C. from the ordered
        shard durations afterwards (see ``repro.runner.merge``).
        """
        ttcs = [
            t
            for t in (self.time_to_counterexample, other.time_to_counterexample)
            if t is not None
        ]
        return CampaignStats(
            name=self.name,
            programs=self.programs + other.programs,
            programs_with_counterexamples=(
                self.programs_with_counterexamples
                + other.programs_with_counterexamples
            ),
            experiments=self.experiments + other.experiments,
            counterexamples=self.counterexamples + other.counterexamples,
            inconclusive=self.inconclusive + other.inconclusive,
            generation_failures=(
                self.generation_failures + other.generation_failures
            ),
            generation_attempts=(
                self.generation_attempts + other.generation_attempts
            ),
            uncertified=self.uncertified + other.uncertified,
            gen_time_total=self.gen_time_total + other.gen_time_total,
            exe_time_total=self.exe_time_total + other.exe_time_total,
            time_to_counterexample=min(ttcs) if ttcs else None,
            cache_counters=_merge_counters(
                self.cache_counters, other.cache_counters
            ),
        )

    def deterministic_counters(self) -> Dict[str, int]:
        """The seed-determined counters, excluding wall-clock timings.

        Two runs of the same campaign at any worker count must agree on
        these exactly; timing fields and ``cache_counters`` legitimately
        differ run to run (cache hit/miss splits depend on sharding).
        """
        return {
            "programs": self.programs,
            "programs_with_counterexamples": self.programs_with_counterexamples,
            "experiments": self.experiments,
            "counterexamples": self.counterexamples,
            "inconclusive": self.inconclusive,
            "generation_failures": self.generation_failures,
            "generation_attempts": self.generation_attempts,
            "uncertified": self.uncertified,
        }

    def cache_hit_rates(self) -> Dict[str, float]:
        """Per-cache hit rates over this campaign's sampled cache activity.

        Derived from ``cache_counters`` via :func:`repro.bir.intern.hit_rate`
        so reports can show one rate per cache instead of raw hit/miss
        pairs.  Caches with no traffic are omitted.
        """
        from repro.bir import intern

        return {
            name: intern.hit_rate(name, self.cache_counters)
            for name in intern.cache_names(self.cache_counters)
            if (
                self.cache_counters.get(f"{name}_hits", 0)
                + self.cache_counters.get(f"{name}_misses", 0)
            )
        }

    def as_row(self) -> Dict[str, object]:
        """The paper's table-row metrics, in Table 1 order."""
        return {
            "Programs": self.programs,
            "Prog. w. Count.": self.programs_with_counterexamples,
            "Experiments": self.experiments,
            "- Counterexample": self.counterexamples,
            "- Inconclusive": self.inconclusive,
            "- Avg. Gen. time (s)": round(self.avg_gen_time, 4),
            "- Avg. Exe. time (s)": round(self.avg_exe_time, 4),
            "- T.T.C. (s)": (
                round(self.time_to_counterexample, 2)
                if self.time_to_counterexample is not None
                else "-"
            ),
        }


def _merge_counters(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    """Additive union of two counter dicts."""
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0) + value
    return out


def format_table(columns: Sequence[CampaignStats], title: str = "") -> str:
    """Render campaigns side by side in the layout of the paper's Table 1."""
    if not columns:
        return "(no campaigns)"
    rows = [c.as_row() for c in columns]
    metric_names = list(rows[0].keys())
    header = ["Metric"] + [c.name for c in columns]
    table: List[List[str]] = [header]
    for metric in metric_names:
        table.append([metric] + [str(r[metric]) for r in rows])
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def ratio(a: float, b: float) -> Optional[float]:
    """``a / b`` with None for a zero denominator (ratio tables in A.6.1)."""
    if b == 0:
        return None
    return a / b
