"""Campaign configuration: what to generate, validate, and measure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.coverage import CoverageSampler, NoCoverage
from repro.core.testgen import TestGenConfig
from repro.gen.templates import TemplateGenerator
from repro.hw.platform import PlatformConfig
from repro.obs.base import ObservationModel


@dataclass
class CampaignConfig:
    """One column of the paper's result tables.

    ``model`` is the (possibly refinement-carrying) observation model under
    validation; ``coverage`` the supporting model's constraint sampler (path
    coverage via the per-path-pair round-robin is always on).
    """

    name: str
    template: TemplateGenerator
    model: ObservationModel
    num_programs: int
    tests_per_program: int
    coverage: CoverageSampler = field(default_factory=NoCoverage)
    testgen: TestGenConfig = field(default_factory=TestGenConfig)
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    seed: int = 0
    # Re-check each counterexample against the model semantics with a
    # concrete run (Definition 1 on concrete states); uncertified ones are
    # counted separately instead of as counterexamples.
    certify: bool = False
    # Feed counterexamples through the triage subsystem (repro.triage):
    # minimize each distinct violation and attach the resulting witnesses
    # to the campaign result.  Off by default — triage re-executes the
    # platform many times per counterexample.
    triage: bool = False
    # Keep a coverage ledger (repro.monitor.ledger): which supporting-model
    # partitions each test case exercised, merged across shards and used by
    # the convergence estimator and the dashboards.  On by default — it is
    # cheap (a few dict updates per experiment) and strictly out-of-band of
    # the deterministic result.
    monitor: bool = True
    # Write a self-contained HTML dashboard for this campaign to the given
    # path when it finishes (see repro.monitor.dashboard).
    dashboard: Optional[str] = None

    def describe(self) -> str:
        refinement = "yes" if self.model.has_refinement else "no"
        text = (
            f"{self.name}: template={self.template.name} "
            f"model={self.model.name} refinement={refinement} "
            f"coverage={self.coverage.name} programs={self.num_programs} "
            f"tests/program={self.tests_per_program} seed={self.seed}"
        )
        if self.triage:
            text += " triage=yes"
        return text
